//! Differential tests of the deterministic parallel engine: every
//! end-to-end scenario must produce **byte-identical** transcripts —
//! ticks, controller events, hypervisor actions, and monitored series —
//! at `workers ∈ {1, 2, 7}`. `workers = 1` takes literally the old
//! sequential code path, so these runs prove the sharded engine equal to
//! the sequential controller on every application × fault combination,
//! not merely on unit-level fixtures.
//!
//! Worker counts are chosen adversarially: 2 splits the VM set evenly,
//! 7 exceeds the VM count of every deployed application, so shards are
//! ragged and some are empty.

mod common;

use common::{run_with_workers, run_with_workers_online, transcript};
use prepare_repro::core::{AppKind, FaultChoice, Scheme};

/// Worker counts the engine must be invariant over. 1 is the sequential
/// identity; the others shard.
const WORKER_COUNTS: [usize; 3] = [1, 2, 7];

fn assert_worker_invariant(app: AppKind, fault: FaultChoice, scheme: Scheme, seed: u64) {
    let sequential = run_with_workers(app, fault, scheme, seed, 1);
    // Every differential baseline also passes through the registered
    // temporal-property catalogue: the invariance matrix doubles as the
    // checker's widest scheme/app/fault coverage inside `cargo test`.
    let violations = prepare_tlc::check_all(
        &prepare_tlc::properties::standard_properties(),
        &sequential.events,
    );
    assert!(
        violations.is_empty(),
        "{app:?}/{fault:?}/{scheme:?}: temporal property violations:\n{}",
        violations
            .iter()
            .map(|v| format!("  {v}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
    let baseline = transcript(&sequential);
    assert!(
        !baseline.is_empty(),
        "empty baseline for {app:?}/{fault:?}/{scheme:?}"
    );
    for workers in WORKER_COUNTS {
        let got = transcript(&run_with_workers(app, fault, scheme, seed, workers));
        assert!(
            got == baseline,
            "transcript diverged from sequential baseline for \
             {app:?}/{fault:?}/{scheme:?} at workers={workers}"
        );
    }
}

#[test]
fn system_s_prepare_is_worker_invariant() {
    for fault in [
        FaultChoice::MemLeak,
        FaultChoice::CpuHog,
        FaultChoice::Bottleneck,
        FaultChoice::Contention,
    ] {
        assert_worker_invariant(AppKind::SystemS, fault, Scheme::Prepare, 42);
    }
}

#[test]
fn rubis_prepare_is_worker_invariant() {
    for fault in [
        FaultChoice::MemLeak,
        FaultChoice::CpuHog,
        FaultChoice::Bottleneck,
        FaultChoice::Contention,
    ] {
        assert_worker_invariant(AppKind::Rubis, fault, Scheme::Prepare, 42);
    }
}

#[test]
fn reactive_scheme_is_worker_invariant() {
    // The reactive path exercises `reactive_diagnosis` (per-VM scoring +
    // best-VM tie-breaking fold) rather than the predictive round.
    assert_worker_invariant(AppKind::Rubis, FaultChoice::CpuHog, Scheme::Reactive, 7);
}

#[test]
fn no_intervention_scheme_is_worker_invariant() {
    // Degenerate but cheap: the controller never trains, so the engine
    // must be invariant even when every parallel path is dormant.
    assert_worker_invariant(
        AppKind::SystemS,
        FaultChoice::MemLeak,
        Scheme::NoIntervention,
        7,
    );
}

#[test]
fn online_training_matches_from_scratch_rebuild() {
    // The incremental trainer must be invisible in the transcript: a run
    // whose training rounds *derive* models from the delta-maintained
    // count arenas must be byte-identical to a run that rescans each VM's
    // full series — at every worker count, since the online refresh also
    // shards (over contiguous arena ranges rather than strided VM ids).
    for (app, fault) in [
        (AppKind::SystemS, FaultChoice::MemLeak),
        (AppKind::Rubis, FaultChoice::CpuHog),
    ] {
        let offline = transcript(&run_with_workers_online(
            app,
            fault,
            Scheme::Prepare,
            42,
            1,
            false,
        ));
        assert!(!offline.is_empty(), "empty offline baseline");
        for workers in WORKER_COUNTS {
            let online = transcript(&run_with_workers_online(
                app,
                fault,
                Scheme::Prepare,
                42,
                workers,
                true,
            ));
            assert!(
                online == offline,
                "online-training transcript diverged from the from-scratch \
                 baseline for {app:?}/{fault:?} at workers={workers}"
            );
        }
    }
}

#[test]
fn env_override_matches_explicit_workers() {
    // `PrepareConfig::default()` reads `PREPARE_WORKERS`; CI runs the
    // whole suite under 1 and 4. Whatever the ambient value, the explicit
    // configs above pin worker counts — this test closes the loop by
    // checking the ambient default agrees with the sequential baseline.
    let ambient = {
        let spec = prepare_repro::core::ExperimentSpec::paper_default(
            AppKind::SystemS,
            FaultChoice::CpuHog,
            Scheme::Prepare,
        );
        prepare_repro::core::Experiment::new(spec, 11).run()
    };
    let baseline = run_with_workers(
        AppKind::SystemS,
        FaultChoice::CpuHog,
        Scheme::Prepare,
        11,
        1,
    );
    assert!(
        transcript(&ambient) == transcript(&baseline),
        "ambient PREPARE_WORKERS default diverged from the sequential baseline"
    );
}
