//! Deterministic-replay regression tests: the control loop is seeded and
//! must be exactly reproducible. Two runs of the same experiment with the
//! same seed must produce byte-identical action logs, controller event
//! logs, per-tick traces, and monitored metric series — the property the
//! `cargo xtask lint` determinism rules exist to protect.

use prepare_repro::core::{
    AppKind, Experiment, ExperimentResult, ExperimentSpec, FaultChoice, Scheme,
};

/// Renders every replay-relevant artifact of a run into one byte string.
/// `Debug` formatting is stable for a fixed binary, which is exactly the
/// replay contract: same build + same seed = same bytes.
fn transcript(r: &ExperimentResult) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "violation {:?} / {:?}\n",
        r.total_violation_time, r.eval_violation_time
    ));
    for t in &r.ticks {
        out.push_str(&format!("tick {t:?}\n"));
    }
    for e in &r.events {
        out.push_str(&format!("event {e:?}\n"));
    }
    for a in &r.actions {
        out.push_str(&format!("action {a:?}\n"));
    }
    for (vm, series) in &r.vm_series {
        out.push_str(&format!("series {vm} {series:?}\n"));
    }
    out
}

fn run(app: AppKind, fault: FaultChoice, seed: u64) -> ExperimentResult {
    Experiment::new(
        ExperimentSpec::paper_default(app, fault, Scheme::Prepare),
        seed,
    )
    .run()
}

#[test]
fn same_seed_replays_byte_identical() {
    let a = transcript(&run(AppKind::Rubis, FaultChoice::MemLeak, 42));
    let b = transcript(&run(AppKind::Rubis, FaultChoice::MemLeak, 42));
    assert!(!a.is_empty());
    assert_eq!(a, b, "same seed must replay byte-identically");
}

#[test]
fn same_seed_replays_across_apps_and_faults() {
    for (app, fault) in [
        (AppKind::SystemS, FaultChoice::CpuHog),
        (AppKind::Rubis, FaultChoice::Bottleneck),
    ] {
        let a = transcript(&run(app, fault, 7));
        let b = transcript(&run(app, fault, 7));
        assert_eq!(a, b, "replay diverged for {app:?}/{fault:?}");
    }
}

#[test]
fn different_seeds_actually_diverge() {
    // Guards the guard: if seeding were ignored, the identity tests above
    // would pass vacuously.
    let a = transcript(&run(AppKind::Rubis, FaultChoice::MemLeak, 1));
    let b = transcript(&run(AppKind::Rubis, FaultChoice::MemLeak, 2));
    assert_ne!(a, b, "different seeds must produce different runs");
}
