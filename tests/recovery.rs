//! Recovery-equivalence proofs: a controller killed at *any* round and
//! rebuilt from its last checkpoint plus the write-ahead journal suffix
//! must be indistinguishable — byte for byte — from one that never
//! crashed.
//!
//! The pinned scenario mirrors the tlc explorer's: a 2-host / 3-VM
//! cluster with a recurring memory leak on VM 0, driven fault-free on
//! the data plane (crashes are the subject here; infrastructure chaos ×
//! crash interleavings live in `prepare-tlc`). The sweep crashes the
//! controller before every single post-prefix round and demands:
//!
//! 1. every per-round event batch from the first post-recovery round on
//!    is byte-identical to the uninterrupted referee's,
//! 2. the final model fingerprints are equal,
//! 3. the final cluster states are equal (no actuation was lost or
//!    double-applied across the crash boundary), and
//! 4. the recovered full event log equals the referee's once the two
//!    crash markers (`ControllerCrashed`, `RecoveryCompleted`) are set
//!    aside.
//!
//! All of it at worker counts {1, 2, 7}: recovery must compose with the
//! sharded engine, not just the sequential one. A proptest extends the
//! sweep to random multi-crash schedules (including back-to-back
//! crashes in consecutive rounds).

use prepare_repro::cloudsim::{Cluster, HostSpec};
use prepare_repro::core::{
    ControllerEvent, PrepareConfig, PrepareController, RecoveryManager, Scheme,
};
use prepare_repro::metrics::{
    AttributeKind, MetricSample, MetricVector, StampedSample, Timestamp, VmId,
};
use prepare_repro::par::ParConfig;
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Sampling rounds driven per run: two full leak periods.
const ROUNDS: u64 = 240;

/// Seconds between sampling rounds.
const SAMPLING_SECS: u64 = 5;

/// The fault-free warmup driven once and forked per crash case (the
/// controller trains on the first leak period; crashes sweep the
/// second).
const PREFIX_SECS: u64 = 880;

/// First sampling round after the shared prefix.
const FIRST_SWEPT_ROUND: u64 = PREFIX_SECS / SAMPLING_SECS;

/// Control rounds between checkpoints — deliberately *not* a divisor of
/// the swept range so the sweep hits crashes right after a checkpoint
/// (empty journal), right before one (longest journal), and everywhere
/// in between.
const CHECKPOINT_EVERY_ROUNDS: u64 = 8;

/// The worker counts every equivalence claim is proven at.
const WORKER_COUNTS: [usize; 3] = [1, 2, 7];

/// A synthetic 13-attribute sample: `cpu` busy, `free_mem` MB free,
/// heavy paging once memory is exhausted.
fn sample_for(t: u64, cpu: f64, free_mem: f64) -> MetricSample {
    let v = MetricVector::from_fn(|a| match a {
        AttributeKind::CpuTotal => cpu,
        AttributeKind::CpuUser => cpu * 0.7,
        AttributeKind::FreeMem => free_mem,
        AttributeKind::Load1 => cpu / 50.0,
        AttributeKind::PageFaults => {
            if free_mem <= 0.0 {
                600.0
            } else {
                0.0
            }
        }
        _ => 10.0,
    });
    MetricSample::new(Timestamp::from_secs(t), v)
}

/// Free memory of the leaking VM at sampling round `i`: a 120-round
/// period — steady, ramp to exhaustion, depleted, recovered.
fn leak_free_mem(i: u64) -> f64 {
    let phase = i % 120;
    match phase {
        0..=39 => 500.0,
        40..=89 => 500.0 - ((phase - 39) as f64) * 10.0,
        90..=109 => 0.0,
        _ => 500.0,
    }
}

/// The scenario's inputs for the sampling round at time `t`.
fn round_inputs(t: u64) -> (Vec<(VmId, StampedSample)>, bool) {
    let free = leak_free_mem(t / SAMPLING_SECS);
    let readings = vec![
        (VmId(0), StampedSample::fresh(sample_for(t, 40.0, free))),
        (VmId(1), StampedSample::fresh(sample_for(t, 30.0, 400.0))),
        (VmId(2), StampedSample::fresh(sample_for(t, 25.0, 450.0))),
    ];
    (readings, free < 50.0)
}

/// The shared fault-free warmup: cluster + controller at `PREFIX_SECS`.
struct Prefix {
    cluster: Cluster,
    controller: PrepareController,
}

fn build_prefix(workers: usize) -> Prefix {
    let mut cluster = Cluster::new();
    let h0 = cluster.add_host(HostSpec::vcl_default());
    let h1 = cluster.add_host(HostSpec::vcl_default());
    for host in [h0, h0, h1] {
        cluster
            .create_vm(host, 100.0, 512.0)
            .expect("fresh VCL hosts fit the tiny fleet");
    }
    let vms = vec![VmId(0), VmId(1), VmId(2)];
    let config = PrepareConfig::default().with_workers(workers);
    let mut controller = PrepareController::new(vms, config, Scheme::Prepare);
    for t in 0..PREFIX_SECS {
        let now = Timestamp::from_secs(t);
        cluster.advance(now);
        if t.is_multiple_of(SAMPLING_SECS) {
            let (readings, violated) = round_inputs(t);
            controller.on_readings(now, &readings, violated, &mut cluster);
        }
    }
    Prefix {
        cluster,
        controller,
    }
}

/// One finished run: the per-round event batches (indexed from the
/// first post-prefix round), the final manager, and the final cluster.
struct Run {
    per_round: Vec<Vec<ControllerEvent>>,
    manager: RecoveryManager,
    cluster: Cluster,
}

/// Forks the prefix and drives the managed controller to the end,
/// crashing (kill + rebuild from the durable artifacts) immediately
/// before each round listed in `crash_rounds`.
fn drive(prefix: &Prefix, workers: usize, crash_rounds: &BTreeSet<u64>) -> Run {
    let par = ParConfig::with_workers(workers);
    let mut cluster = prefix.cluster.clone();
    let mut manager = RecoveryManager::new(prefix.controller.clone(), CHECKPOINT_EVERY_ROUNDS);
    let mut per_round = Vec::new();
    for t in PREFIX_SECS..ROUNDS * SAMPLING_SECS {
        let now = Timestamp::from_secs(t);
        cluster.advance(now);
        if !t.is_multiple_of(SAMPLING_SECS) {
            continue;
        }
        if crash_rounds.contains(&(t / SAMPLING_SECS)) {
            let image = manager.crash_image();
            manager = RecoveryManager::recover(&image, CHECKPOINT_EVERY_ROUNDS, par, now)
                .expect("a checkpoint this process sealed is intact");
        }
        let (readings, violated) = round_inputs(t);
        per_round.push(manager.tick(now, &readings, violated, &mut cluster));
    }
    Run {
        per_round,
        manager,
        cluster,
    }
}

/// One `Debug` line per event — the byte-identity currency of this
/// suite (`Debug` is stable for a fixed binary).
fn render(events: &[ControllerEvent]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&format!("{e:?}\n"));
    }
    out
}

/// True for the two markers only a crashed run carries.
fn is_crash_marker(e: &ControllerEvent) -> bool {
    matches!(
        e,
        ControllerEvent::ControllerCrashed { .. } | ControllerEvent::RecoveryCompleted { .. }
    )
}

/// How many crashes' marker pairs survive to the end of the run: a
/// crash's `ControllerCrashed`/`RecoveryCompleted` markers are durable
/// once a checkpoint seals (at the end of any round `r` with
/// `(r - FIRST_SWEPT_ROUND + 1) % CHECKPOINT_EVERY_ROUNDS == 0`) before
/// the next crash strikes.
fn surviving_marker_pairs(crash_rounds: &BTreeSet<u64>) -> usize {
    let crashes: Vec<u64> = crash_rounds.iter().copied().collect();
    crashes
        .iter()
        .enumerate()
        .filter(|&(i, &c)| match crashes.get(i + 1) {
            None => true,
            Some(&next) => (c..next)
                .any(|r| (r - FIRST_SWEPT_ROUND + 1).is_multiple_of(CHECKPOINT_EVERY_ROUNDS)),
        })
        .count()
}

/// Asserts the four equivalence claims between a crashed run and the
/// uninterrupted referee.
fn assert_equivalent(label: &str, referee: &Run, crashed: &Run, crash_rounds: &BTreeSet<u64>) {
    assert_eq!(
        referee.per_round.len(),
        crashed.per_round.len(),
        "{label}: round count"
    );
    for (i, (r, c)) in referee.per_round.iter().zip(&crashed.per_round).enumerate() {
        assert_eq!(
            render(r),
            render(c),
            "{label}: round {} events diverged",
            FIRST_SWEPT_ROUND + i as u64
        );
    }
    assert_eq!(
        referee.manager.controller().model_fingerprint(),
        crashed.manager.controller().model_fingerprint(),
        "{label}: model fingerprints diverged"
    );
    assert_eq!(
        referee.cluster, crashed.cluster,
        "{label}: cluster states diverged (an actuation was lost or double-applied)"
    );
    // The recovered log is the referee's log plus one pair of crash
    // markers per crash whose recovery note reached a checkpoint (a
    // later crash before the next checkpoint forgets the markers — they
    // were never made durable).
    let markers = crashed
        .manager
        .controller()
        .events()
        .iter()
        .filter(|e| is_crash_marker(e))
        .count();
    assert_eq!(
        markers,
        2 * surviving_marker_pairs(crash_rounds),
        "{label}: crash marker count"
    );
    let without_markers: Vec<ControllerEvent> = crashed
        .manager
        .controller()
        .events()
        .iter()
        .filter(|e| !is_crash_marker(e))
        .cloned()
        .collect();
    assert_eq!(
        render(referee.manager.controller().events()),
        render(&without_markers),
        "{label}: full logs diverged beyond the crash markers"
    );
}

/// The tentpole proof: crash before *every* post-prefix round, at every
/// pinned worker count, and demand byte-identity with the referee.
#[test]
fn crash_at_every_round_recovers_byte_identically() {
    for workers in WORKER_COUNTS {
        let prefix = build_prefix(workers);
        let referee = drive(&prefix, workers, &BTreeSet::new());
        // The referee itself must do interesting things in the swept
        // window, or the sweep proves nothing.
        let flat: Vec<ControllerEvent> = referee.per_round.iter().flatten().cloned().collect();
        assert!(
            flat.iter()
                .any(|e| matches!(e, ControllerEvent::ActionIssued { .. })),
            "workers={workers}: the pinned scenario must actuate in the swept window"
        );
        assert!(
            flat.iter()
                .any(|e| matches!(e, ControllerEvent::CheckpointTaken { .. })),
            "workers={workers}: checkpoints must land in the swept window"
        );
        for crash_round in FIRST_SWEPT_ROUND..ROUNDS {
            let crashes = BTreeSet::from([crash_round]);
            let crashed = drive(&prefix, workers, &crashes);
            assert_equivalent(
                &format!("workers={workers} crash@round{crash_round}"),
                &referee,
                &crashed,
                &crashes,
            );
        }
    }
}

/// Recovery must also be invariant *across* worker counts: the sharded
/// engine recovering a crash produces the same bytes as the sequential
/// one.
#[test]
fn recovered_runs_are_worker_count_invariant() {
    let crashes = BTreeSet::from([FIRST_SWEPT_ROUND + 13, FIRST_SWEPT_ROUND + 14]);
    let runs: Vec<(usize, Run)> = WORKER_COUNTS
        .iter()
        .map(|&w| (w, drive(&build_prefix(w), w, &crashes)))
        .collect();
    let Some(((first_w, first), rest)) = runs.split_first() else {
        unreachable!("WORKER_COUNTS is non-empty");
    };
    for (w, run) in rest {
        assert_eq!(
            render(first.manager.controller().events()),
            render(run.manager.controller().events()),
            "workers {first_w} vs {w}: recovered logs diverged"
        );
        assert_eq!(
            first.manager.controller().model_fingerprint(),
            run.manager.controller().model_fingerprint(),
            "workers {first_w} vs {w}: recovered fingerprints diverged"
        );
    }
}

// Random multi-crash schedules (1–6 crashes, anywhere in the swept
// range, duplicates collapsing to back-to-back coverage) recover
// byte-identically at a pinned worker pair.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn random_crash_schedules_recover_byte_identically(
        rounds in proptest::collection::vec(FIRST_SWEPT_ROUND..ROUNDS, 1..6),
    ) {
        let crashes: BTreeSet<u64> = rounds.into_iter().collect();
        for workers in [1usize, 2] {
            let prefix = build_prefix(workers);
            let referee = drive(&prefix, workers, &BTreeSet::new());
            let crashed = drive(&prefix, workers, &crashes);
            assert_equivalent(
                &format!("workers={workers} crashes@{crashes:?}"),
                &referee,
                &crashed,
                &crashes,
            );
        }
    }
}
