//! Integration tests of the extension features (paper §V and beyond):
//! the unsupervised first-occurrence detector, ROC analysis over real
//! experiment traces, and trace persistence round trips.

use prepare_repro::anomaly::{AnomalyPredictor, PredictorConfig, RocCurve, UnsupervisedPredictor};
use prepare_repro::core::{AppKind, Experiment, ExperimentSpec, FaultChoice, Scheme};
use prepare_repro::metrics::{Duration, Label, SloLog, TimeSeries, TraceStore};

/// Runs the no-intervention paper schedule and returns the faulty VM's
/// series plus the SLO log.
fn faulty_trace(app: AppKind, fault: FaultChoice, seed: u64) -> (TimeSeries, SloLog) {
    let spec = ExperimentSpec::paper_default(app, fault, Scheme::NoIntervention);
    let r = Experiment::new(spec, seed).run();
    let mut slo = SloLog::new();
    for t in &r.ticks {
        slo.record(t.time, t.slo_violated);
    }
    let (_, series) = r
        .vm_series
        .iter()
        .max_by(|a, b| {
            let sa = prepare_repro::core::implication_score(&a.1, &slo);
            let sb = prepare_repro::core::implication_score(&b.1, &slo);
            sa.partial_cmp(&sb).expect("finite scores")
        })
        .expect("non-empty")
        .clone();
    (series, slo)
}

#[test]
fn unsupervised_detector_flags_a_first_occurrence() {
    let (series, _) = faulty_trace(AppKind::Rubis, FaultChoice::MemLeak, 1);
    // Train on the healthy prefix only — no labels, no recurrence.
    let healthy: TimeSeries = series
        .iter()
        .filter(|s| s.time.as_secs() < 150)
        .copied()
        .collect();
    let mut model = UnsupervisedPredictor::fit(&healthy, &PredictorConfig::default());
    let mut detected_inside = 0usize;
    let mut alarms_before = 0usize;
    for s in series.iter() {
        model.observe(s);
        let pred = model.predict(Duration::from_secs(10));
        let t = s.time.as_secs();
        if (250..450).contains(&t) && pred.label == Label::Abnormal {
            detected_inside += 1;
        }
        if t < 150 && pred.label == Label::Abnormal {
            alarms_before += 1;
        }
    }
    assert!(
        detected_inside > 10,
        "first occurrence missed ({detected_inside} hits)"
    );
    assert_eq!(alarms_before, 0, "false alarms on the healthy prefix");
}

#[test]
fn roc_auc_is_strong_on_a_recurrent_fault() {
    let (series, slo) = faulty_trace(AppKind::SystemS, FaultChoice::MemLeak, 1);
    let train: TimeSeries = series
        .iter()
        .filter(|s| s.time.as_secs() <= 700)
        .copied()
        .collect();
    let test: TimeSeries = series
        .iter()
        .filter(|s| s.time.as_secs() > 700)
        .copied()
        .collect();
    let predictor =
        AnomalyPredictor::train(&train, &slo, &PredictorConfig::default()).expect("trains");
    let roc = RocCurve::compute(&predictor, &test, &slo, Duration::from_secs(30));
    assert!(
        roc.auc() > 0.9,
        "AUC {:.3} too low for a recurrent leak",
        roc.auc()
    );
    let best = roc.best_operating_point().expect("non-empty curve");
    assert!(best.true_positive_rate > 0.7);
    assert!(best.false_alarm_rate < 0.3);
}

#[test]
fn experiment_traces_round_trip_through_the_store() {
    let spec = ExperimentSpec::paper_default(AppKind::Rubis, FaultChoice::CpuHog, Scheme::Prepare);
    let r = Experiment::new(spec, 7).run();
    let mut store = TraceStore::new();
    for tick in &r.ticks {
        store.record_slo(tick.time, tick.slo_violated);
    }
    for (vm, series) in &r.vm_series {
        for s in series.iter() {
            store.record_sample(*vm, *s);
        }
    }
    let json = store.to_json().expect("serializes");
    let back = TraceStore::from_json(&json).expect("parses");
    assert_eq!(store, back);
    assert_eq!(back.n_vms(), 4);
    assert_eq!(
        back.slo().total_violation_time(),
        store.slo().total_violation_time()
    );
    // ...and a restored trace can still train a predictor.
    let vm = back.vms().last().expect("has VMs");
    let predictor = AnomalyPredictor::train(
        back.series(vm).expect("recorded"),
        back.slo(),
        &PredictorConfig::default(),
    );
    assert!(
        predictor.is_ok(),
        "restored trace failed to train: {predictor:?}"
    );
}
