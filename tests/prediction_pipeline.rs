//! Cross-crate integration tests of the prediction pipeline: traces
//! produced by the cluster simulator + applications, consumed by the
//! anomaly prediction stack, scored with the paper's A_T/A_F metrics.

use prepare_repro::anomaly::{AnomalyPredictor, MarkovKind, MonolithicPredictor, PredictorConfig};
use prepare_repro::core::{AppKind, Experiment, ExperimentSpec, FaultChoice, Scheme};
use prepare_repro::metrics::{Duration, SloLog, TimeSeries, Timestamp};

/// Generates a labeled trace from a no-intervention run and returns the
/// faulty VM's series (index) plus all series and the SLO log.
fn labeled_trace(app: AppKind, fault: FaultChoice, seed: u64) -> (Vec<TimeSeries>, usize, SloLog) {
    let spec = ExperimentSpec::paper_default(app, fault, Scheme::NoIntervention);
    let r = Experiment::new(spec, seed).run();
    let mut slo = SloLog::new();
    for t in &r.ticks {
        slo.record(t.time, t.slo_violated);
    }
    let mut faulty = 0;
    let mut best = f64::NEG_INFINITY;
    for (i, (_, s)) in r.vm_series.iter().enumerate() {
        let score = prepare_repro::core::implication_score(s, &slo);
        if score > best {
            best = score;
            faulty = i;
        }
    }
    (
        r.vm_series.into_iter().map(|(_, s)| s).collect(),
        faulty,
        slo,
    )
}

fn split(series: &TimeSeries, at: Timestamp) -> (TimeSeries, TimeSeries) {
    (
        series.iter().filter(|s| s.time <= at).copied().collect(),
        series.iter().filter(|s| s.time > at).copied().collect(),
    )
}

const TRAIN_END: Timestamp = Timestamp::from_secs(700);

#[test]
fn per_vm_predictor_is_accurate_on_recurrence() {
    let (series, faulty, slo) = labeled_trace(AppKind::SystemS, FaultChoice::MemLeak, 1);
    let (train, test) = split(&series[faulty], TRAIN_END);
    let cfg = PredictorConfig::default();
    let p = AnomalyPredictor::train(&train, &slo, &cfg).expect("both classes present");
    let m = p.evaluate_trace(&test, &slo, Duration::from_secs(30));
    assert!(
        m.true_positive_rate() > 0.6,
        "A_T too low on a recurrent leak: {m}"
    );
    assert!(m.false_alarm_rate() < 0.2, "A_F too high: {m}");
}

#[test]
fn per_vm_beats_monolithic_at_long_look_ahead() {
    // Fig. 10's claim: value-prediction errors accumulate across the
    // monolithic model's many attributes.
    let (series, faulty, slo) = labeled_trace(AppKind::SystemS, FaultChoice::MemLeak, 1);
    let cfg = PredictorConfig::default();

    let (train, test) = split(&series[faulty], TRAIN_END);
    let per_vm = AnomalyPredictor::train(&train, &slo, &cfg).expect("trains");

    let trains: Vec<TimeSeries> = series.iter().map(|s| split(s, TRAIN_END).0).collect();
    let tests: Vec<TimeSeries> = series.iter().map(|s| split(s, TRAIN_END).1).collect();
    let mono = MonolithicPredictor::train(&trains, &slo, &cfg).expect("trains");

    let la = Duration::from_secs(40);
    let m_per = per_vm.evaluate_trace(&test, &slo, la);
    let m_mono = mono.evaluate_trace(&tests, &slo, la);
    assert!(
        m_per.true_positive_rate() > m_mono.true_positive_rate(),
        "per-VM A_T {:.2} must beat monolithic {:.2} at 40 s look-ahead",
        m_per.true_positive_rate(),
        m_mono.true_positive_rate()
    );
}

#[test]
fn two_dependent_markov_no_worse_than_simple_at_long_look_ahead() {
    // Fig. 11's claim, checked as a non-strict dominance on A_T averaged
    // over the longest look-aheads (individual points can tie).
    let (series, faulty, slo) = labeled_trace(AppKind::SystemS, FaultChoice::MemLeak, 1);
    let (train, test) = split(&series[faulty], TRAIN_END);

    let avg_at = |kind: MarkovKind| -> f64 {
        let cfg = PredictorConfig {
            markov: kind,
            ..PredictorConfig::default()
        };
        let p = AnomalyPredictor::train(&train, &slo, &cfg).expect("trains");
        [35u64, 40, 45]
            .iter()
            .map(|&la| {
                p.evaluate_trace(&test, &slo, Duration::from_secs(la))
                    .true_positive_rate()
            })
            .sum::<f64>()
            / 3.0
    };
    let two_dep = avg_at(MarkovKind::TwoDependent);
    let simple = avg_at(MarkovKind::Simple);
    assert!(
        two_dep + 1e-9 >= simple,
        "2-dep A_T {two_dep:.3} must not trail simple {simple:.3} at long look-ahead"
    );
}

#[test]
fn fault_localization_blames_the_injected_vm() {
    // RUBiS faults target the DB (component index 3).
    for fault in [FaultChoice::MemLeak, FaultChoice::CpuHog] {
        let (_, faulty, _) = labeled_trace(AppKind::Rubis, fault, 2);
        assert_eq!(faulty, 3, "{} should implicate the DB tier", fault.name());
    }
}

#[test]
fn accuracy_degrades_gracefully_with_look_ahead() {
    let (series, faulty, slo) = labeled_trace(AppKind::Rubis, FaultChoice::Bottleneck, 1);
    let (train, test) = split(&series[faulty], TRAIN_END);
    let cfg = PredictorConfig::default();
    let p = AnomalyPredictor::train(&train, &slo, &cfg).expect("trains");
    let near = p.evaluate_trace(&test, &slo, Duration::from_secs(5));
    let far = p.evaluate_trace(&test, &slo, Duration::from_secs(45));
    // Far look-ahead may lose accuracy but must stay usable (the paper's
    // A_T at 45 s remains above 50%) and valid.
    assert!(near.total() > 0 && far.total() > 0);
    assert!(far.true_positive_rate() > 0.5, "45 s A_T collapsed: {far}");
}
