//! Hostile-infrastructure robustness suite: the control loop must survive
//! seeded monitoring/actuation faults without panicking, keep its
//! invariants, abstain (not mis-vote) while blind, re-converge once the
//! faults clear, and stay byte-for-byte replayable — at any worker count.
//!
//! The chaos layer must also be provably zero-cost when off: an empty
//! plan (and no plan at all) leaves every trace byte-identical.

mod common;

use common::transcript;
use prepare_repro::cloudsim::{ChaosKind, ChaosPlan, HostId};
use prepare_repro::core::{
    AppKind, ControllerEvent, Experiment, ExperimentResult, ExperimentSpec, FaultChoice, Scheme,
};
use prepare_repro::metrics::{AttributeKind, Duration, Timestamp, VmId};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// The two pinned seeds CI replays at `PREPARE_WORKERS=1` and `=4`.
const PINNED_SEEDS: [u64; 2] = [0xC0FFEE, 0xBADC0DE];

fn t(secs: u64) -> Timestamp {
    Timestamp::from_secs(secs)
}

/// An aggressive plan that piles every fault class onto the evaluated
/// anomaly window (the second injection starts at t=800): lost and lagging
/// samples, a wedged attribute reading, a busy hypervisor control plane,
/// migrations that never switch over, and a host-wide blackout. All
/// faults clear by t=1100, leaving 400 s to re-converge.
fn hostile_plan(seed: u64) -> ChaosPlan {
    ChaosPlan::new(seed)
        .with_fault(
            t(820),
            t(880),
            ChaosKind::DropSamples {
                vm: None,
                probability: 0.5,
            },
        )
        .with_fault(
            t(900),
            t(960),
            ChaosKind::DelaySamples {
                vm: None,
                probability: 0.8,
            },
        )
        .with_fault(
            t(820),
            t(920),
            ChaosKind::StuckAttribute {
                vm: VmId(0),
                attribute: AttributeKind::FreeMem,
            },
        )
        .with_fault(
            t(850),
            t(950),
            ChaosKind::HypervisorBusy { probability: 0.7 },
        )
        .with_fault(
            t(800),
            t(1100),
            ChaosKind::MigrationTimeout {
                timeout: Duration::from_secs(5),
            },
        )
        .with_fault(t(960), t(1000), ChaosKind::HostBlackout { host: HostId(0) })
}

fn run_chaos(seed: u64, chaos_seed: u64, workers: usize) -> ExperimentResult {
    let mut spec =
        ExperimentSpec::paper_default(AppKind::SystemS, FaultChoice::MemLeak, Scheme::Prepare)
            .with_chaos(hostile_plan(chaos_seed));
    spec.config = spec.config.with_workers(workers);
    Experiment::new(spec, seed).run()
}

/// Whole-run sanity: events in time order, the clock covered every tick,
/// and every numeric output finite.
fn assert_invariants(r: &ExperimentResult) {
    assert_eq!(r.ticks.len(), 1500);
    let mut last = Timestamp::ZERO;
    for e in &r.events {
        assert!(e.time() >= last, "event log must be time-ordered");
        last = e.time();
    }
    for (_, series) in &r.vm_series {
        for s in series.iter() {
            assert!(s.values.is_finite(), "non-finite monitored value");
        }
    }
}

/// While a VM's monitoring is degraded the controller must stay silent
/// about it — no raw alerts, no confirmations, no reactive blame. A
/// blackout suppresses evidence; it must never be read as an anomaly (or
/// as recovery).
fn assert_no_alerts_while_degraded(events: &[ControllerEvent]) {
    let mut degraded: BTreeSet<VmId> = BTreeSet::new();
    for e in events {
        match e {
            ControllerEvent::MonitoringDegraded { vm, .. } => {
                degraded.insert(*vm);
            }
            ControllerEvent::MonitoringRecovered { vm, .. } => {
                degraded.remove(vm);
            }
            ControllerEvent::AlertRaised { vm, at, .. } => {
                assert!(
                    !degraded.contains(vm),
                    "raw alert from degraded {vm} at {at}"
                );
            }
            ControllerEvent::AlertConfirmed { vm, at, .. } => {
                assert!(
                    !degraded.contains(vm),
                    "confirmed alert on degraded {vm} at {at}"
                );
            }
            ControllerEvent::ReactiveTriggered { vm, at } => {
                assert!(
                    !degraded.contains(vm),
                    "reactive blame on degraded {vm} at {at}"
                );
            }
            _ => {}
        }
    }
}

/// A rollback is only meaningful for a migration that actually started:
/// every `ActionRolledBack` for a VM must be preceded by a
/// migration-start `ActionIssued` (attribute-less action) for that same
/// VM, and each start accounts for at most one rollback.
fn assert_rollbacks_follow_migration_starts(events: &[ControllerEvent]) {
    let mut started: BTreeSet<VmId> = BTreeSet::new();
    for e in events {
        match e {
            ControllerEvent::ActionIssued {
                vm,
                attribute: None,
                ..
            } => {
                started.insert(*vm);
            }
            ControllerEvent::ActionRolledBack { vm, at, .. } => {
                assert!(
                    started.remove(vm),
                    "rollback for {vm} at {at} without a preceding migration start"
                );
            }
            _ => {}
        }
    }
}

/// Run the full registered temporal-property catalogue over a trace and
/// fail loudly on any violation — the same check `prepare-tlc` applies
/// in CI, here embedded so a regressing trace fails `cargo test` too.
fn assert_temporal_properties(label: &str, events: &[ControllerEvent]) {
    let violations =
        prepare_tlc::check_all(&prepare_tlc::properties::standard_properties(), events);
    assert!(
        violations.is_empty(),
        "{label}: temporal property violations:\n{}",
        violations
            .iter()
            .map(|v| format!("  {v}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// Every degradation must be matched by a recovery once the fault windows
/// close — the loop re-converges instead of staying blind.
fn assert_monitoring_reconverges(events: &[ControllerEvent]) {
    let degraded = events
        .iter()
        .filter(|e| matches!(e, ControllerEvent::MonitoringDegraded { .. }))
        .count();
    let recovered = events
        .iter()
        .filter(|e| matches!(e, ControllerEvent::MonitoringRecovered { .. }))
        .count();
    assert_eq!(
        degraded, recovered,
        "every monitoring degradation must recover after the faults clear"
    );
}

#[test]
fn hostile_runs_hold_invariants_and_reconverge() {
    for seed in PINNED_SEEDS {
        let r = run_chaos(42, seed, 1);
        assert_invariants(&r);
        assert_no_alerts_while_degraded(&r.events);
        assert_monitoring_reconverges(&r.events);
        assert_rollbacks_follow_migration_starts(&r.events);
        assert_temporal_properties(&format!("chaos seed {seed:#x}"), &r.events);
        let stats = r.chaos_stats.expect("plan was attached");
        assert!(
            stats.dropped > 0 && stats.busy_ticks > 0 && stats.blackout_drops > 0,
            "the hostile plan must actually have fired: {stats:?}"
        );
    }
}

#[test]
fn chaos_replay_is_byte_identical() {
    for seed in PINNED_SEEDS {
        let a = transcript(&run_chaos(42, seed, 1));
        let b = transcript(&run_chaos(42, seed, 1));
        assert!(!a.is_empty());
        assert_eq!(a, b, "chaos seed {seed:#x} must replay byte-identically");
    }
}

#[test]
fn chaos_traces_identical_across_worker_counts() {
    for seed in PINNED_SEEDS {
        let sequential = transcript(&run_chaos(42, seed, 1));
        let sharded = transcript(&run_chaos(42, seed, 4));
        assert_eq!(
            sequential, sharded,
            "chaos seed {seed:#x} must be worker-count invariant"
        );
    }
}

#[test]
fn different_chaos_seeds_diverge() {
    let a = transcript(&run_chaos(42, PINNED_SEEDS[0], 1));
    let b = transcript(&run_chaos(42, PINNED_SEEDS[1], 1));
    assert_ne!(a, b, "distinct chaos seeds should perturb the run");
}

/// The robustness layer is provably zero-cost when off: attaching an
/// *empty* plan produces the same bytes as attaching no plan at all.
#[test]
fn empty_chaos_plan_is_transparent() {
    let spec =
        ExperimentSpec::paper_default(AppKind::SystemS, FaultChoice::MemLeak, Scheme::Prepare);
    let baseline = transcript(&Experiment::new(spec.clone(), 42).run());
    let with_empty = transcript(&Experiment::new(spec.with_chaos(ChaosPlan::new(7)), 42).run());
    assert_eq!(baseline, with_empty);
}

/// One random infrastructure-fault schedule.
fn arb_fault() -> impl Strategy<Value = (u64, u64, ChaosKind)> {
    let kind = prop_oneof![
        (0.05f64..0.9).prop_map(|probability| ChaosKind::DropSamples {
            vm: None,
            probability
        }),
        (0usize..7, 0.05f64..0.9).prop_map(|(vm, probability)| ChaosKind::DropSamples {
            vm: Some(VmId(vm)),
            probability
        }),
        (0.05f64..0.9).prop_map(|probability| ChaosKind::DelaySamples {
            vm: None,
            probability
        }),
        (0usize..7, 0usize..13).prop_map(|(vm, a)| ChaosKind::StuckAttribute {
            vm: VmId(vm),
            attribute: AttributeKind::from_index(a).expect("13 attributes"),
        }),
        (0.05f64..0.9).prop_map(|probability| ChaosKind::HypervisorBusy { probability }),
        (2u64..30).prop_map(|secs| ChaosKind::MigrationTimeout {
            timeout: Duration::from_secs(secs)
        }),
        (0usize..4).prop_map(|h| ChaosKind::HostBlackout { host: HostId(h) }),
    ];
    // Windows live inside the evaluated anomaly and always close by
    // t=750, leaving 150 s of benign tail to re-converge in.
    (550u64..700, 5u64..120, kind).prop_map(|(from, len, kind)| (from, (from + len).min(750), kind))
}

// Any random fault schedule: the run completes (no panic), holds its
// invariants, never alerts while blind, re-converges in the benign
// tail, and replays byte-identically.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn random_chaos_plans_never_break_the_loop(
        seed in 0u64..u64::MAX,
        faults in proptest::collection::vec(arb_fault(), 1..6),
    ) {
        let mut plan = ChaosPlan::new(seed);
        for &(from, until, kind) in &faults {
            plan = plan.with_fault(t(from), t(until), kind);
        }
        let mut spec = ExperimentSpec::paper_default(
            AppKind::SystemS,
            FaultChoice::MemLeak,
            Scheme::Prepare,
        )
        .with_chaos(plan);
        // Shortened schedule: train on an early injection, evaluate a
        // second one under chaos, end at 900 s.
        spec.duration = Duration::from_secs(900);
        spec.first_injection = t(100);
        spec.injection_duration = Duration::from_secs(200);
        spec.second_injection = t(550);
        let a = Experiment::new(spec.clone(), 9).run();
        prop_assert_eq!(a.ticks.len(), 900);
        assert_no_alerts_while_degraded(&a.events);
        assert_monitoring_reconverges(&a.events);
        assert_rollbacks_follow_migration_starts(&a.events);
        let b = Experiment::new(spec, 9).run();
        prop_assert_eq!(transcript(&a), transcript(&b));
    }

    // Satellite property: no random fault schedule — however
    // migration-hostile — can conjure an `ActionRolledBack` out of thin
    // air. Every rollback is pinned to a migration that demonstrably
    // started for the same VM. A `MigrationTimeout` window is always
    // stacked on top of the random faults so the rollback path itself
    // is exercised, not just vacuously absent.
    #[test]
    fn rollbacks_only_follow_migration_starts(
        seed in 0u64..u64::MAX,
        timeout_secs in 2u64..20,
        faults in proptest::collection::vec(arb_fault(), 0..4),
    ) {
        let mut plan = ChaosPlan::new(seed).with_fault(
            t(550),
            t(750),
            ChaosKind::MigrationTimeout {
                timeout: Duration::from_secs(timeout_secs),
            },
        );
        for &(from, until, kind) in &faults {
            plan = plan.with_fault(t(from), t(until), kind);
        }
        let mut spec = ExperimentSpec::paper_default(
            AppKind::SystemS,
            FaultChoice::MemLeak,
            Scheme::Prepare,
        )
        .with_chaos(plan);
        spec.duration = Duration::from_secs(900);
        spec.first_injection = t(100);
        spec.injection_duration = Duration::from_secs(200);
        spec.second_injection = t(550);
        let r = Experiment::new(spec, 11).run();
        assert_rollbacks_follow_migration_starts(&r.events);
    }
}
