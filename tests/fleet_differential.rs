//! Sparse-vs-dense fleet differential suite: the event-driven sparse
//! tick path of [`FleetSim`] may skip provably quiescent VMs, but the
//! resulting trace — event list, final cluster state digest, and the
//! head-normalized fingerprint of every VM's metric window — must be
//! byte-identical to the dense referee that steps every VM every tick,
//! at every worker count, with and without infrastructure chaos.
//!
//! These are the fleet-scale analogues of the golden/chaos replay
//! contracts: any divergence means the quiescence proof is wrong and the
//! sparse path is silently forking traces.

use prepare_repro::cloudsim::{ChaosKind, ChaosPlan, FleetSim, FleetSpec, FleetTrace, TickMode};
use prepare_repro::metrics::{AttributeKind, Duration, Timestamp};
use prepare_repro::par::ParConfig;

/// The two pinned seeds CI replays at `PREPARE_WORKERS=1` and `=4`.
const PINNED_SEEDS: [u64; 2] = [0xC0FFEE, 0xBADC0DE];

/// Worker counts the traces must be invariant over.
const WORKER_COUNTS: [usize; 3] = [1, 2, 7];

fn t(secs: u64) -> Timestamp {
    Timestamp::from_secs(secs)
}

fn run(spec: &FleetSpec, mode: TickMode, workers: usize) -> FleetTrace {
    let mut sim = FleetSim::new(spec.clone()).expect("spec fits its hosts");
    sim.run(mode, &ParConfig::with_workers(workers))
}

/// A fault schedule touching every chaos pathway the sparse path must
/// stay awake for: dropped samples, a stuck attribute, a busy
/// hypervisor, and migrations that time out mid-copy.
fn hostile_plan(seed: u64) -> ChaosPlan {
    ChaosPlan::new(seed)
        .with_fault(
            t(60),
            t(110),
            ChaosKind::DropSamples {
                vm: None,
                probability: 0.4,
            },
        )
        .with_fault(
            t(80),
            t(130),
            ChaosKind::StuckAttribute {
                vm: prepare_repro::metrics::VmId(3),
                attribute: AttributeKind::CpuTotal,
            },
        )
        .with_fault(
            t(75),
            t(125),
            ChaosKind::HypervisorBusy { probability: 0.5 },
        )
        .with_fault(
            t(40),
            t(140),
            ChaosKind::MigrationTimeout {
                timeout: Duration::from_secs(2),
            },
        )
}

#[test]
fn golden_fleet_sparse_equals_dense_at_every_worker_count() {
    for seed in PINNED_SEEDS {
        let spec = FleetSpec::new(96, 200, seed);
        let reference = run(&spec, TickMode::Dense, 1);
        assert!(
            !reference.events.is_empty(),
            "seed {seed:#x}: the golden fleet must exercise scale/migrate paths"
        );
        for workers in WORKER_COUNTS {
            let dense = run(&spec, TickMode::Dense, workers);
            let sparse = run(&spec, TickMode::Sparse, workers);
            assert_eq!(
                dense, reference,
                "dense trace diverged: seed {seed:#x} workers {workers}"
            );
            assert_eq!(
                sparse, reference,
                "sparse trace diverged: seed {seed:#x} workers {workers}"
            );
        }
    }
}

#[test]
fn chaotic_fleet_sparse_equals_dense_at_every_worker_count() {
    for seed in PINNED_SEEDS {
        let mut spec = FleetSpec::new(96, 200, seed);
        spec.chaos = Some(hostile_plan(seed));
        let reference = run(&spec, TickMode::Dense, 1);
        for workers in WORKER_COUNTS {
            let dense = run(&spec, TickMode::Dense, workers);
            let sparse = run(&spec, TickMode::Sparse, workers);
            assert_eq!(
                dense, reference,
                "chaotic dense trace diverged: seed {seed:#x} workers {workers}"
            );
            assert_eq!(
                sparse, reference,
                "chaotic sparse trace diverged: seed {seed:#x} workers {workers}"
            );
        }
    }
}

#[test]
fn chaos_must_change_the_trace_it_claims_to_test() {
    // Meta-check: the hostile plan actually perturbs the run (otherwise
    // the chaotic differential above degenerates into the golden one).
    let seed = PINNED_SEEDS[0];
    let quiet = FleetSpec::new(96, 200, seed);
    let mut noisy = quiet.clone();
    noisy.chaos = Some(hostile_plan(seed));
    assert_ne!(
        run(&quiet, TickMode::Dense, 1),
        run(&noisy, TickMode::Dense, 1),
        "the chaos plan left the fleet trace untouched"
    );
}

#[test]
fn sparse_mode_actually_skips_work_on_the_golden_fleet() {
    // Guard against the sparse path silently degenerating into dense
    // (which would make every differential vacuous).
    let spec = FleetSpec::new(96, 200, PINNED_SEEDS[0]);
    let mut sim = FleetSim::new(spec.clone()).expect("spec fits");
    sim.run(TickMode::Sparse, &ParConfig::serial());
    assert!(
        sim.active_fraction() < 0.75,
        "sparse path stepped {:.2} of VM-ticks — quiescence never engaged",
        sim.active_fraction()
    );
    let mut dense = FleetSim::new(spec).expect("spec fits");
    dense.run(TickMode::Dense, &ParConfig::serial());
    assert!((dense.active_fraction() - 1.0).abs() < 1e-12);
}

#[test]
fn env_selected_mode_matches_explicit_mode() {
    // CI flips `PREPARE_DENSE_TICK=1` to force the referee; the resolved
    // mode must map onto the same run path as the explicit enum.
    let spec = FleetSpec::new(48, 120, 7);
    let via_env = run(&spec, TickMode::from_env(), 1);
    let explicit = match TickMode::from_env() {
        TickMode::Dense => run(&spec, TickMode::Dense, 1),
        TickMode::Sparse => run(&spec, TickMode::Sparse, 1),
    };
    assert_eq!(via_env, explicit);
}
