//! Golden-trace regression test: the controller event log of one pinned
//! scenario (System S, memory leak, PREPARE scheme, seed 42) is checked
//! byte-for-byte against a committed fixture. Any behavioural drift in
//! training, prediction, filtering, diagnosis, or actuation shows up as a
//! readable event-log diff instead of a silent change.
//!
//! To re-bless after an *intentional* behavioural change:
//!
//! ```text
//! PREPARE_BLESS=1 cargo test --test golden_trace
//! ```

mod common;

use common::{events_transcript, run_with_workers};
use prepare_repro::core::{AppKind, FaultChoice, Scheme};

const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/systems_memleak_seed42.events.txt"
);

fn first_divergence(expect: &str, got: &str) -> String {
    for (i, (e, g)) in expect.lines().zip(got.lines()).enumerate() {
        if e != g {
            return format!(
                "first diff at line {}:\n  expected: {e}\n  got:      {g}",
                i + 1
            );
        }
    }
    format!(
        "line counts differ: expected {}, got {}",
        expect.lines().count(),
        got.lines().count()
    )
}

#[test]
fn golden_event_trace_matches_fixture() {
    let result = run_with_workers(
        AppKind::SystemS,
        FaultChoice::MemLeak,
        Scheme::Prepare,
        42,
        1,
    );
    let got = events_transcript(&result);
    assert!(!got.is_empty(), "scenario produced no events");

    // The golden trace must also satisfy the full temporal-property
    // catalogue — a fixture that pins a property-violating run is worse
    // than a drifted one, so this guards the bless path too.
    let violations = prepare_tlc::check_all(
        &prepare_tlc::properties::standard_properties(),
        &result.events,
    );
    assert!(
        violations.is_empty(),
        "golden trace violates temporal properties:\n{}",
        violations
            .iter()
            .map(|v| format!("  {v}"))
            .collect::<Vec<_>>()
            .join("\n")
    );

    if std::env::var_os("PREPARE_BLESS").is_some() {
        std::fs::write(FIXTURE, &got).expect("write golden fixture");
        return;
    }

    let expect = std::fs::read_to_string(FIXTURE)
        .expect("golden fixture missing — run with PREPARE_BLESS=1 to create it");
    assert!(
        got == expect,
        "event trace drifted from the golden fixture ({})\n{}",
        FIXTURE,
        first_divergence(&expect, &got)
    );
}

#[test]
fn golden_trace_is_worker_invariant() {
    // The fixture is recorded at workers = 1; the sharded engine must
    // reproduce it exactly. Skipped in bless mode (nothing to compare).
    if std::env::var_os("PREPARE_BLESS").is_some() {
        return;
    }
    let expect = std::fs::read_to_string(FIXTURE).expect("golden fixture present");
    for workers in [2usize, 7] {
        let result = run_with_workers(
            AppKind::SystemS,
            FaultChoice::MemLeak,
            Scheme::Prepare,
            42,
            workers,
        );
        let got = events_transcript(&result);
        assert!(
            got == expect,
            "workers={workers} drifted from the golden fixture\n{}",
            first_divergence(&expect, &got)
        );
    }
}
