//! Shared helpers for the workspace-level end-to-end test suites: full
//! replay transcripts (the byte-identity contract) and experiment
//! constructors used by the differential and golden-trace tests.

// Each test binary compiles its own copy of this module and uses a
// different subset of the helpers.
#![allow(dead_code)]

use prepare_repro::core::{
    AppKind, Experiment, ExperimentResult, ExperimentSpec, FaultChoice, Scheme,
};

/// Renders every replay-relevant artifact of a run into one byte string.
/// `Debug` formatting is stable for a fixed binary, which is exactly the
/// replay contract: same build + same inputs = same bytes.
pub fn transcript(r: &ExperimentResult) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "violation {:?} / {:?}\n",
        r.total_violation_time, r.eval_violation_time
    ));
    for t in &r.ticks {
        out.push_str(&format!("tick {t:?}\n"));
    }
    for e in &r.events {
        out.push_str(&format!("event {e:?}\n"));
    }
    for a in &r.actions {
        out.push_str(&format!("action {a:?}\n"));
    }
    for (vm, series) in &r.vm_series {
        out.push_str(&format!("series {vm} {series:?}\n"));
    }
    out
}

/// The controller event log alone, one `Debug` line per event — the
/// compact, human-diffable slice of the transcript used by the golden
/// regression fixture.
pub fn events_transcript(r: &ExperimentResult) -> String {
    let mut out = String::new();
    for e in &r.events {
        out.push_str(&format!("event {e:?}\n"));
    }
    out
}

/// Runs the paper-default schedule for `app`/`fault` under `scheme` with
/// the parallel engine pinned to `workers`.
pub fn run_with_workers(
    app: AppKind,
    fault: FaultChoice,
    scheme: Scheme,
    seed: u64,
    workers: usize,
) -> ExperimentResult {
    let mut spec = ExperimentSpec::paper_default(app, fault, scheme);
    spec.config = spec.config.with_workers(workers);
    Experiment::new(spec, seed).run()
}

/// [`run_with_workers`] with the incremental online-training path pinned
/// explicitly (rather than inherited from `PREPARE_ONLINE`), so tests can
/// diff the delta-apply trainer against the from-scratch rebuild.
pub fn run_with_workers_online(
    app: AppKind,
    fault: FaultChoice,
    scheme: Scheme,
    seed: u64,
    workers: usize,
    online: bool,
) -> ExperimentResult {
    let mut spec = ExperimentSpec::paper_default(app, fault, scheme);
    spec.config = spec.config.with_workers(workers);
    spec.config.online_training = online;
    Experiment::new(spec, seed).run()
}
