//! End-to-end integration tests: full predict → diagnose → prevent runs
//! across the crate boundary, checking the paper's headline claims hold
//! on the simulated testbed.

use prepare_repro::core::{
    AppKind, Experiment, ExperimentSpec, FaultChoice, PreventionPolicy, Scheme,
};

fn eval_secs(app: AppKind, fault: FaultChoice, scheme: Scheme, seed: u64) -> u64 {
    Experiment::new(ExperimentSpec::paper_default(app, fault, scheme), seed)
        .run()
        .eval_violation_time
        .as_secs()
}

#[test]
fn prepare_prevents_most_of_a_recurrent_memleak() {
    // Paper §III-B: "PREPARE can significantly reduce the SLO violation
    // time by 90-99% compared to the 'without intervention' scheme."
    let prepare = eval_secs(AppKind::SystemS, FaultChoice::MemLeak, Scheme::Prepare, 1);
    let none = eval_secs(
        AppKind::SystemS,
        FaultChoice::MemLeak,
        Scheme::NoIntervention,
        1,
    );
    assert!(
        none > 150,
        "unmanaged leak must violate for minutes, got {none}s"
    );
    assert!(
        (prepare as f64) < 0.25 * none as f64,
        "PREPARE ({prepare}s) must remove at least 75% of the violation ({none}s)"
    );
}

#[test]
fn prepare_beats_reactive_on_gradual_faults() {
    // The headline differentiator: early detection buys shorter violation
    // than reacting after the fact (25-97% in the paper). Averaged over
    // three seeds to avoid flakiness.
    let mut prepare_total = 0;
    let mut reactive_total = 0;
    for seed in [1, 2, 3] {
        prepare_total += eval_secs(AppKind::Rubis, FaultChoice::MemLeak, Scheme::Prepare, seed);
        reactive_total += eval_secs(AppKind::Rubis, FaultChoice::MemLeak, Scheme::Reactive, seed);
    }
    assert!(
        prepare_total < reactive_total,
        "PREPARE ({prepare_total}s) must beat reactive ({reactive_total}s) on memory leaks"
    );
}

#[test]
fn cpuhog_is_hard_to_predict_but_still_contained() {
    // Paper: "the CPU hog fault often manifests suddenly, which makes it
    // difficult to predict" — PREPARE degrades to roughly reactive
    // performance but both crush the no-intervention baseline.
    let prepare = eval_secs(AppKind::Rubis, FaultChoice::CpuHog, Scheme::Prepare, 2);
    let reactive = eval_secs(AppKind::Rubis, FaultChoice::CpuHog, Scheme::Reactive, 2);
    let none = eval_secs(
        AppKind::Rubis,
        FaultChoice::CpuHog,
        Scheme::NoIntervention,
        2,
    );
    assert!(
        prepare * 3 < none,
        "PREPARE ({prepare}s) must contain the hog ({none}s)"
    );
    assert!(
        reactive * 3 < none,
        "reactive ({reactive}s) must contain the hog ({none}s)"
    );
}

#[test]
fn migration_prevention_works_but_costs_more_than_scaling() {
    // Paper §III-B (Fig. 8): "using live VM migration as the prevention
    // action incurs longer SLO violation time in most cases."
    let mut scaling_total = 0u64;
    let mut migration_total = 0u64;
    for seed in [1, 2, 3] {
        let scaling = Experiment::new(
            ExperimentSpec::paper_default(AppKind::SystemS, FaultChoice::MemLeak, Scheme::Prepare)
                .with_policy(PreventionPolicy::ScalingFirst),
            seed,
        )
        .run();
        let migration = Experiment::new(
            ExperimentSpec::paper_default(AppKind::SystemS, FaultChoice::MemLeak, Scheme::Prepare)
                .with_policy(PreventionPolicy::MigrationFirst),
            seed,
        )
        .run();
        scaling_total += scaling.eval_violation_time.as_secs();
        migration_total += migration.eval_violation_time.as_secs();
        // The migration-first policy must actually migrate.
        assert!(
            migration
                .actions
                .iter()
                .any(|a| matches!(a.kind, prepare_repro::cloudsim::ActionKind::Migrate { .. })),
            "migration-first run must contain a migration"
        );
    }
    assert!(
        migration_total > scaling_total,
        "migration ({migration_total}s) should cost more violation time than scaling ({scaling_total}s)"
    );
}

#[test]
fn experiments_are_deterministic_per_seed() {
    let spec =
        ExperimentSpec::paper_default(AppKind::Rubis, FaultChoice::Bottleneck, Scheme::Prepare);
    let a = Experiment::new(spec.clone(), 9).run();
    let b = Experiment::new(spec, 9).run();
    assert_eq!(a.eval_violation_time, b.eval_violation_time);
    assert_eq!(a.events.len(), b.events.len());
    assert_eq!(a.actions.len(), b.actions.len());
    assert_eq!(a.ticks.len(), b.ticks.len());
    for (x, y) in a.ticks.iter().zip(&b.ticks) {
        assert_eq!(x, y);
    }
}

#[test]
fn no_intervention_never_touches_the_hypervisor() {
    for fault in [
        FaultChoice::MemLeak,
        FaultChoice::CpuHog,
        FaultChoice::Bottleneck,
    ] {
        let r = Experiment::new(
            ExperimentSpec::paper_default(AppKind::SystemS, fault, Scheme::NoIntervention),
            4,
        )
        .run();
        assert!(r.actions.is_empty(), "{} run issued actions", fault.name());
        assert!(r.events.is_empty());
    }
}

#[test]
fn contention_forces_the_migration_escalation_chain() {
    // Extension fault: a noisy co-tenant squeezes the DB host. Scaling is
    // provably ineffective, so the controller must walk scale → judged
    // ineffective → migrate, and the migration must be what resolves it.
    let r = Experiment::new(
        ExperimentSpec::paper_default(AppKind::Rubis, FaultChoice::Contention, Scheme::Prepare),
        2,
    )
    .run();
    let none = Experiment::new(
        ExperimentSpec::paper_default(
            AppKind::Rubis,
            FaultChoice::Contention,
            Scheme::NoIntervention,
        ),
        2,
    )
    .run();
    assert!(
        r.eval_violation_time.as_secs() * 3 < none.eval_violation_time.as_secs() * 2,
        "escalation must recover meaningfully: {} vs {}",
        r.eval_violation_time,
        none.eval_violation_time
    );
    assert!(
        r.actions
            .iter()
            .any(|a| matches!(a.kind, prepare_repro::cloudsim::ActionKind::Migrate { .. })),
        "contention can only be fixed by migration"
    );
    // At least one scaling action was judged ineffective along the way.
    assert!(r.events.iter().any(|e| matches!(
        e,
        prepare_repro::core::ControllerEvent::ValidationIneffective { .. }
    )));
}
