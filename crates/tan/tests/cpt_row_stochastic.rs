//! CPT normalization property tests: every conditional probability table
//! row of a trained TAN classifier is row-stochastic — the exponentials
//! of a `P(a_i | [a_p,] C)` log-probability row sum to exactly 1 within
//! `1e-9` — for arbitrary proptest-generated datasets. Laplace smoothing
//! must guarantee this even for `(class, parent value)` contexts the
//! training data never exercised.

use prepare_metrics::Label;
use prepare_tan::{Classifier, Dataset, TanClassifier};
use proptest::prelude::*;

/// Tolerance on each row's total probability mass.
const MASS_EPS: f64 = 1e-9;

fn arb_dataset() -> impl Strategy<Value = Dataset> {
    (2usize..6, 2usize..5, 10usize..120).prop_flat_map(|(attrs, bins, rows)| {
        proptest::collection::vec(
            (
                proptest::collection::vec(0usize..bins, attrs),
                any::<bool>(),
            ),
            rows,
        )
        .prop_map(move |data| {
            let mut ds = Dataset::with_uniform_bins(attrs, bins);
            for (row, abnormal) in data {
                ds.push(row, Label::from_violation(abnormal))
                    .expect("rows generated within the schema");
            }
            ds
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Every CPT row — root tables P(a_i | C) and edge tables
    // P(a_i | a_p = u, C) for both classes and all parent values — holds
    // exactly one unit of probability mass.
    #[test]
    fn every_cpt_row_is_row_stochastic(ds in arb_dataset()) {
        prop_assume!(ds.has_both_classes());
        let tan = TanClassifier::train(&ds).expect("both classes present");
        let rows = tan.log_cpt_rows();
        prop_assert!(!rows.is_empty());
        for (i, row) in rows.iter().enumerate() {
            let mut mass = 0.0;
            for (v, &lp) in row.iter().enumerate() {
                let p = lp.exp();
                prop_assert!(
                    lp.is_finite() && lp <= 0.0 + MASS_EPS,
                    "row {i}: log-prob[{v}] = {lp} is not a log-probability"
                );
                prop_assert!(p > 0.0, "row {i}: smoothing must keep p[{v}] positive");
                mass += p;
            }
            prop_assert!(
                (mass - 1.0).abs() <= MASS_EPS,
                "row {i} mass sums to {mass}, expected 1 ± {MASS_EPS}"
            );
        }
    }

    // Row count accounting: one row per (attribute, class[, parent value])
    // combination. Guards the accessor itself against silently skipping
    // tables — a skipped table would vacuously pass the mass test above.
    #[test]
    fn cpt_row_count_matches_structure(ds in arb_dataset()) {
        prop_assume!(ds.has_both_classes());
        let tan = TanClassifier::train(&ds).expect("both classes present");
        let expected: usize = tan
            .parents()
            .iter()
            .map(|p| match p {
                None => 2,
                Some(parent) => 2 * ds.cardinality(*parent),
            })
            .sum();
        prop_assert_eq!(tan.log_cpt_rows().len(), expected);
    }
}
