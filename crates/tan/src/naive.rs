//! Naive Bayes classifier — the authors' earlier anomaly classifier \[10\],
//! kept as a baseline (the paper replaced it because its attribute
//! attribution is unreliable, not because its accuracy was poor).

use crate::{Classifier, Dataset, TrainError};
use prepare_metrics::persist::{Persist, PersistError, Reader, Writer};
use prepare_metrics::Label;

/// Class-conditional probability table for one attribute with no attribute
/// parent: `P(a_i = v | C = c)`, Laplace-smoothed.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct RootCpt {
    /// log_p[c][v]
    log_p: [Vec<f64>; 2],
}

impl RootCpt {
    pub(crate) fn fit(ds: &Dataset, attr: usize, alpha: f64) -> Self {
        let card = ds.cardinality(attr);
        let mut counts = [vec![0.0f64; card], vec![0.0f64; card]];
        for (row, label) in ds.iter() {
            counts[label.is_abnormal() as usize][row[attr]] += 1.0;
        }
        Self::from_counts(counts, alpha)
    }

    /// Derives the smoothed log-probability table from per-class value
    /// counts. This is the *only* count→probability code path: both the
    /// dataset rebuild ([`RootCpt::fit`]) and the incremental
    /// sufficient-statistics trainer go through it, so bit-identity
    /// between the two is structural, not coincidental.
    // xtask: derive-boundary -- the sanctioned count -> smoothed log-probability derivation for root CPTs
    pub(crate) fn from_counts(counts: [Vec<f64>; 2], alpha: f64) -> Self {
        let card = counts[0].len();
        let log_p: [Vec<f64>; 2] = counts.map(|cs| {
            let total: f64 = cs.iter().sum::<f64>() + alpha * card as f64;
            cs.iter().map(|c| ((c + alpha) / total).ln()).collect()
        });
        for row in &log_p {
            crate::invariants::debug_assert_row_stochastic(row, "RootCpt::fit");
        }
        RootCpt { log_p }
    }

    pub(crate) fn log_prob(&self, value: usize, class: Label) -> f64 {
        self.log_p[class.is_abnormal() as usize][value]
    }

    /// The two class-conditional log-probability rows, normal class first.
    pub(crate) fn rows(&self) -> impl Iterator<Item = &[f64]> {
        self.log_p.iter().map(Vec::as_slice)
    }
}

impl Persist for RootCpt {
    fn store(&self, w: &mut Writer) {
        self.log_p.store(w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let log_p: [Vec<f64>; 2] = Persist::load(r)?;
        if log_p[0].len() != log_p[1].len() || log_p[0].is_empty() {
            return Err(PersistError::Invalid("RootCpt table shape"));
        }
        Ok(RootCpt { log_p })
    }
}

/// A trained Naive Bayes anomaly classifier.
#[derive(Debug, Clone, PartialEq)]
pub struct NaiveBayes {
    cpts: Vec<RootCpt>,
    log_prior_ratio: f64,
    cardinalities: Vec<usize>,
}

pub(crate) fn log_prior_ratio(ds: &Dataset) -> Result<f64, TrainError> {
    log_prior_ratio_from_counts(ds.len(), ds.class_counts())
}

/// The prior derivation shared by the dataset path and the incremental
/// sufficient-statistics trainer: same error precedence (empty before
/// single-class), same arithmetic.
// xtask: derive-boundary -- the sanctioned class-count -> log prior ratio derivation
pub(crate) fn log_prior_ratio_from_counts(
    rows: usize,
    (normal, abnormal): (usize, usize),
) -> Result<f64, TrainError> {
    if rows == 0 {
        return Err(TrainError::EmptyDataset);
    }
    if normal == 0 {
        return Err(TrainError::SingleClass(Label::Abnormal));
    }
    if abnormal == 0 {
        return Err(TrainError::SingleClass(Label::Normal));
    }
    Ok(prepare_metrics::debug_assert_finite!((abnormal as f64
        / normal as f64)
        .ln()))
}

pub(crate) fn clamp_value(x: &[usize], i: usize, card: usize) -> usize {
    x[i].min(card - 1)
}

impl Classifier for NaiveBayes {
    fn train(ds: &Dataset) -> Result<Self, TrainError> {
        let log_prior_ratio = log_prior_ratio(ds)?;
        let cpts = (0..ds.n_attributes())
            .map(|i| RootCpt::fit(ds, i, 1.0))
            .collect();
        Ok(NaiveBayes {
            cpts,
            log_prior_ratio,
            cardinalities: ds.cardinalities().to_vec(),
        })
    }

    fn score(&self, x: &[usize]) -> f64 {
        assert_eq!(x.len(), self.cpts.len(), "input arity mismatch");
        self.attribute_strengths(x).iter().sum::<f64>() + self.log_prior_ratio
    }

    fn attribute_strengths(&self, x: &[usize]) -> Vec<f64> {
        assert_eq!(x.len(), self.cpts.len(), "input arity mismatch");
        self.cpts
            .iter()
            .enumerate()
            .map(|(i, cpt)| {
                let v = clamp_value(x, i, self.cardinalities[i]);
                cpt.log_prob(v, Label::Abnormal) - cpt.log_prob(v, Label::Normal)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn separable_dataset() -> Dataset {
        let mut ds = Dataset::with_uniform_bins(3, 4);
        for k in 0..100usize {
            // Normal: low values; abnormal: high values on attrs 0 and 1.
            if k % 2 == 0 {
                ds.push(vec![0, 1, k % 4], Label::Normal).unwrap();
            } else {
                ds.push(vec![3, 3, k % 4], Label::Abnormal).unwrap();
            }
        }
        ds
    }

    #[test]
    fn classifies_separable_data() {
        let nb = NaiveBayes::train(&separable_dataset()).unwrap();
        assert_eq!(nb.classify(&[0, 1, 2]), Label::Normal);
        assert_eq!(nb.classify(&[3, 3, 2]), Label::Abnormal);
    }

    #[test]
    fn informative_attributes_have_larger_strength() {
        let nb = NaiveBayes::train(&separable_dataset()).unwrap();
        let s = nb.attribute_strengths(&[3, 3, 1]);
        assert!(
            s[0] > s[2],
            "attr0 {:.3} should out-blame noise {:.3}",
            s[0],
            s[2]
        );
        assert!(s[1] > s[2]);
    }

    #[test]
    fn empty_dataset_is_error() {
        let ds = Dataset::new(vec![2]);
        assert_eq!(NaiveBayes::train(&ds), Err(TrainError::EmptyDataset));
    }

    #[test]
    fn single_class_is_error() {
        let mut ds = Dataset::new(vec![2]);
        ds.push(vec![0], Label::Normal).unwrap();
        assert_eq!(
            NaiveBayes::train(&ds),
            Err(TrainError::SingleClass(Label::Normal))
        );
    }

    #[test]
    fn out_of_range_input_is_clamped() {
        let nb = NaiveBayes::train(&separable_dataset()).unwrap();
        // A runtime value above the trained range clamps to the top bin.
        assert_eq!(nb.classify(&[9, 9, 9]), nb.classify(&[3, 3, 3]));
    }
}
