//! Discrete Bayesian anomaly classifiers (paper §II-B/§II-C, Fig. 3).
//!
//! PREPARE classifies (predicted) metric vectors into *normal*/*abnormal*
//! with the **Tree-Augmented Naive Bayesian network (TAN)** of Cohen et
//! al. \[12\]. TAN extends Naive Bayes with a Chow–Liu tree over the
//! attributes (maximum spanning tree on conditional mutual information),
//! so each attribute may depend on one other attribute in addition to the
//! class. Its decision rule is Eq. 1:
//!
//! ```text
//! Σᵢ log [ P(aᵢ | a_pᵢ, C=1) / P(aᵢ | a_pᵢ, C=0) ] + log P(C=1)/P(C=0) > 0
//! ```
//!
//! and the per-attribute terms `Lᵢ` (Eq. 2) rank how strongly each metric
//! pushed the decision toward *abnormal* — the anomaly cause inference
//! signal (Fig. 3).
//!
//! [`NaiveBayes`] is also provided: it is the authors' earlier classifier
//! \[10\] and the paper's stated reason for adopting TAN ("it cannot
//! provide the metric attribution information accurately").
//!
//! # Example
//!
//! ```
//! use prepare_tan::{Dataset, TanClassifier, Classifier};
//! use prepare_metrics::Label;
//!
//! let mut ds = Dataset::new(vec![2, 2]); // two binary attributes
//! for _ in 0..50 {
//!     ds.push(vec![0, 0], Label::Normal)?;
//!     ds.push(vec![1, 1], Label::Abnormal)?;
//! }
//! let tan = TanClassifier::train(&ds)?;
//! assert_eq!(tan.classify(&[1, 1]), Label::Abnormal);
//! assert_eq!(tan.classify(&[0, 0]), Label::Normal);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chow_liu;
mod dataset;
mod export;
mod invariants;
mod mutual_info;
mod naive;
mod stats;
mod tan;

pub use chow_liu::chow_liu_tree;
pub use dataset::{Dataset, DatasetError};
pub use mutual_info::conditional_mutual_information;
pub use naive::NaiveBayes;
pub use stats::TanStats;
pub use tan::{AttributeStrength, TanClassifier, TanVerdict};

use prepare_metrics::Label;

/// Errors arising while training a classifier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrainError {
    /// The dataset contains no rows.
    EmptyDataset,
    /// The dataset contains rows of only one class; a discriminative
    /// model cannot be fit. Carries the single class present.
    SingleClass(Label),
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::EmptyDataset => f.write_str("training dataset is empty"),
            TrainError::SingleClass(l) => {
                write!(f, "training dataset contains only {l} examples")
            }
        }
    }
}

impl std::error::Error for TrainError {}

/// A trained binary (normal/abnormal) classifier over discretized metric
/// vectors.
pub trait Classifier: Sized {
    /// Fits the classifier to a labeled dataset.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError`] if the dataset is empty or single-class.
    fn train(dataset: &Dataset) -> Result<Self, TrainError>;

    /// The decision score — the left-hand side of Eq. 1. Positive means
    /// *abnormal*.
    fn score(&self, x: &[usize]) -> f64;

    /// Classifies a discretized vector.
    fn classify(&self, x: &[usize]) -> Label {
        Label::from_violation(self.score(x) > 0.0)
    }

    /// Per-attribute impact strengths `Lᵢ` (Eq. 2) for this input, in
    /// attribute order. Larger means more responsible for an *abnormal*
    /// verdict.
    fn attribute_strengths(&self, x: &[usize]) -> Vec<f64>;
}
