//! Chow–Liu structure learning: a maximum spanning tree over the
//! attributes, weighted by class-conditional mutual information. The tree
//! is then rooted (at attribute 0) to yield the one-parent-per-attribute
//! structure TAN requires.

use crate::{conditional_mutual_information, Dataset};

/// Learns the TAN attribute tree: returns `parent[i]`, the attribute index
/// attribute `i` additionally depends on, or `None` for the root.
///
/// Implementation: Prim's algorithm over the complete attribute graph with
/// CMI edge weights, then orienting edges away from attribute 0. A dataset
/// with a single attribute yields `[None]` (plain Naive Bayes).
pub fn chow_liu_tree(ds: &Dataset) -> Vec<Option<usize>> {
    let n = ds.n_attributes();
    if n == 1 {
        return vec![None];
    }

    // Pairwise CMI (symmetric).
    let mut weight = vec![vec![0.0f64; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let w = conditional_mutual_information(ds, i, j);
            weight[i][j] = w;
            weight[j][i] = w;
        }
    }

    // Prim's maximum spanning tree from node 0.
    let mut in_tree = vec![false; n];
    let mut best_edge: Vec<(f64, usize)> = vec![(f64::NEG_INFINITY, 0); n];
    let mut parent = vec![None; n];
    in_tree[0] = true;
    for j in 1..n {
        best_edge[j] = (weight[0][j], 0);
    }
    for _ in 1..n {
        // Pick the heaviest edge into the tree.
        let mut pick = None;
        let mut pick_w = f64::NEG_INFINITY;
        for (j, &(w, _)) in best_edge.iter().enumerate() {
            if !in_tree[j] && w > pick_w {
                pick = Some(j);
                pick_w = w;
            }
        }
        let j = pick.expect("graph is connected");
        in_tree[j] = true;
        parent[j] = Some(best_edge[j].1);
        for k in 0..n {
            if !in_tree[k] && weight[j][k] > best_edge[k].0 {
                best_edge[k] = (weight[j][k], j);
            }
        }
    }
    parent
}

#[cfg(test)]
mod tests {
    use super::*;
    use prepare_metrics::Label;

    fn chained_dataset() -> Dataset {
        // x1 copies x0, x2 copies x1 (with occasional flips), x3 is noise:
        // the MST should be a chain 0-1-2 with 3 hanging off somewhere.
        let mut ds = Dataset::new(vec![2, 2, 2, 2]);
        for k in 0..400usize {
            let x0 = k % 2;
            let x1 = if k % 17 == 0 { 1 - x0 } else { x0 };
            let x2 = if k % 13 == 0 { 1 - x1 } else { x1 };
            let x3 = (k / 3) % 2;
            let label = if k % 5 == 0 { Label::Abnormal } else { Label::Normal };
            ds.push(vec![x0, x1, x2, x3], label).unwrap();
        }
        ds
    }

    fn is_valid_tree(parent: &[Option<usize>]) -> bool {
        let n = parent.len();
        let roots = parent.iter().filter(|p| p.is_none()).count();
        if roots != 1 {
            return false;
        }
        // Every node must reach the root without cycling.
        for start in 0..n {
            let mut seen = vec![false; n];
            let mut cur = start;
            while let Some(p) = parent[cur] {
                if seen[cur] {
                    return false; // cycle
                }
                seen[cur] = true;
                cur = p;
            }
        }
        true
    }

    #[test]
    fn produces_a_valid_rooted_tree() {
        let parent = chow_liu_tree(&chained_dataset());
        assert_eq!(parent.len(), 4);
        assert!(is_valid_tree(&parent));
        assert_eq!(parent[0], None, "rooted at attribute 0");
    }

    #[test]
    fn strongly_coupled_attributes_are_adjacent() {
        let parent = chow_liu_tree(&chained_dataset());
        // x1 must attach to x0 or x2 (its strong partners), not to the
        // noise attribute x3.
        let p1 = parent[1];
        assert!(p1 == Some(0) || p1 == Some(2), "x1 parent was {p1:?}");
        // The noise attribute must not sit between the chained ones.
        assert_ne!(parent[2], Some(3));
    }

    #[test]
    fn single_attribute_has_no_parent() {
        let mut ds = Dataset::new(vec![2]);
        ds.push(vec![0], Label::Normal).unwrap();
        ds.push(vec![1], Label::Abnormal).unwrap();
        assert_eq!(chow_liu_tree(&ds), vec![None]);
    }

    #[test]
    fn two_attributes_link_together() {
        let mut ds = Dataset::new(vec![2, 2]);
        for k in 0..50usize {
            ds.push(
                vec![k % 2, k % 2],
                if k % 2 == 0 { Label::Normal } else { Label::Abnormal },
            )
            .unwrap();
        }
        let parent = chow_liu_tree(&ds);
        assert_eq!(parent, vec![None, Some(0)]);
    }
}
