//! Chow–Liu structure learning: a maximum spanning tree over the
//! attributes, weighted by class-conditional mutual information. The tree
//! is then rooted (at attribute 0) to yield the one-parent-per-attribute
//! structure TAN requires.

use crate::{conditional_mutual_information, Dataset};

/// Learns the TAN attribute tree: returns `parent[i]`, the attribute index
/// attribute `i` additionally depends on, or `None` for the root.
///
/// Implementation: Prim's algorithm over the complete attribute graph with
/// CMI edge weights, then orienting edges away from attribute 0. A dataset
/// with a single attribute yields `[None]` (plain Naive Bayes).
pub fn chow_liu_tree(ds: &Dataset) -> Vec<Option<usize>> {
    let n = ds.n_attributes();
    if n == 1 {
        return vec![None];
    }

    // Pairwise CMI (symmetric): the upper triangle is computed once and
    // read through an accessor, so no mirrored matrix writes are needed.
    let upper: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            ((i + 1)..n)
                .map(|j| conditional_mutual_information(ds, i, j))
                .collect()
        })
        .collect();
    max_spanning_tree(n, &upper)
}

/// Prim's maximum spanning tree over `n` nodes with upper-triangle edge
/// weights (`upper[i][j - i - 1]` = weight of edge `(i, j)` for `i < j`),
/// rooted at node 0. Split out of [`chow_liu_tree`] verbatim so the
/// incremental sufficient-statistics trainer shares the exact scan and
/// tie-break order — the learned structure is then identical by
/// construction for identical weights.
pub(crate) fn max_spanning_tree(n: usize, upper: &[Vec<f64>]) -> Vec<Option<usize>> {
    let weight = |i: usize, j: usize| -> f64 {
        if i == j {
            return f64::NEG_INFINITY;
        }
        let (a, b) = if i < j { (i, j) } else { (j, i) };
        upper
            .get(a)
            .and_then(|row| row.get(b - a - 1))
            .copied()
            .unwrap_or(f64::NEG_INFINITY)
    };

    // Prim's maximum spanning tree from node 0.
    let mut in_tree = vec![false; n];
    // best_edge[j]: heaviest known edge from j into the tree, as
    // (weight, tree endpoint).
    let mut best_edge: Vec<(f64, usize)> = (0..n).map(|j| (weight(0, j), 0)).collect();
    let mut parent: Vec<Option<usize>> = vec![None; n];
    in_tree[0] = true;
    for _ in 1..n {
        // Pick the heaviest edge into the tree (first of equals, so the
        // tie-break matches the ascending scan it replaced).
        let mut pick: Option<(usize, f64, usize)> = None;
        for (j, (&in_t, &(w, from))) in in_tree.iter().zip(&best_edge).enumerate() {
            if !in_t && pick.is_none_or(|(_, pw, _)| w > pw) {
                pick = Some((j, w, from));
            }
        }
        let Some((j, _, from)) = pick else { break };
        if let Some(t) = in_tree.get_mut(j) {
            *t = true;
        }
        if let Some(p) = parent.get_mut(j) {
            *p = Some(from);
        }
        for (&in_t, (k, be)) in in_tree.iter().zip(best_edge.iter_mut().enumerate()) {
            if !in_t {
                let w = weight(j, k);
                if w > be.0 {
                    *be = (w, j);
                }
            }
        }
    }
    parent
}

#[cfg(test)]
mod tests {
    use super::*;
    use prepare_metrics::Label;

    fn chained_dataset() -> Dataset {
        // x1 copies x0, x2 copies x1 (with occasional flips), x3 is noise:
        // the MST should be a chain 0-1-2 with 3 hanging off somewhere.
        let mut ds = Dataset::new(vec![2, 2, 2, 2]);
        for k in 0..400usize {
            let x0 = k % 2;
            let x1 = if k % 17 == 0 { 1 - x0 } else { x0 };
            let x2 = if k % 13 == 0 { 1 - x1 } else { x1 };
            let x3 = (k / 3) % 2;
            let label = if k % 5 == 0 {
                Label::Abnormal
            } else {
                Label::Normal
            };
            ds.push(vec![x0, x1, x2, x3], label).unwrap();
        }
        ds
    }

    fn is_valid_tree(parent: &[Option<usize>]) -> bool {
        let n = parent.len();
        let roots = parent.iter().filter(|p| p.is_none()).count();
        if roots != 1 {
            return false;
        }
        // Every node must reach the root without cycling.
        for start in 0..n {
            let mut seen = vec![false; n];
            let mut cur = start;
            while let Some(p) = parent[cur] {
                if seen[cur] {
                    return false; // cycle
                }
                seen[cur] = true;
                cur = p;
            }
        }
        true
    }

    #[test]
    fn produces_a_valid_rooted_tree() {
        let parent = chow_liu_tree(&chained_dataset());
        assert_eq!(parent.len(), 4);
        assert!(is_valid_tree(&parent));
        assert_eq!(parent[0], None, "rooted at attribute 0");
    }

    #[test]
    fn strongly_coupled_attributes_are_adjacent() {
        let parent = chow_liu_tree(&chained_dataset());
        // x1 must attach to x0 or x2 (its strong partners), not to the
        // noise attribute x3.
        let p1 = parent[1];
        assert!(p1 == Some(0) || p1 == Some(2), "x1 parent was {p1:?}");
        // The noise attribute must not sit between the chained ones.
        assert_ne!(parent[2], Some(3));
    }

    #[test]
    fn single_attribute_has_no_parent() {
        let mut ds = Dataset::new(vec![2]);
        ds.push(vec![0], Label::Normal).unwrap();
        ds.push(vec![1], Label::Abnormal).unwrap();
        assert_eq!(chow_liu_tree(&ds), vec![None]);
    }

    #[test]
    fn two_attributes_link_together() {
        let mut ds = Dataset::new(vec![2, 2]);
        for k in 0..50usize {
            ds.push(
                vec![k % 2, k % 2],
                if k % 2 == 0 {
                    Label::Normal
                } else {
                    Label::Abnormal
                },
            )
            .unwrap();
        }
        let parent = chow_liu_tree(&ds);
        assert_eq!(parent, vec![None, Some(0)]);
    }
}
