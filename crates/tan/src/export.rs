//! Export of the learned TAN structure — the paper's Fig. 3 is exactly
//! this picture: the class node pointing at every attribute, the Chow–Liu
//! tree edges between attributes, and each node annotated with its impact
//! strength `L` for a given input.

use crate::{Classifier, TanClassifier};
use std::fmt::Write as _;

impl TanClassifier {
    /// Renders the attribute dependency tree as Graphviz DOT. `names`
    /// labels the attributes (pass
    /// `prepare_metrics::AttributeKind::ALL.map(|a| a.name().to_string())`
    /// for per-VM models); indices are used where no name is provided.
    /// When `probe` is given, each node is annotated with its strength
    /// `L_i` for that input, and the most-blamed attribute is highlighted
    /// — reproducing Fig. 3's "most relevant attribute" marking.
    pub fn to_dot(&self, names: &[String], probe: Option<&[usize]>) -> String {
        let label =
            |i: usize| -> String { names.get(i).cloned().unwrap_or_else(|| format!("a{i}")) };
        let strengths = probe.map(|x| self.attribute_strengths(x));
        // A probe over zero attributes simply highlights nothing.
        let top = strengths.as_ref().and_then(|s| {
            s.iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
        });

        let mut out = String::from("digraph tan {\n  rankdir=TB;\n");
        out.push_str("  class [label=\"SLO state (C)\", shape=doublecircle];\n");
        for i in 0..self.parents().len() {
            let mut node_label = label(i);
            if let Some(s) = &strengths {
                let _ = write!(node_label, "\\nL={:.2}", s[i]);
            }
            let highlight = if top == Some(i) {
                ", style=filled, fillcolor=lightcoral"
            } else {
                ""
            };
            let _ = writeln!(out, "  a{i} [label=\"{node_label}\"{highlight}];");
            let _ = writeln!(out, "  class -> a{i} [style=dashed];");
        }
        for (i, parent) in self.parents().iter().enumerate() {
            if let Some(p) = parent {
                let _ = writeln!(out, "  a{p} -> a{i};");
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::{Classifier, Dataset, TanClassifier};
    use prepare_metrics::Label;

    fn classifier() -> TanClassifier {
        let mut ds = Dataset::with_uniform_bins(3, 2);
        for k in 0..100usize {
            if k % 2 == 0 {
                ds.push(vec![1, 1, k % 2], Label::Abnormal).unwrap();
            } else {
                ds.push(vec![0, 0, k % 2], Label::Normal).unwrap();
            }
        }
        TanClassifier::train(&ds).unwrap()
    }

    #[test]
    fn dot_contains_every_node_and_tree_edge() {
        let tan = classifier();
        let names = vec!["FreeMem".into(), "PageFaults".into(), "Noise".into()];
        let dot = tan.to_dot(&names, None);
        assert!(dot.starts_with("digraph tan {"));
        assert!(dot.contains("FreeMem"));
        assert!(dot.contains("PageFaults"));
        assert!(dot.contains("class -> a0"));
        // Exactly n-1 tree edges for n attributes.
        let tree_edges = dot
            .lines()
            .filter(|l| l.contains("-> a") && !l.contains("class"))
            .count();
        assert_eq!(tree_edges, 2);
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn probe_annotates_strengths_and_highlights_top() {
        let tan = classifier();
        let dot = tan.to_dot(&[], Some(&[1, 1, 0]));
        assert!(dot.contains("L="), "strength annotations missing");
        assert_eq!(
            dot.matches("lightcoral").count(),
            1,
            "exactly one highlighted node"
        );
    }

    #[test]
    fn missing_names_fall_back_to_indices() {
        let tan = classifier();
        let dot = tan.to_dot(&["OnlyFirst".into()], None);
        assert!(dot.contains("OnlyFirst"));
        assert!(dot.contains("a1 [label=\"a1"));
    }
}
