//! Conditional mutual information between attribute pairs given the class
//! label — the edge weight of the Chow–Liu tree TAN builds its attribute
//! dependency structure from.

use crate::Dataset;
use prepare_metrics::debug_assert_finite;

/// Estimates `I(X_i ; X_j | C)` from the dataset with add-one smoothing on
/// the joint counts:
///
/// ```text
/// I = Σ_c P(c) Σ_{x_i, x_j} P(x_i, x_j | c) · log [ P(x_i, x_j | c) / (P(x_i|c) · P(x_j|c)) ]
/// ```
///
/// Returns a non-negative value (clamped at 0 to absorb smoothing noise).
///
/// # Panics
///
/// Panics if `i` or `j` is out of range or `i == j`.
// xtask-allow: missing-finite-guard -- delegates to cmi_from_joints, which guards its result
pub fn conditional_mutual_information(ds: &Dataset, i: usize, j: usize) -> f64 {
    assert!(
        i < ds.n_attributes() && j < ds.n_attributes(),
        "attribute out of range"
    );
    assert_ne!(i, j, "CMI requires distinct attributes");

    let ci = ds.cardinality(i);
    let cj = ds.cardinality(j);
    let n_total = ds.len() as f64;
    // xtask-allow: float-eq -- cast from usize; exact zero means the dataset is empty
    if n_total == 0.0 {
        return 0.0;
    }

    let mut joints = [vec![vec![0.0f64; cj]; ci], vec![vec![0.0f64; cj]; ci]];
    for (row, label) in ds.iter() {
        joints[label.is_abnormal() as usize][row[i]][row[j]] += 1.0;
    }
    cmi_from_joints(&joints, n_total)
}

/// The CMI derivation shared by the dataset path above and the
/// incremental sufficient-statistics trainer: per-class joint count
/// tables in, smoothed mutual information out.
///
/// Marginals and class totals are re-derived here by summing the joint
/// table. All counts are integer-valued f64 (exact up to 2^53), so the
/// sums equal the per-row accumulation they replace bit-for-bit, and the
/// smoothing loop below — kept verbatim — produces bit-identical output
/// for both callers.
// xtask: derive-boundary -- the sanctioned joint-count -> smoothed mutual information derivation
pub(crate) fn cmi_from_joints(joints: &[Vec<Vec<f64>>; 2], n_total: f64) -> f64 {
    let mut total_mi = 0.0;
    for joint in joints {
        // joints[0] is the normal class, joints[1] abnormal — the same
        // class order as the row scan this replaced.
        let ci = joint.len();
        let cj = joint.first().map_or(0, Vec::len);
        let mut mi_marg = vec![0.0f64; ci];
        let mut mj_marg = vec![0.0f64; cj];
        let mut n_class = 0.0f64;
        for (row, mi_m) in joint.iter().zip(mi_marg.iter_mut()) {
            for (&c, mj_m) in row.iter().zip(mj_marg.iter_mut()) {
                *mi_m += c;
                *mj_m += c;
                n_class += c;
            }
        }
        // xtask-allow: float-eq -- n_class counts rows in whole increments; exact zero means "class absent"
        if n_class == 0.0 {
            continue;
        }
        let p_class = n_class / n_total;

        // Add-one smoothing over the joint table.
        let alpha = 1.0;
        let denom = n_class + alpha * (ci * cj) as f64;
        let mut mi = 0.0;
        for (joint_row, &mi_m) in joint.iter().zip(&mi_marg) {
            let p_i = (mi_m + alpha * cj as f64) / denom;
            for (&joint_count, &mj_m) in joint_row.iter().zip(&mj_marg) {
                let p_joint = (joint_count + alpha) / denom;
                let p_j = (mj_m + alpha * ci as f64) / denom;
                mi += p_joint * (p_joint / (p_i * p_j)).ln();
            }
        }
        total_mi += p_class * mi;
    }
    debug_assert_finite!(total_mi.max(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use prepare_metrics::Label;

    fn build(rows: &[(Vec<usize>, Label)], cards: Vec<usize>) -> Dataset {
        let mut ds = Dataset::new(cards);
        for (r, l) in rows {
            ds.push(r.clone(), *l).unwrap();
        }
        ds
    }

    #[test]
    fn perfectly_dependent_attributes_have_high_cmi() {
        // X1 == X0 in both classes; X2 is independent noise.
        let mut rows = Vec::new();
        for k in 0..200usize {
            let x0 = k % 2;
            let x2 = (k / 2) % 2;
            let label = if k % 4 == 0 {
                Label::Abnormal
            } else {
                Label::Normal
            };
            rows.push((vec![x0, x0, x2], label));
        }
        let ds = build(&rows, vec![2, 2, 2]);
        let dep = conditional_mutual_information(&ds, 0, 1);
        let indep = conditional_mutual_information(&ds, 0, 2);
        assert!(
            dep > indep + 0.1,
            "dependent CMI {dep:.4} should exceed independent {indep:.4}"
        );
    }

    #[test]
    fn cmi_is_symmetric() {
        let mut rows = Vec::new();
        for k in 0..100usize {
            rows.push((
                vec![k % 3, (k * 7) % 3],
                if k % 2 == 0 {
                    Label::Normal
                } else {
                    Label::Abnormal
                },
            ));
        }
        let ds = build(&rows, vec![3, 3]);
        let a = conditional_mutual_information(&ds, 0, 1);
        let b = conditional_mutual_information(&ds, 1, 0);
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn cmi_nonnegative_on_noise() {
        let mut rows = Vec::new();
        for k in 0..60usize {
            rows.push((
                vec![(k * 13) % 4, (k * 29) % 4],
                if k % 3 == 0 {
                    Label::Abnormal
                } else {
                    Label::Normal
                },
            ));
        }
        let ds = build(&rows, vec![4, 4]);
        assert!(conditional_mutual_information(&ds, 0, 1) >= 0.0);
    }

    #[test]
    fn empty_dataset_has_zero_cmi() {
        let ds = Dataset::new(vec![2, 2]);
        assert_eq!(conditional_mutual_information(&ds, 0, 1), 0.0);
    }

    #[test]
    #[should_panic(expected = "distinct attributes")]
    fn cmi_rejects_same_attribute() {
        let ds = Dataset::new(vec![2, 2]);
        conditional_mutual_information(&ds, 1, 1);
    }
}
