//! Runtime invariant checks for fitted probability tables, compiled to
//! no-ops in release builds (`debug_assert!`-backed). Tests always run
//! with `debug_assertions`, so every classifier fitted under test has its
//! tables audited.
//!
//! The single invariant: every conditional probability table row —
//! `P(a_i = · | C)` for root attributes, `P(a_i = · | a_p = u, C)` for
//! tree edges — is row-stochastic: finite log-probabilities whose
//! exponentials sum to 1 within `1e-9`. Laplace smoothing guarantees this
//! analytically; the check catches regressions in the counting or
//! normalization code.

/// Tolerance on the row mass after exponentiation.
const MASS_EPS: f64 = 1e-9;

/// Asserts one CPT row (log-probabilities) is row-stochastic. Debug
/// builds only.
pub(crate) fn debug_assert_row_stochastic(log_row: &[f64], context: &str) {
    if !cfg!(debug_assertions) {
        return;
    }
    debug_assert!(!log_row.is_empty(), "invariant[{context}]: empty CPT row");
    for (v, &lp) in log_row.iter().enumerate() {
        debug_assert!(
            lp.is_finite() && lp <= 0.0 + MASS_EPS,
            "invariant[{context}]: log P(v={v}) = {lp} is not a log-probability"
        );
    }
    let mass: f64 = log_row.iter().map(|lp| lp.exp()).sum();
    debug_assert!(
        (mass - 1.0).abs() <= MASS_EPS,
        "invariant[{context}]: row mass is {mass}, expected 1 ± {MASS_EPS}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stochastic_row_passes() {
        debug_assert_row_stochastic(&[0.5f64.ln(), 0.25f64.ln(), 0.25f64.ln()], "test");
    }

    #[test]
    #[should_panic(expected = "row mass")]
    fn leaky_row_panics_in_debug() {
        debug_assert_row_stochastic(&[0.5f64.ln(), 0.25f64.ln()], "test");
    }

    #[test]
    #[should_panic(expected = "not a log-probability")]
    fn non_finite_entry_panics_in_debug() {
        debug_assert_row_stochastic(&[f64::NEG_INFINITY, 0.0], "test");
    }
}
