//! Additive sufficient statistics for TAN training — the incremental
//! (delta-apply) alternative to rebuilding a [`Dataset`] every retrain.
//!
//! Everything TAN learns is a function of three count families:
//! per-class row counts (the prior), per-attribute per-class value
//! counts (root CPTs), and per-attribute-pair per-class joint counts
//! (CMI edge weights and edge CPTs). All three are *additive*: a window
//! slide is `add_row` for entering samples and `retire_row` for
//! expiring ones — no rebuild.
//!
//! Bit-identity with the dataset path is structural, not tested-in:
//! [`TanStats::classifier`] derives probabilities through the exact same
//! code the dataset rebuild uses ([`RootCpt::from_counts`],
//! [`EdgeCpt::from_counts`], [`cmi_from_joints`],
//! [`max_spanning_tree`], [`log_prior_ratio_from_counts`]), and all
//! counts are integer-valued f64 (exact up to 2^53), so add/retire
//! deltas restore prior states bit-for-bit. The crate's proptests
//! assert exact equality against `TanClassifier::train` anyway.

use crate::chow_liu::max_spanning_tree;
use crate::mutual_info::cmi_from_joints;
use crate::naive::{log_prior_ratio_from_counts, RootCpt};
use crate::tan::{Cpt, EdgeCpt};
use crate::{TanClassifier, TrainError};
use prepare_metrics::persist::{Persist, PersistError, Reader, Writer};
use prepare_metrics::Label;

/// Sufficient statistics for one TAN model, updated by row-level deltas.
// xtask: checkpoint
#[derive(Debug, Clone, PartialEq)]
pub struct TanStats {
    cardinalities: Vec<usize>,
    rows: usize,
    /// [normal, abnormal] row counts.
    class_counts: [usize; 2],
    /// `marg[attr][class][value]` — per-attribute value counts.
    marg: Vec<[Vec<f64>; 2]>,
    /// `joints[pair][class][v_i][v_j]` for attribute pairs `(i, j)`,
    /// `i < j`, in lexicographic order — the same orientation the
    /// Chow–Liu upper triangle reads.
    joints: Vec<[Vec<Vec<f64>>; 2]>,
}

impl TanStats {
    /// Empty statistics for attributes with the given cardinalities.
    ///
    /// # Panics
    ///
    /// Panics if there are no attributes or any cardinality is zero.
    pub fn new(cardinalities: Vec<usize>) -> Self {
        assert!(!cardinalities.is_empty(), "need at least one attribute");
        assert!(
            cardinalities.iter().all(|&c| c > 0),
            "cardinalities must be positive"
        );
        let marg = cardinalities
            .iter()
            .map(|&c| [vec![0.0; c], vec![0.0; c]])
            .collect();
        let n = cardinalities.len();
        let mut joints = Vec::with_capacity(n * (n - 1) / 2);
        for (i, &ci) in cardinalities.iter().enumerate() {
            for &cj in cardinalities.iter().skip(i + 1) {
                joints.push([vec![vec![0.0; cj]; ci], vec![vec![0.0; cj]; ci]]);
            }
        }
        TanStats {
            cardinalities,
            rows: 0,
            class_counts: [0, 0],
            marg,
            joints,
        }
    }

    /// Uniform-cardinality convenience mirroring
    /// [`Dataset::with_uniform_bins`](crate::Dataset::with_uniform_bins).
    pub fn with_uniform_bins(n_attrs: usize, bins: usize) -> Self {
        Self::new(vec![bins; n_attrs])
    }

    /// Number of rows currently summarized.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Whether no rows are currently summarized.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// `(normal, abnormal)` row counts.
    pub fn class_counts(&self) -> (usize, usize) {
        (self.class_counts[0], self.class_counts[1])
    }

    /// Index of pair `(i, j)` (`i < j`) in the lexicographic pair list.
    fn pair_index(&self, i: usize, j: usize) -> usize {
        let n = self.cardinalities.len();
        i * (2 * n - i - 1) / 2 + (j - i - 1)
    }

    fn validate(&self, row: &[usize]) {
        assert_eq!(row.len(), self.cardinalities.len(), "row arity mismatch");
        for (&v, &c) in row.iter().zip(&self.cardinalities) {
            assert!(v < c, "value {v} out of range (cardinality {c})");
        }
    }

    /// Applies a +1 delta: one labeled row enters the training window.
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch or out-of-range values.
    // xtask: hot-path
    pub fn add_row(&mut self, row: &[usize], label: Label) {
        self.validate(row);
        let c = label.is_abnormal() as usize;
        self.class_counts[c] += 1;
        self.rows += 1;
        for (m, &v) in self.marg.iter_mut().zip(row) {
            // xtask-allow: index-in-loop -- c ∈ {0,1}; v < cardinality by validate()
            m[c][v] += 1.0;
        }
        let n = self.cardinalities.len();
        let mut k = 0;
        for i in 0..n {
            for j in (i + 1)..n {
                // xtask-allow: index-in-loop -- k walks the pair list in lockstep with (i, j); values validated
                self.joints[k][c][row[i]][row[j]] += 1.0;
                k += 1;
            }
        }
    }

    /// Applies a −1 delta: one labeled row leaves the training window.
    /// Counts are integer-valued f64, so `add_row` then `retire_row`
    /// restores every table bit-for-bit.
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch, out-of-range values, or retiring a row
    /// that was never added (any count would go negative).
    // xtask: hot-path
    pub fn retire_row(&mut self, row: &[usize], label: Label) {
        self.validate(row);
        let c = label.is_abnormal() as usize;
        assert!(
            self.class_counts[c] > 0,
            "retiring a row from an empty class"
        );
        self.class_counts[c] -= 1;
        self.rows -= 1;
        for (m, &v) in self.marg.iter_mut().zip(row) {
            // xtask-allow: index-in-loop -- c ∈ {0,1}; v < cardinality by validate()
            assert!(m[c][v] >= 1.0, "retiring an unseen attribute value");
            m[c][v] -= 1.0; // xtask-allow: index-in-loop -- same cell as the guard above
        }
        let n = self.cardinalities.len();
        let mut k = 0;
        for i in 0..n {
            for j in (i + 1)..n {
                // xtask-allow: index-in-loop -- k walks the pair list in lockstep with (i, j); values validated
                let cell = &mut self.joints[k][c][row[i]][row[j]];
                assert!(*cell >= 1.0, "retiring an unseen value pair");
                *cell -= 1.0;
                k += 1;
            }
        }
    }

    /// Edge CPT counts `[class][parent value][attr value]` for
    /// `attr` conditioned on `parent`, read from the stored `(min, max)`
    /// joint table — transposed when the parent is the higher-indexed
    /// attribute. Transposition permutes exact integers, so the result
    /// equals the dataset scan bit-for-bit.
    // xtask: taint-source count
    fn edge_counts(&self, attr: usize, parent: usize) -> [Vec<Vec<f64>>; 2] {
        if parent < attr {
            self.joints[self.pair_index(parent, attr)].clone()
        } else {
            let stored = &self.joints[self.pair_index(attr, parent)];
            let (card, pcard) = (self.cardinalities[attr], self.cardinalities[parent]);
            let mut out = [vec![vec![0.0; card]; pcard], vec![vec![0.0; card]; pcard]];
            for (src, dst) in stored.iter().zip(out.iter_mut()) {
                for (av, src_row) in src.iter().enumerate() {
                    for (pv, &count) in src_row.iter().enumerate() {
                        // xtask-allow: index-in-loop -- transposed scatter; pv/av enumerate the table dims
                        dst[pv][av] = count;
                    }
                }
            }
            out
        }
    }

    /// Derives a trained classifier from the current statistics — the
    /// delta-apply equivalent of `TanClassifier::train` on a dataset
    /// holding exactly the non-retired rows, bit-identical to it.
    pub fn classifier(&self) -> Result<TanClassifier, TrainError> {
        let log_prior_ratio =
            log_prior_ratio_from_counts(self.rows, (self.class_counts[0], self.class_counts[1]))?;
        let n = self.cardinalities.len();
        let parents = if n == 1 {
            vec![None]
        } else {
            let n_total = self.rows as f64;
            let upper: Vec<Vec<f64>> = (0..n)
                .map(|i| {
                    ((i + 1)..n)
                        .map(|j| cmi_from_joints(&self.joints[self.pair_index(i, j)], n_total))
                        .collect()
                })
                .collect();
            max_spanning_tree(n, &upper)
        };
        let cpts = parents
            .iter()
            .enumerate()
            .map(|(i, &p)| match p {
                None => Cpt::Root(RootCpt::from_counts(self.marg[i].clone(), 1.0)),
                Some(parent) => Cpt::Edge {
                    parent,
                    table: EdgeCpt::from_counts(self.edge_counts(i, parent), 1.0),
                },
            })
            .collect();
        Ok(TanClassifier::from_parts(
            cpts,
            parents,
            log_prior_ratio,
            self.cardinalities.clone(),
        ))
    }
}

impl Persist for TanStats {
    fn store(&self, w: &mut Writer) {
        self.cardinalities.store(w);
        w.put_usize(self.rows);
        self.class_counts.store(w);
        self.marg.store(w);
        self.joints.store(w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let cardinalities: Vec<usize> = Persist::load(r)?;
        let rows = r.get_usize()?;
        let class_counts: [usize; 2] = Persist::load(r)?;
        let marg: Vec<[Vec<f64>; 2]> = Persist::load(r)?;
        let joints: Vec<[Vec<Vec<f64>>; 2]> = Persist::load(r)?;
        let n = cardinalities.len();
        if n == 0 || cardinalities.contains(&0) {
            return Err(PersistError::Invalid("TanStats cardinalities"));
        }
        if rows != class_counts[0] + class_counts[1] {
            return Err(PersistError::Invalid("TanStats row count"));
        }
        if marg.len() != n || joints.len() != n * (n - 1) / 2 {
            return Err(PersistError::Invalid("TanStats table arity"));
        }
        for (m, &c) in marg.iter().zip(&cardinalities) {
            if m.iter().any(|row| row.len() != c) {
                return Err(PersistError::Invalid("TanStats marginal shape"));
            }
        }
        Ok(TanStats {
            cardinalities,
            rows,
            class_counts,
            marg,
            joints,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Classifier, Dataset};

    fn train_reference(
        rows: &[(Vec<usize>, Label)],
        cards: &[usize],
    ) -> Result<TanClassifier, TrainError> {
        let mut ds = Dataset::new(cards.to_vec());
        for (r, l) in rows {
            ds.push(r.clone(), *l).unwrap();
        }
        TanClassifier::train(&ds)
    }

    fn leak_rows() -> (Vec<(Vec<usize>, Label)>, Vec<usize>) {
        let mut rows = Vec::new();
        for k in 0..120usize {
            let noise = (k / 2) % 4;
            if k % 3 == 0 {
                rows.push((vec![0, 3, noise], Label::Abnormal));
            } else {
                rows.push((vec![2 + k % 2, k % 2, noise], Label::Normal));
            }
        }
        (rows, vec![4, 4, 4])
    }

    fn assert_bit_identical(a: &TanClassifier, b: &TanClassifier) {
        assert_eq!(a, b);
        let bits = |t: &TanClassifier| {
            t.log_cpt_rows()
                .iter()
                .flatten()
                .map(|p| p.to_bits())
                .collect::<Vec<u64>>()
        };
        assert_eq!(bits(a), bits(b));
    }

    #[test]
    fn persist_round_trip_continues_bit_identically() {
        let (rows, cards) = leak_rows();
        let mut stats = TanStats::new(cards);
        // Load a partial window so the restored stats must continue
        // mid-stream, not from scratch.
        for (r, l) in &rows[..70] {
            stats.add_row(r, *l);
        }
        let bytes = prepare_metrics::persist::to_bytes(&stats);
        let mut restored: TanStats = prepare_metrics::persist::from_bytes(&bytes).unwrap();
        assert_eq!(restored, stats);
        // Slide the window on both copies and require identical models.
        for (i, (r, l)) in rows[70..].iter().enumerate() {
            stats.add_row(r, *l);
            restored.add_row(r, *l);
            let (old, ol) = &rows[i];
            stats.retire_row(old, *ol);
            restored.retire_row(old, *ol);
        }
        assert_bit_identical(
            &restored.classifier().unwrap(),
            &stats.classifier().unwrap(),
        );
    }

    #[test]
    fn persist_load_rejects_mismatched_row_count() {
        let (rows, cards) = leak_rows();
        let mut stats = TanStats::new(cards);
        for (r, l) in &rows {
            stats.add_row(r, *l);
        }
        let mut bytes = prepare_metrics::persist::to_bytes(&stats);
        // The row count lives after the cardinalities (len + 3 values).
        let off = 8 * 4;
        bytes[off..off + 8].copy_from_slice(&1u64.to_le_bytes());
        let err = prepare_metrics::persist::from_bytes::<TanStats>(&bytes).unwrap_err();
        assert_eq!(
            err,
            prepare_metrics::persist::PersistError::Invalid("TanStats row count")
        );
    }

    #[test]
    fn stats_classifier_is_bit_identical_to_dataset_train() {
        let (rows, cards) = leak_rows();
        let mut stats = TanStats::new(cards.clone());
        for (r, l) in &rows {
            stats.add_row(r, *l);
        }
        let from_stats = stats.classifier().unwrap();
        let from_dataset = train_reference(&rows, &cards).unwrap();
        assert_bit_identical(&from_stats, &from_dataset);
    }

    #[test]
    fn window_slide_is_bit_identical_to_rebuild() {
        let (rows, cards) = leak_rows();
        let window = 40;
        let mut stats = TanStats::new(cards.clone());
        for (r, l) in rows.iter().take(window) {
            stats.add_row(r, *l);
        }
        for start in 1..=(rows.len() - window) {
            let (old_r, old_l) = &rows[start - 1];
            let (new_r, new_l) = &rows[start + window - 1];
            stats.retire_row(old_r, *old_l);
            stats.add_row(new_r, *new_l);
            let rebuilt = train_reference(&rows[start..start + window], &cards);
            match (stats.classifier(), rebuilt) {
                (Ok(a), Ok(b)) => assert_bit_identical(&a, &b),
                (Err(a), Err(b)) => assert_eq!(a, b),
                (a, b) => panic!("paths diverged at slide {start}: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn add_then_retire_restores_statistics_bit_for_bit() {
        let (rows, cards) = leak_rows();
        let mut stats = TanStats::new(cards);
        for (r, l) in rows.iter().take(30) {
            stats.add_row(r, *l);
        }
        let before = stats.clone();
        for (r, l) in rows.iter().skip(30).take(50) {
            stats.add_row(r, *l);
        }
        assert_ne!(stats, before);
        for (r, l) in rows.iter().skip(30).take(50) {
            stats.retire_row(r, *l);
        }
        assert_eq!(stats, before);
        // PartialEq on f64 treats -0.0 == 0.0; compare raw bits too.
        let bits = |s: &TanStats| {
            let mut out: Vec<u64> = Vec::new();
            for m in &s.marg {
                out.extend(m.iter().flatten().map(|c| c.to_bits()));
            }
            for j in &s.joints {
                out.extend(j.iter().flatten().flatten().map(|c| c.to_bits()));
            }
            out
        };
        assert_eq!(bits(&stats), bits(&before));
    }

    #[test]
    fn full_eviction_restores_the_empty_state() {
        let (rows, cards) = leak_rows();
        let fresh = TanStats::new(cards.clone());
        let mut stats = TanStats::new(cards);
        for (r, l) in &rows {
            stats.add_row(r, *l);
        }
        for (r, l) in &rows {
            stats.retire_row(r, *l);
        }
        assert_eq!(stats, fresh);
        assert_eq!(stats.classifier(), Err(TrainError::EmptyDataset));
    }

    #[test]
    fn empty_stats_error_matches_dataset_path() {
        let stats = TanStats::with_uniform_bins(3, 4);
        assert_eq!(stats.classifier(), Err(TrainError::EmptyDataset));
        assert_eq!(
            train_reference(&[], &[4, 4, 4]),
            Err(TrainError::EmptyDataset)
        );
    }

    #[test]
    fn single_class_error_matches_dataset_path() {
        let mut stats = TanStats::with_uniform_bins(2, 3);
        stats.add_row(&[0, 1], Label::Normal);
        assert_eq!(
            stats.classifier(),
            Err(TrainError::SingleClass(Label::Normal))
        );
        let mut only_ab = TanStats::with_uniform_bins(2, 3);
        only_ab.add_row(&[0, 1], Label::Abnormal);
        assert_eq!(
            only_ab.classifier(),
            Err(TrainError::SingleClass(Label::Abnormal))
        );
    }

    #[test]
    fn single_sample_per_class_matches_dataset_path() {
        let rows = vec![
            (vec![0usize, 2], Label::Normal),
            (vec![1, 0], Label::Abnormal),
        ];
        let mut stats = TanStats::with_uniform_bins(2, 3);
        for (r, l) in &rows {
            stats.add_row(r, *l);
        }
        assert_bit_identical(
            &stats.classifier().unwrap(),
            &train_reference(&rows, &[3, 3]).unwrap(),
        );
    }

    #[test]
    fn single_attribute_matches_dataset_path() {
        let rows = vec![
            (vec![0usize], Label::Normal),
            (vec![1], Label::Abnormal),
            (vec![0], Label::Normal),
        ];
        let mut stats = TanStats::with_uniform_bins(1, 2);
        for (r, l) in &rows {
            stats.add_row(r, *l);
        }
        assert_bit_identical(
            &stats.classifier().unwrap(),
            &train_reference(&rows, &[2]).unwrap(),
        );
    }

    #[test]
    #[should_panic(expected = "retiring a row from an empty class")]
    fn retire_from_empty_panics() {
        TanStats::with_uniform_bins(2, 2).retire_row(&[0, 0], Label::Normal);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn add_rejects_out_of_range_values() {
        TanStats::with_uniform_bins(2, 2).add_row(&[0, 2], Label::Normal);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::{Classifier, Dataset};
    use proptest::prelude::*;

    fn arb_stream() -> impl Strategy<Value = (usize, Vec<(Vec<usize>, bool)>)> {
        (2usize..5, 2usize..4).prop_flat_map(|(attrs, bins)| {
            proptest::collection::vec(
                (
                    proptest::collection::vec(0usize..bins, attrs),
                    any::<bool>(),
                ),
                1..80,
            )
            .prop_map(move |stream| (bins, stream))
        })
    }

    fn rebuild(
        rows: &[(Vec<usize>, bool)],
        attrs: usize,
        bins: usize,
    ) -> Result<TanClassifier, TrainError> {
        let mut ds = Dataset::with_uniform_bins(attrs, bins);
        for (r, ab) in rows {
            ds.push(r.clone(), Label::from_violation(*ab)).unwrap();
        }
        TanClassifier::train(&ds)
    }

    proptest! {
        // For any random stream and window size, the delta-applied
        // statistics equal a from-scratch rebuild of the same window —
        // exactly, at every slide position, including the error cases.
        #[test]
        fn sliding_window_equals_rebuild(input in arb_stream(), window in 1usize..40) {
            let (bins, stream) = input;
            let attrs = stream[0].0.len();
            let window = window.min(stream.len());
            let mut stats = TanStats::with_uniform_bins(attrs, bins);
            for (r, ab) in stream.iter().take(window) {
                stats.add_row(r, Label::from_violation(*ab));
            }
            for start in 0..=(stream.len() - window) {
                if start > 0 {
                    let (old_r, old_ab) = &stream[start - 1];
                    let (new_r, new_ab) = &stream[start + window - 1];
                    stats.retire_row(old_r, Label::from_violation(*old_ab));
                    stats.add_row(new_r, Label::from_violation(*new_ab));
                }
                let expect = rebuild(&stream[start..start + window], attrs, bins);
                match (stats.classifier(), expect) {
                    (Ok(a), Ok(b)) => {
                        prop_assert_eq!(&a, &b);
                        let abits: Vec<u64> = a.log_cpt_rows().iter().flatten().map(|p| p.to_bits()).collect();
                        let bbits: Vec<u64> = b.log_cpt_rows().iter().flatten().map(|p| p.to_bits()).collect();
                        prop_assert_eq!(abits, bbits);
                    }
                    (Err(a), Err(b)) => prop_assert_eq!(a, b),
                    (a, b) => prop_assert!(false, "paths diverged at slide {}: {:?} vs {:?}", start, a, b),
                }
            }
        }

        // Retiring an entire suffix batch restores the statistics
        // bit-for-bit, down to full eviction.
        #[test]
        fn retire_round_trip_is_exact(input in arb_stream(), keep in 0usize..40) {
            let (bins, stream) = input;
            let attrs = stream[0].0.len();
            let keep = keep.min(stream.len());
            let mut stats = TanStats::with_uniform_bins(attrs, bins);
            for (r, ab) in stream.iter().take(keep) {
                stats.add_row(r, Label::from_violation(*ab));
            }
            let before = stats.clone();
            for (r, ab) in stream.iter().skip(keep) {
                stats.add_row(r, Label::from_violation(*ab));
            }
            for (r, ab) in stream.iter().skip(keep) {
                stats.retire_row(r, Label::from_violation(*ab));
            }
            prop_assert_eq!(stats, before);
        }
    }
}
