//! The Tree-Augmented Naive Bayesian classifier (paper §II-B/C, Eq. 1–2,
//! Fig. 3).

use crate::naive::{clamp_value, log_prior_ratio, RootCpt};
use crate::{chow_liu_tree, Classifier, Dataset, TrainError};
use prepare_metrics::persist::{Persist, PersistError, Reader, Writer};
use prepare_metrics::{debug_assert_finite, Label};

/// Class- and parent-conditional probability table:
/// `P(a_i = v | a_p = u, C = c)`, Laplace-smoothed.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct EdgeCpt {
    /// log_p[c][u][v]
    log_p: [Vec<Vec<f64>>; 2],
}

impl EdgeCpt {
    fn fit(ds: &Dataset, attr: usize, parent: usize, alpha: f64) -> Self {
        let card = ds.cardinality(attr);
        let pcard = ds.cardinality(parent);
        let mut counts = [
            vec![vec![0.0f64; card]; pcard],
            vec![vec![0.0f64; card]; pcard],
        ];
        for (row, label) in ds.iter() {
            counts[label.is_abnormal() as usize][row[parent]][row[attr]] += 1.0;
        }
        Self::from_counts(counts, alpha)
    }

    /// Derives the smoothed log-probability table from
    /// `counts[class][parent value][value]`. The only count→probability
    /// path for edge CPTs: the dataset rebuild and the incremental
    /// sufficient-statistics trainer both go through it, so bit-identity
    /// between the two is structural, not coincidental.
    // xtask: derive-boundary -- the sanctioned count -> smoothed log-probability derivation for edge CPTs
    pub(crate) fn from_counts(counts: [Vec<Vec<f64>>; 2], alpha: f64) -> Self {
        let card = counts[0].first().map_or(0, Vec::len);
        let log_p: [Vec<Vec<f64>>; 2] = counts.map(|by_parent| {
            by_parent
                .into_iter()
                .map(|cs| {
                    let total: f64 = cs.iter().sum::<f64>() + alpha * card as f64;
                    cs.iter().map(|c| ((c + alpha) / total).ln()).collect()
                })
                .collect()
        });
        for by_parent in &log_p {
            for row in by_parent {
                crate::invariants::debug_assert_row_stochastic(row, "EdgeCpt::fit");
            }
        }
        EdgeCpt { log_p }
    }

    fn log_prob(&self, value: usize, parent_value: usize, class: Label) -> f64 {
        self.log_p[class.is_abnormal() as usize][parent_value][value]
    }

    /// Every `(class, parent value)` log-probability row.
    fn rows(&self) -> impl Iterator<Item = &[f64]> {
        self.log_p.iter().flatten().map(Vec::as_slice)
    }
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Cpt {
    Root(RootCpt),
    Edge { parent: usize, table: EdgeCpt },
}

impl Persist for EdgeCpt {
    fn store(&self, w: &mut Writer) {
        self.log_p.store(w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let log_p: [Vec<Vec<f64>>; 2] = Persist::load(r)?;
        if log_p[0].len() != log_p[1].len() {
            return Err(PersistError::Invalid("EdgeCpt table shape"));
        }
        Ok(EdgeCpt { log_p })
    }
}

impl Persist for Cpt {
    fn store(&self, w: &mut Writer) {
        match self {
            Cpt::Root(t) => {
                w.put_u8(0);
                t.store(w);
            }
            Cpt::Edge { parent, table } => {
                w.put_u8(1);
                w.put_usize(*parent);
                table.store(w);
            }
        }
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        match r.get_u8()? {
            0 => Ok(Cpt::Root(RootCpt::load(r)?)),
            1 => Ok(Cpt::Edge {
                parent: r.get_usize()?,
                table: EdgeCpt::load(r)?,
            }),
            tag => Err(PersistError::BadTag { what: "Cpt", tag }),
        }
    }
}

/// The impact strength `L_i` of one attribute on an abnormal verdict
/// (Eq. 2), paired with the attribute's index so rankings can be reported.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttributeStrength {
    /// Index of the attribute in the dataset's column order.
    pub attribute: usize,
    /// `L_i = log [P(a_i | a_pi, C=1) / P(a_i | a_pi, C=0)]`.
    pub strength: f64,
}

/// Everything one classification pass produces: the Eq. 1 decision score,
/// its logistic transform, and the Eq. 2 strengths ranked most-blamed
/// first. Computed by [`TanClassifier::evaluate`] with each attribute's
/// strength derived exactly once (the separate `score` /
/// `ranked_strengths` / `abnormal_probability` entry points each redo that
/// work).
#[derive(Debug, Clone, PartialEq)]
pub struct TanVerdict {
    /// The decision score — the left-hand side of Eq. 1. Positive means
    /// *abnormal*.
    pub score: f64,
    /// `P(abnormal)` via the logistic transform of the score.
    pub probability: f64,
    /// Attribute strengths ranked most-blamed first.
    pub ranked: Vec<AttributeStrength>,
}

/// A trained TAN anomaly classifier.
#[derive(Debug, Clone, PartialEq)]
pub struct TanClassifier {
    cpts: Vec<Cpt>,
    parents: Vec<Option<usize>>,
    log_prior_ratio: f64,
    cardinalities: Vec<usize>,
}

impl TanClassifier {
    /// Assembles a classifier from already-derived parts — the back door
    /// the incremental sufficient-statistics trainer uses after deriving
    /// CPTs via the shared `from_counts` paths.
    pub(crate) fn from_parts(
        cpts: Vec<Cpt>,
        parents: Vec<Option<usize>>,
        log_prior_ratio: f64,
        cardinalities: Vec<usize>,
    ) -> Self {
        TanClassifier {
            cpts,
            parents,
            log_prior_ratio,
            cardinalities,
        }
    }

    /// The Eq. 2 impact strength `L_i` of attribute `i` for input `x`.
    fn strength_of(&self, x: &[usize], i: usize, cpt: &Cpt) -> f64 {
        let v = clamp_value(x, i, self.cardinalities[i]);
        match cpt {
            Cpt::Root(t) => t.log_prob(v, Label::Abnormal) - t.log_prob(v, Label::Normal),
            Cpt::Edge { parent, table } => {
                let u = clamp_value(x, *parent, self.cardinalities[*parent]);
                table.log_prob(v, u, Label::Abnormal) - table.log_prob(v, u, Label::Normal)
            }
        }
    }

    /// Sum of all attribute strengths without materializing the vector —
    /// the same additions in the same order as
    /// `attribute_strengths(x).iter().sum()`, so the score is bit-identical.
    // xtask: hot-path
    fn strength_sum(&self, x: &[usize]) -> f64 {
        assert_eq!(x.len(), self.cpts.len(), "input arity mismatch");
        self.cpts
            .iter()
            .enumerate()
            .map(|(i, cpt)| self.strength_of(x, i, cpt))
            .sum()
    }

    /// Classifies `x` in one pass: every attribute strength is computed
    /// exactly once and reused for the score, the abnormal probability,
    /// and the ranked strength list.
    pub fn evaluate(&self, x: &[usize]) -> TanVerdict {
        assert_eq!(x.len(), self.cpts.len(), "input arity mismatch");
        let mut ranked: Vec<AttributeStrength> = self
            .cpts
            .iter()
            .enumerate()
            .map(|(attribute, cpt)| AttributeStrength {
                attribute,
                strength: self.strength_of(x, attribute, cpt),
            })
            .collect();
        let score = ranked.iter().map(|s| s.strength).sum::<f64>() + self.log_prior_ratio;
        ranked.sort_by(|a, b| b.strength.total_cmp(&a.strength));
        TanVerdict {
            score,
            probability: debug_assert_finite!(1.0 / (1.0 + (-score).exp())),
            ranked,
        }
    }
    /// The learned attribute dependency structure: `parent[i]` is the
    /// attribute that `a_i` conditions on (None for the tree root).
    pub fn parents(&self) -> &[Option<usize>] {
        &self.parents
    }

    /// Attribute strengths ranked most-blamed first — the ranked metric
    /// list handed to the prevention actuator (§II-C: "a ranked list of
    /// metrics that are mostly related to the anomaly").
    pub fn ranked_strengths(&self, x: &[usize]) -> Vec<AttributeStrength> {
        let mut ranked: Vec<AttributeStrength> = self
            .attribute_strengths(x)
            .into_iter()
            .enumerate()
            .map(|(attribute, strength)| AttributeStrength {
                attribute,
                strength,
            })
            .collect();
        ranked.sort_by(|a, b| b.strength.total_cmp(&a.strength));
        ranked
    }

    /// Probability the input is abnormal, via the logistic transform of
    /// the decision score.
    pub fn abnormal_probability(&self, x: &[usize]) -> f64 {
        let s = self.score(x);
        debug_assert_finite!(1.0 / (1.0 + (-s).exp()))
    }

    /// Every conditional log-probability row of the trained model: one
    /// `P(a_i | C)` (root) or `P(a_i | a_p = u, C)` (edge) distribution
    /// per `(attribute, class[, parent value])` combination. Each row must
    /// be row-stochastic — `Σ_v exp(row[v]) = 1` — which the invariant
    /// test suite asserts over generated datasets.
    pub fn log_cpt_rows(&self) -> Vec<Vec<f64>> {
        let mut rows = Vec::new();
        for cpt in &self.cpts {
            match cpt {
                Cpt::Root(t) => rows.extend(t.rows().map(<[f64]>::to_vec)),
                Cpt::Edge { table, .. } => rows.extend(table.rows().map(<[f64]>::to_vec)),
            }
        }
        rows
    }
}

impl Persist for TanClassifier {
    fn store(&self, w: &mut Writer) {
        self.cpts.store(w);
        self.parents.store(w);
        w.put_f64(self.log_prior_ratio);
        self.cardinalities.store(w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let cpts: Vec<Cpt> = Persist::load(r)?;
        let parents: Vec<Option<usize>> = Persist::load(r)?;
        let log_prior_ratio = r.get_f64()?;
        let cardinalities: Vec<usize> = Persist::load(r)?;
        let n = cpts.len();
        if parents.len() != n || cardinalities.len() != n || n == 0 {
            return Err(PersistError::Invalid("TanClassifier arity"));
        }
        if parents.iter().any(|p| p.is_some_and(|i| i >= n)) {
            return Err(PersistError::Invalid("TanClassifier parent index"));
        }
        if cardinalities.contains(&0) {
            return Err(PersistError::Invalid("TanClassifier cardinality"));
        }
        Ok(TanClassifier {
            cpts,
            parents,
            log_prior_ratio,
            cardinalities,
        })
    }
}

impl Classifier for TanClassifier {
    fn train(ds: &Dataset) -> Result<Self, TrainError> {
        let log_prior_ratio = log_prior_ratio(ds)?;
        let parents = chow_liu_tree(ds);
        let cpts = parents
            .iter()
            .enumerate()
            .map(|(i, &p)| match p {
                None => Cpt::Root(RootCpt::fit(ds, i, 1.0)),
                Some(parent) => Cpt::Edge {
                    parent,
                    table: EdgeCpt::fit(ds, i, parent, 1.0),
                },
            })
            .collect();
        Ok(TanClassifier {
            cpts,
            parents,
            log_prior_ratio,
            cardinalities: ds.cardinalities().to_vec(),
        })
    }

    fn score(&self, x: &[usize]) -> f64 {
        self.strength_sum(x) + self.log_prior_ratio
    }

    fn attribute_strengths(&self, x: &[usize]) -> Vec<f64> {
        assert_eq!(x.len(), self.cpts.len(), "input arity mismatch");
        self.cpts
            .iter()
            .enumerate()
            .map(|(i, cpt)| self.strength_of(x, i, cpt))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Dataset mimicking a memory-leak signature: FreeMem (attr 0) low and
    /// PageFaults (attr 1, correlated with attr 0) high when abnormal;
    /// attr 2 is uninformative noise.
    fn leak_dataset() -> Dataset {
        let mut ds = Dataset::with_uniform_bins(3, 4);
        for k in 0..300usize {
            // (k / 2) % 4 decouples the noise attribute from k's parity,
            // which drives attributes 0 and 1 in the normal class.
            let noise = (k / 2) % 4;
            if k % 3 == 0 {
                // abnormal: free mem bin 0, page faults bin 3
                ds.push(vec![0, 3, noise], Label::Abnormal).unwrap();
            } else {
                // normal: free mem high-ish, few faults
                ds.push(vec![2 + k % 2, k % 2, noise], Label::Normal)
                    .unwrap();
            }
        }
        ds
    }

    #[test]
    fn classifies_leak_signature() {
        let tan = TanClassifier::train(&leak_dataset()).unwrap();
        assert_eq!(tan.classify(&[0, 3, 1]), Label::Abnormal);
        assert_eq!(tan.classify(&[3, 0, 1]), Label::Normal);
    }

    #[test]
    fn ranked_strengths_blame_informative_attributes() {
        let tan = TanClassifier::train(&leak_dataset()).unwrap();
        let ranked = tan.ranked_strengths(&[0, 3, 2]);
        // The noise attribute must rank last.
        assert_eq!(ranked.last().unwrap().attribute, 2);
        assert!(ranked[0].strength > ranked[2].strength);
    }

    #[test]
    fn abnormal_probability_monotone_with_score() {
        let tan = TanClassifier::train(&leak_dataset()).unwrap();
        let p_ab = tan.abnormal_probability(&[0, 3, 0]);
        // [3, 1, ..] is a combination the normal class actually produces
        // (a1 = a0 - 2 in normal rows).
        let p_norm = tan.abnormal_probability(&[3, 1, 0]);
        assert!(p_ab > 0.5);
        assert!(p_norm < 0.5);
        assert!(p_ab > p_norm);
    }

    #[test]
    fn structure_is_a_tree() {
        let tan = TanClassifier::train(&leak_dataset()).unwrap();
        let roots = tan.parents().iter().filter(|p| p.is_none()).count();
        assert_eq!(roots, 1);
    }

    #[test]
    fn tan_matches_paper_decision_rule() {
        // score > 0 ⇔ abnormal — Eq. 1 exactly.
        let tan = TanClassifier::train(&leak_dataset()).unwrap();
        for x in [[0usize, 3, 0], [3, 0, 0], [1, 1, 1], [0, 0, 0]] {
            let by_rule = tan.score(&x) > 0.0;
            assert_eq!(tan.classify(&x).is_abnormal(), by_rule);
        }
    }

    #[test]
    fn evaluate_is_bit_identical_to_separate_entry_points() {
        let tan = TanClassifier::train(&leak_dataset()).unwrap();
        for x in [[0usize, 3, 1], [3, 0, 1], [1, 1, 2], [0, 0, 0]] {
            let v = tan.evaluate(&x);
            assert_eq!(v.score, tan.score(&x));
            assert_eq!(v.probability, tan.abnormal_probability(&x));
            assert_eq!(v.ranked, tan.ranked_strengths(&x));
        }
    }

    #[test]
    fn persist_round_trip_is_bit_identical() {
        let tan = TanClassifier::train(&leak_dataset()).unwrap();
        let mut w = prepare_metrics::Writer::new();
        tan.store(&mut w);
        let mut r = prepare_metrics::Reader::new(w.bytes());
        let back = TanClassifier::load(&mut r).expect("decodes");
        assert_eq!(back, tan);
        let bits = |t: &TanClassifier| {
            t.log_cpt_rows()
                .iter()
                .flatten()
                .map(|p| p.to_bits())
                .collect::<Vec<u64>>()
        };
        assert_eq!(bits(&back), bits(&tan));
        for x in [[0usize, 3, 1], [3, 0, 1], [1, 1, 2]] {
            assert_eq!(back.evaluate(&x), tan.evaluate(&x));
        }
    }

    #[test]
    fn training_errors_propagate() {
        let ds = Dataset::new(vec![2, 2]);
        assert!(matches!(
            TanClassifier::train(&ds),
            Err(TrainError::EmptyDataset)
        ));
    }

    #[test]
    fn handles_correlated_attributes_better_than_nb_attribution() {
        // When two attributes are perfectly correlated, NB double-counts
        // them; TAN conditions one on the other, so the child's strength
        // shrinks. This is the paper's motivation for TAN attribution.
        let mut ds = Dataset::with_uniform_bins(2, 2);
        for k in 0..200usize {
            if k % 2 == 0 {
                ds.push(vec![1, 1], Label::Abnormal).unwrap();
            } else {
                ds.push(vec![0, 0], Label::Normal).unwrap();
            }
        }
        let tan = TanClassifier::train(&ds).unwrap();
        let s = tan.attribute_strengths(&[1, 1]);
        // One attribute (the child) contributes much less than the root.
        let (hi, lo) = if s[0] > s[1] {
            (s[0], s[1])
        } else {
            (s[1], s[0])
        };
        assert!(hi > lo * 2.0 || lo.abs() < 0.2, "strengths {s:?}");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_dataset() -> impl Strategy<Value = Dataset> {
        (2usize..5, 2usize..4, 20usize..100).prop_flat_map(|(attrs, bins, rows)| {
            proptest::collection::vec(
                (
                    proptest::collection::vec(0usize..bins, attrs),
                    any::<bool>(),
                ),
                rows,
            )
            .prop_map(move |data| {
                let mut ds = Dataset::with_uniform_bins(attrs, bins);
                for (row, abnormal) in data {
                    ds.push(row, Label::from_violation(abnormal)).unwrap();
                }
                ds
            })
        })
    }

    proptest! {
        #[test]
        fn score_decomposes_into_strengths(ds in arb_dataset(), probe in proptest::collection::vec(0usize..3, 4)) {
            prop_assume!(ds.has_both_classes());
            let tan = TanClassifier::train(&ds).unwrap();
            let x: Vec<usize> = probe.iter().cycle().take(ds.n_attributes()).copied().collect();
            let strengths = tan.attribute_strengths(&x);
            let score = tan.score(&x);
            let sum: f64 = strengths.iter().sum();
            prop_assert!((score - sum).abs() < 1e-6 + score.abs() * 1e-9 || (score - sum).is_finite());
            prop_assert!(score.is_finite());
        }

        #[test]
        fn classify_agrees_with_score_sign(ds in arb_dataset()) {
            prop_assume!(ds.has_both_classes());
            let tan = TanClassifier::train(&ds).unwrap();
            let x = vec![0usize; ds.n_attributes()];
            prop_assert_eq!(tan.classify(&x).is_abnormal(), tan.score(&x) > 0.0);
        }
    }
}
