//! Labeled training data for the discrete classifiers.

use prepare_metrics::Label;
use std::fmt;

/// A labeled dataset of discretized attribute vectors.
///
/// The attribute count is generic (not fixed at 13) because the
/// *monolithic* baseline model of Fig. 10 concatenates the attributes of
/// every VM of an application into a single vector.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Dataset {
    cardinalities: Vec<usize>,
    rows: Vec<Vec<usize>>,
    labels: Vec<Label>,
}

/// Error returned when a row does not match the dataset schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatasetError {
    /// Row length differs from the number of attributes.
    WrongArity {
        /// Expected number of attributes.
        expected: usize,
        /// Length of the offending row.
        got: usize,
    },
    /// A value is out of its attribute's cardinality range.
    ValueOutOfRange {
        /// Attribute index of the offending value.
        attribute: usize,
        /// The offending value.
        value: usize,
        /// Cardinality of that attribute.
        cardinality: usize,
    },
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::WrongArity { expected, got } => {
                write!(f, "row has {got} values, dataset expects {expected}")
            }
            DatasetError::ValueOutOfRange {
                attribute,
                value,
                cardinality,
            } => write!(
                f,
                "value {value} of attribute {attribute} exceeds cardinality {cardinality}"
            ),
        }
    }
}

impl std::error::Error for DatasetError {}

impl Dataset {
    /// Creates an empty dataset whose attribute `i` takes values in
    /// `[0, cardinalities[i])`.
    ///
    /// # Panics
    ///
    /// Panics if `cardinalities` is empty or contains a zero.
    pub fn new(cardinalities: Vec<usize>) -> Self {
        assert!(
            !cardinalities.is_empty(),
            "dataset needs at least one attribute"
        );
        assert!(
            cardinalities.iter().all(|&c| c > 0),
            "attribute cardinalities must be positive"
        );
        Dataset {
            cardinalities,
            rows: Vec::new(),
            labels: Vec::new(),
        }
    }

    /// Convenience: `n_attrs` attributes all sharing cardinality `bins`.
    pub fn with_uniform_bins(n_attrs: usize, bins: usize) -> Self {
        Dataset::new(vec![bins; n_attrs])
    }

    /// Appends a labeled row.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError`] if the row has the wrong arity or a value
    /// out of range.
    pub fn push(&mut self, row: Vec<usize>, label: Label) -> Result<(), DatasetError> {
        if row.len() != self.cardinalities.len() {
            return Err(DatasetError::WrongArity {
                expected: self.cardinalities.len(),
                got: row.len(),
            });
        }
        for (i, (&v, &card)) in row.iter().zip(&self.cardinalities).enumerate() {
            if v >= card {
                return Err(DatasetError::ValueOutOfRange {
                    attribute: i,
                    value: v,
                    cardinality: card,
                });
            }
        }
        self.rows.push(row);
        self.labels.push(label);
        Ok(())
    }

    /// Number of attributes.
    pub fn n_attributes(&self) -> usize {
        self.cardinalities.len()
    }

    /// Cardinality of attribute `i`.
    pub fn cardinality(&self, i: usize) -> usize {
        self.cardinalities[i]
    }

    /// All cardinalities.
    pub fn cardinalities(&self) -> &[usize] {
        &self.cardinalities
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Row `i` with its label.
    pub fn row(&self, i: usize) -> (&[usize], Label) {
        (&self.rows[i], self.labels[i])
    }

    /// Iterator over `(row, label)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&[usize], Label)> + '_ {
        self.rows
            .iter()
            .zip(self.labels.iter())
            .map(|(r, &l)| (r.as_slice(), l))
    }

    /// Counts of (normal, abnormal) rows.
    pub fn class_counts(&self) -> (usize, usize) {
        let abnormal = self.labels.iter().filter(|l| l.is_abnormal()).count();
        (self.labels.len() - abnormal, abnormal)
    }

    /// True when both classes are represented.
    pub fn has_both_classes(&self) -> bool {
        let (n, a) = self.class_counts();
        n > 0 && a > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_validates_arity() {
        let mut ds = Dataset::new(vec![2, 3]);
        assert_eq!(
            ds.push(vec![0], Label::Normal),
            Err(DatasetError::WrongArity {
                expected: 2,
                got: 1
            })
        );
    }

    #[test]
    fn push_validates_range() {
        let mut ds = Dataset::new(vec![2, 3]);
        assert_eq!(
            ds.push(vec![0, 3], Label::Normal),
            Err(DatasetError::ValueOutOfRange {
                attribute: 1,
                value: 3,
                cardinality: 3
            })
        );
        assert!(ds.push(vec![1, 2], Label::Abnormal).is_ok());
    }

    #[test]
    fn class_counts() {
        let mut ds = Dataset::with_uniform_bins(1, 2);
        ds.push(vec![0], Label::Normal).unwrap();
        ds.push(vec![1], Label::Abnormal).unwrap();
        ds.push(vec![1], Label::Abnormal).unwrap();
        assert_eq!(ds.class_counts(), (1, 2));
        assert!(ds.has_both_classes());
    }

    #[test]
    fn iter_yields_rows_in_order() {
        let mut ds = Dataset::with_uniform_bins(2, 4);
        ds.push(vec![0, 1], Label::Normal).unwrap();
        ds.push(vec![2, 3], Label::Abnormal).unwrap();
        let rows: Vec<_> = ds.iter().collect();
        assert_eq!(rows[0], (&[0usize, 1][..], Label::Normal));
        assert_eq!(rows[1], (&[2usize, 3][..], Label::Abnormal));
    }

    #[test]
    fn error_display() {
        let e = DatasetError::WrongArity {
            expected: 2,
            got: 3,
        };
        assert!(e.to_string().contains("expects 2"));
    }

    #[test]
    #[should_panic(expected = "cardinalities must be positive")]
    fn zero_cardinality_rejected() {
        let _ = Dataset::new(vec![2, 0]);
    }
}
