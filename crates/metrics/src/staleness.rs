//! Explicit missing/stale sample representation (robustness layer).
//!
//! A benign monitoring plane delivers one fresh 13-attribute sample per
//! VM per sampling round. A hostile one drops samples, delays them, or
//! freezes individual attribute readings. This module gives the control
//! loop the vocabulary to *see* that degradation instead of silently
//! consuming garbage:
//!
//! - [`AttributeStamps`] / [`StampedSample`]: per-attribute collection
//!   timestamps riding along with every sample, so a reading frozen by a
//!   stuck monitoring agent is distinguishable from a genuinely constant
//!   metric.
//! - [`StalenessBudget`]: how old a reading may grow before the consumer
//!   must stop trusting it ([`Freshness::Stale`]).
//! - [`LastValueImputer`]: hold-last-value imputation for short gaps.
//!   Imputed samples keep their *original* collection stamps, so
//!   imputation self-expires once the budget runs out — a gap can be
//!   papered over for a few rounds, never forever.

use crate::persist::{Persist, PersistError, Reader, Writer};
use crate::{AttributeKind, Duration, MetricSample, Timestamp, ATTRIBUTE_COUNT};

/// Per-attribute collection timestamps for one [`StampedSample`].
///
/// `stamps.get(a)` is when attribute `a` was last actually measured; it
/// can lag the sample's delivery time when a reading is stuck or the
/// sample was imputed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttributeStamps([Timestamp; ATTRIBUTE_COUNT]);

impl AttributeStamps {
    /// All attributes measured at the same instant `t`.
    pub fn uniform(t: Timestamp) -> Self {
        AttributeStamps([t; ATTRIBUTE_COUNT])
    }

    /// When attribute `a` was last measured.
    pub fn get(&self, a: AttributeKind) -> Timestamp {
        self.0[a.index()]
    }

    /// Records a measurement of attribute `a` at time `t`.
    pub fn set(&mut self, a: AttributeKind, t: Timestamp) {
        self.0[a.index()] = t;
    }

    /// The oldest collection time across all attributes.
    pub fn oldest(&self) -> Timestamp {
        self.0.iter().copied().min().unwrap_or(Timestamp::ZERO)
    }
}

/// A [`MetricSample`] plus per-attribute collection stamps.
///
/// `sample.time` is when the consumer received the vector; each stamp is
/// when that attribute was genuinely measured.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StampedSample {
    /// The delivered measurement vector.
    pub sample: MetricSample,
    /// Per-attribute collection timestamps.
    pub stamps: AttributeStamps,
}

impl StampedSample {
    /// Wraps a sample whose every attribute was measured at
    /// `sample.time` — the benign-infrastructure case.
    pub fn fresh(sample: MetricSample) -> Self {
        StampedSample {
            stamps: AttributeStamps::uniform(sample.time),
            sample,
        }
    }

    /// How old attribute `a`'s reading is at time `now`.
    pub fn age_of(&self, a: AttributeKind, now: Timestamp) -> Duration {
        now.since(self.stamps.get(a))
    }

    /// Age of the oldest attribute reading at time `now`.
    pub fn max_age(&self, now: Timestamp) -> Duration {
        now.since(self.stamps.oldest())
    }
}

/// Whether a sample is still trustworthy under a [`StalenessBudget`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Freshness {
    /// Every attribute is within its budget.
    Fresh,
    /// At least one attribute reading has outlived its budget; the
    /// consumer must degrade (abstain) rather than trust the value.
    Stale,
}

/// Per-attribute bound on how old a reading may grow before the control
/// loop stops trusting it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StalenessBudget {
    per_attribute: [Duration; ATTRIBUTE_COUNT],
}

/// Default staleness budget: three 5-second sampling rounds. One dropped
/// round is routine jitter; after the third consecutive miss the loop
/// must assume the monitoring plane is down.
pub const DEFAULT_STALENESS_SECS: u64 = 15;

impl StalenessBudget {
    /// The same budget `d` for every attribute.
    pub fn uniform(d: Duration) -> Self {
        StalenessBudget {
            per_attribute: [d; ATTRIBUTE_COUNT],
        }
    }

    /// Budget for attribute `a`.
    pub fn budget_for(&self, a: AttributeKind) -> Duration {
        self.per_attribute[a.index()]
    }

    /// Overrides the budget for one attribute.
    pub fn set(&mut self, a: AttributeKind, d: Duration) {
        self.per_attribute[a.index()] = d;
    }

    /// Classifies a stamped sample at time `now`.
    pub fn freshness(&self, now: Timestamp, s: &StampedSample) -> Freshness {
        let stale = AttributeKind::ALL
            .iter()
            .any(|&a| s.age_of(a, now) > self.budget_for(a));
        if stale {
            Freshness::Stale
        } else {
            Freshness::Fresh
        }
    }

    /// True when any attribute reading has outlived its budget at `now`.
    pub fn is_exceeded(&self, now: Timestamp, s: &StampedSample) -> bool {
        self.freshness(now, s) == Freshness::Stale
    }
}

impl Default for StalenessBudget {
    fn default() -> Self {
        StalenessBudget::uniform(Duration::from_secs(DEFAULT_STALENESS_SECS))
    }
}

/// Hold-last-value imputation for short monitoring gaps.
///
/// Feed every delivered sample through [`LastValueImputer::observe`];
/// when a round delivers nothing, [`LastValueImputer::impute`] replays
/// the last known vector re-timed to `now` while keeping its original
/// collection stamps — so the imputed sample ages out naturally under a
/// [`StalenessBudget`] instead of impersonating fresh data forever.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LastValueImputer {
    last: Option<StampedSample>,
}

impl LastValueImputer {
    /// An imputer that has seen nothing yet.
    pub fn new() -> Self {
        LastValueImputer { last: None }
    }

    /// Records a delivered sample as the new hold value.
    pub fn observe(&mut self, s: &StampedSample) {
        self.last = Some(*s);
    }

    /// The last delivered sample, if any.
    pub fn last(&self) -> Option<&StampedSample> {
        self.last.as_ref()
    }

    /// Replays the last known vector at time `now`, keeping its original
    /// per-attribute stamps. `None` before the first observation.
    pub fn impute(&self, now: Timestamp) -> Option<StampedSample> {
        self.last.map(|prev| StampedSample {
            sample: MetricSample::new(now, prev.sample.values),
            stamps: prev.stamps,
        })
    }
}

impl Persist for AttributeStamps {
    fn store(&self, w: &mut Writer) {
        self.0.store(w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(AttributeStamps(Persist::load(r)?))
    }
}

impl Persist for StampedSample {
    fn store(&self, w: &mut Writer) {
        self.sample.store(w);
        self.stamps.store(w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(StampedSample {
            sample: MetricSample::load(r)?,
            stamps: AttributeStamps::load(r)?,
        })
    }
}

impl Persist for StalenessBudget {
    fn store(&self, w: &mut Writer) {
        self.per_attribute.store(w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(StalenessBudget {
            per_attribute: Persist::load(r)?,
        })
    }
}

impl Persist for LastValueImputer {
    fn store(&self, w: &mut Writer) {
        self.last.store(w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(LastValueImputer {
            last: Option::load(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricVector;

    fn sample_at(secs: u64, v: f64) -> MetricSample {
        MetricSample::new(Timestamp::from_secs(secs), MetricVector::from_fn(|_| v))
    }

    #[test]
    fn fresh_sample_has_uniform_stamps() {
        let s = StampedSample::fresh(sample_at(10, 1.0));
        for a in AttributeKind::ALL {
            assert_eq!(s.stamps.get(a), Timestamp::from_secs(10));
            assert_eq!(s.age_of(a, Timestamp::from_secs(12)).as_secs(), 2);
        }
        assert_eq!(s.max_age(Timestamp::from_secs(12)).as_secs(), 2);
    }

    #[test]
    fn one_old_attribute_makes_the_sample_stale() {
        let mut s = StampedSample::fresh(sample_at(100, 1.0));
        let budget = StalenessBudget::default();
        assert!(!budget.is_exceeded(Timestamp::from_secs(100), &s));
        // Within budget at +15 s, stale at +16 s.
        assert!(!budget.is_exceeded(Timestamp::from_secs(115), &s));
        assert!(budget.is_exceeded(Timestamp::from_secs(116), &s));
        // A single stuck attribute is enough even when the rest is fresh.
        s.stamps = AttributeStamps::uniform(Timestamp::from_secs(116));
        s.stamps.set(AttributeKind::NetIn, Timestamp::from_secs(80));
        assert!(budget.is_exceeded(Timestamp::from_secs(116), &s));
        assert_eq!(s.stamps.oldest(), Timestamp::from_secs(80));
    }

    #[test]
    fn per_attribute_budgets_are_independent() {
        let mut budget = StalenessBudget::uniform(Duration::from_secs(10));
        budget.set(AttributeKind::Load5, Duration::from_secs(60));
        assert_eq!(
            budget.budget_for(AttributeKind::Load5),
            Duration::from_secs(60)
        );
        let mut s = StampedSample::fresh(sample_at(100, 1.0));
        s.stamps.set(AttributeKind::Load5, Timestamp::from_secs(70));
        // Load5 is 30 s old but its budget is 60 s: still fresh.
        assert_eq!(
            budget.freshness(Timestamp::from_secs(100), &s),
            Freshness::Fresh
        );
        s.stamps.set(AttributeKind::NetIn, Timestamp::from_secs(85));
        assert_eq!(
            budget.freshness(Timestamp::from_secs(100), &s),
            Freshness::Stale
        );
    }

    #[test]
    fn staleness_state_round_trips() {
        let mut s = StampedSample::fresh(sample_at(100, 1.5));
        s.stamps.set(AttributeKind::NetIn, Timestamp::from_secs(80));
        let mut budget = StalenessBudget::uniform(Duration::from_secs(10));
        budget.set(AttributeKind::Load5, Duration::from_secs(60));
        let mut imp = LastValueImputer::new();
        imp.observe(&s);
        let s2: StampedSample = crate::persist::from_bytes(&crate::persist::to_bytes(&s)).unwrap();
        assert_eq!(s2, s);
        let b2: StalenessBudget =
            crate::persist::from_bytes(&crate::persist::to_bytes(&budget)).unwrap();
        assert_eq!(b2, budget);
        let i2: LastValueImputer =
            crate::persist::from_bytes(&crate::persist::to_bytes(&imp)).unwrap();
        assert_eq!(i2, imp);
        let empty: LastValueImputer =
            crate::persist::from_bytes(&crate::persist::to_bytes(&LastValueImputer::new()))
                .unwrap();
        assert_eq!(empty, LastValueImputer::new());
    }

    #[test]
    fn imputation_replays_values_but_not_stamps() {
        let mut imp = LastValueImputer::new();
        assert!(imp.impute(Timestamp::from_secs(5)).is_none());
        imp.observe(&StampedSample::fresh(sample_at(10, 7.0)));
        let ghost = imp.impute(Timestamp::from_secs(20)).expect("has history");
        assert_eq!(ghost.sample.time, Timestamp::from_secs(20));
        assert_eq!(ghost.sample.values.get(AttributeKind::CpuTotal), 7.0);
        // Stamps stay at the genuine collection time...
        assert_eq!(ghost.stamps.oldest(), Timestamp::from_secs(10));
        // ...so imputation self-expires under the budget.
        let budget = StalenessBudget::default();
        assert!(!budget.is_exceeded(Timestamp::from_secs(20), &ghost));
        assert!(budget.is_exceeded(
            Timestamp::from_secs(10 + DEFAULT_STALENESS_SECS + 1),
            &imp.impute(Timestamp::from_secs(10 + DEFAULT_STALENESS_SECS + 1))
                .expect("has history")
        ));
    }
}
