//! A minimal, dependency-free JSON reader/writer for trace persistence.
//!
//! The build environment is fully offline, so instead of `serde_json`
//! the trace store round-trips through this hand-rolled module. Floats
//! are written with Rust's shortest round-trip formatting (`{:?}`), so a
//! persisted `f64` parses back to the *bit-identical* value — the same
//! guarantee `serde_json`'s `float_roundtrip` feature gave the seed code
//! — and non-finite values are rejected at serialization time rather
//! than silently corrupting a trace.

use std::fmt;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number. Integers up to 2^53 round-trip exactly.
    Number(f64),
    /// A string (escapes resolved).
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; insertion order is preserved and writing is ordered,
    /// so equal documents serialize to byte-identical text.
    Object(Vec<(String, JsonValue)>),
}

/// A parse or structural error, with a byte offset where available.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input where the error was detected.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

fn err<T>(message: impl Into<String>, offset: usize) -> Result<T, JsonError> {
    Err(JsonError {
        message: message.into(),
        offset,
    })
}

impl JsonValue {
    /// Parses one JSON document (rejecting trailing garbage).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] describing the first malformed token.
    pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return err("trailing characters after document", p.pos);
        }
        Ok(v)
    }

    /// Serializes to compact JSON.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] if any number in the tree is non-finite
    /// (JSON has no NaN/inf representation).
    pub fn to_string(&self) -> Result<String, JsonError> {
        let mut out = String::new();
        self.write(&mut out)?;
        Ok(out)
    }

    fn write(&self, out: &mut String) -> Result<(), JsonError> {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(n) => {
                if !n.is_finite() {
                    return err(
                        format!("non-finite number {n} is not representable"),
                        out.len(),
                    );
                }
                // `{:?}` is Rust's shortest representation that parses
                // back to the identical f64.
                use fmt::Write as _;
                let _ = write!(out, "{n:?}");
            }
            JsonValue::String(s) => write_escaped(s, out),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out)?;
                }
                out.push(']');
            }
            JsonValue::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out)?;
                }
                out.push('}');
            }
        }
        Ok(())
    }

    /// The value as a finite number, if it is one.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one and ≤ 2^53
    /// (beyond that an f64-backed JSON number is no longer exact).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_number()?;
        // xtask-allow: float-eq -- integrality test: fract() is exactly 0.0 iff the f64 is an integer
        if n.fract() == 0.0 && (0.0..=9_007_199_254_740_992.0).contains(&n) {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            Some(n as u64)
        } else {
            None
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The fields, if the value is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(f) => Some(f),
            _ => None,
        }
    }

    /// Looks up a field of an object by key.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            err(format!("expected '{}'", b as char), self.pos)
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        if depth > MAX_DEPTH {
            return err("document nested too deeply", self.pos);
        }
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(JsonValue::Null),
            Some(b't') if self.eat_literal("true") => Ok(JsonValue::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => err(format!("unexpected character '{}'", b as char), self.pos),
            None => err("unexpected end of input", self.pos),
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return err("expected ',' or ']' in array", self.pos),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return err("expected ',' or '}' in object", self.pos),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            match self.peek() {
                None => return err("unterminated string", start),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            match hex.and_then(char::from_u32) {
                                // Surrogate pairs are not needed for our
                                // ASCII field names; reject rather than
                                // mis-decode.
                                Some(c) => {
                                    out.push(c);
                                    self.pos += 4;
                                }
                                None => return err("invalid \\u escape", self.pos),
                            }
                        }
                        _ => return err("invalid escape", self.pos),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so bytes
                    // are valid UTF-8; find the char at this offset).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| JsonError {
                        message: "invalid UTF-8".into(),
                        offset: start,
                    })?;
                    let c = s.chars().next().ok_or(JsonError {
                        message: "unterminated string".into(),
                        offset: start,
                    })?;
                    if (c as u32) < 0x20 {
                        return err("unescaped control character in string", start);
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| JsonError {
            message: "invalid number".into(),
            offset: start,
        })?;
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(JsonValue::Number(n)),
            _ => err(format!("invalid number '{text}'"), start),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in ["null", "true", "false", "0.1", "-3.5", "\"hi\\nthere\""] {
            let v = JsonValue::parse(text).expect(text);
            let back = JsonValue::parse(&v.to_string().expect("writes")).expect("reparses");
            assert_eq!(v, back);
        }
    }

    #[test]
    fn floats_round_trip_exactly() {
        for &f in &[
            0.1,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            1e300,
            -2.5e-10,
            9007199254740992.0,
        ] {
            let v = JsonValue::Number(f);
            let text = v.to_string().expect("finite");
            let back = JsonValue::parse(&text).expect("parses");
            assert_eq!(
                back.as_number().map(f64::to_bits),
                Some(f.to_bits()),
                "{text}"
            );
        }
    }

    #[test]
    fn non_finite_numbers_are_rejected_on_write() {
        assert!(JsonValue::Number(f64::NAN).to_string().is_err());
        assert!(JsonValue::Number(f64::INFINITY).to_string().is_err());
    }

    #[test]
    fn nested_structures_parse() {
        let v = JsonValue::parse(r#" {"a": [1, 2.5, {"b": null}], "c": "x"} "#).expect("parses");
        assert_eq!(v.get("c").and_then(JsonValue::as_str), Some("x"));
        let arr = v.get("a").and_then(JsonValue::as_array).expect("array");
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[2].get("b"), Some(&JsonValue::Null));
    }

    #[test]
    fn malformed_documents_error_with_position() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "1e",
            "\"\\q\"",
            "[1] junk",
            "nan",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "{bad:?} should fail");
        }
        let e = JsonValue::parse("[1, }").unwrap_err();
        assert!(e.offset > 0 && e.to_string().contains("at byte"));
    }

    #[test]
    fn as_u64_guards_exactness() {
        assert_eq!(JsonValue::Number(7.0).as_u64(), Some(7));
        assert_eq!(JsonValue::Number(7.5).as_u64(), None);
        assert_eq!(JsonValue::Number(-1.0).as_u64(), None);
        assert_eq!(JsonValue::Number(1e300).as_u64(), None);
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(JsonValue::parse(&deep).is_err());
    }

    fn assert_number_round_trips(f: f64) {
        let text = JsonValue::Number(f).to_string().expect("finite");
        let back = JsonValue::parse(&text).expect("parses");
        assert_eq!(
            back.as_number().map(f64::to_bits),
            Some(f.to_bits()),
            "{text}"
        );
    }

    proptest::proptest! {
        // The checkpoint subsystem leans on exact numeric round-trips, so
        // pin the whole representable range: raw-bit floats (masked to
        // finite — clearing the exponent yields subnormals and ±0.0) and
        // integer-valued counts against the 2^53 exactness cliff.
        #[test]
        fn extreme_floats_round_trip_bit_exactly(
            bits in 0u64..=u64::MAX,
            off in 0u64..4096,
            sub_bits in 0u64..=u64::MAX,
        ) {
            let f = f64::from_bits(bits);
            if f.is_finite() {
                assert_number_round_trips(f);
            }
            // Force a subnormal (or signed zero) by clearing the exponent.
            let sub = f64::from_bits(sub_bits & 0x800f_ffff_ffff_ffff);
            assert_number_round_trips(sub);
            // Integer-valued counts at and just under 2^53 stay exact.
            let count = 9_007_199_254_740_992u64 - off;
            assert_number_round_trips(count as f64);
            let v = JsonValue::Number(count as f64);
            proptest::prop_assert_eq!(v.as_u64(), Some(count));
        }
    }

    #[test]
    fn pinned_extreme_floats_round_trip() {
        for f in [
            0.0,
            -0.0,
            5e-324, // smallest subnormal
            f64::MIN_POSITIVE / 2.0,
            f64::MIN_POSITIVE,
            f64::MAX,
            f64::MIN,
            9_007_199_254_740_991.0,
            9_007_199_254_740_992.0,
        ] {
            assert_number_round_trips(f);
        }
        // -0.0 keeps its sign through the text form.
        let text = JsonValue::Number(-0.0).to_string().expect("finite");
        let back = JsonValue::parse(&text).expect("parses").as_number();
        assert!(back.is_some_and(|f| f.is_sign_negative()));
    }

    #[test]
    fn object_field_order_is_preserved() {
        let v = JsonValue::parse(r#"{"z":1,"a":2}"#).expect("parses");
        let keys: Vec<_> = v
            .as_object()
            .expect("object")
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["z", "a"]);
        assert_eq!(v.to_string().expect("writes"), r#"{"z":1.0,"a":2.0}"#);
    }
}
