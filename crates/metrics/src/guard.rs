//! Debug-only finiteness guards for probability and score paths.
//!
//! PREPARE's control loop is built out of probabilities, entropies and
//! anomaly scores — all of which silently absorb an `inf`/`NaN` minted
//! by a zero denominator or a log of zero and then propagate it through
//! every downstream decision. The macros here make that failure loud in
//! debug and test builds while compiling to the bare expression in
//! release builds, so the benchmark hot paths pay nothing.
//!
//! Both macros evaluate to their argument's value, so they wrap tail
//! expressions in place:
//!
//! ```
//! use prepare_metrics::debug_assert_finite;
//!
//! fn mean(sum: f64, n: usize) -> f64 {
//!     debug_assert_finite!(sum / n.max(1) as f64)
//! }
//! assert_eq!(mean(6.0, 3), 2.0);
//! ```
//!
//! `cargo xtask lint`'s nan-safety rules recognise these guards: a
//! division, `.ln()` or float→int cast inside a function whose body
//! passes through `debug_assert_finite!`/`debug_assert_all_finite!`
//! (or an explicit `is_finite`/`is_nan` check) is considered guarded.

/// Asserts (debug builds only) that a scalar float expression is
/// finite, then evaluates to that value.
///
/// The message names the offending expression, so a failure points at
/// the exact normalization or score that went non-finite.
#[macro_export]
macro_rules! debug_assert_finite {
    ($e:expr) => {{
        let value = $e;
        debug_assert!(
            value.is_finite(),
            "non-finite value from `{}`: {}",
            stringify!($e),
            value,
        );
        value
    }};
}

/// Asserts (debug builds only) that every float yielded by an iterable
/// expression is finite, then evaluates to the iterable itself.
///
/// Works on anything with an `iter()` over `f64`s — slices, arrays,
/// `Vec`s — without consuming it.
#[macro_export]
macro_rules! debug_assert_all_finite {
    ($e:expr) => {{
        let value = $e;
        debug_assert!(
            value.iter().all(|v| v.is_finite()),
            "non-finite value in `{}`",
            stringify!($e),
        );
        value
    }};
}

#[cfg(test)]
mod tests {
    #[test]
    fn passes_finite_values_through() {
        assert_eq!(debug_assert_finite!(1.5_f64 + 2.5), 4.0);
        let v = debug_assert_all_finite!(vec![0.0_f64, 1.0]);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn works_as_a_tail_expression() {
        fn mean(sum: f64, n: usize) -> f64 {
            debug_assert_finite!(sum / n.max(1) as f64)
        }
        assert_eq!(mean(9.0, 3), 3.0);
        assert_eq!(mean(0.0, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-finite value")]
    fn catches_nan_in_debug_builds() {
        let _ = debug_assert_finite!(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "non-finite value in")]
    fn catches_inf_in_slices() {
        let _ = debug_assert_all_finite!([0.0_f64, f64::INFINITY]);
    }
}
