//! One monitoring observation: a timestamped vector of the 13 attributes.

use crate::{AttributeKind, Timestamp, ATTRIBUTE_COUNT};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense vector holding one value per [`AttributeKind`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricVector {
    values: [f64; ATTRIBUTE_COUNT],
}

impl MetricVector {
    /// All-zero vector.
    pub fn zeros() -> Self {
        MetricVector {
            values: [0.0; ATTRIBUTE_COUNT],
        }
    }

    /// Builds a vector from a closure evaluated per attribute.
    pub fn from_fn(mut f: impl FnMut(AttributeKind) -> f64) -> Self {
        let mut v = Self::zeros();
        for a in AttributeKind::ALL {
            v.set(a, f(a));
        }
        v
    }

    /// Value of attribute `a`.
    pub fn get(&self, a: AttributeKind) -> f64 {
        self.values[a.index()]
    }

    /// Sets attribute `a` to `value`.
    pub fn set(&mut self, a: AttributeKind, value: f64) {
        self.values[a.index()] = value;
    }

    /// View of the raw values in canonical attribute order.
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }

    /// Iterator over `(attribute, value)` pairs in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (AttributeKind, f64)> + '_ {
        AttributeKind::ALL.iter().map(move |&a| (a, self.get(a)))
    }

    /// True when every component is finite (no NaN/inf slipped in from a
    /// model or a division by zero in an application model).
    pub fn is_finite(&self) -> bool {
        self.values.iter().all(|v| v.is_finite())
    }
}

impl Default for MetricVector {
    fn default() -> Self {
        Self::zeros()
    }
}

impl Index<AttributeKind> for MetricVector {
    type Output = f64;
    fn index(&self, a: AttributeKind) -> &f64 {
        &self.values[a.index()]
    }
}

impl IndexMut<AttributeKind> for MetricVector {
    fn index_mut(&mut self, a: AttributeKind) -> &mut f64 {
        &mut self.values[a.index()]
    }
}

impl From<[f64; ATTRIBUTE_COUNT]> for MetricVector {
    fn from(values: [f64; ATTRIBUTE_COUNT]) -> Self {
        MetricVector { values }
    }
}

impl fmt::Display for MetricVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, (a, v)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}={v:.2}")?;
        }
        write!(f, "]")
    }
}

/// A timestamped [`MetricVector`] — one row of the monitoring stream for
/// one VM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricSample {
    /// When the sample was collected.
    pub time: Timestamp,
    /// The 13 attribute values.
    pub values: MetricVector,
}

impl MetricSample {
    /// Creates a sample.
    pub fn new(time: Timestamp, values: MetricVector) -> Self {
        MetricSample { time, values }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_round_trip() {
        let mut v = MetricVector::zeros();
        v.set(AttributeKind::NetOut, 12.5);
        assert_eq!(v.get(AttributeKind::NetOut), 12.5);
        assert_eq!(v[AttributeKind::NetOut], 12.5);
        v[AttributeKind::NetOut] = 3.0;
        assert_eq!(v.get(AttributeKind::NetOut), 3.0);
    }

    #[test]
    fn from_fn_fills_all_attributes() {
        let v = MetricVector::from_fn(|a| a.index() as f64);
        for (i, a) in AttributeKind::ALL.iter().enumerate() {
            assert_eq!(v.get(*a), i as f64);
        }
    }

    #[test]
    fn finite_check_detects_nan() {
        let mut v = MetricVector::zeros();
        assert!(v.is_finite());
        v.set(AttributeKind::Load1, f64::NAN);
        assert!(!v.is_finite());
    }

    #[test]
    fn iter_is_in_canonical_order() {
        let v = MetricVector::from_fn(|a| a.index() as f64);
        let collected: Vec<_> = v.iter().map(|(_, x)| x).collect();
        assert_eq!(
            collected,
            (0..ATTRIBUTE_COUNT).map(|i| i as f64).collect::<Vec<_>>()
        );
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!MetricVector::zeros().to_string().is_empty());
    }
}
