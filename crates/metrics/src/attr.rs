//! The attribute vocabulary: the 13 system-level metrics PREPARE collects
//! per VM (paper §II-A and Table I: "VM monitoring (13 attributes)").
//!
//! The exact attribute list is not enumerated in the paper beyond "CPU
//! usage, free memory, network traffic, disk I/O statistics" and the
//! attributes visible in Fig. 3 (`Residual CPU`, `Free Mem`, `Load1`,
//! `NetIn`, `NetOut`); we fill the set out to 13 with the standard
//! `libxenstat`/`/proc` counters a dom0 monitor would export.

use std::fmt;

/// Number of system-level attributes monitored per VM.
pub const ATTRIBUTE_COUNT: usize = 13;

/// One of the 13 per-VM system-level metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AttributeKind {
    /// CPU time spent in user mode, percent of allocation.
    CpuUser,
    /// CPU time spent in system (kernel) mode, percent of allocation.
    CpuSystem,
    /// Total CPU utilization, percent of allocation.
    CpuTotal,
    /// Free guest memory in MB (collected by the in-guest daemon).
    FreeMem,
    /// Guest memory utilization, percent of allocation.
    MemUtil,
    /// Network bytes received per second (KB/s).
    NetIn,
    /// Network bytes transmitted per second (KB/s).
    NetOut,
    /// Disk read throughput (KB/s).
    DiskRead,
    /// Disk write throughput (KB/s).
    DiskWrite,
    /// 1-minute load average.
    Load1,
    /// 5-minute load average.
    Load5,
    /// Major page faults per second.
    PageFaults,
    /// Context switches per second (thousands).
    CtxSwitches,
}

impl AttributeKind {
    /// All attributes, in canonical index order.
    pub const ALL: [AttributeKind; ATTRIBUTE_COUNT] = [
        AttributeKind::CpuUser,
        AttributeKind::CpuSystem,
        AttributeKind::CpuTotal,
        AttributeKind::FreeMem,
        AttributeKind::MemUtil,
        AttributeKind::NetIn,
        AttributeKind::NetOut,
        AttributeKind::DiskRead,
        AttributeKind::DiskWrite,
        AttributeKind::Load1,
        AttributeKind::Load5,
        AttributeKind::PageFaults,
        AttributeKind::CtxSwitches,
    ];

    /// Canonical index of this attribute in [`AttributeKind::ALL`].
    pub fn index(self) -> usize {
        Self::ALL
            .iter()
            .position(|&a| a == self)
            .unwrap_or_else(|| {
                debug_assert!(false, "every AttributeKind variant is listed in ALL");
                0
            })
    }

    /// Attribute at canonical index `i`, if in range.
    pub fn from_index(i: usize) -> Option<AttributeKind> {
        Self::ALL.get(i).copied()
    }

    /// Short human-readable name, matching the paper's figures where they
    /// appear (e.g. `FreeMem`, `NetIn`, `Load1`).
    pub fn name(self) -> &'static str {
        match self {
            AttributeKind::CpuUser => "CpuUser",
            AttributeKind::CpuSystem => "CpuSys",
            AttributeKind::CpuTotal => "CpuTotal",
            AttributeKind::FreeMem => "FreeMem",
            AttributeKind::MemUtil => "MemUtil",
            AttributeKind::NetIn => "NetIn",
            AttributeKind::NetOut => "NetOut",
            AttributeKind::DiskRead => "DiskRead",
            AttributeKind::DiskWrite => "DiskWrite",
            AttributeKind::Load1 => "Load1",
            AttributeKind::Load5 => "Load5",
            AttributeKind::PageFaults => "PageFaults",
            AttributeKind::CtxSwitches => "CtxSwitches",
        }
    }

    /// Whether the attribute measures a resource that PREPARE can scale
    /// directly (CPU or memory); used by the prevention planner when
    /// translating a blamed attribute into an action.
    pub fn scalable_resource(self) -> Option<ScalableResource> {
        match self {
            AttributeKind::CpuUser
            | AttributeKind::CpuSystem
            | AttributeKind::CpuTotal
            | AttributeKind::Load1
            | AttributeKind::Load5
            | AttributeKind::CtxSwitches => Some(ScalableResource::Cpu),
            AttributeKind::FreeMem | AttributeKind::MemUtil | AttributeKind::PageFaults => {
                Some(ScalableResource::Memory)
            }
            AttributeKind::NetIn
            | AttributeKind::NetOut
            | AttributeKind::DiskRead
            | AttributeKind::DiskWrite => None,
        }
    }
}

/// A resource the hypervisor can elastically scale (paper §II-D: "Our
/// system currently supports CPU and memory scaling").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalableResource {
    /// CPU allocation (cap), in percentage points of a core.
    Cpu,
    /// Memory allocation, in MB.
    Memory,
}

impl fmt::Display for AttributeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl fmt::Display for ScalableResource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalableResource::Cpu => f.write_str("cpu"),
            ScalableResource::Memory => f.write_str("memory"),
        }
    }
}

impl crate::persist::Persist for ScalableResource {
    fn store(&self, w: &mut crate::persist::Writer) {
        w.put_u8(match self {
            ScalableResource::Cpu => 0,
            ScalableResource::Memory => 1,
        });
    }
    fn load(r: &mut crate::persist::Reader<'_>) -> Result<Self, crate::persist::PersistError> {
        match r.get_u8()? {
            0 => Ok(ScalableResource::Cpu),
            1 => Ok(ScalableResource::Memory),
            tag => Err(crate::persist::PersistError::BadTag {
                what: "ScalableResource",
                tag,
            }),
        }
    }
}

/// Identifier of a virtual machine (one application component per VM, as in
/// the paper's per-PE / per-tier deployment).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct VmId(pub usize);

impl fmt::Display for VmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vm{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribute_count_matches_paper() {
        assert_eq!(AttributeKind::ALL.len(), 13);
        assert_eq!(ATTRIBUTE_COUNT, 13);
    }

    #[test]
    fn index_round_trips() {
        for (i, a) in AttributeKind::ALL.iter().enumerate() {
            assert_eq!(a.index(), i);
            assert_eq!(AttributeKind::from_index(i), Some(*a));
        }
        assert_eq!(AttributeKind::from_index(ATTRIBUTE_COUNT), None);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = AttributeKind::ALL.iter().map(|a| a.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ATTRIBUTE_COUNT);
    }

    #[test]
    fn cpu_attributes_map_to_cpu_scaling() {
        assert_eq!(
            AttributeKind::CpuTotal.scalable_resource(),
            Some(ScalableResource::Cpu)
        );
        assert_eq!(
            AttributeKind::FreeMem.scalable_resource(),
            Some(ScalableResource::Memory)
        );
        assert_eq!(AttributeKind::NetIn.scalable_resource(), None);
    }

    #[test]
    fn vm_id_displays() {
        assert_eq!(VmId(3).to_string(), "vm3");
    }
}
