//! Simulation time primitives.
//!
//! The whole reproduction runs on a discrete 1-second clock: the paper's
//! sampling interval is 5 s and its actuation latencies range from ~100 ms
//! (resource scaling, rounded to "effective next tick") to 8–15 s (live
//! migration), so second resolution preserves every behaviour the
//! experiments depend on.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, measured in whole seconds since the start of
/// the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(u64);

/// A span of simulated time in whole seconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(u64);

impl Timestamp {
    /// The origin of simulated time.
    pub const ZERO: Timestamp = Timestamp(0);

    /// Creates a timestamp `secs` seconds after the origin.
    pub const fn from_secs(secs: u64) -> Self {
        Timestamp(secs)
    }

    /// Seconds since the origin.
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// The timestamp immediately after this one (one second later).
    #[must_use]
    pub const fn next(self) -> Self {
        Timestamp(self.0 + 1)
    }

    /// Saturating subtraction of a duration.
    #[must_use]
    pub fn saturating_sub(self, d: Duration) -> Self {
        Timestamp(self.0.saturating_sub(d.0))
    }

    /// The duration elapsed since `earlier`, or zero if `earlier` is later.
    #[must_use]
    pub fn since(self, earlier: Timestamp) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl Duration {
    /// The empty duration.
    pub const ZERO: Duration = Duration(0);

    /// Creates a duration of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        Duration(secs)
    }

    /// Length in whole seconds.
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// True when the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<Duration> for Timestamp {
    type Output = Timestamp;
    fn add(self, rhs: Duration) -> Timestamp {
        Timestamp(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Timestamp {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}s", self.0)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}s", self.0)
    }
}

impl From<u64> for Timestamp {
    fn from(secs: u64) -> Self {
        Timestamp(secs)
    }
}

impl From<u64> for Duration {
    fn from(secs: u64) -> Self {
        Duration(secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_arithmetic_round_trips() {
        let t = Timestamp::from_secs(100);
        let d = Duration::from_secs(20);
        assert_eq!((t + d).as_secs(), 120);
        assert_eq!((t + d).since(t), d);
        assert_eq!(t.saturating_sub(Duration::from_secs(200)), Timestamp::ZERO);
    }

    #[test]
    fn since_is_saturating() {
        let early = Timestamp::from_secs(5);
        let late = Timestamp::from_secs(9);
        assert_eq!(early.since(late), Duration::ZERO);
        assert_eq!(late.since(early).as_secs(), 4);
    }

    #[test]
    fn next_advances_one_second() {
        assert_eq!(Timestamp::ZERO.next().as_secs(), 1);
    }

    #[test]
    fn duration_sub_saturates() {
        let a = Duration::from_secs(3);
        let b = Duration::from_secs(10);
        assert_eq!(a - b, Duration::ZERO);
        assert_eq!(b - a, Duration::from_secs(7));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Timestamp::from_secs(7).to_string(), "t=7s");
        assert_eq!(Duration::from_secs(7).to_string(), "7s");
    }
}
