//! Persistent trace storage: a whole monitoring run (per-VM metric series
//! plus the SLO log) as one serializable artifact.
//!
//! Real PREPARE deployments accumulate labeled history across runs — the
//! recurrent-anomaly regime assumes the first occurrence's trace is still
//! around when the second arrives. [`TraceStore`] captures exactly what
//! training needs, round-trips through JSON, and exports per-VM CSV for
//! external analysis/plotting.

use crate::{AttributeKind, MetricSample, SloLog, TimeSeries, VmId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A persisted monitoring run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceStore {
    series: BTreeMap<VmId, TimeSeries>,
    slo: SloLog,
}

/// Errors from serializing or parsing a trace store.
#[derive(Debug)]
pub enum TraceError {
    /// JSON (de)serialization failed.
    Serde(serde_json::Error),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Serde(e) => write!(f, "trace serialization failed: {e}"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Serde(e) => Some(e),
        }
    }
}

impl TraceStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a sample for one VM.
    ///
    /// # Panics
    ///
    /// Panics if the sample is older than the VM's latest stored sample.
    pub fn record_sample(&mut self, vm: VmId, sample: MetricSample) {
        self.series.entry(vm).or_default().push(sample);
    }

    /// Records the SLO status at a timestamp (non-decreasing order).
    pub fn record_slo(&mut self, time: crate::Timestamp, violated: bool) {
        self.slo.record(time, violated);
    }

    /// The SLO log.
    pub fn slo(&self) -> &SloLog {
        &self.slo
    }

    /// The series of one VM, if recorded.
    pub fn series(&self, vm: VmId) -> Option<&TimeSeries> {
        self.series.get(&vm)
    }

    /// All recorded VMs in id order.
    pub fn vms(&self) -> impl Iterator<Item = VmId> + '_ {
        self.series.keys().copied()
    }

    /// Number of VMs with recorded series.
    pub fn n_vms(&self) -> usize {
        self.series.len()
    }

    /// Serializes to JSON.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Serde`] on serialization failure.
    pub fn to_json(&self) -> Result<String, TraceError> {
        serde_json::to_string(self).map_err(TraceError::Serde)
    }

    /// Parses a store from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Serde`] on malformed input.
    pub fn from_json(json: &str) -> Result<Self, TraceError> {
        serde_json::from_str(json).map_err(TraceError::Serde)
    }

    /// Renders one VM's series as CSV (`time_s,<attr...>,slo_violated`).
    /// Returns `None` for an unknown VM.
    pub fn to_csv(&self, vm: VmId) -> Option<String> {
        let series = self.series.get(&vm)?;
        let mut out = String::from("time_s");
        for a in AttributeKind::ALL {
            let _ = write!(out, ",{a}");
        }
        out.push_str(",slo_violated\n");
        for s in series.iter() {
            let _ = write!(out, "{}", s.time.as_secs());
            for a in AttributeKind::ALL {
                let _ = write!(out, ",{:.4}", s.values.get(a));
            }
            let _ = writeln!(out, ",{}", u8::from(self.slo.is_violated_at(s.time)));
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MetricVector, Timestamp};

    fn store() -> TraceStore {
        let mut st = TraceStore::new();
        for i in 0..10u64 {
            let t = Timestamp::from_secs(i * 5);
            let mut v = MetricVector::zeros();
            v.set(AttributeKind::CpuTotal, i as f64 * 10.0);
            st.record_sample(VmId(0), MetricSample::new(t, v));
            st.record_sample(VmId(1), MetricSample::new(t, MetricVector::zeros()));
            st.record_slo(t, i >= 7);
        }
        st
    }

    #[test]
    fn json_round_trip() {
        let st = store();
        let json = st.to_json().expect("serializes");
        let back = TraceStore::from_json(&json).expect("parses");
        assert_eq!(st, back);
        assert_eq!(back.n_vms(), 2);
        assert_eq!(back.series(VmId(0)).map(|s| s.len()), Some(10));
        assert!(back.slo().is_violated_at(Timestamp::from_secs(40)));
    }

    #[test]
    fn malformed_json_is_an_error() {
        let err = TraceStore::from_json("not json").unwrap_err();
        assert!(err.to_string().contains("serialization failed"));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let st = store();
        let csv = st.to_csv(VmId(0)).expect("vm exists");
        let mut lines = csv.lines();
        let header = lines.next().expect("header");
        assert!(header.starts_with("time_s,CpuUser"));
        assert!(header.ends_with("slo_violated"));
        assert_eq!(lines.count(), 10);
        assert!(csv.contains("\n45,"));
        assert!(st.to_csv(VmId(9)).is_none());
    }

    #[test]
    fn vms_listed_in_order() {
        let st = store();
        assert_eq!(st.vms().collect::<Vec<_>>(), vec![VmId(0), VmId(1)]);
    }
}
