//! Persistent trace storage: a whole monitoring run (per-VM metric series
//! plus the SLO log) as one serializable artifact.
//!
//! Real PREPARE deployments accumulate labeled history across runs — the
//! recurrent-anomaly regime assumes the first occurrence's trace is still
//! around when the second arrives. [`TraceStore`] captures exactly what
//! training needs, round-trips through JSON, and exports per-VM CSV for
//! external analysis/plotting.

use crate::json::{JsonError, JsonValue};
use crate::{AttributeKind, MetricSample, MetricVector, SloLog, TimeSeries, Timestamp, VmId};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A persisted monitoring run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceStore {
    series: BTreeMap<VmId, TimeSeries>,
    slo: SloLog,
}

/// Errors from serializing or parsing a trace store.
#[derive(Debug)]
pub enum TraceError {
    /// The JSON text itself was malformed.
    Json(JsonError),
    /// The JSON was well-formed but did not describe a valid trace store
    /// (wrong shape, non-finite metric, out-of-order timestamps, ...).
    Malformed(&'static str),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Json(e) => write!(f, "trace serialization failed: {e}"),
            TraceError::Malformed(what) => {
                write!(f, "trace serialization failed: {what}")
            }
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Json(e) => Some(e),
            TraceError::Malformed(_) => None,
        }
    }
}

impl TraceStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a sample for one VM.
    ///
    /// # Panics
    ///
    /// Panics if the sample is older than the VM's latest stored sample.
    pub fn record_sample(&mut self, vm: VmId, sample: MetricSample) {
        self.series.entry(vm).or_default().push(sample);
    }

    /// Records the SLO status at a timestamp (non-decreasing order).
    pub fn record_slo(&mut self, time: crate::Timestamp, violated: bool) {
        self.slo.record(time, violated);
    }

    /// The SLO log.
    pub fn slo(&self) -> &SloLog {
        &self.slo
    }

    /// The series of one VM, if recorded.
    pub fn series(&self, vm: VmId) -> Option<&TimeSeries> {
        self.series.get(&vm)
    }

    /// All recorded VMs in id order.
    pub fn vms(&self) -> impl Iterator<Item = VmId> + '_ {
        self.series.keys().copied()
    }

    /// Number of VMs with recorded series.
    pub fn n_vms(&self) -> usize {
        self.series.len()
    }

    /// Serializes to JSON. Floats use shortest round-trip formatting, so
    /// a parse of the output reproduces the store bit-for-bit.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Malformed`] if a stored metric value is
    /// non-finite (JSON cannot represent NaN/inf).
    pub fn to_json(&self) -> Result<String, TraceError> {
        let series_fields: Vec<(String, JsonValue)> = self
            .series
            .iter()
            .map(|(vm, ts)| {
                let samples: Vec<JsonValue> = ts
                    .iter()
                    .map(|s| {
                        let values: Vec<JsonValue> = s
                            .values
                            .as_slice()
                            .iter()
                            .map(|&v| JsonValue::Number(v))
                            .collect();
                        JsonValue::Object(vec![
                            ("t".to_string(), timestamp_to_json(s.time)),
                            ("v".to_string(), JsonValue::Array(values)),
                        ])
                    })
                    .collect();
                (vm.0.to_string(), JsonValue::Array(samples))
            })
            .collect();
        let doc = JsonValue::Object(vec![
            ("series".to_string(), JsonValue::Object(series_fields)),
            ("slo".to_string(), slo_to_json(&self.slo)),
        ]);
        doc.to_string()
            .map_err(|_| TraceError::Malformed("non-finite metric value in trace"))
    }

    /// Parses a store from JSON, re-validating every structural invariant
    /// (finite metrics, time-ordered samples, well-formed SLO intervals).
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Json`] on malformed JSON text and
    /// [`TraceError::Malformed`] when the document does not describe a
    /// valid store.
    pub fn from_json(json: &str) -> Result<Self, TraceError> {
        let doc = JsonValue::parse(json).map_err(TraceError::Json)?;
        let series_obj = doc
            .get("series")
            .and_then(JsonValue::as_object)
            .ok_or(TraceError::Malformed("missing 'series' object"))?;
        let mut series = BTreeMap::new();
        for (key, samples_json) in series_obj {
            let vm: usize = key
                .parse()
                .map_err(|_| TraceError::Malformed("VM key is not an integer"))?;
            let samples = samples_json
                .as_array()
                .ok_or(TraceError::Malformed("VM series is not an array"))?;
            let mut ts = TimeSeries::new();
            for s in samples {
                let sample = sample_from_json(s)?;
                if ts.last().is_some_and(|prev| sample.time < prev.time) {
                    return Err(TraceError::Malformed("samples out of time order"));
                }
                ts.push(sample);
            }
            if series.insert(VmId(vm), ts).is_some() {
                return Err(TraceError::Malformed("duplicate VM key"));
            }
        }
        let slo = slo_from_json(
            doc.get("slo")
                .ok_or(TraceError::Malformed("missing 'slo'"))?,
        )?;
        Ok(TraceStore { series, slo })
    }

    /// Renders one VM's series as CSV (`time_s,<attr...>,slo_violated`).
    /// Returns `None` for an unknown VM.
    pub fn to_csv(&self, vm: VmId) -> Option<String> {
        let series = self.series.get(&vm)?;
        let mut out = String::from("time_s");
        for a in AttributeKind::ALL {
            let _ = write!(out, ",{a}");
        }
        out.push_str(",slo_violated\n");
        for s in series.iter() {
            let _ = write!(out, "{}", s.time.as_secs());
            for a in AttributeKind::ALL {
                let _ = write!(out, ",{:.4}", s.values.get(a));
            }
            let _ = writeln!(out, ",{}", u8::from(self.slo.is_violated_at(s.time)));
        }
        Some(out)
    }
}

#[allow(clippy::cast_precision_loss)]
fn timestamp_to_json(t: Timestamp) -> JsonValue {
    JsonValue::Number(t.as_secs() as f64)
}

fn timestamp_from_json(v: &JsonValue) -> Result<Timestamp, TraceError> {
    v.as_u64()
        .map(Timestamp::from_secs)
        .ok_or(TraceError::Malformed(
            "timestamp is not a whole second count",
        ))
}

fn slo_to_json(slo: &SloLog) -> JsonValue {
    let intervals: Vec<JsonValue> = slo
        .raw_intervals()
        .iter()
        .map(|&(start, end)| {
            JsonValue::Array(vec![
                timestamp_to_json(start),
                end.map_or(JsonValue::Null, timestamp_to_json),
            ])
        })
        .collect();
    JsonValue::Object(vec![
        ("intervals".to_string(), JsonValue::Array(intervals)),
        (
            "last_seen".to_string(),
            slo.last_seen().map_or(JsonValue::Null, timestamp_to_json),
        ),
    ])
}

fn slo_from_json(v: &JsonValue) -> Result<SloLog, TraceError> {
    let intervals_json = v
        .get("intervals")
        .and_then(JsonValue::as_array)
        .ok_or(TraceError::Malformed("missing 'slo.intervals' array"))?;
    let mut intervals = Vec::with_capacity(intervals_json.len());
    for iv in intervals_json {
        let pair = iv
            .as_array()
            .ok_or(TraceError::Malformed("SLO interval is not a pair"))?;
        if pair.len() != 2 {
            return Err(TraceError::Malformed("SLO interval is not a pair"));
        }
        let start = timestamp_from_json(&pair[0])?;
        let end = match &pair[1] {
            JsonValue::Null => None,
            other => Some(timestamp_from_json(other)?),
        };
        intervals.push((start, end));
    }
    let last_seen = match v.get("last_seen") {
        None | Some(JsonValue::Null) => None,
        Some(other) => Some(timestamp_from_json(other)?),
    };
    SloLog::from_raw_parts(intervals, last_seen).map_err(TraceError::Malformed)
}

fn sample_from_json(v: &JsonValue) -> Result<MetricSample, TraceError> {
    let time = timestamp_from_json(
        v.get("t")
            .ok_or(TraceError::Malformed("sample missing 't'"))?,
    )?;
    let values_json = v
        .get("v")
        .and_then(JsonValue::as_array)
        .ok_or(TraceError::Malformed("sample missing 'v' array"))?;
    if values_json.len() != AttributeKind::ALL.len() {
        return Err(TraceError::Malformed("sample has wrong attribute count"));
    }
    let mut values = MetricVector::zeros();
    for (a, vj) in AttributeKind::ALL.into_iter().zip(values_json) {
        let value = vj
            .as_number()
            .ok_or(TraceError::Malformed("metric value is not a number"))?;
        values.set(a, value);
    }
    Ok(MetricSample::new(time, values))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MetricVector, Timestamp};

    fn store() -> TraceStore {
        let mut st = TraceStore::new();
        for i in 0..10u64 {
            let t = Timestamp::from_secs(i * 5);
            let mut v = MetricVector::zeros();
            v.set(AttributeKind::CpuTotal, i as f64 * 10.0);
            st.record_sample(VmId(0), MetricSample::new(t, v));
            st.record_sample(VmId(1), MetricSample::new(t, MetricVector::zeros()));
            st.record_slo(t, i >= 7);
        }
        st
    }

    #[test]
    fn json_round_trip() {
        let st = store();
        let json = st.to_json().expect("serializes");
        let back = TraceStore::from_json(&json).expect("parses");
        assert_eq!(st, back);
        assert_eq!(back.n_vms(), 2);
        assert_eq!(back.series(VmId(0)).map(|s| s.len()), Some(10));
        assert!(back.slo().is_violated_at(Timestamp::from_secs(40)));
    }

    #[test]
    fn malformed_json_is_an_error() {
        let err = TraceStore::from_json("not json").unwrap_err();
        assert!(err.to_string().contains("serialization failed"));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let st = store();
        let csv = st.to_csv(VmId(0)).expect("vm exists");
        let mut lines = csv.lines();
        let header = lines.next().expect("header");
        assert!(header.starts_with("time_s,CpuUser"));
        assert!(header.ends_with("slo_violated"));
        assert_eq!(lines.count(), 10);
        assert!(csv.contains("\n45,"));
        assert!(st.to_csv(VmId(9)).is_none());
    }

    #[test]
    fn vms_listed_in_order() {
        let st = store();
        assert_eq!(st.vms().collect::<Vec<_>>(), vec![VmId(0), VmId(1)]);
    }
}
