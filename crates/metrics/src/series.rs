//! Time-series storage and windowed statistics over metric samples.

use crate::persist::{Persist, PersistError, Reader, Writer};
use crate::{mean, std_dev, AttributeKind, MetricSample, MetricVector, Timestamp};
use std::collections::VecDeque;

/// An append-only sequence of [`MetricSample`]s for one VM.
///
/// Samples must be appended in non-decreasing timestamp order; this is the
/// shape a real dom0 monitor produces and everything downstream (labeling,
/// training, validation windows) relies on it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimeSeries {
    samples: Vec<MetricSample>,
}

impl TimeSeries {
    /// Empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a sample.
    ///
    /// # Panics
    ///
    /// Panics if `sample.time` precedes the last appended timestamp.
    pub fn push(&mut self, sample: MetricSample) {
        if let Some(last) = self.samples.last() {
            assert!(
                sample.time >= last.time,
                "samples must be appended in time order ({} < {})",
                sample.time,
                last.time
            );
        }
        self.samples.push(sample);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples are stored.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// All samples in time order.
    pub fn samples(&self) -> &[MetricSample] {
        &self.samples
    }

    /// Iterator over samples.
    pub fn iter(&self) -> std::slice::Iter<'_, MetricSample> {
        self.samples.iter()
    }

    /// The most recent sample, if any.
    pub fn last(&self) -> Option<&MetricSample> {
        self.samples.last()
    }

    /// Samples whose timestamps fall in `[from, to)`.
    pub fn range(&self, from: Timestamp, to: Timestamp) -> &[MetricSample] {
        let start = self.samples.partition_point(|s| s.time < from);
        let end = self.samples.partition_point(|s| s.time < to);
        &self.samples[start..end]
    }

    /// The values of one attribute across the whole series.
    pub fn attribute_values(&self, a: AttributeKind) -> Vec<f64> {
        self.samples.iter().map(|s| s.values.get(a)).collect()
    }

    /// Per-attribute min/max over the whole series — the fit input for
    /// [`crate::VectorDiscretizer`]. Returns `None` for an empty series.
    pub fn attribute_bounds(&self) -> Option<(MetricVector, MetricVector)> {
        let first = self.samples.first()?;
        let mut lo = first.values;
        let mut hi = first.values;
        for s in &self.samples[1..] {
            for a in AttributeKind::ALL {
                let v = s.values.get(a);
                if v < lo.get(a) {
                    lo.set(a, v);
                }
                if v > hi.get(a) {
                    hi.set(a, v);
                }
            }
        }
        Some((lo, hi))
    }

    /// Summary statistics of one attribute over `[from, to)`.
    pub fn stats(&self, a: AttributeKind, from: Timestamp, to: Timestamp) -> SeriesStats {
        let vals: Vec<f64> = self
            .range(from, to)
            .iter()
            .map(|s| s.values.get(a))
            .collect();
        SeriesStats::from_values(&vals)
    }
}

impl FromIterator<MetricSample> for TimeSeries {
    fn from_iter<I: IntoIterator<Item = MetricSample>>(iter: I) -> Self {
        let mut ts = TimeSeries::new();
        for s in iter {
            ts.push(s);
        }
        ts
    }
}

impl Extend<MetricSample> for TimeSeries {
    fn extend<I: IntoIterator<Item = MetricSample>>(&mut self, iter: I) {
        for s in iter {
            self.push(s);
        }
    }
}

impl<'a> IntoIterator for &'a TimeSeries {
    type Item = &'a MetricSample;
    type IntoIter = std::slice::Iter<'a, MetricSample>;
    fn into_iter(self) -> Self::IntoIter {
        self.samples.iter()
    }
}

/// Summary statistics of a window of attribute values.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SeriesStats {
    /// Number of values in the window.
    pub count: usize,
    /// Arithmetic mean (0 when empty).
    pub mean: f64,
    /// Population standard deviation (0 when empty).
    pub std_dev: f64,
    /// Minimum (0 when empty).
    pub min: f64,
    /// Maximum (0 when empty).
    pub max: f64,
}

impl SeriesStats {
    /// Computes statistics from raw values.
    pub fn from_values(vals: &[f64]) -> Self {
        if vals.is_empty() {
            return SeriesStats::default();
        }
        SeriesStats {
            count: vals.len(),
            mean: mean(vals),
            std_dev: std_dev(vals),
            min: vals.iter().copied().fold(f64::INFINITY, f64::min),
            max: vals.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

/// A fixed-capacity sliding window of scalar observations, used for
/// look-back/look-ahead resource-usage comparisons during prevention
/// validation (§II-D) and for alert voting.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SlidingWindow {
    capacity: usize,
    values: VecDeque<f64>,
}

impl SlidingWindow {
    /// Creates a window holding at most `capacity` values.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "sliding window capacity must be positive");
        SlidingWindow {
            capacity,
            values: VecDeque::with_capacity(capacity),
        }
    }

    /// Appends a value, evicting the oldest when full.
    pub fn push(&mut self, v: f64) {
        if self.values.len() == self.capacity {
            self.values.pop_front();
        }
        self.values.push_back(v);
    }

    /// Number of stored values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// True when at capacity.
    pub fn is_full(&self) -> bool {
        self.values.len() == self.capacity
    }

    /// Maximum number of stored values.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Mean of the stored values (0 when empty).
    pub fn mean(&self) -> f64 {
        let (a, b) = self.values.as_slices();
        if self.values.is_empty() {
            0.0
        } else {
            (a.iter().sum::<f64>() + b.iter().sum::<f64>()) / self.values.len() as f64
        }
    }

    /// Iterator over stored values, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        self.values.iter().copied()
    }

    /// Clears the window.
    pub fn clear(&mut self) {
        self.values.clear();
    }
}

impl Persist for TimeSeries {
    fn store(&self, w: &mut Writer) {
        self.samples.store(w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let samples: Vec<MetricSample> = Persist::load(r)?;
        if samples.windows(2).any(|p| p[1].time < p[0].time) {
            return Err(PersistError::Invalid("TimeSeries samples out of order"));
        }
        Ok(TimeSeries { samples })
    }
}

impl Persist for SlidingWindow {
    fn store(&self, w: &mut Writer) {
        w.put_usize(self.capacity);
        self.values.store(w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let capacity = r.get_usize()?;
        let values: VecDeque<f64> = Persist::load(r)?;
        if capacity == 0 || values.len() > capacity {
            return Err(PersistError::Invalid("SlidingWindow capacity"));
        }
        Ok(SlidingWindow { capacity, values })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricVector;

    fn sample(t: u64, cpu: f64) -> MetricSample {
        let mut v = MetricVector::zeros();
        v.set(AttributeKind::CpuTotal, cpu);
        MetricSample::new(Timestamp::from_secs(t), v)
    }

    #[test]
    fn push_and_range() {
        let ts: TimeSeries = (0..10).map(|t| sample(t * 5, t as f64)).collect();
        assert_eq!(ts.len(), 10);
        let r = ts.range(Timestamp::from_secs(10), Timestamp::from_secs(25));
        assert_eq!(r.len(), 3); // t = 10, 15, 20
        assert_eq!(r[0].time.as_secs(), 10);
        assert_eq!(r.last().unwrap().time.as_secs(), 20);
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn push_rejects_out_of_order() {
        let mut ts = TimeSeries::new();
        ts.push(sample(10, 0.0));
        ts.push(sample(5, 0.0));
    }

    #[test]
    fn bounds_cover_all_samples() {
        let ts: TimeSeries = [sample(0, 3.0), sample(5, 9.0), sample(10, 1.0)]
            .into_iter()
            .collect();
        let (lo, hi) = ts.attribute_bounds().unwrap();
        assert_eq!(lo.get(AttributeKind::CpuTotal), 1.0);
        assert_eq!(hi.get(AttributeKind::CpuTotal), 9.0);
    }

    #[test]
    fn empty_series_has_no_bounds() {
        assert!(TimeSeries::new().attribute_bounds().is_none());
    }

    #[test]
    fn stats_over_window() {
        let ts: TimeSeries = (0..5).map(|t| sample(t, 2.0 * t as f64)).collect();
        let st = ts.stats(
            AttributeKind::CpuTotal,
            Timestamp::ZERO,
            Timestamp::from_secs(5),
        );
        assert_eq!(st.count, 5);
        assert_eq!(st.mean, 4.0);
        assert_eq!(st.min, 0.0);
        assert_eq!(st.max, 8.0);
    }

    #[test]
    fn series_and_window_round_trip() {
        let ts: TimeSeries = (0..10).map(|t| sample(t * 5, t as f64)).collect();
        let back: TimeSeries = crate::persist::from_bytes(&crate::persist::to_bytes(&ts)).unwrap();
        assert_eq!(back, ts);
        let mut w = SlidingWindow::new(3);
        w.push(1.0);
        w.push(-0.0);
        let back: SlidingWindow =
            crate::persist::from_bytes(&crate::persist::to_bytes(&w)).unwrap();
        assert_eq!(back, w);
        assert_eq!(back.capacity(), 3);
    }

    #[test]
    fn series_load_rejects_out_of_order_samples() {
        // Hand-craft a buffer with two samples whose times are inverted.
        let mut wtr = crate::persist::Writer::new();
        vec![sample(10, 0.0), sample(5, 0.0)].store(&mut wtr);
        let res: Result<TimeSeries, _> = crate::persist::from_bytes(&wtr.into_bytes());
        assert!(matches!(res, Err(PersistError::Invalid(_))));
    }

    #[test]
    fn sliding_window_evicts_oldest() {
        let mut w = SlidingWindow::new(3);
        for v in [1.0, 2.0, 3.0, 4.0] {
            w.push(v);
        }
        assert!(w.is_full());
        assert_eq!(w.iter().collect::<Vec<_>>(), vec![2.0, 3.0, 4.0]);
        assert!((w.mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn sliding_window_rejects_zero_capacity() {
        let _ = SlidingWindow::new(0);
    }
}
