//! Small statistics helpers shared across the workspace (mean, standard
//! deviation, percentiles). Implemented here so no external stats crate is
//! needed.

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation; `0.0` for fewer than two values.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64;
    var.sqrt()
}

/// Mean and standard deviation in one pass-friendly call.
pub fn mean_std(xs: &[f64]) -> (f64, f64) {
    (mean(xs), std_dev(xs))
}

/// Percentile (nearest-rank, `p` in `[0, 100]`); `0.0` for an empty slice.
/// NaN values sort last under `total_cmp`, so they only surface at high
/// percentiles.
///
/// # Panics
///
/// Panics if `p` is not within `[0, 100]`.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank =
        crate::debug_assert_finite!((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn mean_and_std_of_constant() {
        let xs = [5.0; 10];
        assert_eq!(mean(&xs), 5.0);
        assert_eq!(std_dev(&xs), 0.0);
    }

    #[test]
    fn std_of_known_sequence() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_endpoints() {
        let xs = [3.0, 1.0, 2.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 3.0);
        assert_eq!(percentile(&xs, 50.0), 2.0);
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn percentile_rejects_out_of_range() {
        percentile(&[1.0], 101.0);
    }
}
