//! Struct-of-arrays metric storage for fleet-scale monitoring.
//!
//! The per-VM [`crate::TimeSeries`] keeps an array-of-structs
//! `Vec<MetricSample>` per VM — fine for tens of VMs, but at 10k–100k VMs
//! the monitor's hot loops (ingest one sample per VM per round, staleness
//! sweeps, windowed discretization) each walk thousands of tiny
//! heap-separated vectors. [`SoaMetricStore`] transposes that layout:
//! one arena per store, slot-indexed like the trainer arenas, with every
//! `(attribute, ring-position)` column stored contiguously across slots.
//! When the fleet samples synchronously — all slots at the same ring
//! position — an ingest round writes 13 contiguous column segments
//! instead of `vms` scattered vectors, and per-attribute scans read
//! sequential memory.
//!
//! Semantics are pinned by a naive per-slot `Vec` reference model in the
//! test suite: every operation (push, bulk backfill, clear, staleness
//! query) must match the reference bit-for-bit under randomized
//! interleavings.

use crate::{Duration, MetricSample, MetricVector, Timestamp, ATTRIBUTE_COUNT};

/// Fixed-capacity ring-buffered metric windows for `slots` VMs, stored
/// struct-of-arrays.
///
/// Layout: `values[(attr * capacity + pos) * slots + slot]` — for a given
/// attribute and ring position, all slots are adjacent. `times` is shared
/// across attributes: `times[pos * slots + slot]`.
#[derive(Debug, Clone, PartialEq)]
pub struct SoaMetricStore {
    slots: usize,
    capacity: usize,
    values: Vec<f64>,
    times: Vec<u64>,
    len: Vec<usize>,
    head: Vec<usize>,
    last_ingest: Vec<Option<u64>>,
}

impl SoaMetricStore {
    /// A store for `slots` VMs, each keeping a window of the most recent
    /// `capacity` samples. `capacity` must be non-zero.
    pub fn new(slots: usize, capacity: usize) -> Self {
        let cap = capacity.max(1);
        SoaMetricStore {
            slots,
            capacity: cap,
            values: vec![0.0; ATTRIBUTE_COUNT * cap * slots],
            times: vec![0; cap * slots],
            len: vec![0; slots],
            head: vec![0; slots],
            last_ingest: vec![None; slots],
        }
    }

    /// Number of slots.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Ring capacity (window length) per slot.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of samples currently held for `slot`.
    pub fn len(&self, slot: usize) -> usize {
        self.len.get(slot).copied().unwrap_or(0)
    }

    /// True when `slot` holds no samples.
    pub fn is_empty(&self, slot: usize) -> bool {
        self.len(slot) == 0
    }

    /// Ring position of the `i`-th oldest entry of `slot`.
    fn pos_of(&self, slot: usize, i: usize) -> usize {
        let head = self.head.get(slot).copied().unwrap_or(0);
        (head + i) % self.capacity
    }

    fn write_entry(&mut self, slot: usize, pos: usize, time: u64, v: &MetricVector) {
        if let Some(t) = self.times.get_mut(pos * self.slots + slot) {
            *t = time;
        }
        for (a, &val) in v.as_slice().iter().enumerate() {
            let idx = (a * self.capacity + pos) * self.slots + slot;
            if let Some(cell) = self.values.get_mut(idx) {
                *cell = val;
            }
        }
    }

    /// Appends one sample to `slot`, evicting the oldest entry once the
    /// window is full. Timestamps are expected to be non-decreasing per
    /// slot (the monitor's sampling clock only moves forward).
    // xtask: hot-path
    pub fn push(&mut self, slot: usize, time: Timestamp, v: &MetricVector) {
        let (pos, advance) = {
            let len = self.len.get(slot).copied().unwrap_or(0);
            if len < self.capacity {
                (self.pos_of(slot, len), false)
            } else {
                (self.pos_of(slot, 0), true)
            }
        };
        self.write_entry(slot, pos, time.as_secs(), v);
        if advance {
            if let Some(h) = self.head.get_mut(slot) {
                *h = (*h + 1) % self.capacity;
            }
        } else if let Some(l) = self.len.get_mut(slot) {
            *l += 1;
        }
        if let Some(li) = self.last_ingest.get_mut(slot) {
            *li = Some(time.as_secs());
        }
    }

    /// Ingests `count` copies of the same vector at `start`,
    /// `start + interval`, …, exactly as if [`SoaMetricStore::push`] had
    /// been called `count` times — but in closed form: once `count`
    /// reaches the window capacity the cost is `O(capacity)` regardless
    /// of how long the span was. This is the sparse tick path's backfill
    /// primitive for quiescent VMs whose sample vector is provably
    /// constant over the skipped rounds.
    pub fn fill_repeat(
        &mut self,
        slot: usize,
        start: Timestamp,
        interval: Duration,
        count: usize,
        v: &MetricVector,
    ) {
        if count == 0 {
            return;
        }
        if count < self.capacity {
            for i in 0..count {
                let t = Timestamp::from_secs(start.as_secs() + i as u64 * interval.as_secs());
                self.push(slot, t, v);
            }
            return;
        }
        // The whole window ends up holding the last `capacity` of the new
        // samples; replay where repeated pushes would have left the head.
        let old_len = self.len.get(slot).copied().unwrap_or(0);
        let overwrites = old_len + count - self.capacity;
        let old_head = self.head.get(slot).copied().unwrap_or(0);
        let new_head = (old_head + overwrites) % self.capacity;
        let first_kept = count - self.capacity;
        for k in 0..self.capacity {
            let pos = (new_head + k) % self.capacity;
            let t = start.as_secs() + (first_kept + k) as u64 * interval.as_secs();
            self.write_entry(slot, pos, t, v);
        }
        if let Some(h) = self.head.get_mut(slot) {
            *h = new_head;
        }
        if let Some(l) = self.len.get_mut(slot) {
            *l = self.capacity;
        }
        if let Some(li) = self.last_ingest.get_mut(slot) {
            *li = Some(start.as_secs() + (count as u64 - 1) * interval.as_secs());
        }
    }

    /// The `i`-th oldest sample of `slot`, if present.
    pub fn get(&self, slot: usize, i: usize) -> Option<MetricSample> {
        if slot >= self.slots || i >= self.len(slot) {
            return None;
        }
        let pos = self.pos_of(slot, i);
        let time = self.times.get(pos * self.slots + slot).copied()?;
        let mut v = MetricVector::zeros();
        for (a, attr) in crate::AttributeKind::ALL.iter().enumerate() {
            let idx = (a * self.capacity + pos) * self.slots + slot;
            v.set(*attr, self.values.get(idx).copied().unwrap_or(0.0));
        }
        Some(MetricSample::new(Timestamp::from_secs(time), v))
    }

    /// The most recent sample of `slot`, if any.
    pub fn latest(&self, slot: usize) -> Option<MetricSample> {
        let len = self.len(slot);
        if len == 0 {
            None
        } else {
            self.get(slot, len - 1)
        }
    }

    /// Iterates `slot`'s samples oldest → newest.
    pub fn iter_slot(&self, slot: usize) -> impl Iterator<Item = MetricSample> + '_ {
        (0..self.len(slot)).filter_map(move |i| self.get(slot, i))
    }

    /// The contiguous cross-slot column for one `(attribute, ring
    /// position)` cell: `slice[slot]` is that slot's value at ring
    /// position `pos`. Positions are physical (not head-relative);
    /// synchronized fleets keep all heads equal so a sampling round's
    /// writes land in exactly one such column per attribute.
    pub fn column_slice(&self, attr: usize, pos: usize) -> &[f64] {
        let start = (attr * self.capacity + pos) * self.slots;
        self.values.get(start..start + self.slots).unwrap_or(&[])
    }

    /// Drops all samples held for `slot` (VM evicted / recycled). The
    /// staleness clock resets too.
    pub fn clear_slot(&mut self, slot: usize) {
        if let Some(l) = self.len.get_mut(slot) {
            *l = 0;
        }
        if let Some(h) = self.head.get_mut(slot) {
            *h = 0;
        }
        if let Some(li) = self.last_ingest.get_mut(slot) {
            *li = None;
        }
    }

    /// Time of the most recent ingest into `slot`, if any.
    pub fn last_ingest(&self, slot: usize) -> Option<Timestamp> {
        self.last_ingest
            .get(slot)
            .copied()
            .flatten()
            .map(Timestamp::from_secs)
    }

    /// Slots whose most recent ingest is older than `budget` at `now`
    /// (or that never ingested), ascending. This is the monitor's
    /// staleness sweep: one linear pass over two small arrays instead of
    /// chasing per-VM heap allocations.
    pub fn stale_slots(&self, now: Timestamp, budget: Duration) -> Vec<usize> {
        self.last_ingest
            .iter()
            .enumerate()
            .filter(|(_, li)| match li {
                Some(t) => now.as_secs().saturating_sub(*t) > budget.as_secs(),
                None => true,
            })
            .map(|(slot, _)| slot)
            .collect()
    }

    /// Folds every slot's window (oldest → newest, head-normalized) and
    /// staleness clock into `fp`. Two stores fingerprint equal iff their
    /// logical contents are bit-identical, regardless of physical head
    /// positions.
    pub fn fingerprint_into(&self, fp: &mut crate::Fingerprint64) {
        fp.write_usize(self.slots);
        fp.write_usize(self.capacity);
        for slot in 0..self.slots {
            fp.write_usize(self.len(slot));
            for s in self.iter_slot(slot) {
                fp.write_u64(s.time.as_secs());
                for &v in s.values.as_slice() {
                    fp.write_f64(v);
                }
            }
            match self.last_ingest(slot) {
                Some(t) => {
                    fp.write_u8(1);
                    fp.write_u64(t.as_secs());
                }
                None => fp.write_u8(0),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Fingerprint64;
    use proptest::prelude::*;

    /// The reference model: per-slot growable `Vec`s with front eviction.
    struct NaiveStore {
        capacity: usize,
        slots: Vec<Vec<MetricSample>>,
        last_ingest: Vec<Option<Timestamp>>,
    }

    impl NaiveStore {
        fn new(slots: usize, capacity: usize) -> Self {
            NaiveStore {
                capacity: capacity.max(1),
                slots: vec![Vec::new(); slots],
                last_ingest: vec![None; slots],
            }
        }

        fn push(&mut self, slot: usize, time: Timestamp, v: &MetricVector) {
            let w = &mut self.slots[slot];
            w.push(MetricSample::new(time, *v));
            if w.len() > self.capacity {
                w.remove(0);
            }
            self.last_ingest[slot] = Some(time);
        }

        fn fill_repeat(
            &mut self,
            slot: usize,
            start: Timestamp,
            interval: Duration,
            count: usize,
            v: &MetricVector,
        ) {
            for i in 0..count {
                let t = Timestamp::from_secs(start.as_secs() + i as u64 * interval.as_secs());
                self.push(slot, t, v);
            }
        }

        fn clear_slot(&mut self, slot: usize) {
            self.slots[slot].clear();
            self.last_ingest[slot] = None;
        }

        fn stale_slots(&self, now: Timestamp, budget: Duration) -> Vec<usize> {
            self.last_ingest
                .iter()
                .enumerate()
                .filter(|(_, li)| match li {
                    Some(t) => now.as_secs().saturating_sub(t.as_secs()) > budget.as_secs(),
                    None => true,
                })
                .map(|(slot, _)| slot)
                .collect()
        }
    }

    fn assert_equivalent(soa: &SoaMetricStore, naive: &NaiveStore) {
        for (slot, window) in naive.slots.iter().enumerate() {
            assert_eq!(soa.len(slot), window.len(), "slot {slot} length");
            let got: Vec<MetricSample> = soa.iter_slot(slot).collect();
            assert_eq!(&got, window, "slot {slot} contents");
            assert_eq!(
                soa.latest(slot),
                window.last().copied(),
                "slot {slot} latest"
            );
            assert_eq!(soa.last_ingest(slot), naive.last_ingest[slot]);
        }
    }

    fn vec_from_seed(seed: u64) -> MetricVector {
        // splitmix64 per attribute; values in [0, 100).
        MetricVector::from_fn(|a| {
            let mut z = seed
                .wrapping_add(a.index() as u64)
                .wrapping_mul(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            (z ^ (z >> 31)) as f64 % 100.0
        })
    }

    #[test]
    fn push_evicts_oldest_when_full() {
        let mut soa = SoaMetricStore::new(2, 3);
        let mut naive = NaiveStore::new(2, 3);
        for i in 0..7u64 {
            let v = vec_from_seed(i);
            soa.push(0, Timestamp::from_secs(i * 5), &v);
            naive.push(0, Timestamp::from_secs(i * 5), &v);
        }
        assert_equivalent(&soa, &naive);
        assert_eq!(soa.len(0), 3);
        assert_eq!(soa.get(0, 0).unwrap().time.as_secs(), 20);
        assert_eq!(soa.len(1), 0);
    }

    #[test]
    fn fill_repeat_matches_repeated_pushes_across_the_wrap() {
        for warmup in [0usize, 1, 3, 5] {
            for count in [0usize, 1, 4, 5, 6, 17] {
                let mut soa = SoaMetricStore::new(1, 5);
                let mut naive = NaiveStore::new(1, 5);
                for i in 0..warmup {
                    let v = vec_from_seed(i as u64);
                    soa.push(0, Timestamp::from_secs(i as u64 * 5), &v);
                    naive.push(0, Timestamp::from_secs(i as u64 * 5), &v);
                }
                let start = Timestamp::from_secs(warmup as u64 * 5);
                let v = vec_from_seed(99);
                soa.fill_repeat(0, start, Duration::from_secs(5), count, &v);
                naive.fill_repeat(0, start, Duration::from_secs(5), count, &v);
                assert_equivalent(&soa, &naive);
            }
        }
    }

    #[test]
    fn column_slice_is_cross_slot() {
        let mut soa = SoaMetricStore::new(4, 2);
        for slot in 0..4 {
            let v = vec_from_seed(slot as u64);
            soa.push(slot, Timestamp::ZERO, &v);
        }
        // All heads at 0, so ring position 0 holds every slot's first sample.
        let col = soa.column_slice(0, 0);
        assert_eq!(col.len(), 4);
        for (slot, &got) in col.iter().enumerate() {
            assert_eq!(got, vec_from_seed(slot as u64).as_slice()[0]);
        }
    }

    #[test]
    fn staleness_sweep_matches_reference() {
        let mut soa = SoaMetricStore::new(3, 4);
        let mut naive = NaiveStore::new(3, 4);
        let v = vec_from_seed(7);
        soa.push(0, Timestamp::from_secs(10), &v);
        naive.push(0, Timestamp::from_secs(10), &v);
        soa.push(1, Timestamp::from_secs(40), &v);
        naive.push(1, Timestamp::from_secs(40), &v);
        let now = Timestamp::from_secs(50);
        let budget = Duration::from_secs(15);
        assert_eq!(soa.stale_slots(now, budget), vec![0, 2]);
        assert_eq!(soa.stale_slots(now, budget), naive.stale_slots(now, budget));
    }

    #[test]
    fn clear_slot_resets_window_and_staleness() {
        let mut soa = SoaMetricStore::new(2, 4);
        let mut naive = NaiveStore::new(2, 4);
        let v = vec_from_seed(1);
        soa.push(0, Timestamp::from_secs(5), &v);
        naive.push(0, Timestamp::from_secs(5), &v);
        soa.clear_slot(0);
        naive.clear_slot(0);
        assert_equivalent(&soa, &naive);
        assert!(soa.is_empty(0));
        assert!(soa.last_ingest(0).is_none());
    }

    #[test]
    fn fingerprint_is_head_position_independent() {
        // Same logical contents reached via different physical histories.
        let mut a = SoaMetricStore::new(1, 3);
        let mut b = SoaMetricStore::new(1, 3);
        let v = vec_from_seed(3);
        // `a` wraps twice before reaching [t=15, t=20, t=25].
        for t in [0u64, 5, 10, 15, 20, 25] {
            a.push(0, Timestamp::from_secs(t), &v);
        }
        // `b` wraps five times to the same logical window.
        for t in [0u64, 1, 2, 3, 4, 15, 20, 25] {
            b.push(0, Timestamp::from_secs(t), &v);
        }
        let mut fa = Fingerprint64::new();
        a.fingerprint_into(&mut fa);
        let mut fb = Fingerprint64::new();
        b.fingerprint_into(&mut fb);
        assert_eq!(fa.finish(), fb.finish());
    }

    #[test]
    fn fingerprint_of_empty_windows_is_well_defined() {
        // A never-used slot and a pushed-then-cleared slot are logically
        // identical (no samples, no staleness clock) and must fingerprint
        // equal — and differ from a slot holding one sample.
        let fresh = SoaMetricStore::new(2, 3);
        let mut cleared = SoaMetricStore::new(2, 3);
        cleared.push(0, Timestamp::from_secs(7), &vec_from_seed(7));
        cleared.clear_slot(0);
        let mut fa = Fingerprint64::new();
        fresh.fingerprint_into(&mut fa);
        let mut fb = Fingerprint64::new();
        cleared.fingerprint_into(&mut fb);
        assert_eq!(fa.finish(), fb.finish());

        let mut occupied = SoaMetricStore::new(2, 3);
        occupied.push(0, Timestamp::from_secs(7), &vec_from_seed(7));
        let mut fc = Fingerprint64::new();
        occupied.fingerprint_into(&mut fc);
        assert_ne!(fa.finish(), fc.finish());
    }

    #[test]
    fn fingerprint_at_exact_capacity_wrap_boundary() {
        // Exactly-full window with head 0 vs the same logical window
        // reached by wrapping exactly once (head 1): equal fingerprints.
        let v = vec_from_seed(11);
        let mut full = SoaMetricStore::new(1, 3);
        for t in [5u64, 10, 15] {
            full.push(0, Timestamp::from_secs(t), &v);
        }
        let mut wrapped = SoaMetricStore::new(1, 3);
        for t in [0u64, 5, 10, 15] {
            wrapped.push(0, Timestamp::from_secs(t), &v);
        }
        assert_eq!(full.len(0), 3);
        assert_eq!(wrapped.len(0), 3);
        let mut fa = Fingerprint64::new();
        full.fingerprint_into(&mut fa);
        let mut fb = Fingerprint64::new();
        wrapped.fingerprint_into(&mut fb);
        assert_eq!(fa.finish(), fb.finish());

        // One sample short of capacity is a different logical window even
        // though the stored cells for the missing position may coincide.
        let mut short = SoaMetricStore::new(1, 3);
        for t in [5u64, 10] {
            short.push(0, Timestamp::from_secs(t), &v);
        }
        let mut fc = Fingerprint64::new();
        short.fingerprint_into(&mut fc);
        assert_ne!(fa.finish(), fc.finish());
    }

    #[test]
    fn fingerprint_separates_single_attribute_lanes() {
        // The same scalar written into different attribute lanes must not
        // collide: the fingerprint walks lanes in a fixed order.
        let attrs = crate::AttributeKind::ALL;
        let mut lane_a = MetricVector::zeros();
        lane_a.set(attrs[0], 42.5);
        let mut lane_b = MetricVector::zeros();
        lane_b.set(attrs[1], 42.5);

        let mut sa = SoaMetricStore::new(1, 2);
        sa.push(0, Timestamp::ZERO, &lane_a);
        let mut sb = SoaMetricStore::new(1, 2);
        sb.push(0, Timestamp::ZERO, &lane_b);
        let mut fa = Fingerprint64::new();
        sa.fingerprint_into(&mut fa);
        let mut fb = Fingerprint64::new();
        sb.fingerprint_into(&mut fb);
        assert_ne!(fa.finish(), fb.finish());

        // And a single-lane store round-trips through get() exactly.
        let got = sa.get(0, 0).expect("sample present");
        assert_eq!(got.values.as_slice(), lane_a.as_slice());
    }

    proptest! {
        #[test]
        fn soa_matches_naive_reference_under_random_ops(
            ops in proptest::collection::vec(
                (0usize..4, 0usize..4, 0u64..50, 0usize..9, 0u64..1_000_000),
                1..60,
            )
        ) {
            // op codes: 0-1 push, 2 fill_repeat, 3 clear_slot (stale query
            // checked after every op).
            const SLOTS: usize = 4;
            const CAP: usize = 5;
            let mut soa = SoaMetricStore::new(SLOTS, CAP);
            let mut naive = NaiveStore::new(SLOTS, CAP);
            let mut clock: u64 = 0;
            for (kind, slot, dt, count, seed) in ops {
                clock += dt;
                let now = Timestamp::from_secs(clock);
                let v = vec_from_seed(seed);
                match kind {
                    0 | 1 => {
                        soa.push(slot, now, &v);
                        naive.push(slot, now, &v);
                    }
                    2 => {
                        let iv = Duration::from_secs(5);
                        soa.fill_repeat(slot, now, iv, count, &v);
                        naive.fill_repeat(slot, now, iv, count, &v);
                        clock += (count as u64).saturating_sub(1) * 5;
                    }
                    _ => {
                        soa.clear_slot(slot);
                        naive.clear_slot(slot);
                    }
                }
                let budget = Duration::from_secs(15);
                let now = Timestamp::from_secs(clock);
                prop_assert_eq!(
                    soa.stale_slots(now, budget),
                    naive.stale_slots(now, budget)
                );
            }
            for (slot, window) in naive.slots.iter().enumerate() {
                let got: Vec<MetricSample> = soa.iter_slot(slot).collect();
                prop_assert_eq!(&got, window);
                prop_assert_eq!(soa.last_ingest(slot), naive.last_ingest[slot]);
            }
        }
    }
}
