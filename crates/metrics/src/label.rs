//! Automatic runtime data labeling (paper §II-B).
//!
//! "PREPARE supports automatic runtime data labeling by matching the
//! timestamps of system-level metric measurements and SLO violation logs."
//! [`SloLog`] records violation intervals as the application reports them;
//! [`Labeler`] then tags any metric sample *normal*/*abnormal* by timestamp.

use crate::persist::{Persist, PersistError, Reader, Writer};
use crate::{Duration, MetricSample, Timestamp};
use std::fmt;

/// Classification label of a system state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Label {
    /// SLO satisfied at the sample's timestamp.
    Normal,
    /// SLO violated at the sample's timestamp.
    Abnormal,
}

impl Label {
    /// `Abnormal` when `violated`, else `Normal`.
    pub fn from_violation(violated: bool) -> Self {
        if violated {
            Label::Abnormal
        } else {
            Label::Normal
        }
    }

    /// True for [`Label::Abnormal`].
    pub fn is_abnormal(self) -> bool {
        matches!(self, Label::Abnormal)
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Label::Normal => f.write_str("normal"),
            Label::Abnormal => f.write_str("abnormal"),
        }
    }
}

/// The application's SLO-violation log: a second-resolution record of when
/// the SLO was violated, accumulated online.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SloLog {
    /// Closed-open violation intervals `[start, end)`, non-overlapping and
    /// sorted. `end == None` means the violation is still ongoing.
    intervals: Vec<(Timestamp, Option<Timestamp>)>,
    /// Last timestamp observed (for violation-time accounting).
    last_seen: Option<Timestamp>,
}

impl SloLog {
    /// Empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the SLO status observed at `t`. Must be called with
    /// non-decreasing timestamps.
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes a previously recorded timestamp.
    pub fn record(&mut self, t: Timestamp, violated: bool) {
        if let Some(last) = self.last_seen {
            assert!(t >= last, "SLO log must be fed in time order");
        }
        self.last_seen = Some(t);
        let open = matches!(self.intervals.last(), Some((_, None)));
        match (open, violated) {
            (false, true) => self.intervals.push((t, None)),
            (true, false) => {
                if let Some(last) = self.intervals.last_mut() {
                    last.1 = Some(t);
                }
            }
            _ => {}
        }
    }

    /// True if the SLO was violated at time `t`.
    pub fn is_violated_at(&self, t: Timestamp) -> bool {
        self.intervals
            .iter()
            .any(|&(start, end)| t >= start && end.is_none_or(|e| t < e))
    }

    /// True if any violation overlaps `[from, to)`.
    pub fn any_violation_in(&self, from: Timestamp, to: Timestamp) -> bool {
        self.intervals.iter().any(|&(start, end)| {
            let e = end.unwrap_or(Timestamp::from_secs(u64::MAX));
            start < to && from < e
        })
    }

    /// Total violated time up to (and including) the last recorded sample —
    /// the paper's *SLO violation time* evaluation metric.
    pub fn total_violation_time(&self) -> Duration {
        let horizon = match self.last_seen {
            Some(t) => t.next(),
            None => return Duration::ZERO,
        };
        let mut total = 0u64;
        for &(start, end) in &self.intervals {
            let e = end.unwrap_or(horizon);
            let e = e.min(horizon);
            total += e.as_secs().saturating_sub(start.as_secs());
        }
        Duration::from_secs(total)
    }

    /// The recorded violation intervals (for reporting); an open interval
    /// is closed at the last seen timestamp + 1 s.
    pub fn intervals(&self) -> Vec<(Timestamp, Timestamp)> {
        let horizon = self
            .last_seen
            .map(Timestamp::next)
            .unwrap_or(Timestamp::ZERO);
        self.intervals
            .iter()
            .map(|&(s, e)| (s, e.unwrap_or(horizon)))
            .collect()
    }

    /// Timestamp of the first violation, if any.
    pub fn first_violation(&self) -> Option<Timestamp> {
        self.intervals.first().map(|&(s, _)| s)
    }

    /// The raw interval list, a still-open violation kept as `end == None`
    /// — the lossless form trace persistence stores.
    pub fn raw_intervals(&self) -> &[(Timestamp, Option<Timestamp>)] {
        &self.intervals
    }

    /// The last timestamp fed to [`SloLog::record`], if any.
    pub fn last_seen(&self) -> Option<Timestamp> {
        self.last_seen
    }

    /// Rebuilds a log from persisted parts, re-validating the structural
    /// invariants `record` maintains online (sorted, non-overlapping,
    /// only the final interval may be open).
    ///
    /// # Errors
    ///
    /// Returns a description of the violated invariant.
    pub fn from_raw_parts(
        intervals: Vec<(Timestamp, Option<Timestamp>)>,
        last_seen: Option<Timestamp>,
    ) -> Result<SloLog, &'static str> {
        let mut prev_end = None;
        for (i, &(start, end)) in intervals.iter().enumerate() {
            if let Some(p) = prev_end {
                if start < p {
                    return Err("SLO intervals overlap or are unsorted");
                }
            }
            match end {
                Some(e) if e <= start => return Err("SLO interval is empty or inverted"),
                None if i + 1 != intervals.len() => {
                    return Err("only the final SLO interval may be open");
                }
                _ => {}
            }
            prev_end = end;
        }
        if let (Some(&(start, _)), Some(seen)) = (intervals.last(), last_seen) {
            if seen < start {
                return Err("last_seen precedes the final SLO interval");
            }
        }
        if !intervals.is_empty() && last_seen.is_none() {
            return Err("intervals recorded without a last_seen timestamp");
        }
        Ok(SloLog {
            intervals,
            last_seen,
        })
    }
}

impl Persist for Label {
    fn store(&self, w: &mut Writer) {
        w.put_bool(self.is_abnormal());
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(Label::from_violation(r.get_bool()?))
    }
}

impl Persist for SloLog {
    fn store(&self, w: &mut Writer) {
        self.intervals.store(w);
        self.last_seen.store(w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let intervals = Persist::load(r)?;
        let last_seen = Persist::load(r)?;
        SloLog::from_raw_parts(intervals, last_seen)
            .map_err(|_| PersistError::Invalid("SloLog interval invariants"))
    }
}

/// Labels metric samples against an [`SloLog`] by timestamp matching.
#[derive(Debug, Clone, Copy, Default)]
pub struct Labeler;

impl Labeler {
    /// Creates a labeler.
    pub fn new() -> Self {
        Labeler
    }

    /// Label of a single sample.
    pub fn label(&self, sample: &MetricSample, log: &SloLog) -> Label {
        Label::from_violation(log.is_violated_at(sample.time))
    }

    /// Labels a whole slice of samples.
    pub fn label_all(&self, samples: &[MetricSample], log: &SloLog) -> Vec<Label> {
        samples.iter().map(|s| self.label(s, log)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricVector;

    fn t(s: u64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    fn log_from(pattern: &[(u64, bool)]) -> SloLog {
        let mut log = SloLog::new();
        for &(s, v) in pattern {
            log.record(t(s), v);
        }
        log
    }

    #[test]
    fn records_intervals() {
        let log = log_from(&[(0, false), (5, true), (10, true), (15, false), (20, true)]);
        assert!(!log.is_violated_at(t(0)));
        assert!(log.is_violated_at(t(5)));
        assert!(log.is_violated_at(t(14)));
        assert!(!log.is_violated_at(t(15)));
        assert!(log.is_violated_at(t(25))); // still open
    }

    #[test]
    fn total_violation_time_counts_open_interval() {
        let log = log_from(&[(0, false), (5, true), (15, false), (20, true), (25, true)]);
        // [5,15) = 10s, [20, 26) = 6s (open, horizon = last_seen + 1)
        assert_eq!(log.total_violation_time().as_secs(), 16);
    }

    #[test]
    fn empty_log_has_zero_violation_time() {
        assert_eq!(SloLog::new().total_violation_time(), Duration::ZERO);
        assert!(SloLog::new().first_violation().is_none());
    }

    #[test]
    fn any_violation_in_window() {
        let log = log_from(&[(0, false), (10, true), (20, false)]);
        assert!(log.any_violation_in(t(0), t(11)));
        assert!(log.any_violation_in(t(15), t(30)));
        assert!(!log.any_violation_in(t(0), t(10)));
        assert!(!log.any_violation_in(t(20), t(40)));
    }

    #[test]
    fn labeler_matches_timestamps() {
        let log = log_from(&[(0, false), (10, true), (20, false)]);
        let labeler = Labeler::new();
        let normal = MetricSample::new(t(5), MetricVector::zeros());
        let abnormal = MetricSample::new(t(12), MetricVector::zeros());
        assert_eq!(labeler.label(&normal, &log), Label::Normal);
        assert_eq!(labeler.label(&abnormal, &log), Label::Abnormal);
        let labels = labeler.label_all(&[normal, abnormal], &log);
        assert_eq!(labels, vec![Label::Normal, Label::Abnormal]);
    }

    #[test]
    fn slo_log_round_trips_including_open_interval() {
        let log = log_from(&[(0, false), (5, true), (15, false), (20, true)]);
        let back: SloLog = crate::persist::from_bytes(&crate::persist::to_bytes(&log)).unwrap();
        assert_eq!(back, log);
        assert!(back.is_violated_at(t(25)));
        let empty: SloLog =
            crate::persist::from_bytes(&crate::persist::to_bytes(&SloLog::new())).unwrap();
        assert_eq!(empty, SloLog::new());
    }

    #[test]
    fn slo_log_load_rejects_overlapping_intervals() {
        let mut w = crate::persist::Writer::new();
        vec![(t(0), Some(t(10))), (t(5), Some(t(20)))].store(&mut w);
        Some(t(20)).store(&mut w);
        let res: Result<SloLog, _> = crate::persist::from_bytes(&w.into_bytes());
        assert!(matches!(res, Err(PersistError::Invalid(_))));
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn record_rejects_out_of_order() {
        let mut log = SloLog::new();
        log.record(t(10), false);
        log.record(t(5), true);
    }
}
