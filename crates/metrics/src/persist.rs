//! Length-prefixed exact binary codec for controller checkpoints.
//!
//! The crash–recovery subsystem (DESIGN.md §17) must restore controller
//! state *byte-identically*: a recovered run's predictions, votes and
//! actuations are asserted equal to an uninterrupted referee, so the
//! codec cannot tolerate any round-trip wobble. Everything is written in
//! fixed little-endian layouts — `f64` travels as [`f64::to_bits`], so
//! subnormals, signed zeros and integer-valued counts near 2^53 all
//! survive exactly — and every composite carries an explicit length or
//! tag so a torn or truncated buffer is detected, never misread.
//!
//! The no-serde rule (workspace `Cargo.toml`) is why this is hand-rolled;
//! the JSON module ([`crate::json`]) stays the human-readable trace
//! format, this module is the machine-exact state format.

use crate::{Duration, MetricSample, MetricVector, Timestamp, ATTRIBUTE_COUNT};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// A decode failure. Encoding is infallible; decoding is not, because the
/// buffer may be torn (crash mid-write), truncated, or from a different
/// format version.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// The buffer ended before the value it promised.
    Truncated {
        /// What was being decoded when the bytes ran out.
        what: &'static str,
    },
    /// A magic number or version did not match.
    BadMagic {
        /// The magic/version actually read.
        found: u64,
        /// The magic/version required.
        expected: u64,
    },
    /// A frame checksum did not match its contents (torn tail).
    BadChecksum,
    /// An enum tag byte had no corresponding variant.
    BadTag {
        /// The enum being decoded.
        what: &'static str,
        /// The unrecognized tag.
        tag: u8,
    },
    /// A decoded value violated a structural invariant.
    Invalid(&'static str),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Truncated { what } => {
                write!(f, "buffer truncated while decoding {what}")
            }
            PersistError::BadMagic { found, expected } => {
                write!(f, "bad magic/version {found:#x} (expected {expected:#x})")
            }
            PersistError::BadChecksum => write!(f, "checksum mismatch (torn or corrupt frame)"),
            PersistError::BadTag { what, tag } => write!(f, "unknown tag {tag} for {what}"),
            PersistError::Invalid(what) => write!(f, "invalid value: {what}"),
        }
    }
}

impl std::error::Error for PersistError {}

/// An append-only byte sink with fixed little-endian primitive layouts.
#[derive(Debug, Default, Clone)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64` (layout-stable across platforms).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends an `f64` as its exact bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a bool as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends raw bytes with no length prefix (caller frames them).
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// View of the accumulated bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the writer, yielding the buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// A cursor over an encoded buffer; every read is bounds-checked so a
/// truncated buffer errors instead of panicking.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `buf` starting at offset 0.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    /// Current offset into the buffer.
    pub fn position(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], PersistError> {
        if self.remaining() < n {
            return Err(PersistError::Truncated { what });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`PersistError::Truncated`] at end of buffer.
    pub fn get_u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`PersistError::Truncated`] at end of buffer.
    pub fn get_u32(&mut self) -> Result<u32, PersistError> {
        let b = self.take(4, "u32")?;
        let arr: [u8; 4] = b
            .try_into()
            .map_err(|_| PersistError::Truncated { what: "u32 bytes" })?;
        Ok(u32::from_le_bytes(arr))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`PersistError::Truncated`] at end of buffer.
    pub fn get_u64(&mut self) -> Result<u64, PersistError> {
        let b = self.take(8, "u64")?;
        let arr: [u8; 8] = b
            .try_into()
            .map_err(|_| PersistError::Truncated { what: "u64 bytes" })?;
        Ok(u64::from_le_bytes(arr))
    }

    /// Reads a `usize` (stored as `u64`).
    ///
    /// # Errors
    ///
    /// [`PersistError::Truncated`] at end of buffer, or
    /// [`PersistError::Invalid`] when the value exceeds the platform's
    /// `usize`.
    pub fn get_usize(&mut self) -> Result<usize, PersistError> {
        usize::try_from(self.get_u64()?).map_err(|_| PersistError::Invalid("usize overflow"))
    }

    /// Reads an `f64` from its exact bit pattern.
    ///
    /// # Errors
    ///
    /// [`PersistError::Truncated`] at end of buffer.
    pub fn get_f64(&mut self) -> Result<f64, PersistError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a bool, rejecting any byte other than 0/1.
    ///
    /// # Errors
    ///
    /// [`PersistError::Truncated`] or [`PersistError::BadTag`] on a
    /// non-boolean byte.
    pub fn get_bool(&mut self) -> Result<bool, PersistError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(PersistError::BadTag { what: "bool", tag }),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// [`PersistError::Truncated`] or [`PersistError::Invalid`] on
    /// malformed UTF-8.
    pub fn get_str(&mut self) -> Result<String, PersistError> {
        let len = self.get_usize()?;
        let bytes = self.take(len, "string bytes")?;
        String::from_utf8(bytes.to_vec()).map_err(|_| PersistError::Invalid("non-UTF-8 string"))
    }

    /// Reads `n` raw bytes (caller knows the framing).
    ///
    /// # Errors
    ///
    /// [`PersistError::Truncated`] at end of buffer.
    pub fn get_raw(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        self.take(n, "raw bytes")
    }
}

/// Exact binary serialization: `load(store(x)) == x` down to the bit
/// pattern of every float.
pub trait Persist: Sized {
    /// Appends this value's encoding to `w`.
    fn store(&self, w: &mut Writer);

    /// Decodes one value from `r`.
    ///
    /// # Errors
    ///
    /// Any [`PersistError`] when the buffer is truncated, torn, or
    /// structurally invalid.
    fn load(r: &mut Reader<'_>) -> Result<Self, PersistError>;
}

/// Round-trips a value through the codec (convenience for tests and
/// state-fingerprint comparisons).
pub fn to_bytes<T: Persist>(value: &T) -> Vec<u8> {
    let mut w = Writer::new();
    value.store(&mut w);
    w.into_bytes()
}

/// Decodes a value from a complete buffer, requiring full consumption.
///
/// # Errors
///
/// Any decode error, or [`PersistError::Invalid`] when trailing bytes
/// remain (a sign the buffer holds a different format).
pub fn from_bytes<T: Persist>(bytes: &[u8]) -> Result<T, PersistError> {
    let mut r = Reader::new(bytes);
    let v = T::load(&mut r)?;
    if !r.is_exhausted() {
        return Err(PersistError::Invalid("trailing bytes after value"));
    }
    Ok(v)
}

impl Persist for u8 {
    fn store(&self, w: &mut Writer) {
        w.put_u8(*self);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        r.get_u8()
    }
}

impl Persist for u32 {
    fn store(&self, w: &mut Writer) {
        w.put_u32(*self);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        r.get_u32()
    }
}

impl Persist for u64 {
    fn store(&self, w: &mut Writer) {
        w.put_u64(*self);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        r.get_u64()
    }
}

impl Persist for usize {
    fn store(&self, w: &mut Writer) {
        w.put_usize(*self);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        r.get_usize()
    }
}

impl Persist for bool {
    fn store(&self, w: &mut Writer) {
        w.put_bool(*self);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        r.get_bool()
    }
}

impl Persist for f64 {
    fn store(&self, w: &mut Writer) {
        w.put_f64(*self);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        r.get_f64()
    }
}

impl Persist for String {
    fn store(&self, w: &mut Writer) {
        w.put_str(self);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        r.get_str()
    }
}

impl<T: Persist> Persist for Option<T> {
    fn store(&self, w: &mut Writer) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.store(w);
            }
        }
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        match r.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::load(r)?)),
            tag => Err(PersistError::BadTag {
                what: "Option",
                tag,
            }),
        }
    }
}

impl<T: Persist> Persist for Vec<T> {
    fn store(&self, w: &mut Writer) {
        w.put_usize(self.len());
        for v in self {
            v.store(w);
        }
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let len = r.get_usize()?;
        // Bound the pre-allocation by what the buffer could possibly
        // hold, so a corrupt length cannot trigger an OOM before the
        // Truncated error surfaces.
        let mut out = Vec::with_capacity(len.min(r.remaining()));
        for _ in 0..len {
            out.push(T::load(r)?);
        }
        Ok(out)
    }
}

impl<T: Persist> Persist for VecDeque<T> {
    fn store(&self, w: &mut Writer) {
        w.put_usize(self.len());
        for v in self {
            v.store(w);
        }
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let len = r.get_usize()?;
        let mut out = VecDeque::with_capacity(len.min(r.remaining()));
        for _ in 0..len {
            out.push_back(T::load(r)?);
        }
        Ok(out)
    }
}

impl<K: Persist + Ord, V: Persist> Persist for BTreeMap<K, V> {
    fn store(&self, w: &mut Writer) {
        w.put_usize(self.len());
        for (k, v) in self {
            k.store(w);
            v.store(w);
        }
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let len = r.get_usize()?;
        let mut out = BTreeMap::new();
        for _ in 0..len {
            let k = K::load(r)?;
            let v = V::load(r)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<T: Persist + Ord> Persist for BTreeSet<T> {
    fn store(&self, w: &mut Writer) {
        w.put_usize(self.len());
        for v in self {
            v.store(w);
        }
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let len = r.get_usize()?;
        let mut out = BTreeSet::new();
        for _ in 0..len {
            out.insert(T::load(r)?);
        }
        Ok(out)
    }
}

impl<A: Persist, B: Persist> Persist for (A, B) {
    fn store(&self, w: &mut Writer) {
        self.0.store(w);
        self.1.store(w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok((A::load(r)?, B::load(r)?))
    }
}

impl<A: Persist, B: Persist, C: Persist> Persist for (A, B, C) {
    fn store(&self, w: &mut Writer) {
        self.0.store(w);
        self.1.store(w);
        self.2.store(w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok((A::load(r)?, B::load(r)?, C::load(r)?))
    }
}

impl<T: Persist, const N: usize> Persist for [T; N] {
    fn store(&self, w: &mut Writer) {
        for v in self {
            v.store(w);
        }
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let mut out = Vec::with_capacity(N);
        for _ in 0..N {
            out.push(T::load(r)?);
        }
        out.try_into()
            .map_err(|_| PersistError::Invalid("array arity"))
    }
}

impl Persist for Timestamp {
    fn store(&self, w: &mut Writer) {
        w.put_u64(self.as_secs());
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(Timestamp::from_secs(r.get_u64()?))
    }
}

impl Persist for Duration {
    fn store(&self, w: &mut Writer) {
        w.put_u64(self.as_secs());
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(Duration::from_secs(r.get_u64()?))
    }
}

impl Persist for crate::VmId {
    fn store(&self, w: &mut Writer) {
        w.put_usize(self.0);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(crate::VmId(r.get_usize()?))
    }
}

impl Persist for crate::AttributeKind {
    fn store(&self, w: &mut Writer) {
        w.put_u8(self.index() as u8);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let tag = r.get_u8()?;
        crate::AttributeKind::from_index(tag as usize).ok_or(PersistError::BadTag {
            what: "AttributeKind",
            tag,
        })
    }
}

impl Persist for MetricVector {
    fn store(&self, w: &mut Writer) {
        for &v in self.as_slice() {
            w.put_f64(v);
        }
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let values: [f64; ATTRIBUTE_COUNT] = Persist::load(r)?;
        Ok(MetricVector::from(values))
    }
}

impl Persist for MetricSample {
    fn store(&self, w: &mut Writer) {
        self.time.store(w);
        self.values.store(w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(MetricSample::new(
            Timestamp::load(r)?,
            MetricVector::load(r)?,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AttributeKind;

    fn round_trip<T: Persist + PartialEq + std::fmt::Debug>(v: &T) {
        let bytes = to_bytes(v);
        let back: T = from_bytes(&bytes).expect("decodes");
        assert_eq!(&back, v);
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(&0u8);
        round_trip(&u8::MAX);
        round_trip(&u32::MAX);
        round_trip(&u64::MAX);
        round_trip(&usize::MAX);
        round_trip(&true);
        round_trip(&false);
        round_trip(&String::from("hello — ünïcode"));
        round_trip(&String::new());
    }

    #[test]
    fn extreme_floats_round_trip_bit_exactly() {
        for &f in &[
            0.0,
            -0.0,
            f64::MIN_POSITIVE,
            f64::MIN_POSITIVE / 2.0, // subnormal
            5e-324,                  // smallest subnormal
            f64::MAX,
            f64::MIN,
            9_007_199_254_740_992.0, // 2^53
            9_007_199_254_740_991.0, // 2^53 - 1
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            1.0 / 3.0,
        ] {
            let bytes = to_bytes(&f);
            let back: f64 = from_bytes(&bytes).expect("decodes");
            assert_eq!(back.to_bits(), f.to_bits(), "{f}");
        }
    }

    #[test]
    fn negative_zero_is_preserved() {
        let bytes = to_bytes(&-0.0f64);
        let back: f64 = from_bytes(&bytes).unwrap();
        assert!(back.is_sign_negative());
        assert_eq!(back.to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn composites_round_trip() {
        round_trip(&Some(3u64));
        round_trip(&Option::<u64>::None);
        round_trip(&vec![1.5f64, -2.0, 0.0]);
        round_trip(&Vec::<u64>::new());
        round_trip(&VecDeque::from([true, false, true]));
        round_trip(&BTreeMap::from([(1u64, 2.0f64), (3, 4.0)]));
        round_trip(&BTreeSet::from([crate::VmId(0), crate::VmId(7)]));
        round_trip(&(1u64, 2.0f64));
        round_trip(&(1u64, 2.0f64, String::from("x")));
        round_trip(&[1.0f64, 2.0]);
        round_trip(&Timestamp::from_secs(42));
        round_trip(&Duration::from_secs(5));
    }

    #[test]
    fn domain_types_round_trip() {
        for a in AttributeKind::ALL {
            round_trip(&a);
        }
        let mut v = MetricVector::zeros();
        v.set(AttributeKind::FreeMem, -0.0);
        v.set(AttributeKind::NetIn, f64::MAX);
        let bytes = to_bytes(&v);
        let back: MetricVector = from_bytes(&bytes).unwrap();
        for a in AttributeKind::ALL {
            assert_eq!(back.get(a).to_bits(), v.get(a).to_bits());
        }
        round_trip(&MetricSample::new(Timestamp::from_secs(9), v));
    }

    #[test]
    fn truncated_buffers_error_not_panic() {
        let bytes = to_bytes(&vec![1u64, 2, 3]);
        for cut in 0..bytes.len() {
            let res: Result<Vec<u64>, _> = from_bytes(&bytes[..cut]);
            assert!(res.is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn corrupt_length_is_bounded() {
        // A length claiming 2^60 elements must error, not allocate.
        let mut w = Writer::new();
        w.put_u64(1u64 << 60);
        let res: Result<Vec<u64>, _> = from_bytes(&w.into_bytes());
        assert!(matches!(res, Err(PersistError::Truncated { .. })));
    }

    #[test]
    fn bad_tags_are_rejected() {
        let mut w = Writer::new();
        w.put_u8(7);
        let res: Result<Option<u64>, _> = from_bytes(w.bytes());
        assert!(matches!(res, Err(PersistError::BadTag { .. })));
        let mut w = Writer::new();
        w.put_u8(2);
        let res: Result<bool, _> = from_bytes(&w.into_bytes());
        assert!(matches!(res, Err(PersistError::BadTag { .. })));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = to_bytes(&7u64);
        bytes.push(0);
        let res: Result<u64, _> = from_bytes(&bytes);
        assert_eq!(
            res,
            Err(PersistError::Invalid("trailing bytes after value"))
        );
    }

    #[test]
    fn errors_display() {
        let errs: Vec<PersistError> = vec![
            PersistError::Truncated { what: "u64" },
            PersistError::BadMagic {
                found: 1,
                expected: 2,
            },
            PersistError::BadChecksum,
            PersistError::BadTag {
                what: "bool",
                tag: 9,
            },
            PersistError::Invalid("x"),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
