//! Online change-point detection (two-sided CUSUM).
//!
//! PREPARE distinguishes a workload change from an internal fault by
//! "checking whether all the application components have change points in
//! some system metrics simultaneously" (§II-C, citing PAL [13]). PAL uses
//! CUSUM-style change-point detection over per-component metrics; we
//! implement a standard two-sided CUSUM with an online baseline estimate.

use crate::persist::{Persist, PersistError, Reader, Writer};
use crate::Timestamp;

/// A detected change point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChangePoint {
    /// When the cumulative statistic crossed the threshold.
    pub time: Timestamp,
    /// Positive for an upward level shift, negative for downward.
    pub direction: f64,
    /// The cumulative-sum magnitude at detection (in baseline std-devs).
    pub magnitude: f64,
}

/// Two-sided CUSUM detector over one scalar stream.
///
/// The detector learns the baseline mean/std from the first `warmup`
/// observations, then accumulates standardized deviations; when either the
/// high-side or low-side sum exceeds `threshold`, a change point is
/// reported and the baseline re-anchors to the post-change level.
// xtask: checkpoint
#[derive(Debug, Clone, PartialEq)]
pub struct CusumDetector {
    threshold: f64,
    drift: f64,
    warmup: usize,
    // online baseline estimate
    count: usize,
    mean: f64,
    m2: f64,
    // cusum state
    high: f64,
    low: f64,
    last_change: Option<ChangePoint>,
}

impl CusumDetector {
    /// Creates a detector.
    ///
    /// * `threshold` — detection threshold in standardized units (typical 5).
    /// * `drift` — slack per observation in standardized units (typical 0.5);
    ///   deviations smaller than the drift never accumulate.
    /// * `warmup` — observations used to establish the baseline before any
    ///   detection can fire.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` or `drift` is not finite and positive-or-zero,
    /// or `warmup` is zero.
    pub fn new(threshold: f64, drift: f64, warmup: usize) -> Self {
        assert!(
            threshold.is_finite() && threshold > 0.0,
            "threshold must be > 0"
        );
        assert!(drift.is_finite() && drift >= 0.0, "drift must be >= 0");
        assert!(warmup > 0, "warmup must be positive");
        CusumDetector {
            threshold,
            drift,
            warmup,
            count: 0,
            mean: 0.0,
            m2: 0.0,
            high: 0.0,
            low: 0.0,
            last_change: None,
        }
    }

    /// Detector with conventional defaults (threshold 5σ, drift 0.5σ,
    /// 12-sample warmup — one minute at the paper's 5 s sampling interval).
    pub fn with_defaults() -> Self {
        CusumDetector::new(5.0, 0.5, 12)
    }

    fn baseline_std(&self) -> f64 {
        if self.count < 2 {
            return 1.0;
        }
        let var = self.m2 / self.count as f64;
        let sd = var.sqrt();
        if sd < 1e-9 {
            1e-9_f64.max(self.mean.abs() * 0.01).max(1e-9)
        } else {
            sd
        }
    }

    fn absorb(&mut self, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
    }

    /// Feeds one observation; returns a change point when one is detected
    /// at this step.
    pub fn observe(&mut self, time: Timestamp, value: f64) -> Option<ChangePoint> {
        if !value.is_finite() {
            return None;
        }
        if self.count < self.warmup {
            self.absorb(value);
            return None;
        }
        let sd = self.baseline_std();
        let z = (value - self.mean) / sd;
        self.high = (self.high + z - self.drift).max(0.0);
        self.low = (self.low - z - self.drift).max(0.0);
        if self.high > self.threshold || self.low > self.threshold {
            let (direction, magnitude) = if self.high > self.low {
                (1.0, self.high)
            } else {
                (-1.0, self.low)
            };
            let cp = ChangePoint {
                time,
                direction,
                magnitude,
            };
            self.last_change = Some(cp);
            // Re-anchor the baseline at the post-change level.
            self.count = 0;
            self.mean = 0.0;
            self.m2 = 0.0;
            self.high = 0.0;
            self.low = 0.0;
            self.absorb(value);
            return Some(cp);
        }
        // Slowly track the baseline with in-control observations.
        self.absorb(value);
        None
    }

    /// The most recent change point, if any.
    pub fn last_change(&self) -> Option<ChangePoint> {
        self.last_change
    }

    /// True if a change point fired within the trailing `window_secs`
    /// seconds of `now` — the "recent change point" predicate the workload
    /// -change inference uses.
    pub fn changed_recently(&self, now: Timestamp, window_secs: u64) -> bool {
        self.last_change
            .is_some_and(|cp| now.since(cp.time).as_secs() <= window_secs)
    }
}

impl Persist for ChangePoint {
    fn store(&self, w: &mut Writer) {
        self.time.store(w);
        w.put_f64(self.direction);
        w.put_f64(self.magnitude);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(ChangePoint {
            time: Timestamp::load(r)?,
            direction: r.get_f64()?,
            magnitude: r.get_f64()?,
        })
    }
}

impl Persist for CusumDetector {
    fn store(&self, w: &mut Writer) {
        w.put_f64(self.threshold);
        w.put_f64(self.drift);
        w.put_usize(self.warmup);
        w.put_usize(self.count);
        w.put_f64(self.mean);
        w.put_f64(self.m2);
        w.put_f64(self.high);
        w.put_f64(self.low);
        self.last_change.store(w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let threshold = r.get_f64()?;
        let drift = r.get_f64()?;
        let warmup = r.get_usize()?;
        if !(threshold.is_finite() && threshold > 0.0) {
            return Err(PersistError::Invalid("CusumDetector threshold"));
        }
        if !(drift.is_finite() && drift >= 0.0) {
            return Err(PersistError::Invalid("CusumDetector drift"));
        }
        if warmup == 0 {
            return Err(PersistError::Invalid("CusumDetector warmup"));
        }
        Ok(CusumDetector {
            threshold,
            drift,
            warmup,
            count: r.get_usize()?,
            mean: r.get_f64()?,
            m2: r.get_f64()?,
            high: r.get_f64()?,
            low: r.get_f64()?,
            last_change: Option::load(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    #[test]
    fn persist_round_trip_preserves_mid_stream_state() {
        let mut d = CusumDetector::new(4.0, 0.5, 10);
        for i in 0..25u64 {
            let v = 10.0 + if i % 2 == 0 { 0.1 } else { -0.1 };
            d.observe(t(i), v);
        }
        let bytes = crate::persist::to_bytes(&d);
        let mut back: CusumDetector = crate::persist::from_bytes(&bytes).expect("decodes");
        assert_eq!(back, d);
        // The restored detector must fire at exactly the same step.
        for i in 25..60u64 {
            let a = d.observe(t(i), 20.0);
            let b = back.observe(t(i), 20.0);
            assert_eq!(a, b, "divergence at step {i}");
            if a.is_some() {
                return;
            }
        }
        panic!("change never fired");
    }

    #[test]
    fn persist_rejects_invalid_parameters() {
        let d = CusumDetector::with_defaults();
        let mut bytes = crate::persist::to_bytes(&d);
        // Corrupt the threshold (first 8 bytes) into NaN.
        bytes[..8].copy_from_slice(&f64::NAN.to_bits().to_le_bytes());
        let res: Result<CusumDetector, _> = crate::persist::from_bytes(&bytes);
        assert!(matches!(res, Err(PersistError::Invalid(_))));
    }

    #[test]
    fn detects_step_change() {
        let mut d = CusumDetector::new(4.0, 0.5, 10);
        let mut detected = None;
        for i in 0..30u64 {
            // noiseless-ish baseline around 10
            let v = 10.0 + if i % 2 == 0 { 0.1 } else { -0.1 };
            assert!(d.observe(t(i), v).is_none());
        }
        for i in 30..60u64 {
            if let Some(cp) = d.observe(t(i), 20.0) {
                detected = Some(cp);
                break;
            }
        }
        let cp = detected.expect("step change detected");
        assert!(cp.direction > 0.0);
        assert!(cp.time.as_secs() >= 30);
        assert!(cp.time.as_secs() < 40, "detected promptly, got {}", cp.time);
    }

    #[test]
    fn detects_downward_change() {
        let mut d = CusumDetector::new(4.0, 0.5, 10);
        for i in 0..20u64 {
            let v = 50.0 + if i % 2 == 0 { 0.5 } else { -0.5 };
            d.observe(t(i), v);
        }
        let mut fired = false;
        for i in 20..40u64 {
            if let Some(cp) = d.observe(t(i), 10.0) {
                assert!(cp.direction < 0.0);
                fired = true;
                break;
            }
        }
        assert!(fired);
    }

    #[test]
    fn stable_stream_never_fires() {
        let mut d = CusumDetector::with_defaults();
        for i in 0..500u64 {
            let v = 5.0 + ((i % 7) as f64 - 3.0) * 0.05;
            assert!(d.observe(t(i), v).is_none(), "false alarm at {i}");
        }
        assert!(d.last_change().is_none());
    }

    #[test]
    fn changed_recently_window() {
        let mut d = CusumDetector::new(3.0, 0.2, 5);
        for i in 0..10u64 {
            d.observe(t(i), 1.0 + (i % 2) as f64 * 0.01);
        }
        for i in 10..30u64 {
            d.observe(t(i), 100.0);
            if d.last_change().is_some() {
                break;
            }
        }
        let cp = d.last_change().expect("change detected");
        assert!(d.changed_recently(cp.time, 0));
        assert!(d.changed_recently(cp.time + crate::Duration::from_secs(10), 10));
        assert!(!d.changed_recently(cp.time + crate::Duration::from_secs(11), 10));
    }

    #[test]
    fn ignores_non_finite_values() {
        let mut d = CusumDetector::with_defaults();
        assert!(d.observe(t(0), f64::NAN).is_none());
        assert!(d.observe(t(1), f64::INFINITY).is_none());
    }

    #[test]
    fn rearms_after_detection() {
        let mut d = CusumDetector::new(3.0, 0.2, 5);
        for i in 0..10u64 {
            d.observe(t(i), 1.0 + (i % 2) as f64 * 0.01);
        }
        let mut first = None;
        for i in 10..40u64 {
            if let Some(cp) = d.observe(t(i), 50.0 + (i % 2) as f64 * 0.01) {
                first = Some(cp.time);
                break;
            }
        }
        let first = first.expect("first change");
        // After re-anchoring at ~50, a further jump to 200 fires again.
        let mut second = None;
        for i in (first.as_secs() + 1)..(first.as_secs() + 40) {
            let v = if i < first.as_secs() + 15 {
                50.0 + (i % 2) as f64 * 0.01
            } else {
                200.0
            };
            if let Some(cp) = d.observe(t(i), v) {
                second = Some(cp.time);
                break;
            }
        }
        assert!(second.expect("second change") > first);
    }
}
