//! Metric foundation for the PREPARE reproduction.
//!
//! This crate defines the vocabulary every other crate speaks:
//!
//! - [`AttributeKind`]: the 13 system-level metrics PREPARE monitors per VM
//!   (CPU, memory, network, disk and load statistics — §II-A of the paper).
//! - [`MetricVector`] / [`MetricSample`]: one monitoring observation.
//! - [`TimeSeries`] and [`SlidingWindow`]: storage and windowed statistics.
//! - [`Discretizer`] / [`VectorDiscretizer`]: equal-width binning that turns
//!   continuous metrics into the discrete states consumed by the Markov
//!   value predictors and the TAN classifier.
//! - [`SloLog`] / [`Labeler`]: automatic runtime data labeling by matching
//!   measurement timestamps against SLO-violation intervals (§II-B).
//! - [`CusumDetector`]: change-point detection used to tell workload changes
//!   apart from internal faults (§II-C).
//!
//! # Example
//!
//! ```
//! use prepare_metrics::{AttributeKind, MetricVector, Timestamp};
//!
//! let mut v = MetricVector::zeros();
//! v.set(AttributeKind::CpuTotal, 42.0);
//! assert_eq!(v.get(AttributeKind::CpuTotal), 42.0);
//! assert_eq!(Timestamp::from_secs(5).as_secs(), 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod attr;
mod changepoint;
mod discretize;
mod fingerprint;
pub mod guard;
pub mod json;
mod label;
pub mod persist;
mod sample;
mod series;
mod soa;
mod staleness;
mod stats;
mod time;
mod trace;

pub use attr::{AttributeKind, ScalableResource, VmId, ATTRIBUTE_COUNT};
pub use changepoint::{ChangePoint, CusumDetector};
pub use discretize::{DiscreteVector, Discretizer, VectorDiscretizer};
pub use fingerprint::Fingerprint64;
pub use label::{Label, Labeler, SloLog};
pub use persist::{Persist, PersistError, Reader, Writer};
pub use sample::{MetricSample, MetricVector};
pub use series::{SeriesStats, SlidingWindow, TimeSeries};
pub use soa::SoaMetricStore;
pub use staleness::{
    AttributeStamps, Freshness, LastValueImputer, StalenessBudget, StampedSample,
    DEFAULT_STALENESS_SECS,
};
pub use stats::{mean, mean_std, percentile, std_dev};
pub use time::{Duration, Timestamp};
pub use trace::{TraceError, TraceStore};
