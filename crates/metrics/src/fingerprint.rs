//! Streaming 64-bit fingerprints for determinism audits.
//!
//! Replay contracts across the workspace compare whole model/trace states
//! for bit-identity. Formatting both sides with `format!("{:?}")` and
//! comparing strings works, but allocates a `String` per compared cell —
//! on the scaling bench's predict leg that is one allocation per VM per
//! audit. [`Fingerprint64`] streams the same information through an
//! FNV-1a fold instead: `f64`s are hashed by their exact bit patterns, so
//! two states fingerprint equal iff every streamed word is bit-identical,
//! with zero heap traffic.
//!
//! This is an audit checksum, not a cryptographic hash: collisions are
//! possible in principle, which is why the bench keeps a full `PartialEq`
//! comparison on the model side and uses fingerprints for the per-cell
//! fast path.

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A streaming FNV-1a fingerprint accumulator.
///
/// Feed words with the `write_*` methods and read the digest with
/// [`Fingerprint64::finish`]. All writes are allocation-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fingerprint64 {
    state: u64,
}

impl Default for Fingerprint64 {
    fn default() -> Self {
        Fingerprint64::new()
    }
}

impl Fingerprint64 {
    /// A fresh accumulator at the FNV offset basis.
    pub const fn new() -> Self {
        Fingerprint64 { state: FNV_OFFSET }
    }

    /// Folds one byte.
    // xtask: hot-path
    pub fn write_u8(&mut self, b: u8) {
        self.state ^= u64::from(b);
        self.state = self.state.wrapping_mul(FNV_PRIME);
    }

    /// Folds a 64-bit word, low byte first.
    // xtask: hot-path
    pub fn write_u64(&mut self, w: u64) {
        for b in w.to_le_bytes() {
            self.write_u8(b);
        }
    }

    /// Folds a `usize` (as 64 bits).
    // xtask: hot-path
    pub fn write_usize(&mut self, w: usize) {
        self.write_u64(w as u64);
    }

    /// Folds an `f64` by its exact IEEE-754 bit pattern: two values
    /// fingerprint equal iff they are bit-identical (`0.0` and `-0.0`
    /// differ; every NaN payload is distinct).
    // xtask: hot-path
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Folds a byte slice, length-prefixed so concatenations cannot
    /// collide with shifted boundaries.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.write_usize(bytes.len());
        for &b in bytes {
            self.write_u8(b);
        }
    }

    /// The current digest.
    pub const fn finish(&self) -> u64 {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_fingerprint_is_the_offset_basis() {
        assert_eq!(Fingerprint64::new().finish(), FNV_OFFSET);
    }

    #[test]
    fn matches_reference_fnv1a_on_bytes() {
        // FNV-1a("a") is a published test vector.
        let mut fp = Fingerprint64::new();
        fp.write_u8(b'a');
        assert_eq!(fp.finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn f64_uses_exact_bits() {
        let mut a = Fingerprint64::new();
        a.write_f64(0.0);
        let mut b = Fingerprint64::new();
        b.write_f64(-0.0);
        assert_ne!(a.finish(), b.finish(), "signed zeros are distinct states");

        let mut c = Fingerprint64::new();
        c.write_f64(1.5);
        let mut d = Fingerprint64::new();
        d.write_f64(1.5);
        assert_eq!(c.finish(), d.finish());
    }

    #[test]
    fn order_matters() {
        let mut a = Fingerprint64::new();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = Fingerprint64::new();
        b.write_u64(2);
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn length_prefix_separates_concatenations() {
        let mut a = Fingerprint64::new();
        a.write_bytes(b"ab");
        a.write_bytes(b"c");
        let mut b = Fingerprint64::new();
        b.write_bytes(b"a");
        b.write_bytes(b"bc");
        assert_ne!(a.finish(), b.finish());
    }
}
