//! Equal-width discretization of continuous metrics.
//!
//! Both learning components operate on discrete states: the Markov value
//! predictors model transitions between value bins (paper Fig. 2 shows an
//! attribute "discretized into three single states"), and the TAN
//! classifier estimates conditional probability tables over discrete
//! attribute values. The paper does not commit to a bin count; we default
//! to 10 and expose it as a parameter (swept in tests / ablations).

use crate::persist::{Persist, PersistError, Reader, Writer};
use crate::{AttributeKind, MetricVector, TimeSeries, ATTRIBUTE_COUNT};

/// A discretized metric vector: one bin index per attribute, in canonical
/// attribute order.
pub type DiscreteVector = Vec<usize>;

/// Equal-width binning for one attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct Discretizer {
    lo: f64,
    hi: f64,
    bins: usize,
}

impl Discretizer {
    /// Creates a discretizer mapping `[lo, hi]` onto `bins` equal-width
    /// bins. Values outside the range clamp to the first/last bin, which is
    /// what lets a model trained on one fault generalize to slightly more
    /// extreme manifestations of the same fault.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `lo`/`hi` are not finite.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "bin count must be positive");
        assert!(lo.is_finite() && hi.is_finite(), "bounds must be finite");
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        Discretizer { lo, hi, bins }
    }

    /// Fits the range from observed values, widened by `margin` times the
    /// observed span on each side. Unsupervised detectors need headroom:
    /// with a zero-margin fit, values beyond anything seen clamp into the
    /// outermost *occupied* bins and become indistinguishable from normal
    /// extremes.
    pub fn fit_with_margin(values: &[f64], bins: usize, margin: f64) -> Self {
        assert!(margin.is_finite() && margin >= 0.0, "margin must be >= 0");
        let base = Self::fit(values, bins);
        // xtask-allow: float-eq -- margin 0.0 is an exact caller-provided sentinel for "no widening"
        if margin == 0.0 {
            return base;
        }
        let span = base.hi - base.lo;
        Discretizer::new(base.lo - margin * span, base.hi + margin * span, bins)
    }

    /// Fits the range from observed values. Degenerate (constant or empty)
    /// inputs produce a single-width range centered on the constant.
    pub fn fit(values: &[f64], bins: usize) -> Self {
        let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
        if finite.is_empty() {
            return Self::fit_span(None, bins);
        }
        let lo = finite.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Self::fit_span(Some((lo, hi)), bins)
    }

    /// Builds the discretizer from a pre-tracked min/max span — the exact
    /// derivation [`Discretizer::fit`] uses once it has folded the finite
    /// values, split out so an incremental trainer that maintains running
    /// per-attribute bounds produces bit-identical bins to a full refit.
    /// `None` is the empty-input case.
    pub fn fit_span(span: Option<(f64, f64)>, bins: usize) -> Self {
        let Some((lo, hi)) = span else {
            return Discretizer::new(0.0, 1.0, bins);
        };
        if (hi - lo).abs() < f64::EPSILON {
            Discretizer::new(lo - 0.5, lo + 0.5, bins)
        } else {
            Discretizer::new(lo, hi, bins)
        }
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.bins
    }

    /// Lower bound of the fitted range.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound of the fitted range.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Bin index of `value`, clamped into `[0, bins)`. Non-finite values
    /// map to bin 0.
    pub fn discretize(&self, value: f64) -> usize {
        if !value.is_finite() {
            return 0;
        }
        if value <= self.lo {
            return 0;
        }
        if value >= self.hi {
            return self.bins - 1;
        }
        let width = (self.hi - self.lo) / self.bins as f64;
        (((value - self.lo) / width) as usize).min(self.bins - 1)
    }

    /// Representative (midpoint) continuous value of bin `bin`.
    ///
    /// # Panics
    ///
    /// Panics if `bin >= bins`.
    pub fn bin_midpoint(&self, bin: usize) -> f64 {
        assert!(
            bin < self.bins,
            "bin {bin} out of range (bins={})",
            self.bins
        );
        let width = (self.hi - self.lo) / self.bins as f64;
        self.lo + width * (bin as f64 + 0.5)
    }
}

/// Per-attribute discretizers for a full [`MetricVector`].
#[derive(Debug, Clone, PartialEq)]
pub struct VectorDiscretizer {
    per_attr: Vec<Discretizer>,
}

impl VectorDiscretizer {
    /// Fits one equal-width discretizer per attribute from a training
    /// series.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0`.
    pub fn fit(series: &TimeSeries, bins: usize) -> Self {
        let per_attr = AttributeKind::ALL
            .iter()
            .map(|&a| Discretizer::fit(&series.attribute_values(a), bins))
            .collect();
        VectorDiscretizer { per_attr }
    }

    /// Fits from bare metric vectors (no timestamps) — the same
    /// per-attribute fit as [`VectorDiscretizer::fit`], for callers that
    /// hold labeled vectors rather than a series.
    pub fn fit_vectors<'a>(
        vectors: impl IntoIterator<Item = &'a MetricVector>,
        bins: usize,
    ) -> Self {
        let mut merged: Vec<Vec<f64>> = vec![Vec::new(); ATTRIBUTE_COUNT];
        for v in vectors {
            for (vals, a) in merged.iter_mut().zip(AttributeKind::ALL) {
                vals.push(v.get(a));
            }
        }
        let per_attr = merged
            .iter()
            .map(|vals| Discretizer::fit(vals, bins))
            .collect();
        VectorDiscretizer { per_attr }
    }

    /// Assembles a vector discretizer from per-attribute discretizers
    /// (canonical attribute order).
    ///
    /// # Panics
    ///
    /// Panics unless exactly [`ATTRIBUTE_COUNT`] discretizers are given.
    pub fn from_parts(per_attr: Vec<Discretizer>) -> Self {
        assert_eq!(
            per_attr.len(),
            ATTRIBUTE_COUNT,
            "one discretizer per attribute"
        );
        VectorDiscretizer { per_attr }
    }

    /// Fits with per-attribute range margin (see
    /// [`Discretizer::fit_with_margin`]).
    pub fn fit_with_margin(series: &TimeSeries, bins: usize, margin: f64) -> Self {
        let per_attr = AttributeKind::ALL
            .iter()
            .map(|&a| Discretizer::fit_with_margin(&series.attribute_values(a), bins, margin))
            .collect();
        VectorDiscretizer { per_attr }
    }

    /// Fits from several series jointly (e.g. the monolithic-model case
    /// where attributes from all VMs share one model).
    pub fn fit_many<'a>(series: impl IntoIterator<Item = &'a TimeSeries>, bins: usize) -> Self {
        let mut merged: Vec<Vec<f64>> = vec![Vec::new(); ATTRIBUTE_COUNT];
        for s in series {
            for (vals, a) in merged.iter_mut().zip(AttributeKind::ALL.iter()) {
                vals.extend(s.attribute_values(*a));
            }
        }
        let per_attr = merged
            .iter()
            .map(|vals| Discretizer::fit(vals, bins))
            .collect();
        VectorDiscretizer { per_attr }
    }

    /// Number of bins per attribute.
    pub fn bins(&self) -> usize {
        self.per_attr[0].bins()
    }

    /// The discretizer for attribute `a`.
    pub fn attribute(&self, a: AttributeKind) -> &Discretizer {
        &self.per_attr[a.index()]
    }

    /// Discretizes a full vector into bin indices (canonical order).
    pub fn discretize(&self, v: &MetricVector) -> DiscreteVector {
        AttributeKind::ALL
            .iter()
            .map(|&a| self.per_attr[a.index()].discretize(v.get(a)))
            .collect()
    }

    /// Discretizes every sample of a series, sharded across the workers
    /// of `par` with results in sample order.
    ///
    /// The output is identical to mapping [`VectorDiscretizer::discretize`]
    /// over the series sequentially, for any worker count — binning one
    /// sample never depends on another, so this is the canonical batch
    /// entry point for the parallel training pipeline.
    pub fn discretize_series(
        &self,
        series: &TimeSeries,
        par: &prepare_par::ParConfig,
    ) -> Vec<DiscreteVector> {
        let samples: Vec<&MetricVector> = series.iter().map(|s| &s.values).collect();
        prepare_par::par_map(par, samples, |v| self.discretize(v))
    }
}

impl Persist for Discretizer {
    fn store(&self, w: &mut Writer) {
        w.put_f64(self.lo);
        w.put_f64(self.hi);
        w.put_usize(self.bins);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let lo = r.get_f64()?;
        let hi = r.get_f64()?;
        let bins = r.get_usize()?;
        if !(lo.is_finite() && hi.is_finite() && lo <= hi) {
            return Err(PersistError::Invalid("Discretizer bounds"));
        }
        if bins == 0 {
            return Err(PersistError::Invalid("Discretizer bin count"));
        }
        Ok(Discretizer { lo, hi, bins })
    }
}

impl Persist for VectorDiscretizer {
    fn store(&self, w: &mut Writer) {
        self.per_attr.store(w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let per_attr: Vec<Discretizer> = Persist::load(r)?;
        if per_attr.len() != ATTRIBUTE_COUNT {
            return Err(PersistError::Invalid("VectorDiscretizer arity"));
        }
        Ok(VectorDiscretizer { per_attr })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MetricSample, Timestamp};

    #[test]
    fn discretize_clamps_to_range() {
        let d = Discretizer::new(0.0, 100.0, 10);
        assert_eq!(d.discretize(-5.0), 0);
        assert_eq!(d.discretize(0.0), 0);
        assert_eq!(d.discretize(55.0), 5);
        assert_eq!(d.discretize(99.9), 9);
        assert_eq!(d.discretize(100.0), 9);
        assert_eq!(d.discretize(1e9), 9);
        assert_eq!(d.discretize(f64::NAN), 0);
    }

    #[test]
    fn fit_handles_constant_input() {
        let d = Discretizer::fit(&[7.0, 7.0, 7.0], 5);
        let b = d.discretize(7.0);
        assert!(b < 5);
    }

    #[test]
    fn fit_handles_empty_input() {
        let d = Discretizer::fit(&[], 4);
        assert_eq!(d.bins(), 4);
        let _ = d.discretize(0.5);
    }

    #[test]
    fn midpoint_is_inside_bin() {
        let d = Discretizer::new(0.0, 10.0, 5);
        for bin in 0..5 {
            let mid = d.bin_midpoint(bin);
            assert_eq!(d.discretize(mid), bin, "midpoint of bin {bin} maps back");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn midpoint_rejects_bad_bin() {
        Discretizer::new(0.0, 1.0, 2).bin_midpoint(2);
    }

    #[test]
    fn reversed_bounds_are_normalized() {
        let d = Discretizer::new(10.0, 0.0, 2);
        assert_eq!(d.lo(), 0.0);
        assert_eq!(d.hi(), 10.0);
    }

    #[test]
    fn margin_reserves_headroom_bins() {
        let values: Vec<f64> = (0..50).map(|i| 40.0 + (i % 5) as f64).collect();
        let tight = Discretizer::fit(&values, 10);
        let wide = Discretizer::fit_with_margin(&values, 10, 1.0);
        // A far-out value is indistinguishable from the max under a tight
        // fit but lands in a reserved outer bin with margin.
        assert_eq!(tight.discretize(100.0), tight.discretize(44.0));
        assert!(wide.discretize(100.0) > wide.discretize(44.0));
        // Zero margin is identical to a plain fit.
        let zero = Discretizer::fit_with_margin(&values, 10, 0.0);
        assert_eq!(zero, tight);
    }

    #[test]
    fn batch_discretization_matches_sequential() {
        let mut series = TimeSeries::new();
        for t in 0..50u64 {
            let v = MetricVector::from_fn(|a| ((a.index() as u64 + 3) * (t + 1)) as f64 % 97.0);
            series.push(MetricSample::new(Timestamp::from_secs(t), v));
        }
        let vd = VectorDiscretizer::fit(&series, 8);
        let expect: Vec<DiscreteVector> = series.iter().map(|s| vd.discretize(&s.values)).collect();
        for workers in [1usize, 2, 7] {
            let got = vd.discretize_series(&series, &prepare_par::ParConfig::with_workers(workers));
            assert_eq!(got, expect, "diverged at workers={workers}");
        }
    }

    #[test]
    fn fit_span_matches_fit_on_tracked_bounds() {
        let values = [3.0, -1.5, 8.25, 4.0, -1.5];
        let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(
            Discretizer::fit_span(Some((lo, hi)), 6),
            Discretizer::fit(&values, 6)
        );
        // Degenerate spans reproduce the constant- and empty-input fits.
        assert_eq!(
            Discretizer::fit_span(Some((7.0, 7.0)), 5),
            Discretizer::fit(&[7.0; 3], 5)
        );
        assert_eq!(Discretizer::fit_span(None, 4), Discretizer::fit(&[], 4));
        assert_eq!(
            Discretizer::fit_span(None, 4),
            Discretizer::fit(&[f64::NAN], 4)
        );
    }

    #[test]
    fn fit_vectors_matches_series_fit() {
        let mut series = TimeSeries::new();
        for t in 0..40u64 {
            let v = MetricVector::from_fn(|a| ((a.index() as u64 + 5) * (t + 2)) as f64 % 53.0);
            series.push(MetricSample::new(Timestamp::from_secs(t), v));
        }
        let from_series = VectorDiscretizer::fit(&series, 9);
        let from_vectors = VectorDiscretizer::fit_vectors(series.iter().map(|s| &s.values), 9);
        assert_eq!(from_series, from_vectors);
        let reassembled = VectorDiscretizer::from_parts(
            AttributeKind::ALL
                .iter()
                .map(|&a| from_series.attribute(a).clone())
                .collect(),
        );
        assert_eq!(reassembled, from_series);
    }

    #[test]
    #[should_panic(expected = "one discretizer per attribute")]
    fn from_parts_rejects_wrong_arity() {
        VectorDiscretizer::from_parts(vec![Discretizer::new(0.0, 1.0, 2)]);
    }

    #[test]
    fn discretizer_persist_round_trips_exact_bounds() {
        let d = Discretizer::fit(&[3.0, -1.5, 8.25, 1.0 / 3.0], 7);
        let back: Discretizer = crate::persist::from_bytes(&crate::persist::to_bytes(&d)).unwrap();
        assert_eq!(back, d);
        assert_eq!(back.lo().to_bits(), d.lo().to_bits());
        let mut series = TimeSeries::new();
        for t in 0..20u64 {
            let v = MetricVector::from_fn(|a| (a.index() as f64 + 0.5) * t as f64);
            series.push(MetricSample::new(Timestamp::from_secs(t), v));
        }
        let vd = VectorDiscretizer::fit(&series, 10);
        let back: VectorDiscretizer =
            crate::persist::from_bytes(&crate::persist::to_bytes(&vd)).unwrap();
        assert_eq!(back, vd);
    }

    #[test]
    fn vector_discretizer_round_trip() {
        let mut series = TimeSeries::new();
        for t in 0..20u64 {
            let v = MetricVector::from_fn(|a| (a.index() as f64 + 1.0) * t as f64);
            series.push(MetricSample::new(Timestamp::from_secs(t), v));
        }
        let vd = VectorDiscretizer::fit(&series, 10);
        let dv = vd.discretize(&series.samples()[10].values);
        assert_eq!(dv.len(), ATTRIBUTE_COUNT);
        assert!(dv.iter().all(|&b| b < 10));
    }
}
