//! Property-based tests of the application models: whatever the client
//! rate and fault schedule, the tick outputs must stay physical.

use prepare_apps::{Application, FaultInjection, FaultKind, FaultPlan, Rubis, SystemS, Workload};
use prepare_cloudsim::Cluster;
use prepare_metrics::{Duration, Timestamp, VmId};
use proptest::prelude::*;

fn arb_fault(n_vms: usize) -> impl Strategy<Value = FaultInjection> {
    (
        proptest::option::of(0..n_vms),
        prop_oneof![
            (0.5f64..4.0).prop_map(|r| FaultKind::MemLeak { rate_mb_per_sec: r }),
            (20.0f64..120.0).prop_map(|c| FaultKind::CpuHog { cpu: c }),
            (1.2f64..3.0).prop_map(|m| FaultKind::WorkloadRamp { peak_multiplier: m }),
        ],
        0u64..600,
        30u64..400,
    )
        .prop_map(|(target, kind, start, dur)| FaultInjection {
            target: target.map(VmId),
            kind,
            start: Timestamp::from_secs(start),
            duration: Duration::from_secs(dur),
        })
}

fn check_tick_sanity(tick: &prepare_apps::AppTick, rate: f64) {
    assert!(tick.output_rate.is_finite() && tick.output_rate >= 0.0);
    assert!(
        tick.output_rate <= rate * 1.0 + 1e-6,
        "output {} exceeds input {}",
        tick.output_rate,
        rate
    );
    assert!(tick.latency_ms.is_finite() && tick.latency_ms >= 0.0);
    assert!(tick.slo_metric.is_finite());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn system_s_ticks_stay_physical(
        rates in proptest::collection::vec(0.0f64..60.0, 30..120),
        fault in arb_fault(7),
    ) {
        let mut cluster = Cluster::new();
        let mut app = SystemS::deploy(&mut cluster).expect("deploys");
        let mut faults = FaultPlan::new();
        faults.add(fault);
        for (i, &rate) in rates.iter().enumerate() {
            let now = Timestamp::from_secs(i as u64);
            let mult = faults.workload_multiplier(now);
            let tick = app.step(now, rate * mult, &mut cluster, &faults);
            check_tick_sanity(&tick, rate * mult);
            // At zero input the ratio SLO must not fire spuriously.
            if rate == 0.0 && tick.latency_ms <= 20.0 {
                prop_assert!(!tick.slo_violated);
            }
        }
    }

    #[test]
    fn rubis_ticks_stay_physical(
        rates in proptest::collection::vec(0.0f64..160.0, 30..120),
        fault in arb_fault(4),
    ) {
        let mut cluster = Cluster::new();
        let mut app = Rubis::deploy(&mut cluster).expect("deploys");
        let mut faults = FaultPlan::new();
        faults.add(fault);
        for (i, &rate) in rates.iter().enumerate() {
            let now = Timestamp::from_secs(i as u64);
            let tick = app.step(now, rate, &mut cluster, &faults);
            check_tick_sanity(&tick, rate);
            prop_assert!(tick.latency_ms <= 1000.0 + 1e-9, "latency cap breached");
            prop_assert_eq!(tick.slo_violated, tick.latency_ms > 200.0);
        }
    }

    #[test]
    fn workload_rates_are_finite_and_nonnegative(
        mean in 1.0f64..200.0,
        day in 60u64..4000,
        jitter in 0.0f64..0.5,
        t in 0u64..100_000,
    ) {
        use rand::SeedableRng;
        let w = Workload::Nasa { mean_rate: mean, day_secs: day, jitter };
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let r = w.rate(Timestamp::from_secs(t), &mut rng);
        prop_assert!(r.is_finite() && r >= 0.0);
        let base = w.base_rate(Timestamp::from_secs(t));
        prop_assert!(base > 0.0 && base < mean * 2.0);
    }
}

#[test]
fn app_slo_metrics_agree_with_violation_flags_under_stress() {
    // Deterministic stress pass: ramp System S far past capacity and back;
    // the violation flag must track the published SLO definition.
    let mut cluster = Cluster::new();
    let mut app = SystemS::deploy(&mut cluster).expect("deploys");
    let faults = FaultPlan::new();
    for t in 0..400u64 {
        let rate = if (100..300).contains(&t) { 45.0 } else { 20.0 };
        let tick = app.step(Timestamp::from_secs(t), rate, &mut cluster, &faults);
        let ratio_ok = tick.output_rate / rate >= 0.95;
        let latency_ok = tick.latency_ms <= 20.0;
        assert_eq!(
            tick.slo_violated,
            !(ratio_ok && latency_ok),
            "t={t} {tick:?}"
        );
    }
}
