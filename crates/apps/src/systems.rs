//! The simulated IBM System S tax-calculation application (paper §III-A,
//! Fig. 4).
//!
//! Seven processing elements (PEs), one per VM, wired as:
//!
//! ```text
//!           ┌─> PE2 ─> PE4 ─┐
//! src ─> PE1                 ├─> PE6 ─> PE7 ─> out
//!           └─> PE3 ─> PE5 ─┘
//! ```
//!
//! PE6 is the sink PE that "intensively sends processed data tuples to the
//! network" — it has the steepest CPU-per-tuple cost and is therefore the
//! first to saturate under workload growth (the designated bottleneck).
//!
//! SLO (§III-A): a violation is marked when the end-to-end
//! output/input rate ratio drops below 0.95, or the average per-tuple
//! processing time exceeds 20 ms. (The paper prints the ratio as
//! `InputRate/OutputRate < 0.95`, which is inverted — output can only be
//! ≤ input, so the meaningful reading is output/input.)

use crate::component::{add_demand, ComponentSpec};
use crate::{AppTick, Application, FaultPlan};
use prepare_cloudsim::{Cluster, HostSpec, PlacementError};
use prepare_metrics::{Timestamp, VmId};

/// Number of processing elements.
pub const N_PES: usize = 7;

/// Index of the bottleneck PE (PE6) in component order.
const BOTTLENECK: usize = 5;

/// Fan-in edges: `UPSTREAM[i]` lists (upstream index, share of its output)
/// feeding PE `i+1`. PE1 (index 0) is fed by the client source.
const UPSTREAM: [&[(usize, f64)]; N_PES] = [
    &[],                   // PE1 <- source
    &[(0, 0.5)],           // PE2 <- half of PE1
    &[(0, 0.5)],           // PE3 <- half of PE1
    &[(1, 1.0)],           // PE4 <- PE2
    &[(2, 1.0)],           // PE5 <- PE3
    &[(3, 1.0), (4, 1.0)], // PE6 <- PE4 + PE5
    &[(5, 1.0)],           // PE7 <- PE6
];

fn pe_specs() -> [ComponentSpec; N_PES] {
    let base = |name, cpu_per_unit: f64, net_out: f64| ComponentSpec {
        name,
        base_cpu: 8.0,
        cpu_per_unit,
        base_mem_mb: 256.0,
        mem_per_unit: 2.0,
        net_in_per_unit: 40.0,
        net_out_per_unit: net_out,
        disk_per_unit: 2.0,
        service_ms: 1.5,
    };
    [
        base("PE1", 1.8, 40.0),
        base("PE2", 2.4, 40.0),
        base("PE3", 2.4, 40.0),
        base("PE4", 2.8, 40.0),
        base("PE5", 2.8, 40.0),
        // The sink PE: heavy per-tuple CPU and network output.
        ComponentSpec {
            name: "PE6",
            base_cpu: 10.0,
            cpu_per_unit: 4.0,
            base_mem_mb: 256.0,
            mem_per_unit: 2.0,
            net_in_per_unit: 40.0,
            net_out_per_unit: 120.0,
            disk_per_unit: 2.0,
            service_ms: 1.5,
        },
        base("PE7", 1.5, 40.0),
    ]
}

/// The deployed System S application.
#[derive(Debug, Clone)]
pub struct SystemS {
    vms: Vec<VmId>,
    specs: [ComponentSpec; N_PES],
}

impl SystemS {
    /// Client rate the deployment is sized for (Ktuples/s).
    pub const NOMINAL_RATE: f64 = 20.0;

    /// Per-VM allocations at deployment (percent-of-core, MB) — one PE
    /// per guest VM as in the paper.
    pub const VM_CPU: f64 = 100.0;
    /// Memory allocation per PE VM (MB).
    pub const VM_MEM: f64 = 512.0;

    /// Deploys the application: adds one VCL host per PE plus one spare
    /// (migration target), creates one VM per PE.
    ///
    /// # Errors
    ///
    /// Returns [`PlacementError`] if a VM cannot be placed (cannot happen
    /// on freshly added hosts, but propagated for robustness).
    pub fn deploy(cluster: &mut Cluster) -> Result<Self, PlacementError> {
        let mut vms = Vec::with_capacity(N_PES);
        for _ in 0..N_PES {
            let host = cluster.add_host(HostSpec::vcl_default());
            vms.push(cluster.create_vm(host, Self::VM_CPU, Self::VM_MEM)?);
        }
        // Spare host kept idle as the migration target pool.
        cluster.add_host(HostSpec::vcl_default());
        Ok(SystemS {
            vms,
            specs: pe_specs(),
        })
    }

    /// The PE component specs (exposed for capacity-planning examples).
    pub fn specs(&self) -> &[ComponentSpec] {
        &self.specs
    }
}

impl Application for SystemS {
    fn name(&self) -> &'static str {
        "systems"
    }

    fn vms(&self) -> &[VmId] {
        &self.vms
    }

    fn vm_role(&self, vm: VmId) -> &'static str {
        let idx = self
            .vms
            .iter()
            .position(|&v| v == vm)
            .unwrap_or_else(|| panic!("{vm} does not belong to System S"));
        self.specs[idx].name
    }

    fn bottleneck_vm(&self) -> VmId {
        self.vms[BOTTLENECK]
    }

    fn nominal_rate(&self) -> f64 {
        Self::NOMINAL_RATE
    }

    fn slo_metric_name(&self) -> &'static str {
        "throughput (Ktuples/s)"
    }

    fn step(
        &mut self,
        now: Timestamp,
        rate: f64,
        cluster: &mut Cluster,
        faults: &FaultPlan,
    ) -> AppTick {
        // Propagate tuple rates through the dataflow in topological order.
        let mut out_rate = [0.0f64; N_PES];
        let mut slowdown = [1.0f64; N_PES];
        let mut queue_ms = [0.0f64; N_PES];
        for i in 0..N_PES {
            let in_rate: f64 = if UPSTREAM[i].is_empty() {
                rate
            } else {
                UPSTREAM[i]
                    .iter()
                    .map(|&(u, share)| out_rate[u] * share)
                    .sum()
            };
            let demand = add_demand(
                self.specs[i].demand(in_rate),
                faults.overlay(self.vms[i], now),
            );
            let quality = cluster.apply_demand(self.vms[i], demand, now);
            out_rate[i] = in_rate * quality.throughput_factor();
            slowdown[i] = quality.slowdown();
            // A tuple entering a backlogged PE waits behind the queued work.
            queue_ms[i] = quality.queue_delay_secs * 1000.0;
        }

        // Average per-tuple time across the two source→sink paths.
        let path_a = [0usize, 1, 3, 5, 6];
        let path_b = [0usize, 2, 4, 5, 6];
        let path_ms = |path: &[usize]| -> f64 {
            path.iter()
                .map(|&i| self.specs[i].service_ms * slowdown[i] + queue_ms[i])
                .sum()
        };
        let latency_ms = 0.5 * (path_ms(&path_a) + path_ms(&path_b));

        let output_rate = out_rate[N_PES - 1];
        let ratio = if rate > 1e-9 { output_rate / rate } else { 1.0 };
        let slo_violated = ratio < 0.95 || latency_ms > 20.0;
        AppTick {
            time: now,
            input_rate: rate,
            output_rate,
            latency_ms,
            slo_metric: output_rate,
            slo_violated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FaultInjection, FaultKind};
    use prepare_metrics::Duration;

    fn deploy() -> (Cluster, SystemS) {
        let mut cluster = Cluster::new();
        let app = SystemS::deploy(&mut cluster).unwrap();
        (cluster, app)
    }

    #[test]
    fn deploys_seven_pes_plus_spare_host() {
        let (cluster, app) = deploy();
        assert_eq!(app.vms().len(), 7);
        assert_eq!(cluster.n_hosts(), 8);
        assert_eq!(app.vm_role(app.vms()[5]), "PE6");
        assert_eq!(app.bottleneck_vm(), app.vms()[5]);
    }

    #[test]
    fn healthy_at_nominal_rate() {
        let (mut cluster, mut app) = deploy();
        let tick = app.step(
            Timestamp::ZERO,
            SystemS::NOMINAL_RATE,
            &mut cluster,
            &FaultPlan::new(),
        );
        assert!(
            !tick.slo_violated,
            "nominal load must satisfy the SLO: {tick:?}"
        );
        assert!((tick.output_rate - SystemS::NOMINAL_RATE).abs() < 0.2);
        assert!(tick.latency_ms < 20.0);
    }

    #[test]
    fn pe6_is_the_first_to_saturate() {
        let (cluster, app) = deploy();
        let mut sat: Vec<(f64, &str)> = app
            .specs()
            .iter()
            .enumerate()
            .map(|(i, s)| {
                // Local rate relative to client rate: PE2..PE5 see half.
                let share = match i {
                    1..=4 => 0.5,
                    _ => 1.0,
                };
                (
                    s.saturation_rate(cluster.vm(app.vms()[i]).cpu_alloc) / share,
                    s.name,
                )
            })
            .collect();
        sat.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        assert_eq!(sat[0].1, "PE6");
        // ... and its saturation point is above nominal load.
        assert!(sat[0].0 > SystemS::NOMINAL_RATE);
    }

    #[test]
    fn overload_violates_ratio_slo() {
        let (mut cluster, mut app) = deploy();
        let tick = app.step(Timestamp::ZERO, 35.0, &mut cluster, &FaultPlan::new());
        assert!(tick.slo_violated);
        assert!(tick.output_rate < 35.0 * 0.95);
    }

    #[test]
    fn cpu_hog_on_pe_breaks_slo() {
        let (mut cluster, mut app) = deploy();
        let mut faults = FaultPlan::new();
        faults.add(FaultInjection {
            target: Some(app.vms()[3]), // PE4
            kind: FaultKind::CpuHog { cpu: 80.0 },
            start: Timestamp::ZERO,
            duration: Duration::from_secs(300),
        });
        let tick = app.step(
            Timestamp::from_secs(10),
            SystemS::NOMINAL_RATE,
            &mut cluster,
            &faults,
        );
        assert!(tick.slo_violated, "hog must break SLO: {tick:?}");
    }

    #[test]
    fn memory_leak_breaks_slo_gradually() {
        let (mut cluster, mut app) = deploy();
        let mut faults = FaultPlan::new();
        faults.add(FaultInjection {
            target: Some(app.vms()[2]), // PE3
            kind: FaultKind::MemLeak {
                rate_mb_per_sec: 2.0,
            },
            start: Timestamp::ZERO,
            duration: Duration::from_secs(400),
        });
        // Early in the leak: plenty of headroom, SLO holds.
        let early = app.step(
            Timestamp::from_secs(30),
            SystemS::NOMINAL_RATE,
            &mut cluster,
            &faults,
        );
        assert!(
            !early.slo_violated,
            "early leak phase should be fine: {early:?}"
        );
        // Deep into the leak: working set far beyond the allocation.
        let late = app.step(
            Timestamp::from_secs(350),
            SystemS::NOMINAL_RATE,
            &mut cluster,
            &faults,
        );
        assert!(late.slo_violated, "late leak phase must violate: {late:?}");
        assert!(late.output_rate < early.output_rate);
    }

    #[test]
    #[should_panic(expected = "does not belong")]
    fn role_of_foreign_vm_panics() {
        let (_, app) = deploy();
        app.vm_role(VmId(999));
    }
}
