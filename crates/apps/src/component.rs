//! The per-component resource cost model shared by both case-study
//! applications.

use prepare_cloudsim::Demand;

/// Resource cost coefficients of one application component (a PE or a
/// tier server). All `*_per_unit` coefficients are per unit of the
/// component's *local* input rate (Ktuples/s for System S PEs, req/s for
/// RUBiS tiers).
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentSpec {
    /// Role name ("PE6", "db-server", ...).
    pub name: &'static str,
    /// CPU consumed with zero workload (percent-of-core).
    pub base_cpu: f64,
    /// CPU per unit of input rate.
    pub cpu_per_unit: f64,
    /// Resident working set with zero workload (MB).
    pub base_mem_mb: f64,
    /// Additional working set per unit of input rate (MB).
    pub mem_per_unit: f64,
    /// Network receive per unit of input rate (KB/s).
    pub net_in_per_unit: f64,
    /// Network transmit per unit of input rate (KB/s).
    pub net_out_per_unit: f64,
    /// Disk traffic per unit of input rate (KB/s, split evenly r/w).
    pub disk_per_unit: f64,
    /// Nominal per-item service time (ms) at an unloaded component.
    pub service_ms: f64,
}

impl ComponentSpec {
    /// The resource demand this component presents at input rate `rate`
    /// (before any fault overlay).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is negative or not finite.
    pub fn demand(&self, rate: f64) -> Demand {
        assert!(rate.is_finite() && rate >= 0.0, "invalid rate {rate}");
        Demand {
            cpu: self.base_cpu + self.cpu_per_unit * rate,
            mem_mb: self.base_mem_mb + self.mem_per_unit * rate,
            net_in_kbps: self.net_in_per_unit * rate,
            net_out_kbps: self.net_out_per_unit * rate,
            disk_read_kbps: self.disk_per_unit * rate * 0.5,
            disk_write_kbps: self.disk_per_unit * rate * 0.5,
        }
    }

    /// Input rate at which the component's CPU demand reaches `cpu_alloc`
    /// — its saturation point, where it becomes the bottleneck.
    pub fn saturation_rate(&self, cpu_alloc: f64) -> f64 {
        if self.cpu_per_unit <= 0.0 {
            f64::INFINITY
        } else {
            ((cpu_alloc - self.base_cpu) / self.cpu_per_unit).max(0.0)
        }
    }
}

/// Merges a fault overlay into a component demand.
pub(crate) fn add_demand(a: Demand, b: Demand) -> Demand {
    Demand {
        cpu: a.cpu + b.cpu,
        mem_mb: a.mem_mb + b.mem_mb,
        net_in_kbps: a.net_in_kbps + b.net_in_kbps,
        net_out_kbps: a.net_out_kbps + b.net_out_kbps,
        disk_read_kbps: a.disk_read_kbps + b.disk_read_kbps,
        disk_write_kbps: a.disk_write_kbps + b.disk_write_kbps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ComponentSpec {
        ComponentSpec {
            name: "test",
            base_cpu: 10.0,
            cpu_per_unit: 4.0,
            base_mem_mb: 256.0,
            mem_per_unit: 2.0,
            net_in_per_unit: 20.0,
            net_out_per_unit: 30.0,
            disk_per_unit: 4.0,
            service_ms: 2.0,
        }
    }

    #[test]
    fn demand_is_linear_in_rate() {
        let d = spec().demand(20.0);
        assert_eq!(d.cpu, 90.0);
        assert_eq!(d.mem_mb, 296.0);
        assert_eq!(d.net_in_kbps, 400.0);
        assert_eq!(d.net_out_kbps, 600.0);
        assert_eq!(d.disk_read_kbps, 40.0);
        assert!(d.is_valid());
    }

    #[test]
    fn saturation_rate_inverts_cpu_model() {
        assert!((spec().saturation_rate(100.0) - 22.5).abs() < 1e-9);
        let flat = ComponentSpec {
            cpu_per_unit: 0.0,
            ..spec()
        };
        assert!(flat.saturation_rate(100.0).is_infinite());
    }

    #[test]
    #[should_panic(expected = "invalid rate")]
    fn negative_rate_rejected() {
        spec().demand(-1.0);
    }

    #[test]
    fn add_demand_componentwise() {
        let a = spec().demand(10.0);
        let b = Demand {
            cpu: 5.0,
            mem_mb: 100.0,
            ..Demand::default()
        };
        let c = add_demand(a, b);
        assert_eq!(c.cpu, a.cpu + 5.0);
        assert_eq!(c.mem_mb, a.mem_mb + 100.0);
        assert_eq!(c.net_in_kbps, a.net_in_kbps);
    }
}
