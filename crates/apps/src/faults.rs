//! Fault injection (paper §III-A).
//!
//! Three fault classes are injected, matching the paper:
//!
//! - **memory leak** — a process in the target VM continuously allocates
//!   memory and never frees it (gradual manifestation: free memory ramps
//!   down, then paging sets in);
//! - **CPU hog** — an infinite-loop / CPU-bound competitor starts inside
//!   the target VM (sudden manifestation);
//! - **bottleneck** — the client workload is gradually increased until it
//!   hits the capacity limit of the application's bottleneck component.
//!
//! "Since the current prototype of PREPARE can only handle recurrent
//! anomalies, we inject two faults of the same type and each fault
//! injection lasts about 300 seconds" — a [`FaultPlan`] holds any number
//! of [`FaultInjection`]s and exposes, per tick, the extra resource
//! demand each VM suffers and the global workload multiplier.

use prepare_cloudsim::Demand;
use prepare_metrics::{Duration, Timestamp, VmId};

/// One class of injected fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Continuous allocation at `rate_mb_per_sec` in the target VM.
    MemLeak {
        /// Leak growth rate, MB per second.
        rate_mb_per_sec: f64,
    },
    /// A CPU-bound competitor consuming `cpu` percent-of-core inside the
    /// target VM.
    CpuHog {
        /// Hog demand in percent-of-core units.
        cpu: f64,
    },
    /// Client workload ramps linearly from 1× to `peak_multiplier`× over
    /// the injection window (the bottleneck fault has no target VM — it
    /// stresses whichever component saturates first).
    WorkloadRamp {
        /// Multiplier reached at the end of the window.
        peak_multiplier: f64,
    },
    /// A noisy co-tenant consumes `host_cpu` percent-of-core on the host
    /// where the target VM lives when the injection begins — the
    /// "resource contentions" anomaly cause from the paper's
    /// introduction. Scaling the squeezed VM cannot help; migrating it
    /// off the contended host can.
    NeighborInterference {
        /// Background CPU load imposed on the host.
        host_cpu: f64,
    },
}

impl FaultKind {
    /// Short name used in experiment output ("memleak" / "cpuhog" /
    /// "bottleneck" — the paper's fault labels).
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::MemLeak { .. } => "memleak",
            FaultKind::CpuHog { .. } => "cpuhog",
            FaultKind::WorkloadRamp { .. } => "bottleneck",
            FaultKind::NeighborInterference { .. } => "contention",
        }
    }
}

/// One scheduled fault injection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultInjection {
    /// The VM the fault process runs in; `None` for workload-level faults.
    pub target: Option<VmId>,
    /// What is injected.
    pub kind: FaultKind,
    /// Injection start.
    pub start: Timestamp,
    /// Injection length (the paper uses ~300 s).
    pub duration: Duration,
}

impl FaultInjection {
    /// True while the injection is active at `now`.
    pub fn is_active(&self, now: Timestamp) -> bool {
        now >= self.start && now < self.start + self.duration
    }

    /// Seconds since the injection started (0 if not yet active).
    fn elapsed(&self, now: Timestamp) -> f64 {
        now.since(self.start).as_secs() as f64
    }
}

/// A schedule of fault injections for one experiment run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    injections: Vec<FaultInjection>,
}

impl FaultPlan {
    /// Empty plan (fault-free run).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an injection.
    pub fn add(&mut self, injection: FaultInjection) -> &mut Self {
        self.injections.push(injection);
        self
    }

    /// The paper's standard schedule: two injections of the same fault
    /// kind against the same target, `duration` long, starting at `first`
    /// and `second`. ("Our prediction model learns the anomaly during the
    /// first fault injection and starts to make prediction for the second
    /// injected fault.")
    pub fn recurrent(
        target: Option<VmId>,
        kind: FaultKind,
        first: Timestamp,
        second: Timestamp,
        duration: Duration,
    ) -> Self {
        let mut plan = FaultPlan::new();
        plan.add(FaultInjection {
            target,
            kind,
            start: first,
            duration,
        });
        plan.add(FaultInjection {
            target,
            kind,
            start: second,
            duration,
        });
        plan
    }

    /// All injections.
    pub fn injections(&self) -> &[FaultInjection] {
        &self.injections
    }

    /// Extra resource demand imposed on `vm` at `now` by active faults
    /// (leaked memory, hog CPU).
    pub fn overlay(&self, vm: VmId, now: Timestamp) -> Demand {
        let mut extra = Demand::default();
        for inj in &self.injections {
            if inj.target != Some(vm) || !inj.is_active(now) {
                continue;
            }
            match inj.kind {
                FaultKind::MemLeak { rate_mb_per_sec } => {
                    extra.mem_mb += rate_mb_per_sec * inj.elapsed(now);
                    // The leaking process also burns a little CPU.
                    extra.cpu += 2.0;
                }
                FaultKind::CpuHog { cpu } => {
                    extra.cpu += cpu;
                }
                FaultKind::WorkloadRamp { .. } | FaultKind::NeighborInterference { .. } => {}
            }
        }
        extra
    }

    /// Active neighbor-interference injections at `now`:
    /// `(injection index, target VM, host background CPU)`. The caller
    /// (the experiment loop) resolves the contended host from the target
    /// VM's placement at injection start and applies the load to the
    /// cluster — the noisy neighbor stays on that host even if the victim
    /// migrates away.
    pub fn interference(&self, now: Timestamp) -> Vec<(usize, VmId, f64)> {
        self.injections
            .iter()
            .enumerate()
            .filter_map(|(i, inj)| match (inj.kind, inj.target) {
                (FaultKind::NeighborInterference { host_cpu }, Some(vm)) if inj.is_active(now) => {
                    Some((i, vm, host_cpu))
                }
                _ => None,
            })
            .collect()
    }

    /// Global client-workload multiplier at `now` (≥ 1.0; the bottleneck
    /// fault ramps it linearly to its peak over each injection window).
    pub fn workload_multiplier(&self, now: Timestamp) -> f64 {
        let mut mult: f64 = 1.0;
        for inj in &self.injections {
            if let FaultKind::WorkloadRamp { peak_multiplier } = inj.kind {
                if inj.is_active(now) {
                    let frac = inj.elapsed(now) / inj.duration.as_secs().max(1) as f64;
                    mult = mult.max(1.0 + (peak_multiplier - 1.0) * frac.min(1.0));
                }
            }
        }
        mult
    }

    /// True if any injection is active at `now` — ground truth for "a
    /// fault is present", used by experiment reporting (not visible to
    /// PREPARE itself).
    pub fn any_active(&self, now: Timestamp) -> bool {
        self.injections.iter().any(|i| i.is_active(now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    fn d(s: u64) -> Duration {
        Duration::from_secs(s)
    }

    #[test]
    fn leak_grows_linearly_then_stops() {
        let plan = FaultPlan::recurrent(
            Some(VmId(2)),
            FaultKind::MemLeak {
                rate_mb_per_sec: 2.0,
            },
            t(100),
            t(600),
            d(300),
        );
        assert_eq!(plan.overlay(VmId(2), t(50)).mem_mb, 0.0);
        assert_eq!(plan.overlay(VmId(2), t(200)).mem_mb, 200.0);
        assert_eq!(plan.overlay(VmId(2), t(399)).mem_mb, 598.0);
        // After the injection ends the process dies and memory is freed.
        assert_eq!(plan.overlay(VmId(2), t(450)).mem_mb, 0.0);
        // Second recurrence starts fresh.
        assert_eq!(plan.overlay(VmId(2), t(700)).mem_mb, 200.0);
    }

    #[test]
    fn leak_only_hits_target_vm() {
        let plan = FaultPlan::recurrent(
            Some(VmId(2)),
            FaultKind::MemLeak {
                rate_mb_per_sec: 2.0,
            },
            t(0),
            t(500),
            d(300),
        );
        assert_eq!(plan.overlay(VmId(1), t(100)).mem_mb, 0.0);
    }

    #[test]
    fn hog_is_a_step() {
        let plan = FaultPlan::recurrent(
            Some(VmId(0)),
            FaultKind::CpuHog { cpu: 80.0 },
            t(100),
            t(600),
            d(300),
        );
        assert_eq!(plan.overlay(VmId(0), t(99)).cpu, 0.0);
        assert_eq!(plan.overlay(VmId(0), t(100)).cpu, 80.0);
        assert_eq!(plan.overlay(VmId(0), t(399)).cpu, 80.0);
        assert_eq!(plan.overlay(VmId(0), t(400)).cpu, 0.0);
    }

    #[test]
    fn workload_ramp_multiplier() {
        let plan = FaultPlan::recurrent(
            None,
            FaultKind::WorkloadRamp {
                peak_multiplier: 2.0,
            },
            t(0),
            t(600),
            d(300),
        );
        assert_eq!(plan.workload_multiplier(t(0)), 1.0);
        assert!((plan.workload_multiplier(t(150)) - 1.5).abs() < 1e-9);
        assert!((plan.workload_multiplier(t(299)) - 1.9966).abs() < 1e-2);
        assert_eq!(plan.workload_multiplier(t(350)), 1.0);
        // Workload faults impose no per-VM overlay.
        assert_eq!(plan.overlay(VmId(0), t(150)), Demand::default());
    }

    #[test]
    fn any_active_tracks_windows() {
        let plan = FaultPlan::recurrent(
            Some(VmId(0)),
            FaultKind::CpuHog { cpu: 50.0 },
            t(100),
            t(600),
            d(300),
        );
        assert!(!plan.any_active(t(0)));
        assert!(plan.any_active(t(200)));
        assert!(!plan.any_active(t(450)));
        assert!(plan.any_active(t(700)));
    }

    #[test]
    fn fault_names_match_paper() {
        assert_eq!(
            FaultKind::MemLeak {
                rate_mb_per_sec: 1.0
            }
            .name(),
            "memleak"
        );
        assert_eq!(FaultKind::CpuHog { cpu: 1.0 }.name(), "cpuhog");
        assert_eq!(
            FaultKind::WorkloadRamp {
                peak_multiplier: 2.0
            }
            .name(),
            "bottleneck"
        );
    }
}
