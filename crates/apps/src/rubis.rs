//! The simulated RUBiS three-tier online auction benchmark (paper §III-A,
//! Fig. 5): one web server, two application servers, one database server,
//! each in its own VM.
//!
//! Request flow: clients → web → {app1, app2} (load-balanced) → DB. Each
//! tier is modeled as an M/M/1-style queue: its contribution to the
//! response time is `service_ms / (1 − ρ)`, inflated by memory paging and
//! migration brown-outs. SLO (§III-A): violation when the average request
//! response time exceeds 200 ms.

use crate::component::{add_demand, ComponentSpec};
use crate::{AppTick, Application, FaultPlan};
use prepare_cloudsim::{Cluster, HostSpec, PlacementError};
use prepare_metrics::{Timestamp, VmId};

/// Tier order: web, app1, app2, db.
pub const N_TIERS: usize = 4;

const WEB: usize = 0;
const APP1: usize = 1;
const APP2: usize = 2;
const DB: usize = 3;

/// Utilization is capped here: a saturated queue in steady state has
/// unbounded latency, which the 1 s tick model folds into a large but
/// finite spike (the paper's response-time plots clip similarly).
const MAX_RHO: f64 = 0.98;

/// Response times are reported up to this ceiling (ms).
const MAX_RESPONSE_MS: f64 = 1000.0;

fn tier_specs() -> [ComponentSpec; N_TIERS] {
    [
        ComponentSpec {
            name: "web-server",
            base_cpu: 5.0,
            cpu_per_unit: 0.7,
            base_mem_mb: 200.0,
            mem_per_unit: 0.2,
            net_in_per_unit: 8.0,
            net_out_per_unit: 24.0,
            disk_per_unit: 0.5,
            service_ms: 4.0,
        },
        ComponentSpec {
            name: "app-server1",
            base_cpu: 5.0,
            cpu_per_unit: 1.1,
            base_mem_mb: 300.0,
            mem_per_unit: 0.3,
            net_in_per_unit: 6.0,
            net_out_per_unit: 6.0,
            disk_per_unit: 1.0,
            service_ms: 12.0,
        },
        ComponentSpec {
            name: "app-server2",
            base_cpu: 5.0,
            cpu_per_unit: 1.1,
            base_mem_mb: 300.0,
            mem_per_unit: 0.3,
            net_in_per_unit: 6.0,
            net_out_per_unit: 6.0,
            disk_per_unit: 1.0,
            service_ms: 12.0,
        },
        ComponentSpec {
            name: "db-server",
            base_cpu: 8.0,
            cpu_per_unit: 1.05,
            base_mem_mb: 384.0,
            mem_per_unit: 0.5,
            net_in_per_unit: 4.0,
            net_out_per_unit: 12.0,
            disk_per_unit: 8.0,
            service_ms: 10.0,
        },
    ]
}

/// The deployed RUBiS application.
#[derive(Debug, Clone)]
pub struct Rubis {
    vms: Vec<VmId>,
    specs: [ComponentSpec; N_TIERS],
}

impl Rubis {
    /// Client rate the deployment is sized for (requests/s).
    pub const NOMINAL_RATE: f64 = 50.0;

    /// CPU allocation per tier VM (percent-of-core).
    pub const VM_CPU: f64 = 100.0;
    /// Memory allocation per tier VM (MB).
    pub const VM_MEM: f64 = 512.0;

    /// Deploys the application: one VCL host per tier plus one spare
    /// (migration target), one VM per tier.
    ///
    /// # Errors
    ///
    /// Returns [`PlacementError`] if a VM cannot be placed.
    pub fn deploy(cluster: &mut Cluster) -> Result<Self, PlacementError> {
        let mut vms = Vec::with_capacity(N_TIERS);
        for _ in 0..N_TIERS {
            let host = cluster.add_host(HostSpec::vcl_default());
            vms.push(cluster.create_vm(host, Self::VM_CPU, Self::VM_MEM)?);
        }
        cluster.add_host(HostSpec::vcl_default());
        Ok(Rubis {
            vms,
            specs: tier_specs(),
        })
    }

    /// The tier component specs.
    pub fn specs(&self) -> &[ComponentSpec] {
        &self.specs
    }

    /// The database VM — where the paper's RUBiS faults are injected.
    pub fn db_vm(&self) -> VmId {
        self.vms[DB]
    }
}

impl Application for Rubis {
    fn name(&self) -> &'static str {
        "rubis"
    }

    fn vms(&self) -> &[VmId] {
        &self.vms
    }

    fn vm_role(&self, vm: VmId) -> &'static str {
        let idx = self
            .vms
            .iter()
            .position(|&v| v == vm)
            .unwrap_or_else(|| panic!("{vm} does not belong to RUBiS"));
        self.specs[idx].name
    }

    fn bottleneck_vm(&self) -> VmId {
        self.vms[DB]
    }

    fn nominal_rate(&self) -> f64 {
        Self::NOMINAL_RATE
    }

    fn slo_metric_name(&self) -> &'static str {
        "avg response time (ms)"
    }

    fn step(
        &mut self,
        now: Timestamp,
        rate: f64,
        cluster: &mut Cluster,
        faults: &FaultPlan,
    ) -> AppTick {
        // Tier-local input rates: app servers split the request stream,
        // every request touches web and DB once.
        let tier_rate = [rate, rate * 0.5, rate * 0.5, rate];
        let mut latency = [0.0f64; N_TIERS];
        let mut tf = [1.0f64; N_TIERS];
        for i in 0..N_TIERS {
            let demand = add_demand(
                self.specs[i].demand(tier_rate[i]),
                faults.overlay(self.vms[i], now),
            );
            let rho = if cluster.vm(self.vms[i]).cpu_alloc > 0.0 {
                (demand.cpu / cluster.vm(self.vms[i]).cpu_alloc).min(MAX_RHO)
            } else {
                MAX_RHO
            };
            let quality = cluster.apply_demand(self.vms[i], demand, now);
            // Queueing delay from CPU utilization; paging and migration
            // multiply the effective service time.
            let service_inflation =
                (1.0 / quality.mem_fraction.max(1e-3)) * (1.0 / quality.migration_penalty);
            latency[i] = self.specs[i].service_ms * service_inflation / (1.0 - rho)
                + quality.queue_delay_secs * 1000.0;
            tf[i] = quality.throughput_factor();
        }

        let response_ms = (latency[WEB] + 0.5 * (latency[APP1] + latency[APP2]) + latency[DB])
            .min(MAX_RESPONSE_MS);
        let output_rate = rate * tf[WEB] * (0.5 * (tf[APP1] + tf[APP2])) * tf[DB];
        let slo_violated = response_ms > 200.0;
        AppTick {
            time: now,
            input_rate: rate,
            output_rate,
            latency_ms: response_ms,
            slo_metric: response_ms,
            slo_violated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FaultInjection, FaultKind, Workload};
    use prepare_metrics::Duration;

    fn deploy() -> (Cluster, Rubis) {
        let mut cluster = Cluster::new();
        let app = Rubis::deploy(&mut cluster).unwrap();
        (cluster, app)
    }

    #[test]
    fn deploys_four_tiers_plus_spare() {
        let (cluster, app) = deploy();
        assert_eq!(app.vms().len(), 4);
        assert_eq!(cluster.n_hosts(), 5);
        assert_eq!(app.vm_role(app.db_vm()), "db-server");
        assert_eq!(app.bottleneck_vm(), app.db_vm());
    }

    #[test]
    fn healthy_at_nominal_rate() {
        let (mut cluster, mut app) = deploy();
        let tick = app.step(
            Timestamp::ZERO,
            Rubis::NOMINAL_RATE,
            &mut cluster,
            &FaultPlan::new(),
        );
        assert!(
            !tick.slo_violated,
            "nominal load must satisfy SLO: {tick:?}"
        );
        assert!(
            tick.latency_ms < 100.0,
            "nominal response {:.1}ms",
            tick.latency_ms
        );
    }

    #[test]
    fn healthy_across_the_nasa_diurnal_peak() {
        let (mut cluster, mut app) = deploy();
        let w = Workload::nasa_trace(Rubis::NOMINAL_RATE);
        for s in (0..1800).step_by(60) {
            let t = Timestamp::from_secs(s);
            let tick = app.step(t, w.base_rate(t), &mut cluster, &FaultPlan::new());
            assert!(
                !tick.slo_violated,
                "diurnal peak alone must not violate SLO at t={s}: {tick:?}"
            );
        }
    }

    #[test]
    fn cpu_hog_on_db_spikes_response_time() {
        let (mut cluster, mut app) = deploy();
        let mut faults = FaultPlan::new();
        faults.add(FaultInjection {
            target: Some(app.db_vm()),
            kind: FaultKind::CpuHog { cpu: 70.0 },
            start: Timestamp::ZERO,
            duration: Duration::from_secs(300),
        });
        let tick = app.step(
            Timestamp::from_secs(5),
            Rubis::NOMINAL_RATE,
            &mut cluster,
            &faults,
        );
        assert!(tick.slo_violated, "hog must violate: {tick:?}");
        assert!(tick.latency_ms > 200.0);
    }

    #[test]
    fn memory_leak_on_db_manifests_gradually() {
        let (mut cluster, mut app) = deploy();
        let mut faults = FaultPlan::new();
        faults.add(FaultInjection {
            target: Some(app.db_vm()),
            kind: FaultKind::MemLeak {
                rate_mb_per_sec: 2.0,
            },
            start: Timestamp::ZERO,
            duration: Duration::from_secs(300),
        });
        let early = app.step(
            Timestamp::from_secs(20),
            Rubis::NOMINAL_RATE,
            &mut cluster,
            &faults,
        );
        assert!(!early.slo_violated, "early leak fine: {early:?}");
        let late = app.step(
            Timestamp::from_secs(280),
            Rubis::NOMINAL_RATE,
            &mut cluster,
            &faults,
        );
        assert!(late.slo_violated, "late leak violates: {late:?}");
        assert!(late.latency_ms > early.latency_ms);
    }

    #[test]
    fn bottleneck_ramp_saturates_db_first() {
        let (mut cluster, mut app) = deploy();
        let tick = app.step(Timestamp::ZERO, 125.0, &mut cluster, &FaultPlan::new());
        assert!(
            tick.slo_violated,
            "125 req/s must exceed DB capacity: {tick:?}"
        );
        // web and app tiers still have CPU headroom
        let web = cluster.vm(app.vms()[0]);
        assert!(web.cpu_used < web.cpu_alloc * 0.95);
        let db = cluster.vm(app.db_vm());
        assert!(db.cpu_used > db.cpu_alloc * 0.95);
    }

    #[test]
    fn response_time_is_capped() {
        let (mut cluster, mut app) = deploy();
        let tick = app.step(Timestamp::ZERO, 10_000.0, &mut cluster, &FaultPlan::new());
        assert!(tick.latency_ms <= 1000.0);
        assert!(tick.latency_ms.is_finite());
    }
}
