//! Simulated case-study applications for the PREPARE reproduction
//! (paper §III-A).
//!
//! The paper evaluates PREPARE with two real distributed systems that are
//! not available to us (IBM System S is proprietary; RUBiS needs a full
//! EJB stack), so this crate provides behavioural models that expose the
//! same surfaces PREPARE interacts with:
//!
//! - [`SystemS`] — the 7-PE tax-calculation dataflow of Fig. 4, with the
//!   paper's SLO (output/input rate ≥ 0.95 and per-tuple time ≤ 20 ms).
//! - [`Rubis`] — the 3-tier auction topology of Fig. 5 (web server, two
//!   app servers, DB) with an M/M/1-style response-time model and the
//!   paper's 200 ms SLO.
//! - [`Workload`] — client workload generators, including a synthesized
//!   stand-in for the NASA-95 web trace ([`Workload::nasa_trace`]).
//! - [`FaultPlan`] — the three fault injections of §III-A: memory leak,
//!   CPU hog, and the workload-ramp bottleneck.
//!
//! Every component runs in its own VM on a [`prepare_cloudsim::Cluster`];
//! per tick, each app converts its incoming request/tuple rate into
//! per-VM resource [`prepare_cloudsim::Demand`]s, lets the cluster
//! resolve contention, and derives achieved throughput / response time
//! from the returned [`prepare_cloudsim::ServiceQuality`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod app;
mod component;
mod faults;
mod rubis;
mod systems;
mod workload;

pub use app::{AppTick, Application};
pub use component::ComponentSpec;
pub use faults::{FaultInjection, FaultKind, FaultPlan};
pub use rubis::Rubis;
pub use systems::SystemS;
pub use workload::Workload;
