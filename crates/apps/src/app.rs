//! The application abstraction the PREPARE controller manages.

use crate::FaultPlan;
use prepare_cloudsim::Cluster;
use prepare_metrics::{Timestamp, VmId};

/// One tick of application progress.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppTick {
    /// Simulation time of this tick.
    pub time: Timestamp,
    /// Client input rate presented this tick (native unit).
    pub input_rate: f64,
    /// End-to-end output rate achieved (native unit; for RUBiS this is
    /// the completed-request rate).
    pub output_rate: f64,
    /// End-to-end latency this tick (per-tuple time for System S, average
    /// request response time for RUBiS), in milliseconds.
    pub latency_ms: f64,
    /// The scalar the paper plots as the "SLO metric" for this app
    /// (throughput in Ktuples/s for System S — Figs. 7a/7c — and average
    /// response time in ms for RUBiS — Figs. 7b/7d).
    pub slo_metric: f64,
    /// Whether the application's SLO is violated at this tick.
    pub slo_violated: bool,
}

/// A distributed application deployed one-component-per-VM on the
/// simulated cluster.
///
/// The per-tick protocol: the experiment driver computes the client rate
/// (workload × any bottleneck-fault multiplier) and calls
/// [`Application::step`], which pushes every component's demand through
/// the cluster and reports achieved SLO status.
pub trait Application {
    /// Application name ("systems" / "rubis").
    fn name(&self) -> &'static str;

    /// The VMs hosting this application's components, in component order.
    fn vms(&self) -> &[VmId];

    /// Role of a VM ("PE3", "db-server", ...).
    ///
    /// # Panics
    ///
    /// Panics if the VM does not belong to this application.
    fn vm_role(&self, vm: VmId) -> &'static str;

    /// The component that saturates first under workload growth — the
    /// designated bottleneck (PE6 for System S, the DB for RUBiS).
    fn bottleneck_vm(&self) -> VmId;

    /// The client rate the app is sized for (Ktuples/s or req/s).
    fn nominal_rate(&self) -> f64;

    /// Human-readable name of [`AppTick::slo_metric`].
    fn slo_metric_name(&self) -> &'static str;

    /// Advances the application by one tick at client rate `rate`,
    /// applying fault overlays and resolving demands on `cluster`.
    fn step(
        &mut self,
        now: Timestamp,
        rate: f64,
        cluster: &mut Cluster,
        faults: &FaultPlan,
    ) -> AppTick;
}
