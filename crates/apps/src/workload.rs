//! Client workload generators (paper §III-A).
//!
//! The RUBiS experiments use "a client workload generator that emulates
//! the workload intensity observed in the NASA web server trace beginning
//! at 00:00:00 July 1, 1995 from the IRCache Internet traffic archive".
//! That trace is not redistributable offline, so [`Workload::nasa_trace`]
//! synthesizes the documented intensity *shape* of that day — a deep
//! overnight trough, a steep morning climb, a mid-afternoon peak and an
//! evening shoulder — time-compressed onto the experiment run, with
//! seeded bursty noise. What the experiments need from the trace is
//! realistic non-stationarity for the Markov predictor, which the shape
//! preserves; see DESIGN.md for the substitution note.

use prepare_metrics::Timestamp;
use rand::Rng;

/// Hourly intensity profile (relative to the daily mean) synthesized from
/// the well-known shape of the NASA-HTTP trace's first day: requests
/// bottom out around 04:00 and peak mid-afternoon.
const NASA_HOURLY: [f64; 24] = [
    0.55, 0.45, 0.38, 0.33, 0.30, 0.33, 0.42, 0.55, //
    0.75, 0.95, 1.15, 1.30, 1.40, 1.45, 1.50, 1.52, //
    1.48, 1.40, 1.30, 1.18, 1.05, 0.90, 0.75, 0.62,
];

/// A time-varying client workload.
#[derive(Debug, Clone, PartialEq)]
pub enum Workload {
    /// Constant rate (System S experiments).
    Constant {
        /// The rate in the application's native unit (Ktuples/s or req/s).
        rate: f64,
    },
    /// Linear ramp from `from` to `to` over `[begin, begin+ramp_secs]`,
    /// holding at `to` afterwards.
    Ramp {
        /// Initial rate.
        from: f64,
        /// Final rate.
        to: f64,
        /// When the ramp starts.
        begin: Timestamp,
        /// Ramp duration in seconds.
        ramp_secs: u64,
    },
    /// The NASA-trace-shaped diurnal workload: one synthetic "day"
    /// compressed into `day_secs` of simulated time, centered on
    /// `mean_rate`, with multiplicative jitter of relative magnitude
    /// `jitter`.
    Nasa {
        /// Mean rate across the synthetic day.
        mean_rate: f64,
        /// Simulated seconds one 24 h day is compressed into.
        day_secs: u64,
        /// Relative (1σ) multiplicative noise.
        jitter: f64,
    },
    /// Replay of a recorded rate trace: `samples[i]` is the rate during
    /// `[i·step_secs, (i+1)·step_secs)`, wrapping around at the end — use
    /// this to drive experiments from the *real* NASA (or any other)
    /// request log when one is available.
    Replay {
        /// Per-interval rates.
        samples: Vec<f64>,
        /// Seconds each sample covers.
        step_secs: u64,
    },
}

impl Workload {
    /// Convenience constructor for the NASA-shaped workload used by the
    /// RUBiS experiments: one day compressed into 30 simulated minutes,
    /// 5% jitter.
    pub fn nasa_trace(mean_rate: f64) -> Self {
        Workload::Nasa {
            mean_rate,
            day_secs: 1800,
            jitter: 0.05,
        }
    }

    /// The noiseless intensity at time `t`.
    pub fn base_rate(&self, t: Timestamp) -> f64 {
        match *self {
            Workload::Constant { rate } => rate,
            Workload::Ramp {
                from,
                to,
                begin,
                ramp_secs,
            } => {
                if t < begin {
                    from
                } else {
                    let elapsed = t.since(begin).as_secs();
                    if ramp_secs == 0 || elapsed >= ramp_secs {
                        to
                    } else {
                        from + (to - from) * elapsed as f64 / ramp_secs as f64
                    }
                }
            }
            Workload::Replay {
                ref samples,
                step_secs,
            } => {
                if samples.is_empty() {
                    return 0.0;
                }
                let idx = (t.as_secs() / step_secs.max(1)) as usize % samples.len();
                samples[idx].max(0.0)
            }
            Workload::Nasa {
                mean_rate,
                day_secs,
                ..
            } => {
                let day_pos = (t.as_secs() % day_secs.max(1)) as f64 / day_secs.max(1) as f64;
                let hour_f = day_pos * 24.0;
                let h0 = (hour_f as usize) % 24;
                let h1 = (h0 + 1) % 24;
                let frac = hour_f - hour_f.floor();
                // Linear interpolation between hourly intensities.
                let intensity = NASA_HOURLY[h0] * (1.0 - frac) + NASA_HOURLY[h1] * frac;
                mean_rate * intensity
            }
        }
    }

    /// The (possibly jittered) rate at time `t`.
    pub fn rate(&self, t: Timestamp, rng: &mut impl Rng) -> f64 {
        let base = self.base_rate(t);
        let jitter = match *self {
            Workload::Nasa { jitter, .. } => jitter,
            _ => 0.0,
        };
        if jitter > 0.0 {
            let z: f64 = {
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen::<f64>();
                prepare_metrics::debug_assert_finite!(
                    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
                )
            };
            (base * (1.0 + jitter * z)).max(0.0)
        } else {
            base
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn t(s: u64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    #[test]
    fn constant_is_constant() {
        let w = Workload::Constant { rate: 20.0 };
        assert_eq!(w.base_rate(t(0)), 20.0);
        assert_eq!(w.base_rate(t(9999)), 20.0);
    }

    #[test]
    fn ramp_interpolates_linearly() {
        let w = Workload::Ramp {
            from: 10.0,
            to: 30.0,
            begin: t(100),
            ramp_secs: 100,
        };
        assert_eq!(w.base_rate(t(0)), 10.0);
        assert_eq!(w.base_rate(t(100)), 10.0);
        assert!((w.base_rate(t(150)) - 20.0).abs() < 1e-9);
        assert_eq!(w.base_rate(t(200)), 30.0);
        assert_eq!(w.base_rate(t(500)), 30.0);
    }

    #[test]
    fn zero_length_ramp_jumps() {
        let w = Workload::Ramp {
            from: 1.0,
            to: 2.0,
            begin: t(10),
            ramp_secs: 0,
        };
        assert_eq!(w.base_rate(t(9)), 1.0);
        assert_eq!(w.base_rate(t(10)), 2.0);
    }

    #[test]
    fn nasa_trace_has_diurnal_swing() {
        let w = Workload::nasa_trace(50.0);
        // Deep night (~04:00 → 4/24 of the compressed day).
        let night = w.base_rate(t(1800 * 4 / 24));
        // Mid-afternoon peak (~15:00).
        let peak = w.base_rate(t(1800 * 15 / 24));
        assert!(peak > night * 2.0, "peak {peak:.1} vs night {night:.1}");
        assert!(peak > 50.0 && night < 50.0);
    }

    #[test]
    fn nasa_trace_wraps_around_days() {
        let w = Workload::nasa_trace(50.0);
        assert!((w.base_rate(t(100)) - w.base_rate(t(1900))).abs() < 1e-9);
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let w = Workload::nasa_trace(50.0);
        let mut r1 = StdRng::seed_from_u64(3);
        let mut r2 = StdRng::seed_from_u64(3);
        assert_eq!(w.rate(t(42), &mut r1), w.rate(t(42), &mut r2));
    }

    #[test]
    fn replay_steps_and_wraps() {
        let w = Workload::Replay {
            samples: vec![10.0, 20.0, 30.0],
            step_secs: 5,
        };
        assert_eq!(w.base_rate(t(0)), 10.0);
        assert_eq!(w.base_rate(t(4)), 10.0);
        assert_eq!(w.base_rate(t(5)), 20.0);
        assert_eq!(w.base_rate(t(14)), 30.0);
        assert_eq!(w.base_rate(t(15)), 10.0, "wraps around");
        // Replay is noiseless through rate() too.
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(w.rate(t(6), &mut rng), 20.0);
    }

    #[test]
    fn replay_edge_cases() {
        let empty = Workload::Replay {
            samples: vec![],
            step_secs: 5,
        };
        assert_eq!(empty.base_rate(t(100)), 0.0);
        let negative = Workload::Replay {
            samples: vec![-3.0],
            step_secs: 0,
        };
        assert_eq!(
            negative.base_rate(t(0)),
            0.0,
            "negative samples clamp, zero step survives"
        );
    }

    #[test]
    fn jittered_rate_never_negative() {
        let w = Workload::Nasa {
            mean_rate: 1.0,
            day_secs: 1800,
            jitter: 2.0, // extreme
        };
        let mut rng = StdRng::seed_from_u64(9);
        for s in 0..500 {
            assert!(w.rate(t(s), &mut rng) >= 0.0);
        }
    }
}
