//! Selection between the two attribute value predictors.

use prepare_markov::{SimpleMarkov, StateDistribution, TwoDependentMarkov, ValuePredictor};
use prepare_metrics::persist::{Persist, PersistError, Reader, Writer};

/// Which Markov model to use for attribute value prediction — the axis of
/// the Fig. 11 comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MarkovKind {
    /// First-order chain (the authors' earlier system \[10\]).
    Simple,
    /// The paper's 2-dependent (combined-state) chain.
    #[default]
    TwoDependent,
}

/// A value predictor of either kind, chosen at model-build time.
#[derive(Debug, Clone, PartialEq)]
pub enum ValueModel {
    /// First-order chain.
    Simple(SimpleMarkov),
    /// Combined-state second-order chain.
    TwoDependent(TwoDependentMarkov),
}

impl ValueModel {
    /// Creates an untrained model of `kind` over `n` states.
    pub fn new(kind: MarkovKind, n: usize) -> Self {
        match kind {
            MarkovKind::Simple => ValueModel::Simple(SimpleMarkov::new(n)),
            MarkovKind::TwoDependent => ValueModel::TwoDependent(TwoDependentMarkov::new(n)),
        }
    }

    /// Rebuilds a model of `kind` from raw transition-count arrays — the
    /// arena-to-model step of the incremental trainer. `fallback` is the
    /// first-order `n × n` count table (the whole model for
    /// [`MarkovKind::Simple`], the fallback table for
    /// [`MarkovKind::TwoDependent`]); `combined` is the `n³` combined-state
    /// table, ignored by the simple kind. Smoothing is the default α the
    /// [`ValueModel::new`] constructors use, so a model rebuilt from the
    /// counts of a trained model equals it exactly.
    ///
    /// # Panics
    ///
    /// Panics if a count array has the wrong length for `n`.
    pub fn from_parts(
        kind: MarkovKind,
        n: usize,
        combined: &[f64],
        fallback: &[f64],
        observations: usize,
    ) -> Self {
        match kind {
            MarkovKind::Simple => ValueModel::Simple(SimpleMarkov::from_parts(
                n,
                0.02,
                fallback.to_vec(),
                observations,
            )),
            MarkovKind::TwoDependent => ValueModel::TwoDependent(TwoDependentMarkov::from_parts(
                n,
                0.02,
                combined.to_vec(),
                fallback.to_vec(),
                observations,
            )),
        }
    }

    /// The kind of this model.
    pub fn kind(&self) -> MarkovKind {
        match self {
            ValueModel::Simple(_) => MarkovKind::Simple,
            ValueModel::TwoDependent(_) => MarkovKind::TwoDependent,
        }
    }

    /// The underlying model's naive (non-snapshot) prediction path —
    /// bit-identical to [`ValuePredictor::predict`] but re-deriving every
    /// transition row per step. Exposed for differential testing and the
    /// `hotpath` before/after benchmark.
    pub fn predict_reference(&self, steps: usize) -> StateDistribution {
        let d = match self {
            ValueModel::Simple(m) => m.predict_reference(steps),
            ValueModel::TwoDependent(m) => m.predict_reference(steps),
        };
        prepare_metrics::debug_assert_all_finite!(d.as_slice());
        d
    }
}

impl Persist for MarkovKind {
    fn store(&self, w: &mut Writer) {
        w.put_u8(match self {
            MarkovKind::Simple => 0,
            MarkovKind::TwoDependent => 1,
        });
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        match r.get_u8()? {
            0 => Ok(MarkovKind::Simple),
            1 => Ok(MarkovKind::TwoDependent),
            tag => Err(PersistError::BadTag {
                what: "MarkovKind",
                tag,
            }),
        }
    }
}

impl Persist for ValueModel {
    fn store(&self, w: &mut Writer) {
        match self {
            ValueModel::Simple(m) => {
                w.put_u8(0);
                m.store(w);
            }
            ValueModel::TwoDependent(m) => {
                w.put_u8(1);
                m.store(w);
            }
        }
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        match r.get_u8()? {
            0 => Ok(ValueModel::Simple(Persist::load(r)?)),
            1 => Ok(ValueModel::TwoDependent(Persist::load(r)?)),
            tag => Err(PersistError::BadTag {
                what: "ValueModel",
                tag,
            }),
        }
    }
}

impl ValuePredictor for ValueModel {
    fn n_states(&self) -> usize {
        match self {
            ValueModel::Simple(m) => m.n_states(),
            ValueModel::TwoDependent(m) => m.n_states(),
        }
    }

    fn observe(&mut self, state: usize) {
        match self {
            ValueModel::Simple(m) => m.observe(state),
            ValueModel::TwoDependent(m) => m.observe(state),
        }
    }

    fn predict(&self, steps: usize) -> StateDistribution {
        match self {
            ValueModel::Simple(m) => m.predict(steps),
            ValueModel::TwoDependent(m) => m.predict(steps),
        }
    }

    fn predict_multi(&self, steps: &[usize]) -> Vec<StateDistribution> {
        match self {
            ValueModel::Simple(m) => m.predict_multi(steps),
            ValueModel::TwoDependent(m) => m.predict_multi(steps),
        }
    }

    fn reset_position(&mut self) {
        match self {
            ValueModel::Simple(m) => m.reset_position(),
            ValueModel::TwoDependent(m) => m.reset_position(),
        }
    }

    fn observations(&self) -> usize {
        match self {
            ValueModel::Simple(m) => m.observations(),
            ValueModel::TwoDependent(m) => m.observations(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_round_trips() {
        assert_eq!(
            ValueModel::new(MarkovKind::Simple, 3).kind(),
            MarkovKind::Simple
        );
        assert_eq!(
            ValueModel::new(MarkovKind::TwoDependent, 3).kind(),
            MarkovKind::TwoDependent
        );
    }

    #[test]
    fn delegates_observe_and_predict() {
        for kind in [MarkovKind::Simple, MarkovKind::TwoDependent] {
            let mut m = ValueModel::new(kind, 4);
            for i in 0..40 {
                m.observe(i % 4);
            }
            assert_eq!(m.observations(), 40);
            assert!(m.predict(3).is_valid());
            m.reset_position();
            assert!(m.predict(0).is_valid());
        }
    }

    #[test]
    fn default_kind_is_two_dependent() {
        assert_eq!(MarkovKind::default(), MarkovKind::TwoDependent);
    }

    #[test]
    fn persist_round_trips_both_kinds_with_anchor() {
        for kind in [MarkovKind::Simple, MarkovKind::TwoDependent] {
            let mut m = ValueModel::new(kind, 5);
            for i in 0..60 {
                m.observe((i * 2 + i / 7) % 5);
            }
            let bytes = prepare_metrics::persist::to_bytes(&m);
            let mut restored: ValueModel = prepare_metrics::persist::from_bytes(&bytes).unwrap();
            assert_eq!(restored, m, "kind {kind:?}");
            // Unlike from_parts, Persist keeps the mid-stream anchor:
            // predictions continue identically without re-observing.
            assert_eq!(
                restored.predict(2).as_slice(),
                m.predict(2).as_slice(),
                "kind {kind:?}"
            );
            restored.observe(3);
            m.observe(3);
            assert_eq!(restored, m);
        }
    }

    #[test]
    fn persist_rejects_unknown_model_tag() {
        let m = ValueModel::new(MarkovKind::Simple, 3);
        let mut bytes = prepare_metrics::persist::to_bytes(&m);
        bytes[0] = 7;
        assert!(prepare_metrics::persist::from_bytes::<ValueModel>(&bytes).is_err());
    }

    #[test]
    fn from_parts_round_trips_a_trained_model() {
        for kind in [MarkovKind::Simple, MarkovKind::TwoDependent] {
            let mut trained = ValueModel::new(kind, 5);
            for i in 0..60 {
                trained.observe((i * i + i / 3) % 5);
            }
            trained.reset_position();
            let (combined, fallback): (&[f64], &[f64]) = match &trained {
                ValueModel::Simple(m) => (&[], m.counts()),
                ValueModel::TwoDependent(m) => (m.counts(), m.fallback_counts()),
            };
            let rebuilt =
                ValueModel::from_parts(kind, 5, combined, fallback, trained.observations());
            assert_eq!(rebuilt, trained, "kind {kind:?}");
            assert_eq!(format!("{rebuilt:?}"), format!("{trained:?}"));
        }
    }
}
