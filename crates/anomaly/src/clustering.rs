//! Clustering-based unsupervised anomaly classification — the §V
//! extension spelled out: "it is straightforward to extend PREPARE to
//! support unknown anomalies by replacing the supervised classification
//! method with unsupervised classifiers (e.g., clustering and outlier
//! detection)."
//!
//! [`KMeans`] learns the shape of *normal* operation from unlabeled
//! discretized metric vectors; [`ClusterClassifier`] then scores any
//! vector by its distance to the nearest centroid, normalized by that
//! cluster's radius. States far from every behaviour cluster are
//! anomalies — including ones never seen before, which the supervised TAN
//! cannot flag.

use prepare_metrics::{debug_assert_finite, Label};

/// A k-means model over discretized metric vectors.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeans {
    centroids: Vec<Vec<f64>>,
    /// Mean distance of member points to their centroid (per cluster).
    radii: Vec<f64>,
}

impl KMeans {
    /// Fits `k` clusters with Lloyd's algorithm (deterministic farthest-
    /// point initialization, fixed iteration cap).
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty, `k` is zero, or rows have differing
    /// lengths.
    pub fn fit(data: &[Vec<usize>], k: usize) -> Self {
        assert!(!data.is_empty(), "k-means needs data");
        assert!(k > 0, "k must be positive");
        let dim = data[0].len();
        assert!(
            data.iter().all(|r| r.len() == dim),
            "all rows must share one dimensionality"
        );
        let points: Vec<Vec<f64>> = data
            .iter()
            .map(|r| r.iter().map(|&v| v as f64).collect())
            .collect();
        let k = k.min(points.len());

        // Farthest-point ("k-means++-like" but deterministic) seeding.
        let mut centroids: Vec<Vec<f64>> = vec![points[0].clone()];
        while centroids.len() < k {
            let Some(far) = points.iter().max_by(|a, b| {
                let da = nearest_distance(a, &centroids);
                let db = nearest_distance(b, &centroids);
                da.total_cmp(&db)
            }) else {
                debug_assert!(false, "points non-empty: data[0] was read above");
                break; // no points left to seed from; keep the centroids we have
            };
            centroids.push(far.clone());
        }

        let mut assignment = vec![0usize; points.len()];
        for _ in 0..50 {
            let mut changed = false;
            for (a, p) in assignment.iter_mut().zip(&points) {
                let best = nearest_index(p, &centroids);
                if *a != best {
                    *a = best;
                    changed = true;
                }
            }
            // Recompute centroids.
            let mut sums = vec![vec![0.0; dim]; centroids.len()];
            let mut counts = vec![0usize; centroids.len()];
            for (&a, p) in assignment.iter().zip(&points) {
                if let (Some(count), Some(sum)) = (counts.get_mut(a), sums.get_mut(a)) {
                    *count += 1;
                    for (s, v) in sum.iter_mut().zip(p) {
                        *s += v;
                    }
                }
            }
            for (c, (sum, count)) in centroids.iter_mut().zip(sums.iter().zip(&counts)) {
                if *count > 0 {
                    *c = sum.iter().map(|s| s / *count as f64).collect();
                }
            }
            if !changed {
                break;
            }
        }

        // Cluster radii (mean member distance, floored to keep scoring
        // finite for singleton clusters).
        let mut radii = vec![0.0f64; centroids.len()];
        let mut counts = vec![0usize; centroids.len()];
        for (&a, p) in assignment.iter().zip(&points) {
            if let (Some(r), Some(count), Some(c)) =
                (radii.get_mut(a), counts.get_mut(a), centroids.get(a))
            {
                *r += distance(p, c);
                *count += 1;
            }
        }
        for (r, c) in radii.iter_mut().zip(&counts) {
            *r = if *c > 0 {
                (*r / *c as f64).max(0.5)
            } else {
                0.5
            };
        }

        KMeans { centroids, radii }
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// Normalized distance of `x` to its nearest behaviour cluster:
    /// ~1 means "typical member", larger means increasingly anomalous.
    pub fn anomaly_score(&self, x: &[usize]) -> f64 {
        let p: Vec<f64> = x.iter().map(|&v| v as f64).collect();
        let idx = nearest_index(&p, &self.centroids);
        debug_assert_finite!(distance(&p, &self.centroids[idx]) / self.radii[idx])
    }
}

fn distance(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

fn nearest_index(p: &[f64], centroids: &[Vec<f64>]) -> usize {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (i, c) in centroids.iter().enumerate() {
        let d = distance(p, c);
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

fn nearest_distance(p: &[f64], centroids: &[Vec<f64>]) -> f64 {
    centroids
        .iter()
        .map(|c| distance(p, c))
        .fold(f64::INFINITY, f64::min)
}

/// Unsupervised anomaly classifier: normal behaviour clusters plus a
/// score threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterClassifier {
    model: KMeans,
    threshold: f64,
}

impl ClusterClassifier {
    /// Default anomaly-score threshold (distance beyond 3 cluster radii).
    pub const DEFAULT_THRESHOLD: f64 = 3.0;

    /// Fits on *unlabeled* (assumed mostly normal) discretized vectors.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`KMeans::fit`], or when the
    /// threshold is not positive and finite.
    pub fn fit(data: &[Vec<usize>], k: usize, threshold: f64) -> Self {
        assert!(
            threshold.is_finite() && threshold > 0.0,
            "threshold must be positive"
        );
        ClusterClassifier {
            model: KMeans::fit(data, k),
            threshold,
        }
    }

    /// Fits with `k = 4` behaviour clusters and the default threshold.
    pub fn fit_default(data: &[Vec<usize>]) -> Self {
        Self::fit(data, 4, Self::DEFAULT_THRESHOLD)
    }

    /// The anomaly score of a vector (see [`KMeans::anomaly_score`]).
    pub fn score(&self, x: &[usize]) -> f64 {
        debug_assert_finite!(self.model.anomaly_score(x))
    }

    /// Classifies: abnormal when the score exceeds the threshold.
    pub fn classify(&self, x: &[usize]) -> Label {
        Label::from_violation(self.score(x) > self.threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two well-separated normal behaviour modes (low-load / high-load).
    fn bimodal_data() -> Vec<Vec<usize>> {
        let mut data = Vec::new();
        for i in 0..60usize {
            let jitter = i % 2;
            data.push(vec![1 + jitter, 1, 2, 1 + jitter]); // low mode
            data.push(vec![6, 7 - jitter, 6, 7]); // high mode
        }
        data
    }

    #[test]
    fn members_score_low_outliers_high() {
        let c = ClusterClassifier::fit(&bimodal_data(), 2, 3.0);
        assert_eq!(c.classify(&[1, 1, 2, 1]), Label::Normal);
        assert_eq!(c.classify(&[6, 7, 6, 7]), Label::Normal);
        // A state far from both modes — e.g. everything pinned at max.
        assert_eq!(c.classify(&[9, 9, 9, 9]), Label::Abnormal);
        assert!(c.score(&[9, 9, 9, 9]) > c.score(&[1, 1, 2, 1]));
    }

    #[test]
    fn detects_never_before_seen_anomaly() {
        // The whole point of the unsupervised path: the anomalous state
        // was never labeled — it is just far from everything normal.
        let c = ClusterClassifier::fit_default(&bimodal_data());
        assert_eq!(c.classify(&[0, 9, 0, 9]), Label::Abnormal);
    }

    #[test]
    fn k_capped_by_data_size() {
        let data = vec![vec![1, 1], vec![2, 2]];
        let m = KMeans::fit(&data, 10);
        assert!(m.k() <= 2);
    }

    #[test]
    fn single_cluster_still_scores() {
        let data: Vec<Vec<usize>> = (0..20).map(|i| vec![3 + (i % 2), 4]).collect();
        let m = KMeans::fit(&data, 1);
        assert!(m.anomaly_score(&[3, 4]) < 2.0);
        assert!(m.anomaly_score(&[9, 0]) > 3.0);
    }

    #[test]
    #[should_panic(expected = "needs data")]
    fn empty_data_rejected() {
        let _ = KMeans::fit(&[], 2);
    }

    #[test]
    #[should_panic(expected = "dimensionality")]
    fn ragged_data_rejected() {
        let _ = KMeans::fit(&[vec![1, 2], vec![1]], 2);
    }
}
