//! The monolithic-model baseline (paper §II-B / Fig. 10): one prediction
//! model over the concatenated attributes of *all* application VMs.
//!
//! The paper keeps this model around only to show why per-VM models win:
//! "as the number of attributes increases, the attribute value prediction
//! errors will accumulate. As a result, the classification accuracy over
//! predicted values will degrade."

use crate::{ConfusionMatrix, ValueModel};
use prepare_markov::ValuePredictor;
use prepare_metrics::{
    Duration, Label, MetricSample, SloLog, TimeSeries, VectorDiscretizer, ATTRIBUTE_COUNT,
};
use prepare_tan::{Classifier, Dataset, TanClassifier, TrainError};

use crate::PredictorConfig;

/// A single anomaly prediction model spanning every VM of an application.
#[derive(Debug, Clone)]
pub struct MonolithicPredictor {
    config: PredictorConfig,
    /// One discretizer per VM (each VM's value ranges differ).
    discretizers: Vec<VectorDiscretizer>,
    /// One value model per concatenated attribute (`n_vms × 13`).
    value_models: Vec<ValueModel>,
    classifier: TanClassifier,
}

impl MonolithicPredictor {
    /// Trains the monolithic model from per-VM traces that are aligned
    /// sample-by-sample (same sampling schedule), labeled by the shared
    /// application SLO log.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError`] for an empty or single-class trace.
    ///
    /// # Panics
    ///
    /// Panics if `series` is empty or the traces have differing lengths.
    pub fn train(
        series: &[TimeSeries],
        slo: &SloLog,
        config: &PredictorConfig,
    ) -> Result<Self, TrainError> {
        assert!(
            !series.is_empty(),
            "monolithic model needs at least one VM trace"
        );
        let len = series[0].len();
        assert!(
            series.iter().all(|s| s.len() == len),
            "per-VM traces must be aligned"
        );
        if len == 0 {
            return Err(TrainError::EmptyDataset);
        }

        let discretizers: Vec<VectorDiscretizer> = series
            .iter()
            .map(|s| VectorDiscretizer::fit(s, config.bins))
            .collect();

        let n_attrs = series.len() * ATTRIBUTE_COUNT;
        let mut dataset = Dataset::with_uniform_bins(n_attrs, config.bins);
        for i in 0..len {
            let row = Self::concat_row(&discretizers, series, i);
            let t = series[0].samples()[i].time;
            dataset
                .push(row, Label::from_violation(slo.is_violated_at(t)))
                .expect("concatenated rows match schema");
        }
        let classifier = TanClassifier::train(&dataset)?;

        let mut value_models: Vec<ValueModel> = (0..n_attrs)
            .map(|_| ValueModel::new(config.markov, config.bins))
            .collect();
        for i in 0..len {
            let row = Self::concat_row(&discretizers, series, i);
            for (m, &state) in value_models.iter_mut().zip(&row) {
                m.observe(state);
            }
        }
        for m in &mut value_models {
            m.reset_position();
        }

        Ok(MonolithicPredictor {
            config: config.clone(),
            discretizers,
            value_models,
            classifier,
        })
    }

    fn concat_row(
        discretizers: &[VectorDiscretizer],
        series: &[TimeSeries],
        i: usize,
    ) -> Vec<usize> {
        let mut row = Vec::with_capacity(series.len() * ATTRIBUTE_COUNT);
        for (d, s) in discretizers.iter().zip(series) {
            row.extend(d.discretize(&s.samples()[i].values));
        }
        row
    }

    /// Number of VMs the model spans.
    pub fn n_vms(&self) -> usize {
        self.discretizers.len()
    }

    /// Feeds one aligned sample per VM.
    ///
    /// # Panics
    ///
    /// Panics if `samples.len() != n_vms()`.
    pub fn observe(&mut self, samples: &[MetricSample]) {
        assert_eq!(samples.len(), self.n_vms(), "one sample per VM required");
        let mut idx = 0;
        for (d, s) in self.discretizers.iter().zip(samples) {
            for state in d.discretize(&s.values) {
                self.value_models[idx].observe(state);
                idx += 1;
            }
        }
    }

    /// Predicted label `look_ahead` into the future.
    pub fn predict_label(&self, look_ahead: Duration) -> Label {
        let steps = self.config.steps_for(look_ahead);
        let states: Vec<usize> = self
            .value_models
            .iter()
            .map(|m| m.predict(steps).most_likely())
            .collect();
        self.classifier.classify(&states)
    }

    /// Forgets stream positions (keeps learned statistics).
    pub fn reset_position(&mut self) {
        for m in &mut self.value_models {
            m.reset_position();
        }
    }

    /// Trace-driven accuracy evaluation, mirroring
    /// [`crate::AnomalyPredictor::evaluate_trace`] over aligned per-VM
    /// traces.
    ///
    /// # Panics
    ///
    /// Panics if the traces are not aligned with the training layout.
    pub fn evaluate_trace(
        &self,
        series: &[TimeSeries],
        slo: &SloLog,
        look_ahead: Duration,
    ) -> ConfusionMatrix {
        assert_eq!(series.len(), self.n_vms(), "one trace per VM required");
        let len = series[0].len();
        assert!(
            series.iter().all(|s| s.len() == len),
            "traces must be aligned"
        );
        let mut model = self.clone();
        model.reset_position();
        let mut matrix = ConfusionMatrix::new();
        if len == 0 {
            return matrix;
        }
        let end = series[0].samples()[len - 1].time;
        for i in 0..len {
            let samples: Vec<MetricSample> = series.iter().map(|s| s.samples()[i]).collect();
            model.observe(&samples);
            let target = samples[0].time + look_ahead;
            if target > end {
                continue;
            }
            let predicted = model.predict_label(look_ahead);
            let truth = Label::from_violation(slo.is_violated_at(target));
            matrix.record(predicted, truth);
        }
        matrix
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prepare_metrics::{AttributeKind, MetricVector, Timestamp};

    /// Three aligned VM traces; only VM 0 carries the anomaly signal.
    fn fixture(samples: usize) -> (Vec<TimeSeries>, SloLog) {
        let mut all = vec![TimeSeries::new(), TimeSeries::new(), TimeSeries::new()];
        let mut slo = SloLog::new();
        for i in 0..samples as u64 {
            let t = Timestamp::from_secs(i * 5);
            let phase = i % 40;
            let cpu = (phase as f64 / 40.0) * 100.0;
            for (vm, ts) in all.iter_mut().enumerate() {
                let v = MetricVector::from_fn(|a| match (vm, a) {
                    (0, AttributeKind::CpuTotal) => cpu,
                    (0, AttributeKind::Load1) => cpu / 25.0,
                    // other VMs: mild noise decoupled from the fault
                    (_, AttributeKind::CpuTotal) => 20.0 + ((i * (vm as u64 + 3)) % 7) as f64,
                    _ => 5.0,
                });
                ts.push(MetricSample::new(t, v));
            }
            slo.record(t, cpu > 80.0);
        }
        (all, slo)
    }

    #[test]
    fn trains_and_evaluates() {
        let (series, slo) = fixture(400);
        let cfg = PredictorConfig::default();
        let m = MonolithicPredictor::train(&series, &slo, &cfg).unwrap();
        assert_eq!(m.n_vms(), 3);
        let cm = m.evaluate_trace(&series, &slo, Duration::from_secs(15));
        assert!(cm.total() > 0);
        assert!(cm.true_positive_rate() >= 0.0 && cm.false_alarm_rate() <= 1.0);
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn rejects_misaligned_traces() {
        let (mut series, slo) = fixture(100);
        series[1] = TimeSeries::new();
        let cfg = PredictorConfig::default();
        let _ = MonolithicPredictor::train(&series, &slo, &cfg);
    }

    #[test]
    fn empty_traces_error() {
        let cfg = PredictorConfig::default();
        let res = MonolithicPredictor::train(
            &[TimeSeries::new(), TimeSeries::new()],
            &SloLog::new(),
            &cfg,
        );
        assert!(matches!(res, Err(TrainError::EmptyDataset)));
    }

    #[test]
    fn observe_requires_one_sample_per_vm() {
        let (series, slo) = fixture(120);
        let cfg = PredictorConfig::default();
        let mut m = MonolithicPredictor::train(&series, &slo, &cfg).unwrap();
        let s = series[0].samples()[0];
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            m.observe(&[s]);
        }));
        assert!(result.is_err());
    }
}
