//! Unsupervised anomaly detection — the §V extension ("we plan to extend
//! PREPARE to handle unseen anomalies by developing unsupervised anomaly
//! prediction models").
//!
//! This detector needs no labels: it models each attribute's normal
//! operating range (mean ± std from an assumed-mostly-normal training
//! trace) and scores a sample by its largest per-attribute z-score. It is
//! deliberately simple — the point is the *hook*: when a supervised TAN
//! model cannot be trained yet (no recurrence of the anomaly), PREPARE can
//! fall back to outlier alerts, trading attribution quality for coverage.

use prepare_metrics::{AttributeKind, Label, MetricVector, TimeSeries, ATTRIBUTE_COUNT};

/// Distance-based (z-score) outlier detector over metric vectors.
#[derive(Debug, Clone, PartialEq)]
pub struct OutlierDetector {
    means: Vec<f64>,
    stds: Vec<f64>,
    threshold: f64,
}

impl OutlierDetector {
    /// Default z-score alarm threshold.
    pub const DEFAULT_THRESHOLD: f64 = 3.0;

    /// Fits the detector on an unlabeled (assumed mostly normal) trace.
    ///
    /// # Panics
    ///
    /// Panics if `series` is empty or `threshold` is not positive/finite.
    pub fn fit(series: &TimeSeries, threshold: f64) -> Self {
        assert!(!series.is_empty(), "outlier detector needs training data");
        assert!(
            threshold.is_finite() && threshold > 0.0,
            "threshold must be positive"
        );
        let mut means = Vec::with_capacity(ATTRIBUTE_COUNT);
        let mut stds = Vec::with_capacity(ATTRIBUTE_COUNT);
        for a in AttributeKind::ALL {
            let vals = series.attribute_values(a);
            let m = prepare_metrics::mean(&vals);
            // Floor the std so constant attributes don't produce infinite
            // z-scores on the first wiggle.
            let s = prepare_metrics::std_dev(&vals).max(1e-6 + m.abs() * 0.01);
            means.push(m);
            stds.push(s);
        }
        OutlierDetector {
            means,
            stds,
            threshold,
        }
    }

    /// Fits with [`OutlierDetector::DEFAULT_THRESHOLD`].
    pub fn fit_default(series: &TimeSeries) -> Self {
        Self::fit(series, Self::DEFAULT_THRESHOLD)
    }

    /// The anomaly score: the largest absolute per-attribute z-score.
    pub fn score(&self, v: &MetricVector) -> f64 {
        prepare_metrics::debug_assert_finite!(AttributeKind::ALL
            .iter()
            .map(|&a| {
                let i = a.index();
                ((v.get(a) - self.means[i]) / self.stds[i]).abs()
            })
            .fold(0.0, f64::max))
    }

    /// Classifies a vector: abnormal when the score exceeds the threshold.
    pub fn classify(&self, v: &MetricVector) -> Label {
        Label::from_violation(self.score(v) > self.threshold)
    }

    /// The attribute with the largest z-score — the (coarse) blame signal
    /// available without labels.
    pub fn most_deviant_attribute(&self, v: &MetricVector) -> AttributeKind {
        let mut best = AttributeKind::ALL[0];
        let mut best_z = -1.0;
        for a in AttributeKind::ALL {
            let i = a.index();
            let z = ((v.get(a) - self.means[i]) / self.stds[i]).abs();
            if z > best_z {
                best = a;
                best_z = z;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prepare_metrics::{MetricSample, Timestamp};

    fn normal_series() -> TimeSeries {
        let mut ts = TimeSeries::new();
        for i in 0..200u64 {
            let v = MetricVector::from_fn(|a| match a {
                AttributeKind::CpuTotal => 40.0 + ((i % 10) as f64 - 5.0),
                AttributeKind::FreeMem => 2000.0 + ((i % 7) as f64 - 3.0) * 10.0,
                _ => 10.0 + (i % 3) as f64,
            });
            ts.push(MetricSample::new(Timestamp::from_secs(i * 5), v));
        }
        ts
    }

    #[test]
    fn normal_samples_score_low() {
        let ts = normal_series();
        let d = OutlierDetector::fit_default(&ts);
        for s in ts.iter().skip(10) {
            assert_eq!(d.classify(&s.values), Label::Normal);
        }
    }

    #[test]
    fn extreme_sample_flagged() {
        let ts = normal_series();
        let d = OutlierDetector::fit_default(&ts);
        let mut v = ts.last().unwrap().values;
        v.set(AttributeKind::FreeMem, 50.0); // memory collapsed
        assert_eq!(d.classify(&v), Label::Abnormal);
        assert_eq!(d.most_deviant_attribute(&v), AttributeKind::FreeMem);
    }

    #[test]
    fn score_is_monotone_in_deviation() {
        let ts = normal_series();
        let d = OutlierDetector::fit_default(&ts);
        let base = ts.last().unwrap().values;
        let mut worse = base;
        worse.set(AttributeKind::CpuTotal, 100.0);
        let mut worst = base;
        worst.set(AttributeKind::CpuTotal, 400.0);
        assert!(d.score(&worst) > d.score(&worse));
        assert!(d.score(&worse) > d.score(&base));
    }

    #[test]
    #[should_panic(expected = "training data")]
    fn empty_series_rejected() {
        let _ = OutlierDetector::fit_default(&TimeSeries::new());
    }

    #[test]
    fn constant_attributes_do_not_blow_up() {
        let mut ts = TimeSeries::new();
        for i in 0..50u64 {
            ts.push(MetricSample::new(
                Timestamp::from_secs(i),
                MetricVector::zeros(),
            ));
        }
        let d = OutlierDetector::fit_default(&ts);
        let v = MetricVector::zeros();
        assert!(d.score(&v).is_finite());
        assert_eq!(d.classify(&v), Label::Normal);
    }
}
