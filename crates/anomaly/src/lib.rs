//! Online anomaly prediction for PREPARE (paper §II-B).
//!
//! The anomaly predictor combines **attribute value prediction** (Markov
//! chain models from [`prepare_markov`]) with **multi-variant anomaly
//! classification** (TAN from [`prepare_tan`]): at every sampling point it
//! predicts each attribute's value a look-ahead window into the future and
//! classifies the *predicted* metric vector, raising an advance alert when
//! the classifier says *abnormal*.
//!
//! The crate provides:
//!
//! - [`AnomalyPredictor`] — the per-VM model (one per application VM).
//! - [`MonolithicPredictor`] — the baseline that stuffs all VMs' attributes
//!   into a single model (Fig. 10 shows why this is worse).
//! - [`AlertFilter`] — the `k`-of-`W` majority-vote false-alarm filter
//!   (§II-C, k=3 / W=4 in the paper's experiments).
//! - [`ConfusionMatrix`] — `A_T` / `A_F` accuracy scoring (Eq. 3).
//! - [`OutlierDetector`] — the unsupervised extension sketched in §V for
//!   anomalies never seen before.
//!
//! # Example
//!
//! ```
//! use prepare_anomaly::{AnomalyPredictor, PredictorConfig};
//! use prepare_metrics::{AttributeKind, MetricSample, MetricVector, SloLog, TimeSeries, Timestamp, Duration};
//!
//! // Build a training series where CpuTotal ramps into saturation and the
//! // SLO breaks whenever it is above 90%.
//! let mut series = TimeSeries::new();
//! let mut slo = SloLog::new();
//! for i in 0..240u64 {
//!     let t = Timestamp::from_secs(i * 5);
//!     let cpu = ((i % 60) as f64 * 2.0).min(100.0);
//!     let mut v = MetricVector::zeros();
//!     v.set(AttributeKind::CpuTotal, cpu);
//!     series.push(MetricSample::new(t, v));
//!     slo.record(t, cpu > 90.0);
//! }
//! let cfg = PredictorConfig::default();
//! let mut p = AnomalyPredictor::train(&series, &slo, &cfg)?;
//! for s in series.iter().take(50) {
//!     p.observe(s);
//! }
//! let pred = p.predict(Duration::from_secs(30));
//! assert!(pred.score.is_finite());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod accuracy;
mod alert;
mod clustering;
mod filter;
mod model;
mod monolithic;
mod outlier;
mod predictor;
mod roc;
mod trainer;
mod unsupervised;

pub use accuracy::{evaluate_predictions, ConfusionMatrix};
pub use alert::{AnomalyAlert, Prediction};
pub use clustering::{ClusterClassifier, KMeans};
pub use filter::{AlertFilter, Vote};
pub use model::{MarkovKind, ValueModel};
pub use monolithic::MonolithicPredictor;
pub use outlier::OutlierDetector;
pub use predictor::{AnomalyPredictor, PredictorConfig};
pub use roc::{RocCurve, RocPoint};
pub use trainer::FleetTrainer;
pub use unsupervised::{UnsupervisedPrediction, UnsupervisedPredictor};

pub use prepare_tan::TrainError;
