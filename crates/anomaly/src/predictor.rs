//! The per-VM online anomaly predictor (paper §II-B): attribute value
//! prediction composed with TAN classification over the predicted values.

use crate::{ConfusionMatrix, MarkovKind, Prediction, ValueModel};
use prepare_markov::ValuePredictor;
use prepare_metrics::persist::{Persist, PersistError, Reader, Writer};
#[cfg(test)]
use prepare_metrics::AttributeKind;
use prepare_metrics::{
    Duration, Label, MetricSample, SloLog, TimeSeries, Timestamp, ATTRIBUTE_COUNT,
};
use prepare_tan::{Classifier, Dataset, TanClassifier, TrainError};

/// Tunables of the anomaly prediction model.
// xtask: checkpoint
#[derive(Debug, Clone, PartialEq)]
pub struct PredictorConfig {
    /// Number of discretization bins per attribute (the paper's Fig. 2
    /// illustrates 3; we default to 10 for resolution).
    pub bins: usize,
    /// Monitoring sampling interval — 5 s in the paper's experiments, and
    /// the step size of the Markov models (Fig. 13 sweeps it).
    pub sampling_interval: Duration,
    /// Which Markov model predicts attribute values (Fig. 11 sweeps it).
    pub markov: MarkovKind,
}

impl Default for PredictorConfig {
    fn default() -> Self {
        PredictorConfig {
            bins: 10,
            sampling_interval: Duration::from_secs(5),
            markov: MarkovKind::TwoDependent,
        }
    }
}

impl PredictorConfig {
    /// Number of Markov steps covering `look_ahead` at this sampling
    /// interval (rounded up; 0 when `look_ahead` is zero).
    pub fn steps_for(&self, look_ahead: Duration) -> usize {
        let interval = self.sampling_interval.as_secs().max(1);
        (look_ahead.as_secs() as usize).div_ceil(interval as usize)
    }
}

/// A trained per-VM anomaly predictor.
///
/// Train once on a labeled trace ([`AnomalyPredictor::train`]), then feed
/// live samples with [`observe`](AnomalyPredictor::observe) and ask for
/// look-ahead predictions with [`predict`](AnomalyPredictor::predict).
/// Observation keeps refining the Markov transition statistics online
/// (the paper: "the attribute value prediction model is periodically
/// updated with new data measurements"); the classifier stays fixed until
/// [`retrain_classifier`](AnomalyPredictor::retrain_classifier) is called.
// xtask: checkpoint
#[derive(Debug, Clone, PartialEq)]
pub struct AnomalyPredictor {
    config: PredictorConfig,
    discretizer: prepare_metrics::VectorDiscretizer,
    value_models: Vec<ValueModel>,
    classifier: TanClassifier,
    last_time: Option<Timestamp>,
}

impl Persist for PredictorConfig {
    fn store(&self, w: &mut Writer) {
        w.put_usize(self.bins);
        self.sampling_interval.store(w);
        self.markov.store(w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let bins = r.get_usize()?;
        let sampling_interval = Duration::load(r)?;
        let markov = MarkovKind::load(r)?;
        if bins == 0 {
            return Err(PersistError::Invalid("PredictorConfig bins"));
        }
        Ok(PredictorConfig {
            bins,
            sampling_interval,
            markov,
        })
    }
}

impl Persist for AnomalyPredictor {
    fn store(&self, w: &mut Writer) {
        self.config.store(w);
        self.discretizer.store(w);
        self.value_models.store(w);
        self.classifier.store(w);
        self.last_time.store(w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let config = PredictorConfig::load(r)?;
        let discretizer = prepare_metrics::VectorDiscretizer::load(r)?;
        let value_models: Vec<ValueModel> = Persist::load(r)?;
        let classifier = TanClassifier::load(r)?;
        let last_time: Option<Timestamp> = Persist::load(r)?;
        if value_models.len() != ATTRIBUTE_COUNT {
            return Err(PersistError::Invalid("AnomalyPredictor model arity"));
        }
        if value_models
            .iter()
            .any(|m| m.n_states() != config.bins || m.kind() != config.markov)
        {
            return Err(PersistError::Invalid(
                "AnomalyPredictor model/config mismatch",
            ));
        }
        Ok(AnomalyPredictor {
            config,
            discretizer,
            value_models,
            classifier,
            last_time,
        })
    }
}

impl AnomalyPredictor {
    /// Trains a predictor from a metric trace and the matching SLO log
    /// (automatic runtime labeling by timestamp, §II-B).
    ///
    /// # Errors
    ///
    /// Returns [`TrainError`] when the trace is empty or the SLO log
    /// labels every sample identically (no anomaly has been seen yet — the
    /// supervised model cannot be built, exactly the paper's "recurrent
    /// anomalies only" restriction).
    pub fn train(
        series: &TimeSeries,
        slo: &SloLog,
        config: &PredictorConfig,
    ) -> Result<Self, TrainError> {
        Self::train_par(series, slo, config, &prepare_par::ParConfig::serial())
    }

    /// [`AnomalyPredictor::train`] with the model-build work sharded
    /// across the workers of `par`: the sample batch is discretized in
    /// parallel and each attribute's value model is fitted on its own
    /// worker. The trained model is bit-identical for every worker count
    /// (each attribute's statistics depend only on that attribute's
    /// discretized column, merged back in canonical attribute order).
    ///
    /// # Errors
    ///
    /// Same conditions as [`AnomalyPredictor::train`].
    pub fn train_par(
        series: &TimeSeries,
        slo: &SloLog,
        config: &PredictorConfig,
        par: &prepare_par::ParConfig,
    ) -> Result<Self, TrainError> {
        let labeled: Vec<(prepare_metrics::MetricVector, Label)> = series
            .iter()
            .map(|s| (s.values, Label::from_violation(slo.is_violated_at(s.time))))
            .collect();
        Self::train_labeled_par(&labeled, config, par)
    }

    /// The labeled-rows training core every entry point funnels through:
    /// [`AnomalyPredictor::train_par`] resolves each sample's label from
    /// the SLO log and delegates here, and the incremental fleet trainer's
    /// from-scratch referee replays its retained `(vector, label)` window
    /// through this exact path. Fitting the discretizer, discretizing the
    /// batch, building the TAN dataset, and training the per-attribute
    /// value models all happen in the same order with the same folds as
    /// the series-based path, so the two produce bit-identical models.
    ///
    /// # Errors
    ///
    /// Same conditions as [`AnomalyPredictor::train`].
    pub fn train_labeled_par(
        labeled: &[(prepare_metrics::MetricVector, Label)],
        config: &PredictorConfig,
        par: &prepare_par::ParConfig,
    ) -> Result<Self, TrainError> {
        if labeled.is_empty() {
            return Err(TrainError::EmptyDataset);
        }
        let discretizer = prepare_metrics::VectorDiscretizer::fit_vectors(
            labeled.iter().map(|(v, _)| v),
            config.bins,
        );
        let vectors: Vec<&prepare_metrics::MetricVector> = labeled.iter().map(|(v, _)| v).collect();
        let rows = prepare_par::par_map(par, vectors, |v| discretizer.discretize(v));

        let mut dataset = Dataset::with_uniform_bins(ATTRIBUTE_COUNT, config.bins);
        for (row, (_, label)) in rows.iter().zip(labeled.iter()) {
            dataset
                .push(row.clone(), *label)
                .expect("discretized rows always match the dataset schema");
        }
        let classifier = TanClassifier::train(&dataset)?;

        let attrs: Vec<usize> = (0..ATTRIBUTE_COUNT).collect();
        let value_models = prepare_par::par_map(par, attrs, |attr| {
            let mut m = ValueModel::new(config.markov, config.bins);
            for state in rows.iter().filter_map(|r| r.get(attr).copied()) {
                m.observe(state);
            }
            m.reset_position();
            m
        });

        Ok(AnomalyPredictor {
            config: config.clone(),
            discretizer,
            value_models,
            classifier,
            last_time: None,
        })
    }

    /// Assembles a predictor from already-derived components — the final
    /// step of the incremental trainer, which maintains the discretizer
    /// basis, Markov count arenas, and TAN sufficient statistics across
    /// deltas and only materializes model objects here. The assembled
    /// predictor has no stream position (`last_time` is `None`), exactly
    /// like a freshly trained one.
    pub(crate) fn from_parts(
        config: PredictorConfig,
        discretizer: prepare_metrics::VectorDiscretizer,
        value_models: Vec<ValueModel>,
        classifier: TanClassifier,
    ) -> Self {
        assert_eq!(
            value_models.len(),
            ATTRIBUTE_COUNT,
            "one value model per attribute"
        );
        AnomalyPredictor {
            config,
            discretizer,
            value_models,
            classifier,
            last_time: None,
        }
    }

    /// The model's configuration.
    pub fn config(&self) -> &PredictorConfig {
        &self.config
    }

    /// The trained TAN classifier (exposed for cause-inference reporting).
    pub fn classifier(&self) -> &TanClassifier {
        &self.classifier
    }

    /// Feeds a live monitoring sample: updates every attribute's value
    /// model position and transition statistics.
    pub fn observe(&mut self, sample: &MetricSample) {
        let row = self.discretizer.discretize(&sample.values);
        for (m, &state) in self.value_models.iter_mut().zip(&row) {
            m.observe(state);
        }
        self.last_time = Some(sample.time);
    }

    /// Forgets the stream position (keeps all learned statistics), so the
    /// model can be re-anchored on a different trace.
    pub fn reset_position(&mut self) {
        for m in &mut self.value_models {
            m.reset_position();
        }
        self.last_time = None;
    }

    /// Predicts the system state `look_ahead` into the future from the
    /// most recently observed sample and classifies it.
    ///
    /// Two summaries of each attribute's predicted distribution are
    /// classified and the more anomalous verdict wins:
    ///
    /// - the **expected state** (rounded) tracks gradual trends — a
    ///   draining memory pool or a climbing load ramp that the mode
    ///   understates while self-transitions dominate;
    /// - the **most likely state** preserves categorical plateaus — a
    ///   pinned CPU stays in its top bin, where averaging with the
    ///   post-anomaly recovery the chain has also seen would land on a
    ///   middle bin no training sample ever occupied.
    pub fn predict(&self, look_ahead: Duration) -> Prediction {
        let steps = self.config.steps_for(look_ahead);
        let dists: Vec<_> = self.value_models.iter().map(|m| m.predict(steps)).collect();
        self.classify_dists(look_ahead, dists.iter())
    }

    /// Classifies one horizon's per-attribute predicted distributions:
    /// summarizes each into the expected/modal candidate vectors, scores
    /// each candidate exactly once, then runs one full
    /// [`TanClassifier::evaluate`] pass on the winner (score, probability,
    /// and ranked strengths from a single set of attribute strengths).
    fn classify_dists<'a>(
        &self,
        look_ahead: Duration,
        dists: impl Iterator<Item = &'a prepare_markov::StateDistribution>,
    ) -> Prediction {
        let bins = self.config.bins;
        let mut expected = Vec::with_capacity(ATTRIBUTE_COUNT);
        let mut modal = Vec::with_capacity(ATTRIBUTE_COUNT);
        for d in dists {
            expected.push(d.expected_bin(bins));
            modal.push(d.most_likely());
        }
        let predicted_states = if self.classifier.score(&expected) >= self.classifier.score(&modal)
        {
            expected
        } else {
            modal
        };
        let verdict = self.classifier.evaluate(&predicted_states);
        Prediction {
            at: self.last_time.unwrap_or(Timestamp::ZERO),
            look_ahead,
            label: Label::from_violation(verdict.score > 0.0),
            score: verdict.score,
            probability: verdict.probability,
            strengths: verdict.ranked,
            predicted_states,
        }
    }

    /// Predictions for several horizons at once — Table I's prediction
    /// step "includes ... generating predicted class labels for different
    /// look-ahead windows". The nearest horizon that classifies abnormal
    /// tells the actuator how much lead time it actually has.
    ///
    /// One Markov propagation pass per attribute serves *all* horizons
    /// (each horizon's marginal is emitted as the iteration passes its
    /// step count — see [`ValuePredictor::predict_multi`]), instead of
    /// restarting from step 0 per horizon.
    pub fn predict_horizons(&self, horizons: &[Duration]) -> Vec<Prediction> {
        let steps: Vec<usize> = horizons.iter().map(|&h| self.config.steps_for(h)).collect();
        let per_model: Vec<_> = self
            .value_models
            .iter()
            .map(|m| m.predict_multi(&steps))
            .collect();
        horizons
            .iter()
            .enumerate()
            .map(|(k, &h)| self.classify_dists(h, per_model.iter().map(|dists| &dists[k])))
            .collect()
    }

    /// The pre-snapshot per-horizon prediction path, kept verbatim (naive
    /// Markov propagation restarted from step 0 for every horizon, one
    /// classifier pass per summary) as the bit-identity referee and the
    /// "before" leg of the `hotpath` benchmark.
    pub fn predict_horizons_reference(&self, horizons: &[Duration]) -> Vec<Prediction> {
        horizons
            .iter()
            .map(|&h| {
                let steps = self.config.steps_for(h);
                let bins = self.config.bins;
                let dists: Vec<_> = self
                    .value_models
                    .iter()
                    .map(|m| m.predict_reference(steps))
                    .collect();
                let expected: Vec<usize> = dists.iter().map(|d| d.expected_bin(bins)).collect();
                let modal: Vec<usize> = dists.iter().map(|d| d.most_likely()).collect();
                let predicted_states =
                    if self.classifier.score(&expected) >= self.classifier.score(&modal) {
                        expected
                    } else {
                        modal
                    };
                let score = self.classifier.score(&predicted_states);
                let label = Label::from_violation(score > 0.0);
                let strengths = self.classifier.ranked_strengths(&predicted_states);
                Prediction {
                    at: self.last_time.unwrap_or(Timestamp::ZERO),
                    look_ahead: h,
                    label,
                    score,
                    probability: self.classifier.abnormal_probability(&predicted_states),
                    strengths,
                    predicted_states,
                }
            })
            .collect()
    }

    /// The shortest horizon (of those given) whose prediction is already
    /// abnormal, if any — the effective advance notice. Runs one
    /// [`AnomalyPredictor::predict_horizons`] pass over the sorted
    /// horizons instead of a fresh propagation per horizon.
    pub fn earliest_alert_horizon(&self, horizons: &[Duration]) -> Option<Duration> {
        let mut sorted: Vec<Duration> = horizons.to_vec();
        sorted.sort();
        self.predict_horizons(&sorted)
            .into_iter()
            .find(|p| p.is_alert())
            .map(|p| p.look_ahead)
    }

    /// Re-fits the TAN classifier on a fresh labeled trace while keeping
    /// the (continuously updated) value models — the periodic model update
    /// loop of a long-running deployment.
    ///
    /// # Errors
    ///
    /// Same conditions as [`AnomalyPredictor::train`].
    pub fn retrain_classifier(
        &mut self,
        series: &TimeSeries,
        slo: &SloLog,
    ) -> Result<(), TrainError> {
        let retrained = AnomalyPredictor::train(series, slo, &self.config)?;
        self.classifier = retrained.classifier;
        self.discretizer = retrained.discretizer;
        Ok(())
    }

    /// Trace-driven accuracy evaluation (Figs. 10–13): replays `series`
    /// through a clone of this model and scores each look-ahead prediction
    /// against the true label from `slo` at the predicted time.
    ///
    /// Predictions whose target time lies beyond the end of the trace are
    /// not scored.
    pub fn evaluate_trace(
        &self,
        series: &TimeSeries,
        slo: &SloLog,
        look_ahead: Duration,
    ) -> ConfusionMatrix {
        let mut model = self.clone();
        model.reset_position();
        let mut matrix = ConfusionMatrix::new();
        let end = match series.last() {
            Some(s) => s.time,
            None => return matrix,
        };
        for s in series.iter() {
            model.observe(s);
            let target = s.time + look_ahead;
            if target > end {
                continue;
            }
            let predicted = model.predict(look_ahead).label;
            let truth = Label::from_violation(slo.is_violated_at(target));
            matrix.record(predicted, truth);
        }
        matrix
    }
}

/// Builds a synthetic (series, log) pair for tests and doc examples:
/// a CPU ramp whose SLO breaks above a threshold.
#[cfg(test)]
pub(crate) fn ramp_fixture(
    samples: usize,
    interval: u64,
    period: u64,
    threshold: f64,
) -> (TimeSeries, SloLog) {
    let mut series = TimeSeries::new();
    let mut slo = SloLog::new();
    for i in 0..samples as u64 {
        let t = Timestamp::from_secs(i * interval);
        let phase = i % period;
        let cpu = (phase as f64 / period as f64) * 100.0;
        let v = prepare_metrics::MetricVector::from_fn(|a| match a {
            AttributeKind::CpuTotal => cpu,
            AttributeKind::CpuUser => cpu * 0.7,
            AttributeKind::CpuSystem => cpu * 0.3,
            AttributeKind::Load1 => cpu / 25.0,
            AttributeKind::FreeMem => 2048.0 - cpu,
            _ => 10.0,
        });
        series.push(MetricSample::new(t, v));
        slo.record(t, cpu > threshold);
    }
    (series, slo)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trains_and_predicts_on_ramp() {
        let (series, slo) = ramp_fixture(400, 5, 40, 80.0);
        let cfg = PredictorConfig::default();
        let mut p = AnomalyPredictor::train(&series, &slo, &cfg).unwrap();
        // Anchor midway up a ramp, close to violation.
        for s in series.iter().take(38) {
            p.observe(s);
        }
        let pred = p.predict(Duration::from_secs(10));
        assert!(pred.score.is_finite());
        assert_eq!(pred.predicted_states.len(), ATTRIBUTE_COUNT);
    }

    #[test]
    fn predicts_anomaly_before_it_happens() {
        // Deterministic ramp: the model must alert with a look-ahead while
        // the current state is still normal.
        let (series, slo) = ramp_fixture(800, 5, 40, 80.0);
        let cfg = PredictorConfig::default();
        let p = AnomalyPredictor::train(&series, &slo, &cfg).unwrap();
        let m = p.evaluate_trace(&series, &slo, Duration::from_secs(25));
        assert!(
            m.true_positive_rate() > 0.6,
            "A_T too low on deterministic ramp: {m}"
        );
        assert!(m.false_alarm_rate() < 0.3, "A_F too high: {m}");
    }

    #[test]
    fn parallel_training_is_bit_identical_to_sequential() {
        let (series, slo) = ramp_fixture(400, 5, 40, 80.0);
        let cfg = PredictorConfig::default();
        let baseline = AnomalyPredictor::train(&series, &slo, &cfg).unwrap();
        let baseline_pred = baseline.predict(Duration::from_secs(25));
        for workers in [1usize, 2, 7] {
            let par = prepare_par::ParConfig::with_workers(workers);
            let p = AnomalyPredictor::train_par(&series, &slo, &cfg, &par).unwrap();
            assert_eq!(p, baseline, "trained model diverged at workers={workers}");
            let pred = p.predict(Duration::from_secs(25));
            assert_eq!(pred, baseline_pred);
            // The streaming fingerprint is the audit identity the bench
            // uses in place of Debug strings; it must agree too.
            assert_eq!(
                pred.fingerprint(),
                baseline_pred.fingerprint(),
                "prediction fingerprint diverged at workers={workers}"
            );
        }
    }

    #[test]
    fn empty_series_is_error() {
        let cfg = PredictorConfig::default();
        let err = AnomalyPredictor::train(&TimeSeries::new(), &SloLog::new(), &cfg);
        assert!(matches!(err, Err(TrainError::EmptyDataset)));
    }

    #[test]
    fn all_normal_trace_is_single_class_error() {
        let (series, _) = ramp_fixture(100, 5, 40, 80.0);
        let slo = SloLog::new(); // never violated → single class
        let cfg = PredictorConfig::default();
        let mut quiet = SloLog::new();
        for s in series.iter() {
            quiet.record(s.time, false);
        }
        assert!(matches!(
            AnomalyPredictor::train(&series, &slo, &cfg),
            Err(TrainError::SingleClass(Label::Normal))
        ));
        assert!(matches!(
            AnomalyPredictor::train(&series, &quiet, &cfg),
            Err(TrainError::SingleClass(Label::Normal))
        ));
    }

    #[test]
    fn steps_for_rounds_up() {
        let cfg = PredictorConfig::default(); // 5 s interval
        assert_eq!(cfg.steps_for(Duration::ZERO), 0);
        assert_eq!(cfg.steps_for(Duration::from_secs(5)), 1);
        assert_eq!(cfg.steps_for(Duration::from_secs(12)), 3);
        assert_eq!(cfg.steps_for(Duration::from_secs(45)), 9);
    }

    #[test]
    fn larger_look_ahead_degrades_accuracy_gracefully() {
        let (series, slo) = ramp_fixture(600, 5, 40, 80.0);
        let cfg = PredictorConfig::default();
        let p = AnomalyPredictor::train(&series, &slo, &cfg).unwrap();
        let near = p.evaluate_trace(&series, &slo, Duration::from_secs(5));
        let far = p.evaluate_trace(&series, &slo, Duration::from_secs(45));
        // Both must remain valid rates; near look-ahead should not be
        // (much) worse than far.
        assert!(near.true_positive_rate() + 0.15 >= far.true_positive_rate());
    }

    #[test]
    fn evaluate_trace_does_not_mutate_model() {
        let (series, slo) = ramp_fixture(300, 5, 40, 80.0);
        let cfg = PredictorConfig::default();
        let p = AnomalyPredictor::train(&series, &slo, &cfg).unwrap();
        let before = p.predict(Duration::from_secs(10));
        let _ = p.evaluate_trace(&series, &slo, Duration::from_secs(20));
        let after = p.predict(Duration::from_secs(10));
        assert_eq!(before, after);
    }

    #[test]
    fn horizon_batch_matches_individual_predictions() {
        let (series, slo) = ramp_fixture(400, 5, 40, 80.0);
        let cfg = PredictorConfig::default();
        let mut p = AnomalyPredictor::train(&series, &slo, &cfg).unwrap();
        for s in series.iter().take(30) {
            p.observe(s);
        }
        let horizons = [
            Duration::from_secs(5),
            Duration::from_secs(20),
            Duration::from_secs(45),
        ];
        let batch = p.predict_horizons(&horizons);
        assert_eq!(batch.len(), 3);
        for (pred, &h) in batch.iter().zip(&horizons) {
            assert_eq!(*pred, p.predict(h));
        }
        // earliest_alert_horizon agrees with the batch.
        let earliest = p.earliest_alert_horizon(&horizons);
        let expected = batch
            .iter()
            .find(|pr| pr.is_alert())
            .map(|pr| pr.look_ahead);
        assert_eq!(earliest, expected);
    }

    #[test]
    fn snapshot_horizons_are_bit_identical_to_reference() {
        let (series, slo) = ramp_fixture(400, 5, 40, 80.0);
        let cfg = PredictorConfig::default();
        let mut p = AnomalyPredictor::train(&series, &slo, &cfg).unwrap();
        for s in series.iter().take(38) {
            p.observe(s);
        }
        let horizons = [
            Duration::ZERO,
            Duration::from_secs(15),
            Duration::from_secs(30),
            Duration::from_secs(60),
        ];
        assert_eq!(
            p.predict_horizons(&horizons),
            p.predict_horizons_reference(&horizons)
        );
    }

    /// A restored predictor continues its stream bit-identically: the
    /// anchor (`last_time` and every Markov position) survives, so the
    /// next observe/predict pair agrees exactly with the original.
    #[test]
    fn persist_round_trip_continues_stream_bit_identically() {
        let (series, slo) = ramp_fixture(400, 5, 40, 80.0);
        let cfg = PredictorConfig::default();
        let mut p = AnomalyPredictor::train(&series, &slo, &cfg).unwrap();
        for s in series.iter().take(38) {
            p.observe(s);
        }
        let bytes = prepare_metrics::persist::to_bytes(&p);
        let mut restored: AnomalyPredictor = prepare_metrics::persist::from_bytes(&bytes).unwrap();
        assert_eq!(restored, p);
        let horizons = [Duration::from_secs(5), Duration::from_secs(25)];
        assert_eq!(
            restored.predict_horizons(&horizons),
            p.predict_horizons(&horizons)
        );
        for s in series.iter().skip(38).take(20) {
            restored.observe(s);
            p.observe(s);
        }
        assert_eq!(restored, p);
        assert_eq!(
            restored.predict(Duration::from_secs(25)).fingerprint(),
            p.predict(Duration::from_secs(25)).fingerprint()
        );
    }

    #[test]
    fn persist_load_rejects_model_config_mismatch() {
        let (series, slo) = ramp_fixture(300, 5, 40, 80.0);
        let cfg = PredictorConfig::default();
        let p = AnomalyPredictor::train(&series, &slo, &cfg).unwrap();
        let mut bytes = prepare_metrics::persist::to_bytes(&p);
        // Corrupt the configured bin count: the value models no longer
        // match and the load must fail rather than mis-predict.
        bytes[..8].copy_from_slice(&7u64.to_le_bytes());
        assert!(prepare_metrics::persist::from_bytes::<AnomalyPredictor>(&bytes).is_err());
    }

    #[test]
    fn retrain_classifier_succeeds_on_fresh_trace() {
        let (series, slo) = ramp_fixture(300, 5, 40, 80.0);
        let cfg = PredictorConfig::default();
        let mut p = AnomalyPredictor::train(&series, &slo, &cfg).unwrap();
        let (series2, slo2) = ramp_fixture(500, 5, 50, 70.0);
        p.retrain_classifier(&series2, &slo2).unwrap();
    }
}
