//! Prediction accuracy scoring: true-positive rate `A_T` and false-alarm
//! rate `A_F` (paper Eq. 3), used throughout Figs. 10–13.

use prepare_metrics::{debug_assert_finite, Label};

/// Confusion matrix over predicted-vs-true labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConfusionMatrix {
    /// Predicted abnormal, truly abnormal.
    pub true_positives: usize,
    /// Predicted normal, truly abnormal.
    pub false_negatives: usize,
    /// Predicted abnormal, truly normal.
    pub false_positives: usize,
    /// Predicted normal, truly normal.
    pub true_negatives: usize,
}

impl ConfusionMatrix {
    /// Empty matrix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one (predicted, truth) pair.
    pub fn record(&mut self, predicted: Label, truth: Label) {
        match (predicted.is_abnormal(), truth.is_abnormal()) {
            (true, true) => self.true_positives += 1,
            (false, true) => self.false_negatives += 1,
            (true, false) => self.false_positives += 1,
            (false, false) => self.true_negatives += 1,
        }
    }

    /// Merges another matrix into this one.
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        self.true_positives += other.true_positives;
        self.false_negatives += other.false_negatives;
        self.false_positives += other.false_positives;
        self.true_negatives += other.true_negatives;
    }

    /// Total number of scored predictions.
    pub fn total(&self) -> usize {
        self.true_positives + self.false_negatives + self.false_positives + self.true_negatives
    }

    /// `A_T = N_tp / (N_tp + N_fn)` — Eq. 3. Returns 1.0 when there were
    /// no truly abnormal samples (nothing to miss).
    pub fn true_positive_rate(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            1.0
        } else {
            debug_assert_finite!(self.true_positives as f64 / denom as f64)
        }
    }

    /// `A_F = N_fp / (N_fp + N_tn)` — Eq. 3. Returns 0.0 when there were
    /// no truly normal samples.
    pub fn false_alarm_rate(&self) -> f64 {
        let denom = self.false_positives + self.true_negatives;
        if denom == 0 {
            0.0
        } else {
            debug_assert_finite!(self.false_positives as f64 / denom as f64)
        }
    }
}

impl std::fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "tp={} fn={} fp={} tn={} (A_T={:.1}%, A_F={:.1}%)",
            self.true_positives,
            self.false_negatives,
            self.false_positives,
            self.true_negatives,
            self.true_positive_rate() * 100.0,
            self.false_alarm_rate() * 100.0
        )
    }
}

/// Scores a sequence of `(predicted, truth)` label pairs.
pub fn evaluate_predictions(pairs: impl IntoIterator<Item = (Label, Label)>) -> ConfusionMatrix {
    let mut m = ConfusionMatrix::new();
    for (p, t) in pairs {
        m.record(p, t);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_match_eq3() {
        let mut m = ConfusionMatrix::new();
        // 8 tp, 2 fn → A_T = 0.8; 1 fp, 9 tn → A_F = 0.1
        for _ in 0..8 {
            m.record(Label::Abnormal, Label::Abnormal);
        }
        for _ in 0..2 {
            m.record(Label::Normal, Label::Abnormal);
        }
        m.record(Label::Abnormal, Label::Normal);
        for _ in 0..9 {
            m.record(Label::Normal, Label::Normal);
        }
        assert!((m.true_positive_rate() - 0.8).abs() < 1e-12);
        assert!((m.false_alarm_rate() - 0.1).abs() < 1e-12);
        assert_eq!(m.total(), 20);
    }

    #[test]
    fn empty_matrix_degenerate_rates() {
        let m = ConfusionMatrix::new();
        assert_eq!(m.true_positive_rate(), 1.0);
        assert_eq!(m.false_alarm_rate(), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = evaluate_predictions([(Label::Abnormal, Label::Abnormal)]);
        let b = evaluate_predictions([(Label::Normal, Label::Normal)]);
        a.merge(&b);
        assert_eq!(a.true_positives, 1);
        assert_eq!(a.true_negatives, 1);
        assert_eq!(a.total(), 2);
    }

    #[test]
    fn display_contains_rates() {
        let m = evaluate_predictions([(Label::Abnormal, Label::Abnormal)]);
        let s = m.to_string();
        assert!(s.contains("A_T=100.0%"));
    }
}
