//! ROC analysis of the anomaly predictor: sweep the decision threshold
//! over a scored trace to expose the full `A_T`/`A_F` trade-off curve
//! (the paper reports single operating points per configuration; the
//! curve shows what the k-of-W filter and score threshold are buying).

use crate::{AnomalyPredictor, ConfusionMatrix};
use prepare_metrics::{Duration, Label, SloLog, TimeSeries};

/// One operating point of the ROC curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RocPoint {
    /// Decision threshold on the TAN score (alert when score > threshold).
    pub threshold: f64,
    /// True positive rate at this threshold.
    pub true_positive_rate: f64,
    /// False alarm rate at this threshold.
    pub false_alarm_rate: f64,
}

/// A full ROC curve over a replayed trace.
#[derive(Debug, Clone, PartialEq)]
pub struct RocCurve {
    points: Vec<RocPoint>,
}

impl RocCurve {
    /// Replays `series` through (a clone of) the predictor at the given
    /// look-ahead, collecting `(score, truth)` pairs, then sweeps the
    /// decision threshold over every distinct score.
    pub fn compute(
        predictor: &AnomalyPredictor,
        series: &TimeSeries,
        slo: &SloLog,
        look_ahead: Duration,
    ) -> RocCurve {
        let mut model = predictor.clone();
        model.reset_position();
        let mut scored: Vec<(f64, Label)> = Vec::new();
        let Some(end) = series.last().map(|s| s.time) else {
            return RocCurve { points: Vec::new() };
        };
        for s in series.iter() {
            model.observe(s);
            let target = s.time + look_ahead;
            if target > end {
                continue;
            }
            let prediction = model.predict(look_ahead);
            let truth = Label::from_violation(slo.is_violated_at(target));
            scored.push((prediction.score, truth));
        }

        let mut thresholds: Vec<f64> = scored.iter().map(|(s, _)| *s).collect();
        thresholds.sort_by(f64::total_cmp);
        thresholds.dedup();

        let points = thresholds
            .iter()
            .map(|&threshold| {
                let mut m = ConfusionMatrix::new();
                for &(score, truth) in &scored {
                    m.record(Label::from_violation(score > threshold), truth);
                }
                RocPoint {
                    threshold,
                    true_positive_rate: m.true_positive_rate(),
                    false_alarm_rate: m.false_alarm_rate(),
                }
            })
            .collect();
        RocCurve { points }
    }

    /// The operating points, ordered by increasing threshold (decreasing
    /// alert aggressiveness).
    pub fn points(&self) -> &[RocPoint] {
        &self.points
    }

    /// Area under the ROC curve via trapezoidal integration over
    /// (false-alarm, true-positive) pairs. 0.5 = chance, 1.0 = perfect.
    /// Returns 0.5 for an empty curve.
    pub fn auc(&self) -> f64 {
        if self.points.is_empty() {
            return 0.5;
        }
        // Points sorted by threshold give decreasing FPR; integrate over
        // FPR from 0 to 1, adding the implicit (0,0) and (1,1) endpoints.
        let mut pairs: Vec<(f64, f64)> = self
            .points
            .iter()
            .map(|p| (p.false_alarm_rate, p.true_positive_rate))
            .collect();
        pairs.push((0.0, 0.0));
        pairs.push((1.0, 1.0));
        pairs.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
        let mut auc = 0.0;
        for w in pairs.windows(2) {
            let (x0, y0) = w[0];
            let (x1, y1) = w[1];
            auc += (x1 - x0) * (y0 + y1) / 2.0;
        }
        prepare_metrics::debug_assert_finite!(auc.clamp(0.0, 1.0))
    }

    /// The point with the best Youden index (`A_T − A_F`), a standard
    /// single-number operating-point choice. `None` for an empty curve.
    pub fn best_operating_point(&self) -> Option<RocPoint> {
        self.points.iter().copied().max_by(|a, b| {
            let ja = a.true_positive_rate - a.false_alarm_rate;
            let jb = b.true_positive_rate - b.false_alarm_rate;
            ja.total_cmp(&jb)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PredictorConfig;
    use prepare_metrics::{AttributeKind, MetricSample, MetricVector, Timestamp};

    fn trace() -> (TimeSeries, SloLog) {
        let mut series = TimeSeries::new();
        let mut slo = SloLog::new();
        for i in 0..400u64 {
            let t = Timestamp::from_secs(i * 5);
            let phase = i % 100;
            let cpu = if (60..90).contains(&phase) {
                95.0
            } else {
                30.0 + (i % 7) as f64
            };
            let v = MetricVector::from_fn(|a| match a {
                AttributeKind::CpuTotal => cpu,
                AttributeKind::Load1 => cpu / 60.0,
                _ => 10.0,
            });
            series.push(MetricSample::new(t, v));
            slo.record(t, cpu > 90.0);
        }
        (series, slo)
    }

    #[test]
    fn curve_is_monotone_in_rates() {
        let (series, slo) = trace();
        let p = AnomalyPredictor::train(&series, &slo, &PredictorConfig::default()).unwrap();
        let roc = RocCurve::compute(&p, &series, &slo, Duration::from_secs(15));
        assert!(!roc.points().is_empty());
        // Raising the threshold can only lower both rates.
        for w in roc.points().windows(2) {
            assert!(w[1].true_positive_rate <= w[0].true_positive_rate + 1e-9);
            assert!(w[1].false_alarm_rate <= w[0].false_alarm_rate + 1e-9);
        }
    }

    #[test]
    fn good_predictor_has_high_auc() {
        let (series, slo) = trace();
        let p = AnomalyPredictor::train(&series, &slo, &PredictorConfig::default()).unwrap();
        let roc = RocCurve::compute(&p, &series, &slo, Duration::from_secs(10));
        assert!(roc.auc() > 0.85, "AUC {:.3}", roc.auc());
        let best = roc.best_operating_point().unwrap();
        assert!(best.true_positive_rate - best.false_alarm_rate > 0.5);
    }

    #[test]
    fn empty_trace_yields_chance_auc() {
        let (series, slo) = trace();
        let p = AnomalyPredictor::train(&series, &slo, &PredictorConfig::default()).unwrap();
        let roc = RocCurve::compute(&p, &TimeSeries::new(), &slo, Duration::from_secs(10));
        assert_eq!(roc.auc(), 0.5);
        assert!(roc.best_operating_point().is_none());
    }
}
