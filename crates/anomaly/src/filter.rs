//! `k`-of-`W` majority-vote false-alarm filtering (paper §II-C).
//!
//! "PREPARE triggers prevention actions only after receiving at least *k*
//! alerts in the recent *W* predictions. [...] We set *k* to be 3 and *W*
//! to be 4 in our experiments."

use prepare_metrics::persist::{Persist, PersistError, Reader, Writer};
use std::collections::VecDeque;

/// One round's input to the k-of-W filter.
///
/// The paper's filter is binary; [`Vote::Abstain`] is the robustness
/// layer's third state for rounds where the prediction pipeline had no
/// trustworthy input (dropped sample, staleness budget exceeded). An
/// abstention is *not* a "normal" vote: it leaves the window untouched,
/// so monitoring gaps can neither silently confirm nor silently dissolve
/// a pending alert — the evidence simply pauses until data returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Vote {
    /// The predictor forecast an anomaly this round.
    Alert,
    /// The predictor forecast normal operation this round.
    Normal,
    /// No trustworthy prediction this round; the window is left as-is.
    Abstain,
}

/// Majority-vote filter over the most recent `W` predictions.
// xtask: checkpoint
#[derive(Debug, Clone, PartialEq)]
pub struct AlertFilter {
    k: usize,
    w: usize,
    recent: VecDeque<bool>,
    abstentions: u64,
}

impl AlertFilter {
    /// Creates a filter that confirms an alert when at least `k` of the
    /// last `w` predictions were alerts.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, `w == 0`, or `k > w`.
    pub fn new(k: usize, w: usize) -> Self {
        assert!(k > 0 && w > 0, "k and W must be positive");
        assert!(k <= w, "k ({k}) must not exceed W ({w})");
        AlertFilter {
            k,
            w,
            recent: VecDeque::with_capacity(w),
            abstentions: 0,
        }
    }

    /// The paper's setting: k = 3, W = 4.
    pub fn paper_default() -> Self {
        AlertFilter::new(3, 4)
    }

    /// Required alert count `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Window size `W`.
    pub fn w(&self) -> usize {
        self.w
    }

    /// Feeds the latest raw prediction; returns `true` when the filtered
    /// (confirmed) alert condition holds.
    pub fn push(&mut self, alert: bool) -> bool {
        self.push_vote(if alert { Vote::Alert } else { Vote::Normal })
    }

    /// Feeds one round's [`Vote`]; returns `true` when the filtered
    /// (confirmed) alert condition holds.
    ///
    /// [`Vote::Abstain`] does not occupy a window slot: existing evidence
    /// neither ages out nor accumulates while the monitoring plane is
    /// degraded.
    pub fn push_vote(&mut self, vote: Vote) -> bool {
        let alert = match vote {
            Vote::Alert => true,
            Vote::Normal => false,
            Vote::Abstain => {
                self.abstentions += 1;
                return self.is_confirmed();
            }
        };
        if self.recent.len() == self.w {
            self.recent.pop_front();
        }
        self.recent.push_back(alert);
        self.is_confirmed()
    }

    /// Total abstentions fed to this filter since creation (survives
    /// [`AlertFilter::reset`] — it is a lifetime degradation odometer,
    /// not window state).
    pub fn abstentions(&self) -> u64 {
        self.abstentions
    }

    /// Whether the current window satisfies the k-of-W condition.
    pub fn is_confirmed(&self) -> bool {
        self.recent.iter().filter(|&&a| a).count() >= self.k
    }

    /// Clears history (used after a prevention action resolves an anomaly
    /// so stale alerts do not immediately re-trigger).
    pub fn reset(&mut self) {
        self.recent.clear();
    }
}

impl Default for AlertFilter {
    fn default() -> Self {
        AlertFilter::paper_default()
    }
}

impl Persist for AlertFilter {
    fn store(&self, w: &mut Writer) {
        w.put_usize(self.k);
        w.put_usize(self.w);
        self.recent.store(w);
        w.put_u64(self.abstentions);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let k = r.get_usize()?;
        let w = r.get_usize()?;
        let recent: VecDeque<bool> = Persist::load(r)?;
        let abstentions = r.get_u64()?;
        if k == 0 || w == 0 || k > w || recent.len() > w {
            return Err(PersistError::Invalid("AlertFilter window invariants"));
        }
        Ok(AlertFilter {
            k,
            w,
            recent,
            abstentions,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requires_k_alerts_in_window() {
        let mut f = AlertFilter::new(3, 4);
        assert!(!f.push(true));
        assert!(!f.push(true));
        assert!(f.push(true)); // 3 of last 3
        assert!(f.push(false)); // 3 of last 4
        assert!(!f.push(false)); // 2 of last 4
    }

    #[test]
    fn sporadic_alerts_filtered_out() {
        let mut f = AlertFilter::paper_default();
        // alternating true/false never reaches 3-of-4
        for i in 0..40 {
            assert!(!f.push(i % 2 == 0), "sporadic alert leaked at step {i}");
        }
    }

    #[test]
    fn persistent_anomaly_confirmed_with_bounded_delay() {
        let mut f = AlertFilter::paper_default();
        let mut confirm_step = None;
        for i in 0..10 {
            if f.push(true) {
                confirm_step = Some(i);
                break;
            }
        }
        // Confirmation after exactly k alerts — a 2-sampling-interval delay
        // versus k=1, which the paper calls negligible.
        assert_eq!(confirm_step, Some(2));
    }

    #[test]
    fn k1_passes_everything_through() {
        let mut f = AlertFilter::new(1, 4);
        assert!(f.push(true));
        f.push(false);
        assert!(f.is_confirmed()); // one alert still within window
    }

    #[test]
    fn reset_clears_state() {
        let mut f = AlertFilter::new(2, 3);
        f.push(true);
        f.push(true);
        assert!(f.is_confirmed());
        f.reset();
        assert!(!f.is_confirmed());
    }

    #[test]
    #[should_panic(expected = "must not exceed")]
    fn k_greater_than_w_rejected() {
        let _ = AlertFilter::new(5, 4);
    }

    /// Exactly k = 3 alerts inside W = 4 confirms — the boundary case of
    /// the paper's setting, with the alerts in every possible position
    /// within the window.
    #[test]
    fn exactly_three_of_four_confirms() {
        for gap in 0..4usize {
            let mut f = AlertFilter::new(3, 4);
            let mut confirmed = false;
            for i in 0..4 {
                confirmed = f.push(i != gap);
            }
            assert!(
                confirmed,
                "3 alerts with the miss at position {gap} must confirm"
            );
        }
        // One fewer alert — 2 of 4 — must not, wherever the alerts sit.
        for (a, b) in [(0usize, 1usize), (0, 3), (1, 2), (2, 3)] {
            let mut f = AlertFilter::new(3, 4);
            let mut confirmed = false;
            for i in 0..4 {
                confirmed = f.push(i == a || i == b);
            }
            assert!(!confirmed, "2 alerts (at {a},{b}) must stay unconfirmed");
        }
    }

    /// Alerts straddling the sliding-window boundary: a burst old enough
    /// to have partially slid out no longer counts toward k, and the
    /// confirmation drops precisely when the kth alert crosses the edge.
    #[test]
    fn alerts_straddling_window_boundary_age_out() {
        let mut f = AlertFilter::new(3, 4);
        f.push(true);
        f.push(true);
        assert!(f.push(true), "3 in-window alerts confirm");
        // The window slides: [T T T F] still holds 3 alerts...
        assert!(f.push(false), "3-of-4 straddling the boundary still holds");
        // ...but one more quiet step evicts the first alert: [T T F F].
        assert!(!f.push(false), "kth alert slid out — confirmation drops");
        // A fresh alert now straddles old and new: [T F F T] is only 2.
        assert!(!f.push(true), "old + new alerts across the boundary < k");
    }

    /// Locks the *legacy* gap behaviour: the binary `push` API has no way
    /// to express "no sample this round", so a caller that simply skips
    /// the push leaves the window frozen — the gap is invisible and old
    /// evidence neither ages nor grows. This is the baseline the
    /// degraded-mode tests below build on.
    #[test]
    fn unpushed_rounds_leave_the_window_frozen() {
        let mut f = AlertFilter::new(3, 4);
        f.push(true);
        f.push(true);
        assert!(!f.is_confirmed());
        // Three sampling rounds pass with no push at all (dropped
        // samples). Nothing changes: the two alerts are still pending.
        assert!(!f.is_confirmed());
        assert_eq!(f.recent.len(), 2);
        // The next real alert completes k as if the gap never happened.
        assert!(f.push(true));
    }

    /// Locks the failure mode the Vote API exists to prevent: a caller
    /// that maps "no sample" to `push(false)` lets gaps vote "normal" —
    /// diluting genuine evidence and dissolving a pending confirmation.
    #[test]
    fn mapping_gaps_to_normal_votes_dissolves_evidence() {
        let mut f = AlertFilter::new(3, 4);
        f.push(true);
        f.push(true);
        // Two dropped rounds mis-coded as "normal": [T T F F].
        f.push(false);
        f.push(false);
        // The genuine alert that arrives next should have completed k=3,
        // but the gap votes pushed the real evidence out of the window.
        assert!(!f.push(true), "gap-as-normal wrongly blocks confirmation");
    }

    /// Degraded-mode behaviour: `Abstain` does not occupy a window slot,
    /// so a monitoring gap inside W can neither dissolve pending evidence
    /// nor count toward k.
    #[test]
    fn abstentions_preserve_evidence_without_counting() {
        let mut f = AlertFilter::new(3, 4);
        assert!(!f.push_vote(Vote::Alert));
        assert!(!f.push_vote(Vote::Alert));
        // Monitoring degrades for three rounds mid-confirmation.
        for _ in 0..3 {
            assert!(
                !f.push_vote(Vote::Abstain),
                "abstentions must not confirm an alert"
            );
        }
        assert_eq!(f.recent.len(), 2, "abstentions occupy no window slot");
        // Data returns: the pending evidence is intact and the next
        // genuine alert confirms, exactly as in the gap-free run.
        assert!(f.push_vote(Vote::Alert));
        assert_eq!(f.abstentions(), 3);
    }

    /// An already-confirmed alert stays confirmed through a blackout:
    /// abstaining suppresses *new* evidence, it does not flip state.
    #[test]
    fn abstentions_do_not_flip_a_confirmed_alert() {
        let mut f = AlertFilter::new(3, 4);
        for _ in 0..3 {
            f.push_vote(Vote::Alert);
        }
        assert!(f.is_confirmed());
        for _ in 0..10 {
            assert!(
                f.push_vote(Vote::Abstain),
                "confirmation must survive a blackout"
            );
        }
        // Genuine normals — not gaps — are what stands the alert down.
        f.push_vote(Vote::Normal);
        f.push_vote(Vote::Normal);
        assert!(!f.is_confirmed());
    }

    /// `push` and `push_vote` agree on the binary subset.
    #[test]
    fn vote_api_is_a_superset_of_push() {
        let mut a = AlertFilter::paper_default();
        let mut b = AlertFilter::paper_default();
        for i in 0..20 {
            let alert = i % 3 == 0;
            let vote = if alert { Vote::Alert } else { Vote::Normal };
            assert_eq!(a.push(alert), b.push_vote(vote));
        }
        assert_eq!(a, b);
    }

    /// A restored filter continues confirming exactly where the original
    /// left off — mid-window evidence and the abstention odometer survive.
    #[test]
    fn persist_round_trip_preserves_window_and_odometer() {
        let mut f = AlertFilter::new(3, 4);
        f.push_vote(Vote::Alert);
        f.push_vote(Vote::Abstain);
        f.push_vote(Vote::Alert);
        let bytes = prepare_metrics::persist::to_bytes(&f);
        let mut restored: AlertFilter = prepare_metrics::persist::from_bytes(&bytes).unwrap();
        assert_eq!(restored, f);
        assert_eq!(restored.abstentions(), 1);
        // The next alert completes k=3 on both copies.
        assert_eq!(restored.push(true), f.push(true));
        assert!(restored.is_confirmed());
    }

    #[test]
    fn persist_load_rejects_k_greater_than_w() {
        let f = AlertFilter::new(3, 4);
        let mut bytes = prepare_metrics::persist::to_bytes(&f);
        bytes[..8].copy_from_slice(&9u64.to_le_bytes());
        assert!(prepare_metrics::persist::from_bytes::<AlertFilter>(&bytes).is_err());
    }

    /// After an actuation the controller resets the filter so stale
    /// pre-action alerts cannot combine with fresh ones to instantly
    /// re-trigger: post-reset confirmation needs k *new* alerts.
    #[test]
    fn window_reset_after_actuation_requires_fresh_evidence() {
        let mut f = AlertFilter::new(3, 4);
        for _ in 0..4 {
            f.push(true);
        }
        assert!(f.is_confirmed(), "saturated window is confirmed");
        // Prevention action fires; the controller resets the filter.
        f.reset();
        assert!(!f.is_confirmed(), "reset must clear the confirmation");
        // Stale history must not count: two new alerts are still below k
        // even though the pre-reset window was saturated.
        assert!(!f.push(true));
        assert!(!f.push(true));
        // The kth fresh alert — and only it — re-confirms.
        assert!(f.push(true), "k fresh alerts re-confirm after reset");
    }
}
