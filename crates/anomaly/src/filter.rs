//! `k`-of-`W` majority-vote false-alarm filtering (paper §II-C).
//!
//! "PREPARE triggers prevention actions only after receiving at least *k*
//! alerts in the recent *W* predictions. [...] We set *k* to be 3 and *W*
//! to be 4 in our experiments."

use std::collections::VecDeque;

/// Majority-vote filter over the most recent `W` predictions.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertFilter {
    k: usize,
    w: usize,
    recent: VecDeque<bool>,
}

impl AlertFilter {
    /// Creates a filter that confirms an alert when at least `k` of the
    /// last `w` predictions were alerts.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, `w == 0`, or `k > w`.
    pub fn new(k: usize, w: usize) -> Self {
        assert!(k > 0 && w > 0, "k and W must be positive");
        assert!(k <= w, "k ({k}) must not exceed W ({w})");
        AlertFilter {
            k,
            w,
            recent: VecDeque::with_capacity(w),
        }
    }

    /// The paper's setting: k = 3, W = 4.
    pub fn paper_default() -> Self {
        AlertFilter::new(3, 4)
    }

    /// Required alert count `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Window size `W`.
    pub fn w(&self) -> usize {
        self.w
    }

    /// Feeds the latest raw prediction; returns `true` when the filtered
    /// (confirmed) alert condition holds.
    pub fn push(&mut self, alert: bool) -> bool {
        if self.recent.len() == self.w {
            self.recent.pop_front();
        }
        self.recent.push_back(alert);
        self.is_confirmed()
    }

    /// Whether the current window satisfies the k-of-W condition.
    pub fn is_confirmed(&self) -> bool {
        self.recent.iter().filter(|&&a| a).count() >= self.k
    }

    /// Clears history (used after a prevention action resolves an anomaly
    /// so stale alerts do not immediately re-trigger).
    pub fn reset(&mut self) {
        self.recent.clear();
    }
}

impl Default for AlertFilter {
    fn default() -> Self {
        AlertFilter::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requires_k_alerts_in_window() {
        let mut f = AlertFilter::new(3, 4);
        assert!(!f.push(true));
        assert!(!f.push(true));
        assert!(f.push(true)); // 3 of last 3
        assert!(f.push(false)); // 3 of last 4
        assert!(!f.push(false)); // 2 of last 4
    }

    #[test]
    fn sporadic_alerts_filtered_out() {
        let mut f = AlertFilter::paper_default();
        // alternating true/false never reaches 3-of-4
        for i in 0..40 {
            assert!(!f.push(i % 2 == 0), "sporadic alert leaked at step {i}");
        }
    }

    #[test]
    fn persistent_anomaly_confirmed_with_bounded_delay() {
        let mut f = AlertFilter::paper_default();
        let mut confirm_step = None;
        for i in 0..10 {
            if f.push(true) {
                confirm_step = Some(i);
                break;
            }
        }
        // Confirmation after exactly k alerts — a 2-sampling-interval delay
        // versus k=1, which the paper calls negligible.
        assert_eq!(confirm_step, Some(2));
    }

    #[test]
    fn k1_passes_everything_through() {
        let mut f = AlertFilter::new(1, 4);
        assert!(f.push(true));
        f.push(false);
        assert!(f.is_confirmed()); // one alert still within window
    }

    #[test]
    fn reset_clears_state() {
        let mut f = AlertFilter::new(2, 3);
        f.push(true);
        f.push(true);
        assert!(f.is_confirmed());
        f.reset();
        assert!(!f.is_confirmed());
    }

    #[test]
    #[should_panic(expected = "must not exceed")]
    fn k_greater_than_w_rejected() {
        let _ = AlertFilter::new(5, 4);
    }

    /// Exactly k = 3 alerts inside W = 4 confirms — the boundary case of
    /// the paper's setting, with the alerts in every possible position
    /// within the window.
    #[test]
    fn exactly_three_of_four_confirms() {
        for gap in 0..4usize {
            let mut f = AlertFilter::new(3, 4);
            let mut confirmed = false;
            for i in 0..4 {
                confirmed = f.push(i != gap);
            }
            assert!(
                confirmed,
                "3 alerts with the miss at position {gap} must confirm"
            );
        }
        // One fewer alert — 2 of 4 — must not, wherever the alerts sit.
        for (a, b) in [(0usize, 1usize), (0, 3), (1, 2), (2, 3)] {
            let mut f = AlertFilter::new(3, 4);
            let mut confirmed = false;
            for i in 0..4 {
                confirmed = f.push(i == a || i == b);
            }
            assert!(!confirmed, "2 alerts (at {a},{b}) must stay unconfirmed");
        }
    }

    /// Alerts straddling the sliding-window boundary: a burst old enough
    /// to have partially slid out no longer counts toward k, and the
    /// confirmation drops precisely when the kth alert crosses the edge.
    #[test]
    fn alerts_straddling_window_boundary_age_out() {
        let mut f = AlertFilter::new(3, 4);
        f.push(true);
        f.push(true);
        assert!(f.push(true), "3 in-window alerts confirm");
        // The window slides: [T T T F] still holds 3 alerts...
        assert!(f.push(false), "3-of-4 straddling the boundary still holds");
        // ...but one more quiet step evicts the first alert: [T T F F].
        assert!(!f.push(false), "kth alert slid out — confirmation drops");
        // A fresh alert now straddles old and new: [T F F T] is only 2.
        assert!(!f.push(true), "old + new alerts across the boundary < k");
    }

    /// After an actuation the controller resets the filter so stale
    /// pre-action alerts cannot combine with fresh ones to instantly
    /// re-trigger: post-reset confirmation needs k *new* alerts.
    #[test]
    fn window_reset_after_actuation_requires_fresh_evidence() {
        let mut f = AlertFilter::new(3, 4);
        for _ in 0..4 {
            f.push(true);
        }
        assert!(f.is_confirmed(), "saturated window is confirmed");
        // Prevention action fires; the controller resets the filter.
        f.reset();
        assert!(!f.is_confirmed(), "reset must clear the confirmation");
        // Stale history must not count: two new alerts are still below k
        // even though the pre-reset window was saturated.
        assert!(!f.push(true));
        assert!(!f.push(true));
        // The kth fresh alert — and only it — re-confirms.
        assert!(f.push(true), "k fresh alerts re-confirm after reset");
    }
}
