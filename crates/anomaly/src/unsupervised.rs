//! The unsupervised anomaly predictor: the same value-prediction front
//! end as [`crate::AnomalyPredictor`], with the supervised TAN classifier
//! replaced by clustering over normal behaviour (§V). Trades the TAN's
//! precise attribute attribution for the ability to raise advance alerts
//! on anomalies that have never been seen (and hence never labeled).

use crate::{ClusterClassifier, MarkovKind, PredictorConfig, ValueModel};
use prepare_markov::ValuePredictor;
use prepare_metrics::{
    Duration, Label, MetricSample, TimeSeries, Timestamp, VectorDiscretizer, ATTRIBUTE_COUNT,
};

/// An unsupervised per-VM anomaly predictor.
#[derive(Debug, Clone)]
pub struct UnsupervisedPredictor {
    config: PredictorConfig,
    discretizer: VectorDiscretizer,
    value_models: Vec<ValueModel>,
    classifier: ClusterClassifier,
    last_time: Option<Timestamp>,
}

/// One prediction from the unsupervised model.
#[derive(Debug, Clone, PartialEq)]
pub struct UnsupervisedPrediction {
    /// When the prediction was made.
    pub at: Timestamp,
    /// How far ahead the classified state lies.
    pub look_ahead: Duration,
    /// Predicted label.
    pub label: Label,
    /// Distance-based anomaly score (≈1 for typical states; larger is
    /// more anomalous).
    pub score: f64,
    /// The predicted discretized state per attribute.
    pub predicted_states: Vec<usize>,
}

impl UnsupervisedPredictor {
    /// Fits from an *unlabeled* trace of (assumed mostly normal)
    /// operation: behaviour clusters over the discretized samples, plus
    /// per-attribute value models.
    ///
    /// # Panics
    ///
    /// Panics if `series` is empty.
    pub fn fit(series: &TimeSeries, config: &PredictorConfig) -> Self {
        assert!(
            !series.is_empty(),
            "unsupervised predictor needs training data"
        );
        // Widen each attribute's range 2x beyond the observed span so
        // never-seen extremes land in outer bins no normal sample
        // occupies — with a tight fit they would clamp into normal bins
        // and vanish.
        let discretizer = VectorDiscretizer::fit_with_margin(series, config.bins, 1.0);
        let rows: Vec<Vec<usize>> = series
            .iter()
            .map(|s| discretizer.discretize(&s.values))
            .collect();
        let classifier = ClusterClassifier::fit_default(&rows);
        let mut value_models: Vec<ValueModel> = (0..ATTRIBUTE_COUNT)
            .map(|_| ValueModel::new(config.markov, config.bins))
            .collect();
        for row in &rows {
            for (m, &state) in value_models.iter_mut().zip(row) {
                m.observe(state);
            }
        }
        for m in &mut value_models {
            m.reset_position();
        }
        UnsupervisedPredictor {
            config: config.clone(),
            discretizer,
            value_models,
            classifier,
            last_time: None,
        }
    }

    /// Fits with [`PredictorConfig::default`].
    pub fn fit_default(series: &TimeSeries) -> Self {
        Self::fit(
            series,
            &PredictorConfig {
                markov: MarkovKind::TwoDependent,
                ..PredictorConfig::default()
            },
        )
    }

    /// Feeds a live monitoring sample.
    pub fn observe(&mut self, sample: &MetricSample) {
        let row = self.discretizer.discretize(&sample.values);
        for (m, &state) in self.value_models.iter_mut().zip(&row) {
            m.observe(state);
        }
        self.last_time = Some(sample.time);
    }

    /// Predicts the state `look_ahead` into the future and scores its
    /// distance from normal behaviour.
    pub fn predict(&self, look_ahead: Duration) -> UnsupervisedPrediction {
        let steps = self.config.steps_for(look_ahead);
        let bins = self.config.bins;
        let predicted_states: Vec<usize> = self
            .value_models
            .iter()
            .map(|m| m.predict(steps).expected_bin(bins))
            .collect();
        let score = self.classifier.score(&predicted_states);
        UnsupervisedPrediction {
            at: self.last_time.unwrap_or(Timestamp::ZERO),
            look_ahead,
            label: self.classifier.classify(&predicted_states),
            score,
            predicted_states,
        }
    }

    /// Forgets the stream position (keeps everything learned).
    pub fn reset_position(&mut self) {
        for m in &mut self.value_models {
            m.reset_position();
        }
        self.last_time = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prepare_metrics::{AttributeKind, MetricVector};

    fn healthy_series(samples: u64) -> TimeSeries {
        let mut ts = TimeSeries::new();
        for i in 0..samples {
            let v = MetricVector::from_fn(|a| match a {
                AttributeKind::CpuTotal => 35.0 + (i % 7) as f64,
                AttributeKind::FreeMem => 400.0 + (i % 5) as f64 * 4.0,
                AttributeKind::NetIn => 120.0 + (i % 3) as f64 * 5.0,
                _ => 10.0,
            });
            ts.push(MetricSample::new(Timestamp::from_secs(i * 5), v));
        }
        ts
    }

    fn anomalous_sample(t: u64) -> MetricSample {
        let v = MetricVector::from_fn(|a| match a {
            AttributeKind::CpuTotal => 100.0,
            AttributeKind::FreeMem => 0.0,
            AttributeKind::PageFaults => 900.0,
            AttributeKind::NetIn => 120.0,
            _ => 10.0,
        });
        MetricSample::new(Timestamp::from_secs(t), v)
    }

    #[test]
    fn normal_states_stay_normal() {
        let series = healthy_series(200);
        let mut p = UnsupervisedPredictor::fit_default(&series);
        for s in series.iter().take(50) {
            p.observe(s);
        }
        let pred = p.predict(Duration::from_secs(30));
        assert_eq!(pred.label, Label::Normal, "score {:.2}", pred.score);
    }

    #[test]
    fn unseen_anomaly_raises_alert() {
        let series = healthy_series(200);
        let mut p = UnsupervisedPredictor::fit_default(&series);
        for s in series.iter().take(50) {
            p.observe(s);
        }
        // A state class never in the training data arrives.
        for k in 0..3 {
            p.observe(&anomalous_sample(1000 + k * 5));
        }
        let pred = p.predict(Duration::from_secs(5));
        assert_eq!(pred.label, Label::Abnormal, "score {:.2}", pred.score);
        assert!(pred.score > 2.0);
    }

    #[test]
    fn reset_position_preserves_clusters() {
        let series = healthy_series(100);
        let mut p = UnsupervisedPredictor::fit_default(&series);
        for s in series.iter() {
            p.observe(s);
        }
        p.reset_position();
        p.observe(&series.samples()[0]);
        assert_eq!(p.predict(Duration::from_secs(10)).label, Label::Normal);
    }

    #[test]
    #[should_panic(expected = "training data")]
    fn empty_training_rejected() {
        let _ = UnsupervisedPredictor::fit_default(&TimeSeries::new());
    }
}
