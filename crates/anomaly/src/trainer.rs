//! Incremental online training for a fleet of per-VM predictors.
//!
//! Retraining a [`AnomalyPredictor`] from scratch rescans the whole
//! training window: it re-fits the discretizer, re-discretizes every
//! sample, re-counts every Markov transition, and re-accumulates every
//! TAN sufficient statistic. All of those quantities are *additive* in
//! the samples, so a [`FleetTrainer`] maintains them across rounds and
//! turns a retrain into (a) applying the delta of samples that entered or
//! left the window since the last one and (b) deriving fresh model
//! objects from the maintained state — skipping the window rescan
//! entirely whenever the discretization basis is stable.
//!
//! # Arena layout
//!
//! Per-VM model state lives in contiguous struct-of-arrays arenas indexed
//! by slot (VM) id, not in per-VM heap objects:
//!
//! ```text
//! fallback: [ slot 0: attr 0 (n²) | attr 1 (n²) | … ][ slot 1: … ] …
//! combined: [ slot 0: attr 0 (n³) | attr 1 (n³) | … ][ slot 1: … ] …
//! ```
//!
//! so a parallel refresh shards the fleet over *contiguous* arena ranges
//! ([`prepare_par::chunk_ranges`]) and each worker streams one
//! cache-friendly block instead of chasing per-VM pointers.
//!
//! # Exactness contract
//!
//! [`FleetTrainer::derive`] is **bit-identical** to retraining from
//! scratch ([`FleetTrainer::train_reference`], which replays the retained
//! window through [`AnomalyPredictor::train_labeled_par`]) — equality,
//! not tolerance. The workspace's replay contract pins traces
//! byte-for-byte, so an "almost equal" incremental path would silently
//! fork the trace catalogue. The equality is structural, not numeric
//! luck: counts are integer-valued `f64` (exact up to 2⁵³, so ±1.0
//! deltas commute and cancel exactly), and every count→probability
//! derivation is shared with the from-scratch path rather than
//! re-implemented. When a new sample widens an attribute's observed
//! range the discretization basis shifts and every stored count is built
//! on the wrong bins — the slot is marked *dirty* and the next
//! [`FleetTrainer::refresh`] rebuilds it wholesale; there is no
//! incremental shortcut across a basis change.

use crate::{AnomalyPredictor, MarkovKind, PredictorConfig, ValueModel};
use prepare_metrics::persist::{Persist, PersistError, Reader, Writer};
use prepare_metrics::{
    AttributeKind, DiscreteVector, Discretizer, Label, MetricVector, VectorDiscretizer,
    ATTRIBUTE_COUNT,
};
use prepare_tan::{TanStats, TrainError};
use std::collections::VecDeque;

/// Incrementally maintained training state for a fleet of per-VM
/// predictors, one *slot* per VM.
///
/// Feed each slot its labeled samples with [`FleetTrainer::push`] (and
/// age bounded windows with [`FleetTrainer::retire_front`]); call
/// [`FleetTrainer::refresh`] to rebuild any slots whose discretization
/// basis shifted, then [`FleetTrainer::derive`] to materialize a trained
/// predictor — bit-identical to [`FleetTrainer::train_reference`], the
/// from-scratch rebuild of the same window.
// xtask: checkpoint
#[derive(Debug, Clone)]
pub struct FleetTrainer {
    config: PredictorConfig,
    slots: usize,
    /// Combined-state transition counts, `slots × ATTRIBUTE_COUNT × n³`
    /// (empty for [`MarkovKind::Simple`], which has no combined table).
    combined: Vec<f64>,
    /// First-order transition counts, `slots × ATTRIBUTE_COUNT × n²` —
    /// the whole model for [`MarkovKind::Simple`], the fallback table for
    /// [`MarkovKind::TwoDependent`].
    fallback: Vec<f64>,
    /// TAN sufficient statistics, one per slot.
    tan: Vec<TanStats>,
    /// Running per-attribute min/max over each slot's window
    /// (`slots × ATTRIBUTE_COUNT`); `None` until a finite value arrives.
    ranges: Vec<Option<(f64, f64)>>,
    /// The per-attribute discretizers the counts were accumulated under
    /// (`slots × ATTRIBUTE_COUNT`). Valid only while the slot is clean.
    basis: Vec<Discretizer>,
    /// Retained training windows: the labeled samples the maintained
    /// statistics summarize, in arrival order.
    windows: Vec<VecDeque<(MetricVector, Label)>>,
    /// Each window row discretized under the slot's basis; in sync with
    /// `windows` only while the slot is clean.
    discrete: Vec<VecDeque<DiscreteVector>>,
    /// Slots whose basis shifted: counts are stale until the next
    /// [`FleetTrainer::refresh`].
    dirty: Vec<bool>,
    /// Per-slot window-content generation: bumped by every
    /// [`push`](FleetTrainer::push) and
    /// [`retire_front`](FleetTrainer::retire_front). A cached derivation
    /// is valid exactly while the slot's generation is unchanged.
    generation: Vec<u64>,
    /// Memoized [`derive`](FleetTrainer::derive) results keyed on the
    /// generation they were derived at (successful derivations only).
    // xtask: ephemeral -- memo cache, re-derived on demand after restore
    cache: Vec<Option<(u64, AnomalyPredictor)>>,
}

impl Persist for FleetTrainer {
    fn store(&self, w: &mut Writer) {
        self.config.store(w);
        w.put_usize(self.slots);
        self.combined.store(w);
        self.fallback.store(w);
        self.tan.store(w);
        self.ranges.store(w);
        self.basis.store(w);
        self.windows.store(w);
        self.discrete.store(w);
        self.dirty.store(w);
        self.generation.store(w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let config = PredictorConfig::load(r)?;
        let slots = r.get_usize()?;
        let combined: Vec<f64> = Persist::load(r)?;
        let fallback: Vec<f64> = Persist::load(r)?;
        let tan: Vec<prepare_tan::TanStats> = Persist::load(r)?;
        let ranges: Vec<Option<(f64, f64)>> = Persist::load(r)?;
        let basis: Vec<Discretizer> = Persist::load(r)?;
        let windows: Vec<VecDeque<(MetricVector, Label)>> = Persist::load(r)?;
        let discrete: Vec<VecDeque<DiscreteVector>> = Persist::load(r)?;
        let dirty: Vec<bool> = Persist::load(r)?;
        let generation: Vec<u64> = Persist::load(r)?;
        if slots == 0 {
            return Err(PersistError::Invalid("FleetTrainer slot count"));
        }
        let n = config.bins;
        let combined_want = match config.markov {
            MarkovKind::Simple => 0,
            MarkovKind::TwoDependent => slots * ATTRIBUTE_COUNT * n * n * n,
        };
        if combined.len() != combined_want
            || fallback.len() != slots * ATTRIBUTE_COUNT * n * n
            || tan.len() != slots
            || ranges.len() != slots * ATTRIBUTE_COUNT
            || basis.len() != slots * ATTRIBUTE_COUNT
            || windows.len() != slots
            || discrete.len() != slots
            || dirty.len() != slots
            || generation.len() != slots
        {
            return Err(PersistError::Invalid("FleetTrainer arena arity"));
        }
        // A clean slot keeps its discretized rows in sync with its
        // retained window; a mismatch means the bytes are corrupt.
        for ((is_dirty, rows), window) in dirty.iter().zip(&discrete).zip(&windows) {
            if !is_dirty && rows.len() != window.len() {
                return Err(PersistError::Invalid("FleetTrainer clean-slot window sync"));
            }
        }
        Ok(FleetTrainer {
            config,
            slots,
            combined,
            fallback,
            tan,
            ranges,
            basis,
            windows,
            discrete,
            dirty,
            generation,
            cache: (0..slots).map(|_| None).collect(),
        })
    }
}

/// One slot's freshly rebuilt state (the output of a dirty-slot rebuild,
/// computed read-only and written back after the parallel phase).
struct RebuiltSlot {
    slot: usize,
    basis: Vec<Discretizer>,
    discrete: VecDeque<DiscreteVector>,
    tan: TanStats,
    combined: Vec<f64>,
    fallback: Vec<f64>,
}

impl FleetTrainer {
    /// Creates a trainer with `slots` empty per-VM windows.
    ///
    /// # Panics
    ///
    /// Panics if `slots == 0` or the configuration has zero bins.
    pub fn new(slots: usize, config: &PredictorConfig) -> Self {
        assert!(slots > 0, "trainer needs at least one slot");
        assert!(config.bins > 0, "bin count must be positive");
        let n = config.bins;
        let combined_len = match config.markov {
            MarkovKind::Simple => 0,
            MarkovKind::TwoDependent => slots * ATTRIBUTE_COUNT * n * n * n,
        };
        FleetTrainer {
            config: config.clone(),
            slots,
            combined: vec![0.0; combined_len],
            fallback: vec![0.0; slots * ATTRIBUTE_COUNT * n * n],
            tan: (0..slots)
                .map(|_| TanStats::with_uniform_bins(ATTRIBUTE_COUNT, n))
                .collect(),
            ranges: vec![None; slots * ATTRIBUTE_COUNT],
            basis: (0..slots * ATTRIBUTE_COUNT)
                .map(|_| Discretizer::fit_span(None, n))
                .collect(),
            windows: (0..slots).map(|_| VecDeque::new()).collect(),
            discrete: (0..slots).map(|_| VecDeque::new()).collect(),
            dirty: vec![false; slots],
            generation: vec![0; slots],
            cache: (0..slots).map(|_| None).collect(),
        }
    }

    /// Number of slots.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Number of retained samples in `slot`'s window.
    pub fn window_len(&self, slot: usize) -> usize {
        self.windows[slot].len()
    }

    /// Whether `slot`'s maintained counts are stale (its basis shifted
    /// since the last rebuild).
    pub fn is_dirty(&self, slot: usize) -> bool {
        self.dirty[slot]
    }

    fn fb_slice(&mut self, slot: usize, attr: usize) -> &mut [f64] {
        let n2 = self.config.bins * self.config.bins;
        let off = (slot * ATTRIBUTE_COUNT + attr) * n2;
        &mut self.fallback[off..off + n2]
    }

    fn comb_slice(&mut self, slot: usize, attr: usize) -> &mut [f64] {
        let n3 = self.config.bins * self.config.bins * self.config.bins;
        let off = (slot * ATTRIBUTE_COUNT + attr) * n3;
        &mut self.combined[off..off + n3]
    }

    /// Appends one labeled sample to `slot`'s window. If the sample stays
    /// inside the slot's observed value ranges the maintained counts are
    /// updated in place (the delta fast path); a range-widening sample
    /// shifts the discretization basis instead, marking the slot dirty
    /// for the next [`FleetTrainer::refresh`].
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn push(&mut self, slot: usize, values: &MetricVector, label: Label) {
        assert!(slot < self.slots, "slot {slot} out of range");
        if let Some(g) = self.generation.get_mut(slot) {
            *g = g.wrapping_add(1);
        }
        self.windows[slot].push_back((*values, label));

        // Running min/max update — the same left-fold `Discretizer::fit`
        // performs, one element at a time. A bit-level endpoint change
        // means the refit basis may differ: mark dirty.
        let mut range_changed = false;
        for (a, &attr) in AttributeKind::ALL.iter().enumerate() {
            let v = values.get(attr);
            if !v.is_finite() {
                continue;
            }
            // xtask-allow: index-in-loop -- arena offset: slot asserted in range, a < ATTRIBUTE_COUNT
            let r = &mut self.ranges[slot * ATTRIBUTE_COUNT + a];
            let (nlo, nhi) = match *r {
                None => (v, v),
                Some((lo, hi)) => (lo.min(v), hi.max(v)),
            };
            if r.map(|(lo, hi)| (lo.to_bits(), hi.to_bits()))
                != Some((nlo.to_bits(), nhi.to_bits()))
            {
                range_changed = true;
            }
            *r = Some((nlo, nhi));
        }
        if range_changed {
            self.dirty[slot] = true;
        }
        if self.dirty[slot] {
            return;
        }

        let row: DiscreteVector = AttributeKind::ALL
            .iter()
            .enumerate()
            .map(|(a, &attr)| self.basis[slot * ATTRIBUTE_COUNT + a].discretize(values.get(attr)))
            .collect();
        self.apply_push_deltas(slot, &row, label);
        self.discrete[slot].push_back(row);
    }

    /// The delta-apply kernel of [`FleetTrainer::push`]: adds the new
    /// row's TAN statistics and Markov transition counts (the leading
    /// first-order transition, plus the combined-state transition once
    /// two predecessors exist) directly into the arenas.
    // xtask: hot-path
    fn apply_push_deltas(&mut self, slot: usize, row: &DiscreteVector, label: Label) {
        self.tan[slot].add_row(row, label);
        let n = self.config.bins;
        let len = self.discrete[slot].len();
        if len == 0 {
            return;
        }
        let two_dep = self.config.markov == MarkovKind::TwoDependent;
        // Deliberate flat-arena addressing: rows are ATTRIBUTE_COUNT wide
        // by construction, symbols are < n from the discretizer, and slot
        // is asserted in range by the caller.
        for (a, &next) in row.iter().enumerate() {
            // xtask-allow: index-in-loop -- len = discrete[slot].len() >= 1 on this path
            let prev1 = self.discrete[slot][len - 1][a];
            // xtask-allow: index-in-loop -- symbols < n from the discretizer
            self.fb_slice(slot, a)[prev1 * n + next] += 1.0;
            if two_dep && len >= 2 {
                // xtask-allow: index-in-loop -- len >= 2 checked on this branch
                let prev2 = self.discrete[slot][len - 2][a];
                // xtask-allow: index-in-loop -- symbols < n from the discretizer
                self.comb_slice(slot, a)[(prev2 * n + prev1) * n + next] += 1.0;
            }
        }
    }

    /// Retires the oldest sample of `slot`'s window — the "samples that
    /// left the window" half of a delta retrain. On the fast path the
    /// sample's counts are subtracted exactly (integer-valued `f64`, so
    /// the arena returns to its pre-[`push`](FleetTrainer::push) bits);
    /// if the retired sample held an attribute's min or max the range is
    /// rescanned and a shrink marks the slot dirty.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range or its window is empty.
    pub fn retire_front(&mut self, slot: usize) {
        assert!(slot < self.slots, "slot {slot} out of range");
        if let Some(g) = self.generation.get_mut(slot) {
            *g = g.wrapping_add(1);
        }
        let (values, label) = self.windows[slot]
            .pop_front()
            .expect("retiring from an empty window"); // xtask-allow: expect -- documented panic: the window must be non-empty

        let mut range_changed = false;
        for (a, &attr) in AttributeKind::ALL.iter().enumerate() {
            let v = values.get(attr);
            if !v.is_finite() {
                continue;
            }
            // xtask-allow: index-in-loop -- arena offset: slot asserted in range, a < ATTRIBUTE_COUNT
            let r = &mut self.ranges[slot * ATTRIBUTE_COUNT + a];
            let Some((lo, hi)) = *r else {
                // xtask-allow: unreachable -- a finite value was folded into this range at push time
                unreachable!("a finite value was pushed, the range cannot be empty")
            };
            // A value strictly inside the range cannot have been an
            // endpoint of the fold; only endpoint hits need a rescan.
            if lo < v && v < hi {
                continue;
            }
            // xtask-allow: index-in-loop -- slot asserted in range above
            let rescanned = Self::scan_range(&self.windows[slot], attr);
            if rescanned.map(|(l, h)| (l.to_bits(), h.to_bits()))
                != Some((lo.to_bits(), hi.to_bits()))
            {
                range_changed = true;
            }
            *r = rescanned;
        }
        if range_changed {
            self.dirty[slot] = true;
        }
        if self.dirty[slot] {
            return;
        }

        let front = self.discrete[slot]
            .pop_front()
            .expect("clean slot keeps discrete rows in sync with the window"); // xtask-allow: expect -- clean-slot invariant: discrete mirrors the window
        self.apply_retire_deltas(slot, &front, label);
    }

    /// The delta-apply kernel of [`FleetTrainer::retire_front`]:
    /// subtracts the retired row's TAN statistics, its leading
    /// first-order transition, and (for the 2-dependent chain) the one
    /// combined-state transition that loses its full context. The
    /// second remaining row's first-order transition stays — it simply
    /// becomes the new leading transition.
    // xtask: hot-path
    fn apply_retire_deltas(&mut self, slot: usize, front: &DiscreteVector, label: Label) {
        self.tan[slot].retire_row(front, label);
        let n = self.config.bins;
        if self.discrete[slot].is_empty() {
            return;
        }
        let two_dep = self.config.markov == MarkovKind::TwoDependent;
        let remaining = self.discrete[slot].len();
        // Deliberate flat-arena addressing, mirroring `apply_push_deltas`.
        for (a, &d0) in front.iter().enumerate() {
            // xtask-allow: index-in-loop -- non-empty checked on this path
            let d1 = self.discrete[slot][0][a];
            // xtask-allow: index-in-loop -- symbols < n from the discretizer
            let cell = &mut self.fb_slice(slot, a)[d0 * n + d1];
            assert!(*cell >= 1.0, "retiring an unrecorded transition");
            *cell -= 1.0;
            if two_dep && remaining >= 2 {
                // xtask-allow: index-in-loop -- remaining >= 2 checked on this branch
                let d2 = self.discrete[slot][1][a];
                // xtask-allow: index-in-loop -- symbols < n from the discretizer
                let cell = &mut self.comb_slice(slot, a)[(d0 * n + d1) * n + d2];
                assert!(*cell >= 1.0, "retiring an unrecorded transition");
                *cell -= 1.0;
            }
        }
    }

    /// The exact range fold of [`Discretizer::fit`] over a window's
    /// remaining samples: filter to finite, left-fold min/max.
    fn scan_range(
        window: &VecDeque<(MetricVector, Label)>,
        attr: AttributeKind,
    ) -> Option<(f64, f64)> {
        let mut range: Option<(f64, f64)> = None;
        for (v, _) in window {
            let x = v.get(attr);
            if !x.is_finite() {
                continue;
            }
            range = Some(match range {
                None => (x, x),
                Some((lo, hi)) => (lo.min(x), hi.max(x)),
            });
        }
        range
    }

    /// Rebuilds every dirty slot from its retained window: refits the
    /// basis from the maintained ranges, re-discretizes the window, and
    /// re-counts the arenas. Dirty slots are sharded over contiguous
    /// chunks ([`prepare_par::chunk_ranges`]); each rebuild reads only
    /// its own slot's window, so the result is bit-identical for every
    /// worker count.
    pub fn refresh(&mut self, par: &prepare_par::ParConfig) {
        let dirty_slots: Vec<usize> = (0..self.slots).filter(|&s| self.dirty[s]).collect();
        if dirty_slots.is_empty() {
            return;
        }
        let chunks = prepare_par::chunk_ranges(dirty_slots.len(), par.workers);
        let rebuilt: Vec<Vec<RebuiltSlot>> = prepare_par::par_map(par, chunks, |range| {
            range
                .map(|k| self.rebuild_slot(dirty_slots[k]))
                .collect::<Vec<RebuiltSlot>>()
        });
        for r in rebuilt.into_iter().flatten() {
            // Scatter write-back: slot ids come from the dirty scan over
            // 0..self.slots, so every index below is in range.
            let slot = r.slot;
            self.basis[slot * ATTRIBUTE_COUNT..(slot + 1) * ATTRIBUTE_COUNT]
                .iter_mut()
                .zip(r.basis)
                .for_each(|(dst, d)| *dst = d);
            // xtask-allow: index-in-loop -- slot < self.slots
            self.discrete[slot] = r.discrete;
            self.tan[slot] = r.tan; // xtask-allow: index-in-loop -- slot < self.slots
            let n = self.config.bins;
            let n2 = n * n;
            self.fallback[slot * ATTRIBUTE_COUNT * n2..(slot + 1) * ATTRIBUTE_COUNT * n2]
                .copy_from_slice(&r.fallback);
            if self.config.markov == MarkovKind::TwoDependent {
                let n3 = n2 * n;
                self.combined[slot * ATTRIBUTE_COUNT * n3..(slot + 1) * ATTRIBUTE_COUNT * n3]
                    .copy_from_slice(&r.combined);
            }
            self.dirty[slot] = false; // xtask-allow: index-in-loop -- slot < self.slots
        }
    }

    /// From-scratch rebuild of one slot's state, read-only (the write
    /// back happens after the parallel phase).
    fn rebuild_slot(&self, slot: usize) -> RebuiltSlot {
        let n = self.config.bins;
        let basis: Vec<Discretizer> = (0..ATTRIBUTE_COUNT)
            .map(|a| Discretizer::fit_span(self.ranges[slot * ATTRIBUTE_COUNT + a], n))
            .collect();
        let window = &self.windows[slot];
        let mut tan = TanStats::with_uniform_bins(ATTRIBUTE_COUNT, n);
        let mut discrete: VecDeque<DiscreteVector> = VecDeque::with_capacity(window.len());
        for (v, label) in window {
            let row: DiscreteVector = AttributeKind::ALL
                .iter()
                .zip(&basis)
                .map(|(&attr, d)| d.discretize(v.get(attr)))
                .collect();
            tan.add_row(&row, *label);
            discrete.push_back(row);
        }
        let two_dep = self.config.markov == MarkovKind::TwoDependent;
        let mut fallback = vec![0.0; ATTRIBUTE_COUNT * n * n];
        let mut combined = vec![
            0.0;
            if two_dep {
                ATTRIBUTE_COUNT * n * n * n
            } else {
                0
            }
        ];
        // The same flat addressing as the delta kernels: i walks
        // 1..len, rows are ATTRIBUTE_COUNT wide, symbols < n.
        for i in 1..discrete.len() {
            for a in 0..ATTRIBUTE_COUNT {
                // xtask-allow: index-in-loop -- i >= 1, rows ATTRIBUTE_COUNT wide
                let prev1 = discrete[i - 1][a];
                let next = discrete[i][a]; // xtask-allow: index-in-loop -- i < len
                                           // xtask-allow: index-in-loop -- symbols < n from the discretizer
                fallback[a * n * n + prev1 * n + next] += 1.0;
                if two_dep && i >= 2 {
                    // xtask-allow: index-in-loop -- i >= 2 checked on this branch
                    let prev2 = discrete[i - 2][a];
                    // xtask-allow: index-in-loop -- symbols < n from the discretizer
                    combined[a * n * n * n + (prev2 * n + prev1) * n + next] += 1.0;
                }
            }
        }
        RebuiltSlot {
            slot,
            basis,
            discrete,
            tan,
            combined,
            fallback,
        }
    }

    /// Materializes a trained predictor from `slot`'s maintained state:
    /// the basis becomes the discretizer, the arena slices become Markov
    /// models, and the TAN statistics become the classifier — every
    /// count→probability derivation shared with the from-scratch path,
    /// so the result is bit-identical to
    /// [`FleetTrainer::train_reference`].
    ///
    /// # Errors
    ///
    /// The same conditions as [`AnomalyPredictor::train`]: an empty
    /// window or single-class labels.
    ///
    /// # Panics
    ///
    /// Panics if the slot is dirty — call [`FleetTrainer::refresh`]
    /// first.
    pub fn derive(&self, slot: usize) -> Result<AnomalyPredictor, TrainError> {
        assert!(
            !self.dirty[slot],
            "deriving from a dirty slot; call refresh first"
        );
        if self.windows[slot].is_empty() {
            return Err(TrainError::EmptyDataset);
        }
        let classifier = self.tan[slot].classifier()?;
        let discretizer = VectorDiscretizer::from_parts(
            self.basis[slot * ATTRIBUTE_COUNT..(slot + 1) * ATTRIBUTE_COUNT].to_vec(),
        );
        let n = self.config.bins;
        let n2 = n * n;
        let n3 = n2 * n;
        let observations = self.windows[slot].len();
        let value_models: Vec<ValueModel> = (0..ATTRIBUTE_COUNT)
            .map(|a| {
                let fb_off = (slot * ATTRIBUTE_COUNT + a) * n2;
                let comb: &[f64] = match self.config.markov {
                    MarkovKind::Simple => &[],
                    MarkovKind::TwoDependent => {
                        let off = (slot * ATTRIBUTE_COUNT + a) * n3;
                        &self.combined[off..off + n3]
                    }
                };
                ValueModel::from_parts(
                    self.config.markov,
                    n,
                    comb,
                    &self.fallback[fb_off..fb_off + n2],
                    observations,
                )
            })
            .collect();
        Ok(AnomalyPredictor::from_parts(
            self.config.clone(),
            discretizer,
            value_models,
            classifier,
        ))
    }

    /// Whether `slot` holds a cached derivation that is still valid (no
    /// [`push`](FleetTrainer::push) or
    /// [`retire_front`](FleetTrainer::retire_front) since it was
    /// derived). Serving a valid cache entry skips the count→probability
    /// derivation entirely.
    pub fn is_cached(&self, slot: usize) -> bool {
        self.cache
            .get(slot)
            .and_then(|c| c.as_ref())
            .is_some_and(|(gen, _)| Some(gen) == self.generation.get(slot))
    }

    /// Batch [`derive`](FleetTrainer::derive) with generation-keyed
    /// memoization: slots whose window is unchanged since their last
    /// derivation are served from the cache (a clone of the stored
    /// model, bit-identical to re-deriving); only stale slots re-derive,
    /// sharded over workers. Results come back in the order of `slots`
    /// and are exactly what [`derive`](FleetTrainer::derive) returns for
    /// each slot — error outcomes included.
    ///
    /// # Errors
    ///
    /// Per slot, the same conditions as [`FleetTrainer::derive`] (errors
    /// are recomputed each call, never cached — they are cheap).
    ///
    /// # Panics
    ///
    /// Panics if any slot is dirty or out of range — call
    /// [`FleetTrainer::refresh`] first.
    pub fn derive_cached_batch(
        &mut self,
        slots: &[usize],
        par: &prepare_par::ParConfig,
    ) -> Vec<Result<AnomalyPredictor, TrainError>> {
        let mut stale: Vec<usize> = Vec::new();
        for &slot in slots {
            if !self.is_cached(slot) && !stale.contains(&slot) {
                stale.push(slot);
            }
        }
        let derived: Vec<Result<AnomalyPredictor, TrainError>> =
            prepare_par::par_map(par, stale.clone(), |slot| self.derive(slot));
        let mut fresh: std::collections::BTreeMap<usize, Result<AnomalyPredictor, TrainError>> =
            std::collections::BTreeMap::new();
        for (slot, result) in stale.into_iter().zip(derived) {
            if let Some(entry) = self.cache.get_mut(slot) {
                *entry = match (&result, self.generation.get(slot)) {
                    (Ok(p), Some(&gen)) => Some((gen, p.clone())),
                    _ => None,
                };
            }
            fresh.insert(slot, result);
        }
        slots
            .iter()
            .map(|slot| {
                if let Some(r) = fresh.get(slot) {
                    r.clone()
                } else if let Some(Some((_, p))) = self.cache.get(*slot) {
                    Ok(p.clone())
                } else {
                    // Unreachable by construction: every requested slot
                    // was either just derived or was a valid cache hit.
                    Err(TrainError::EmptyDataset)
                }
            })
            .collect()
    }

    /// The from-scratch referee: retrains `slot` by replaying its
    /// retained window through the ordinary
    /// [`AnomalyPredictor::train_labeled_par`] path (serially), ignoring
    /// every maintained statistic. [`FleetTrainer::derive`] must equal
    /// this bit-for-bit; the differential suite and the equivalence
    /// proptests hold the two paths against each other.
    ///
    /// # Errors
    ///
    /// The same conditions as [`AnomalyPredictor::train`].
    pub fn train_reference(&self, slot: usize) -> Result<AnomalyPredictor, TrainError> {
        let rows: Vec<(MetricVector, Label)> = self.windows[slot].iter().copied().collect();
        AnomalyPredictor::train_labeled_par(&rows, &self.config, &prepare_par::ParConfig::serial())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::ramp_fixture;
    use prepare_metrics::{SloLog, TimeSeries};
    use proptest::prelude::*;

    fn labeled_stream(samples: usize, seed: u64) -> Vec<(MetricVector, Label)> {
        // A deterministic mixed-scale stream: values grow occasionally so
        // both the delta fast path and the dirty/rebuild path are hit.
        (0..samples)
            .map(|i| {
                let k = i as u64;
                let v = MetricVector::from_fn(|a| {
                    let x = (k * 37 + a.index() as u64 * 13 + seed) % 101;
                    if (k + seed).is_multiple_of(17) {
                        x as f64 * 3.0 // occasional range-widening spike
                    } else {
                        x as f64
                    }
                });
                let label = Label::from_violation((k * 7 + seed).is_multiple_of(5));
                (v, label)
            })
            .collect()
    }

    fn assert_same_outcome(
        got: &Result<AnomalyPredictor, TrainError>,
        want: &Result<AnomalyPredictor, TrainError>,
        context: &str,
    ) {
        match (got, want) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a, b, "{context}: derived model diverged");
                assert_eq!(
                    format!("{a:?}"),
                    format!("{b:?}"),
                    "{context}: Debug representation diverged"
                );
            }
            (Err(a), Err(b)) => assert_eq!(a, b, "{context}: errors diverged"),
            _ => panic!("{context}: one path errored, the other did not: {got:?} vs {want:?}"),
        }
    }

    #[test]
    fn derive_equals_reference_after_pushes() {
        for kind in [MarkovKind::Simple, MarkovKind::TwoDependent] {
            let config = PredictorConfig {
                markov: kind,
                ..PredictorConfig::default()
            };
            let mut trainer = FleetTrainer::new(1, &config);
            for (v, label) in labeled_stream(120, 3) {
                trainer.push(0, &v, label);
            }
            trainer.refresh(&prepare_par::ParConfig::serial());
            assert_same_outcome(
                &trainer.derive(0),
                &trainer.train_reference(0),
                &format!("{kind:?}"),
            );
        }
    }

    #[test]
    fn derive_equals_anomaly_train_on_a_series() {
        // The controller-integration premise: pushing each sample with
        // its ingest-time SLO label reproduces series+log training.
        let (series, slo) = ramp_fixture(400, 5, 40, 80.0);
        let config = PredictorConfig::default();
        let mut trainer = FleetTrainer::new(1, &config);
        for s in series.iter() {
            trainer.push(
                0,
                &s.values,
                Label::from_violation(slo.is_violated_at(s.time)),
            );
        }
        trainer.refresh(&prepare_par::ParConfig::serial());
        let derived = trainer.derive(0).unwrap();
        let trained = AnomalyPredictor::train(&series, &slo, &config).unwrap();
        assert_eq!(derived, trained);
        assert_eq!(format!("{derived:?}"), format!("{trained:?}"));
    }

    #[test]
    fn sliding_window_equals_reference() {
        let config = PredictorConfig::default();
        let mut trainer = FleetTrainer::new(1, &config);
        let stream = labeled_stream(200, 11);
        for (i, (v, label)) in stream.iter().enumerate() {
            trainer.push(0, v, *label);
            if i >= 80 {
                trainer.retire_front(0);
            }
            if i % 23 == 0 {
                trainer.refresh(&prepare_par::ParConfig::serial());
                assert_same_outcome(
                    &trainer.derive(0),
                    &trainer.train_reference(0),
                    &format!("step {i}"),
                );
            }
        }
    }

    #[test]
    fn empty_window_is_empty_dataset_error() {
        let trainer = FleetTrainer::new(2, &PredictorConfig::default());
        assert_eq!(trainer.derive(0), Err(TrainError::EmptyDataset));
        assert_eq!(trainer.train_reference(0), Err(TrainError::EmptyDataset));
    }

    #[test]
    fn single_sample_matches_reference_error() {
        let mut trainer = FleetTrainer::new(1, &PredictorConfig::default());
        trainer.push(0, &MetricVector::zeros(), Label::Normal);
        trainer.refresh(&prepare_par::ParConfig::serial());
        assert_same_outcome(
            &trainer.derive(0),
            &trainer.train_reference(0),
            "single sample",
        );
        assert!(trainer.derive(0).is_err(), "one sample is single-class");
    }

    #[test]
    fn full_eviction_restores_the_empty_state() {
        let config = PredictorConfig::default();
        let fresh = FleetTrainer::new(1, &config);
        let mut trainer = FleetTrainer::new(1, &config);
        for (v, label) in labeled_stream(60, 5) {
            trainer.push(0, &v, label);
        }
        while trainer.window_len(0) > 0 {
            trainer.retire_front(0);
        }
        trainer.refresh(&prepare_par::ParConfig::serial());
        assert_eq!(trainer.derive(0), Err(TrainError::EmptyDataset));
        // The arenas are all-zero again, bit for bit.
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
        assert_eq!(bits(&trainer.fallback), bits(&fresh.fallback));
        assert_eq!(bits(&trainer.combined), bits(&fresh.combined));
        assert_eq!(trainer.tan[0], fresh.tan[0]);
    }

    #[test]
    fn retiring_an_interior_sample_restores_the_arenas_bit_for_bit() {
        // T1 trains on [mid, lo, hi, tail…]; retiring `mid` (strictly
        // inside (lo, hi), so the clean delta fast path) must leave
        // exactly the arena bytes of T2, which never saw `mid` at all.
        let config = PredictorConfig::default();
        let mid = MetricVector::from_fn(|_| 250.0);
        let lo = MetricVector::from_fn(|_| 0.0);
        let hi = MetricVector::from_fn(|_| 500.0);
        let tail: Vec<(MetricVector, Label)> = labeled_stream(50, 4)
            .into_iter()
            .map(|(v, l)| (MetricVector::from_fn(|a| v.get(a).clamp(1.0, 499.0)), l))
            .collect();

        let mut t1 = FleetTrainer::new(1, &config);
        t1.push(0, &mid, Label::Normal);
        t1.push(0, &lo, Label::Normal);
        t1.push(0, &hi, Label::Abnormal);
        for (v, l) in &tail {
            t1.push(0, v, *l);
        }
        t1.refresh(&prepare_par::ParConfig::serial());
        assert!(!t1.is_dirty(0));
        t1.retire_front(0);
        assert!(
            !t1.is_dirty(0),
            "interior retire must stay on the fast path"
        );

        let mut t2 = FleetTrainer::new(1, &config);
        t2.push(0, &lo, Label::Normal);
        t2.push(0, &hi, Label::Abnormal);
        for (v, l) in &tail {
            t2.push(0, v, *l);
        }
        t2.refresh(&prepare_par::ParConfig::serial());

        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
        assert_eq!(bits(&t1.fallback), bits(&t2.fallback));
        assert_eq!(bits(&t1.combined), bits(&t2.combined));
        assert_eq!(t1.tan[0], t2.tan[0]);
        assert_same_outcome(&t1.derive(0), &t2.derive(0), "post-retire");
    }

    #[test]
    #[should_panic(expected = "retiring from an empty window")]
    fn retire_from_empty_window_panics() {
        let mut trainer = FleetTrainer::new(1, &PredictorConfig::default());
        trainer.retire_front(0);
    }

    #[test]
    #[should_panic(expected = "dirty slot")]
    fn derive_on_dirty_slot_panics() {
        let mut trainer = FleetTrainer::new(1, &PredictorConfig::default());
        trainer.push(0, &MetricVector::zeros(), Label::Normal);
        assert!(trainer.is_dirty(0), "first push always shifts the basis");
        let _ = trainer.derive(0);
    }

    #[test]
    fn slots_are_independent() {
        let config = PredictorConfig::default();
        let mut fleet = FleetTrainer::new(3, &config);
        let streams: Vec<Vec<(MetricVector, Label)>> = (0..3)
            .map(|s| labeled_stream(90, s as u64 * 7 + 1))
            .collect();
        // Interleave pushes across slots.
        for i in 0..90 {
            for (slot, stream) in streams.iter().enumerate() {
                let (v, label) = &stream[i];
                fleet.push(slot, v, *label);
            }
        }
        for workers in [1usize, 2, 7] {
            let mut clone = fleet.clone();
            clone.refresh(&prepare_par::ParConfig::with_workers(workers));
            for (slot, stream) in streams.iter().enumerate() {
                let mut solo = FleetTrainer::new(1, &config);
                for (v, label) in stream {
                    solo.push(0, v, *label);
                }
                solo.refresh(&prepare_par::ParConfig::serial());
                assert_same_outcome(
                    &clone.derive(slot),
                    &solo.derive(0),
                    &format!("slot {slot} workers {workers}"),
                );
            }
        }
    }

    #[test]
    fn retire_that_shrinks_the_range_marks_dirty_and_rebuilds_exactly() {
        let config = PredictorConfig::default();
        let mut trainer = FleetTrainer::new(1, &config);
        // The first sample is the global max; retiring it must shrink
        // the range and force a rebuild.
        let spike = MetricVector::from_fn(|_| 1000.0);
        trainer.push(0, &spike, Label::Abnormal);
        for (v, label) in labeled_stream(80, 2) {
            trainer.push(0, &v, label);
        }
        trainer.refresh(&prepare_par::ParConfig::serial());
        assert!(!trainer.is_dirty(0));
        trainer.retire_front(0);
        assert!(trainer.is_dirty(0), "range shrank: counts are stale");
        trainer.refresh(&prepare_par::ParConfig::serial());
        assert_same_outcome(
            &trainer.derive(0),
            &trainer.train_reference(0),
            "post-shrink rebuild",
        );
    }

    #[test]
    fn trainer_matches_train_par_for_all_worker_counts() {
        let (series, slo): (TimeSeries, SloLog) = ramp_fixture(300, 5, 40, 80.0);
        let config = PredictorConfig::default();
        let mut trainer = FleetTrainer::new(1, &config);
        for s in series.iter() {
            trainer.push(
                0,
                &s.values,
                Label::from_violation(slo.is_violated_at(s.time)),
            );
        }
        trainer.refresh(&prepare_par::ParConfig::serial());
        let derived = trainer.derive(0).unwrap();
        for workers in [1usize, 2, 7] {
            let par = prepare_par::ParConfig::with_workers(workers);
            let trained = AnomalyPredictor::train_par(&series, &slo, &config, &par).unwrap();
            assert_eq!(derived, trained, "workers={workers}");
        }
    }

    #[test]
    fn cached_batch_is_bit_identical_to_eager_derive() {
        let config = PredictorConfig::default();
        let mut trainer = FleetTrainer::new(4, &config);
        for slot in 0..4 {
            for (v, label) in labeled_stream(100, slot as u64 * 5 + 1) {
                trainer.push(slot, &v, label);
            }
        }
        trainer.refresh(&prepare_par::ParConfig::serial());
        let slots = [0usize, 1, 2, 3];
        let batch = trainer.derive_cached_batch(&slots, &prepare_par::ParConfig::serial());
        for (&slot, got) in slots.iter().zip(&batch) {
            assert_same_outcome(got, &trainer.derive(slot), &format!("cold slot {slot}"));
            assert!(trainer.is_cached(slot), "slot {slot} should be cached");
        }

        // Mutate only slots 1 and 3: the others must stay cached and the
        // re-derived ones must match eager derivation again.
        for (v, label) in labeled_stream(20, 99) {
            trainer.push(1, &v, label);
            trainer.push(3, &v, label);
        }
        assert!(trainer.is_cached(0) && trainer.is_cached(2));
        assert!(!trainer.is_cached(1) && !trainer.is_cached(3));
        trainer.refresh(&prepare_par::ParConfig::serial());
        let batch = trainer.derive_cached_batch(&slots, &prepare_par::ParConfig::serial());
        for (&slot, got) in slots.iter().zip(&batch) {
            assert_same_outcome(got, &trainer.derive(slot), &format!("warm slot {slot}"));
        }

        // Retiring also invalidates.
        trainer.retire_front(2);
        assert!(!trainer.is_cached(2));
    }

    #[test]
    fn cached_batch_is_worker_count_invariant() {
        let config = PredictorConfig::default();
        let mut base = FleetTrainer::new(5, &config);
        for slot in 0..5 {
            for (v, label) in labeled_stream(80, slot as u64 * 3 + 2) {
                base.push(slot, &v, label);
            }
        }
        base.refresh(&prepare_par::ParConfig::serial());
        let slots = [3usize, 0, 4, 1, 2];
        let mut serial = base.clone();
        let want = serial.derive_cached_batch(&slots, &prepare_par::ParConfig::serial());
        for workers in [2usize, 7] {
            let mut clone = base.clone();
            let got =
                clone.derive_cached_batch(&slots, &prepare_par::ParConfig::with_workers(workers));
            for ((&slot, g), w) in slots.iter().zip(&got).zip(&want) {
                assert_same_outcome(g, w, &format!("slot {slot} workers {workers}"));
            }
        }
    }

    #[test]
    fn cached_batch_preserves_error_outcomes() {
        let config = PredictorConfig::default();
        let mut trainer = FleetTrainer::new(2, &config);
        for (v, label) in labeled_stream(60, 8) {
            trainer.push(0, &v, label);
        }
        trainer.refresh(&prepare_par::ParConfig::serial());
        // Slot 1 is empty: the batch must report EmptyDataset for it and
        // must not cache the error.
        let batch = trainer.derive_cached_batch(&[0, 1], &prepare_par::ParConfig::serial());
        assert!(batch[0].is_ok());
        assert_eq!(batch[1], Err(TrainError::EmptyDataset));
        assert!(trainer.is_cached(0));
        assert!(!trainer.is_cached(1));
        // Duplicate slots in one request are served consistently.
        let dup = trainer.derive_cached_batch(&[0, 0, 1], &prepare_par::ParConfig::serial());
        assert_same_outcome(&dup[0], &dup[1], "duplicate request");
        assert_eq!(dup[2], Err(TrainError::EmptyDataset));
    }

    /// A restored trainer is observationally identical: it derives the
    /// same models, and continuing the stream (pushes, retirements,
    /// refreshes) on both copies keeps them in lockstep — the crash
    /// recovery contract for the training plane.
    #[test]
    fn persist_round_trip_continues_training_bit_identically() {
        let config = PredictorConfig::default();
        let mut trainer = FleetTrainer::new(3, &config);
        let streams: Vec<Vec<(MetricVector, Label)>> = (0..3)
            .map(|s| labeled_stream(120, s as u64 * 7 + 1))
            .collect();
        for (slot, stream) in streams.iter().enumerate() {
            for (v, label) in &stream[..90] {
                trainer.push(slot, v, *label);
            }
        }
        // Leave slot 2 dirty on purpose: dirtiness must survive restore.
        trainer.refresh(&prepare_par::ParConfig::serial());
        trainer.push(2, &MetricVector::from_fn(|_| 9999.0), Label::Abnormal);
        assert!(trainer.is_dirty(2));

        let bytes = prepare_metrics::persist::to_bytes(&trainer);
        let mut restored: FleetTrainer = prepare_metrics::persist::from_bytes(&bytes).unwrap();
        assert!(restored.is_dirty(2));
        assert_same_outcome(&restored.derive(0), &trainer.derive(0), "restored slot 0");

        for (slot, stream) in streams.iter().enumerate() {
            for (v, label) in &stream[90..] {
                trainer.push(slot, v, *label);
                restored.push(slot, v, *label);
            }
            trainer.retire_front(slot);
            restored.retire_front(slot);
        }
        trainer.refresh(&prepare_par::ParConfig::serial());
        restored.refresh(&prepare_par::ParConfig::serial());
        for slot in 0..3 {
            assert_same_outcome(
                &restored.derive(slot),
                &trainer.derive(slot),
                &format!("continued slot {slot}"),
            );
        }
    }

    #[test]
    fn persist_load_rejects_slot_arity_mismatch() {
        let mut trainer = FleetTrainer::new(2, &PredictorConfig::default());
        for (v, label) in labeled_stream(40, 6) {
            trainer.push(0, &v, label);
        }
        let mut bytes = prepare_metrics::persist::to_bytes(&trainer);
        // The slot count sits right after the config (bins u64 + secs u64
        // + markov tag byte); shrinking it desynchronizes every arena.
        let off = 8 + 8 + 1;
        bytes[off..off + 8].copy_from_slice(&1u64.to_le_bytes());
        assert!(prepare_metrics::persist::from_bytes::<FleetTrainer>(&bytes).is_err());
    }

    proptest! {
        // Random labeled streams with occasional spikes: after an
        // arbitrary interleaving of pushes and front-retirements, the
        // incremental derivation equals the from-scratch rebuild
        // exactly — including which error it returns.
        #[test]
        fn derive_always_equals_reference(input in arb_ops()) {
            let (kind, ops) = input;
            let config = PredictorConfig {
                markov: kind,
                ..PredictorConfig::default()
            };
            let mut trainer = FleetTrainer::new(1, &config);
            for op in &ops {
                match op {
                    Op::Push(v, label) => {
                        let vector = MetricVector::from_fn(|a| v[a.index() % v.len()]);
                        trainer.push(0, &vector, *label);
                    }
                    Op::Retire => {
                        if trainer.window_len(0) > 0 {
                            trainer.retire_front(0);
                        }
                    }
                }
            }
            trainer.refresh(&prepare_par::ParConfig::serial());
            let derived = trainer.derive(0);
            let reference = trainer.train_reference(0);
            match (&derived, &reference) {
                (Ok(a), Ok(b)) => {
                    prop_assert_eq!(a, b);
                    prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
                }
                (Err(a), Err(b)) => prop_assert_eq!(a, b),
                _ => prop_assert!(false, "outcome kind diverged: {:?} vs {:?}", derived, reference),
            }
        }
    }

    #[derive(Debug, Clone)]
    enum Op {
        Push(Vec<f64>, Label),
        Retire,
    }

    fn arb_ops() -> impl Strategy<Value = (MarkovKind, Vec<Op>)> {
        let value = proptest::collection::vec(0usize..200, 3);
        let op = (value, any::<bool>(), 0usize..4).prop_map(|(vals, abnormal, retire)| {
            if retire == 0 {
                Op::Retire
            } else {
                let label = Label::from_violation(abnormal);
                Op::Push(vals.into_iter().map(|x| x as f64 * 1.5).collect(), label)
            }
        });
        (any::<bool>(), proptest::collection::vec(op, 1..60)).prop_map(|(simple, ops)| {
            let kind = if simple {
                MarkovKind::Simple
            } else {
                MarkovKind::TwoDependent
            };
            (kind, ops)
        })
    }
}
