//! Prediction results and anomaly alerts.

use prepare_metrics::{AttributeKind, Duration, Label, Timestamp, VmId};
use prepare_tan::AttributeStrength;

/// The outcome of one prediction step of a per-VM model.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// When the prediction was made (time of the latest observed sample).
    pub at: Timestamp,
    /// How far into the future the classified state lies.
    pub look_ahead: Duration,
    /// Predicted label of the system state at `at + look_ahead`.
    pub label: Label,
    /// TAN decision score (Eq. 1 LHS); positive ⇒ abnormal.
    pub score: f64,
    /// Logistic transform of `score` into an abnormality probability.
    pub probability: f64,
    /// Per-attribute impact strengths `L_i` ranked most-blamed first.
    pub strengths: Vec<AttributeStrength>,
    /// The predicted (most likely) discretized state per attribute, in
    /// canonical attribute order.
    pub predicted_states: Vec<usize>,
}

impl Prediction {
    /// True when the prediction is an anomaly alert.
    pub fn is_alert(&self) -> bool {
        self.label.is_abnormal()
    }

    /// The most-blamed attribute, when the model covers the standard 13
    /// per-VM attributes (`None` for monolithic-model indices ≥ 13 or an
    /// empty ranking).
    pub fn top_attribute(&self) -> Option<AttributeKind> {
        self.strengths
            .first()
            .and_then(|s| AttributeKind::from_index(s.attribute))
    }

    /// Blamed attributes in rank order, restricted to real per-VM
    /// attributes.
    pub fn ranked_attributes(&self) -> Vec<AttributeKind> {
        self.strengths
            .iter()
            .filter_map(|s| AttributeKind::from_index(s.attribute))
            .collect()
    }
}

/// An anomaly alert raised for one VM — the unit the cause inference and
/// prevention actuation consume.
#[derive(Debug, Clone, PartialEq)]
pub struct AnomalyAlert {
    /// The VM whose model raised the alert (the pinpointed faulty VM).
    pub vm: VmId,
    /// The underlying prediction.
    pub prediction: Prediction,
}

impl AnomalyAlert {
    /// Convenience accessor for when the anomaly is expected.
    pub fn expected_at(&self) -> Timestamp {
        self.prediction.at + self.prediction.look_ahead
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prediction(label: Label) -> Prediction {
        Prediction {
            at: Timestamp::from_secs(100),
            look_ahead: Duration::from_secs(30),
            label,
            score: if label.is_abnormal() { 1.0 } else { -1.0 },
            probability: 0.5,
            strengths: vec![
                AttributeStrength {
                    attribute: 3,
                    strength: 2.0,
                },
                AttributeStrength {
                    attribute: 0,
                    strength: 0.5,
                },
                AttributeStrength {
                    attribute: 99,
                    strength: 0.1,
                },
            ],
            predicted_states: vec![0; 13],
        }
    }

    #[test]
    fn alert_flag_follows_label() {
        assert!(prediction(Label::Abnormal).is_alert());
        assert!(!prediction(Label::Normal).is_alert());
    }

    #[test]
    fn top_attribute_resolves_kind() {
        let p = prediction(Label::Abnormal);
        assert_eq!(p.top_attribute(), Some(AttributeKind::FreeMem)); // index 3
    }

    #[test]
    fn ranked_attributes_skip_unknown_indices() {
        let p = prediction(Label::Abnormal);
        let ranked = p.ranked_attributes();
        assert_eq!(ranked.len(), 2); // index 99 dropped
        assert_eq!(ranked[0], AttributeKind::FreeMem);
    }

    #[test]
    fn expected_at_adds_look_ahead() {
        let alert = AnomalyAlert {
            vm: VmId(1),
            prediction: prediction(Label::Abnormal),
        };
        assert_eq!(alert.expected_at(), Timestamp::from_secs(130));
    }
}
