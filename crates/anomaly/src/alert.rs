//! Prediction results and anomaly alerts.

use prepare_metrics::{AttributeKind, Duration, Fingerprint64, Label, Timestamp, VmId};
use prepare_tan::AttributeStrength;

/// The outcome of one prediction step of a per-VM model.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// When the prediction was made (time of the latest observed sample).
    pub at: Timestamp,
    /// How far into the future the classified state lies.
    pub look_ahead: Duration,
    /// Predicted label of the system state at `at + look_ahead`.
    pub label: Label,
    /// TAN decision score (Eq. 1 LHS); positive ⇒ abnormal.
    pub score: f64,
    /// Logistic transform of `score` into an abnormality probability.
    pub probability: f64,
    /// Per-attribute impact strengths `L_i` ranked most-blamed first.
    pub strengths: Vec<AttributeStrength>,
    /// The predicted (most likely) discretized state per attribute, in
    /// canonical attribute order.
    pub predicted_states: Vec<usize>,
}

impl Prediction {
    /// True when the prediction is an anomaly alert.
    pub fn is_alert(&self) -> bool {
        self.label.is_abnormal()
    }

    /// The most-blamed attribute, when the model covers the standard 13
    /// per-VM attributes (`None` for monolithic-model indices ≥ 13 or an
    /// empty ranking).
    pub fn top_attribute(&self) -> Option<AttributeKind> {
        self.strengths
            .first()
            .and_then(|s| AttributeKind::from_index(s.attribute))
    }

    /// Blamed attributes in rank order, restricted to real per-VM
    /// attributes.
    pub fn ranked_attributes(&self) -> Vec<AttributeKind> {
        self.strengths
            .iter()
            .filter_map(|s| AttributeKind::from_index(s.attribute))
            .collect()
    }

    /// Streams every field of the prediction into `fp`, giving the
    /// determinism audits an allocation-free identity (floats by bit
    /// pattern, so signed zeros and NaN payloads are distinguished;
    /// variable-length fields length-prefixed so adjacent predictions
    /// cannot alias). Two predictions fingerprint equal iff they are
    /// bit-identical field for field.
    // xtask: hot-path
    pub fn fingerprint_into(&self, fp: &mut Fingerprint64) {
        fp.write_u64(self.at.as_secs());
        fp.write_u64(self.look_ahead.as_secs());
        fp.write_u8(self.label.is_abnormal() as u8);
        fp.write_f64(self.score);
        fp.write_f64(self.probability);
        fp.write_usize(self.strengths.len());
        for s in &self.strengths {
            fp.write_usize(s.attribute);
            fp.write_f64(s.strength);
        }
        fp.write_usize(self.predicted_states.len());
        for &state in &self.predicted_states {
            fp.write_usize(state);
        }
    }

    /// The FNV-1a 64 fingerprint of the whole prediction — the
    /// replacement for `format!("{self:?}")`-based audit strings on the
    /// predict leg.
    // xtask: hot-path
    pub fn fingerprint(&self) -> u64 {
        let mut fp = Fingerprint64::new();
        self.fingerprint_into(&mut fp);
        fp.finish()
    }
}

/// An anomaly alert raised for one VM — the unit the cause inference and
/// prevention actuation consume.
#[derive(Debug, Clone, PartialEq)]
pub struct AnomalyAlert {
    /// The VM whose model raised the alert (the pinpointed faulty VM).
    pub vm: VmId,
    /// The underlying prediction.
    pub prediction: Prediction,
}

impl AnomalyAlert {
    /// Convenience accessor for when the anomaly is expected.
    pub fn expected_at(&self) -> Timestamp {
        self.prediction.at + self.prediction.look_ahead
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prediction(label: Label) -> Prediction {
        Prediction {
            at: Timestamp::from_secs(100),
            look_ahead: Duration::from_secs(30),
            label,
            score: if label.is_abnormal() { 1.0 } else { -1.0 },
            probability: 0.5,
            strengths: vec![
                AttributeStrength {
                    attribute: 3,
                    strength: 2.0,
                },
                AttributeStrength {
                    attribute: 0,
                    strength: 0.5,
                },
                AttributeStrength {
                    attribute: 99,
                    strength: 0.1,
                },
            ],
            predicted_states: vec![0; 13],
        }
    }

    #[test]
    fn alert_flag_follows_label() {
        assert!(prediction(Label::Abnormal).is_alert());
        assert!(!prediction(Label::Normal).is_alert());
    }

    #[test]
    fn top_attribute_resolves_kind() {
        let p = prediction(Label::Abnormal);
        assert_eq!(p.top_attribute(), Some(AttributeKind::FreeMem)); // index 3
    }

    #[test]
    fn ranked_attributes_skip_unknown_indices() {
        let p = prediction(Label::Abnormal);
        let ranked = p.ranked_attributes();
        assert_eq!(ranked.len(), 2); // index 99 dropped
        assert_eq!(ranked[0], AttributeKind::FreeMem);
    }

    #[test]
    fn fingerprint_tracks_field_identity() {
        let base = prediction(Label::Abnormal);
        assert_eq!(
            base.fingerprint(),
            prediction(Label::Abnormal).fingerprint()
        );
        assert_ne!(
            base.fingerprint(),
            prediction(Label::Normal).fingerprint(),
            "label (and the score it flips) must feed the hash"
        );
        let mut shifted = prediction(Label::Abnormal);
        shifted.at = Timestamp::from_secs(101);
        assert_ne!(base.fingerprint(), shifted.fingerprint());
        let mut rescored = prediction(Label::Abnormal);
        rescored.score = -0.0; // signed zero vs zero must differ from 0.0
        let mut zeroed = prediction(Label::Abnormal);
        zeroed.score = 0.0;
        assert_ne!(rescored.fingerprint(), zeroed.fingerprint());
        let mut truncated = prediction(Label::Abnormal);
        truncated.predicted_states.pop();
        assert_ne!(base.fingerprint(), truncated.fingerprint());
    }

    #[test]
    fn expected_at_adds_look_ahead() {
        let alert = AnomalyAlert {
            vm: VmId(1),
            prediction: prediction(Label::Abnormal),
        };
        assert_eq!(alert.expected_at(), Timestamp::from_secs(130));
    }
}
