//! Seeded, deterministic infrastructure-fault injection.
//!
//! The paper's *application* faults (`prepare-apps`) corrupt the workload
//! running inside a VM. This module attacks the other side: the
//! monitoring and actuation plane itself — dropped and delayed metric
//! samples, stuck attribute readings, transient hypervisor rejections,
//! migrations that time out mid-copy, and whole-host monitoring
//! blackouts. Every decision is a pure function of
//! `(plan seed, fault index, entity, tick)` through a splitmix64-style
//! finalizer, so a [`ChaosPlan`] replays byte-for-byte on any worker
//! count and never consults `std::time` or an ambient RNG.
//!
//! The engine sits between the [`crate::Monitor`] and the controller:
//! the experiment loop calls [`ChaosEngine::tick`] once per simulated
//! second (actuation-plane faults) and routes every rendered sample
//! through [`ChaosEngine::deliver`] (monitoring-plane faults). With no
//! plan wired in, neither hook exists on the call path — the layer is
//! zero-cost when off.

use crate::{Cluster, HostId};
use prepare_metrics::{AttributeKind, Duration, MetricSample, StampedSample, Timestamp, VmId};
use std::collections::{BTreeMap, VecDeque};

/// splitmix64 finalizer: a well-mixed 64-bit hash of `x`.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Keyed coin in `[0, 1)`: depends only on the four key components,
/// never on call order — the property that makes chaos decisions
/// identical across `PREPARE_WORKERS` settings.
fn coin(seed: u64, fault: u64, entity: u64, tick: u64) -> f64 {
    let mixed = splitmix64(
        seed ^ splitmix64(fault.wrapping_add(0x517C_C1B7_2722_0A95))
            ^ splitmix64(entity.wrapping_add(0x631B_CDAB_4311))
            ^ splitmix64(tick),
    );
    // Top 53 bits → uniform double in [0, 1).
    (mixed >> 11) as f64 / (1u64 << 53) as f64
}

/// One kind of infrastructure fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChaosKind {
    /// Each sampling round, drop the VM's sample with this probability
    /// (`vm: None` = every VM rolls its own coin).
    DropSamples {
        /// Affected VM, or `None` for all VMs.
        vm: Option<VmId>,
        /// Per-round drop probability in `[0, 1]`.
        probability: f64,
    },
    /// Each sampling round, hold the VM's sample back one round with
    /// this probability; held samples arrive late with their original
    /// collection stamps, and a backlog collapses to the freshest
    /// reading once the lag clears.
    DelaySamples {
        /// Affected VM, or `None` for all VMs.
        vm: Option<VmId>,
        /// Per-round delay probability in `[0, 1]`.
        probability: f64,
    },
    /// One attribute of one VM freezes at its first in-window reading —
    /// a wedged monitoring agent that keeps reporting the same number.
    StuckAttribute {
        /// Affected VM.
        vm: VmId,
        /// The attribute whose reading freezes.
        attribute: AttributeKind,
    },
    /// Each tick, the hypervisor control plane is busy with this
    /// probability: every scale/migrate request that tick is rejected
    /// with a `HypervisorBusy` error.
    HypervisorBusy {
        /// Per-tick busy probability in `[0, 1]`.
        probability: f64,
    },
    /// Migrations *started while this fault is active* are aborted and
    /// rolled back if the pre-copy has not converged within `timeout`.
    MigrationTimeout {
        /// Grace period before the in-flight migration is torn down.
        timeout: Duration,
    },
    /// Total monitoring blackout of one host: no sample from any VM on
    /// it gets through.
    HostBlackout {
        /// The blacked-out host.
        host: HostId,
    },
    /// Each tick, the controller process is killed with this probability
    /// and immediately resurrected from its last durable checkpoint +
    /// journal. The engine only decides *when* the crash happens — the
    /// experiment loop polls [`ChaosEngine::controller_crashed`] and
    /// performs the kill/restore through
    /// `prepare_core::RecoveryManager::{crash_image, recover}`.
    ControllerCrash {
        /// Per-tick crash probability in `[0, 1]`.
        probability: f64,
    },
}

/// One scheduled fault: a kind active over `[from, until)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosFault {
    /// First tick the fault is active.
    pub from: Timestamp,
    /// First tick the fault is no longer active.
    pub until: Timestamp,
    /// What misbehaves.
    pub kind: ChaosKind,
}

impl ChaosFault {
    /// True while the fault is active at `now`.
    pub fn active(&self, now: Timestamp) -> bool {
        self.from <= now && now < self.until
    }
}

/// A complete, replayable chaos schedule: a seed plus fault windows.
///
/// Two engines built from equal plans make identical decisions at every
/// tick, independent of sample-delivery order or worker count.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ChaosPlan {
    /// Seed for every probabilistic decision.
    pub seed: u64,
    /// The scheduled faults.
    pub faults: Vec<ChaosFault>,
}

impl ChaosPlan {
    /// An empty plan (no faults) with the given seed.
    pub fn new(seed: u64) -> Self {
        ChaosPlan {
            seed,
            faults: Vec::new(),
        }
    }

    /// Builder-style: adds one fault window.
    #[must_use]
    pub fn with_fault(mut self, from: Timestamp, until: Timestamp, kind: ChaosKind) -> Self {
        self.faults.push(ChaosFault { from, until, kind });
        self
    }
}

/// Counters of what the engine actually did — the denominator for the
/// robustness bench and a cheap sanity probe for tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChaosStats {
    /// Samples dropped by `DropSamples` coins.
    pub dropped: u64,
    /// Samples held back at least one round by `DelaySamples`.
    pub delayed: u64,
    /// Queued samples discarded when a delay backlog collapsed.
    pub coalesced: u64,
    /// Attribute readings overwritten by a `StuckAttribute` freeze.
    pub stuck_readings: u64,
    /// Samples swallowed by a `HostBlackout`.
    pub blackout_drops: u64,
    /// Ticks the hypervisor control plane spent busy.
    pub busy_ticks: u64,
    /// In-flight migrations torn down by `MigrationTimeout`.
    pub aborted_migrations: u64,
    /// Controller kills decided by `ControllerCrash` coins.
    pub controller_crashes: u64,
}

/// Executes a [`ChaosPlan`] against the monitoring and actuation plane.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosEngine {
    plan: ChaosPlan,
    /// Samples held back by `DelaySamples`, per VM, oldest first.
    queued: BTreeMap<VmId, VecDeque<StampedSample>>,
    /// First in-window reading per `(vm, attribute index)` under a
    /// `StuckAttribute` fault: `(collection time, frozen value)`.
    frozen: BTreeMap<(VmId, usize), (Timestamp, f64)>,
    stats: ChaosStats,
}

impl ChaosEngine {
    /// An engine executing `plan` from a clean slate.
    pub fn new(plan: ChaosPlan) -> Self {
        ChaosEngine {
            plan,
            queued: BTreeMap::new(),
            frozen: BTreeMap::new(),
            stats: ChaosStats::default(),
        }
    }

    /// The plan being executed.
    pub fn plan(&self) -> &ChaosPlan {
        &self.plan
    }

    /// What the engine has done so far.
    pub fn stats(&self) -> ChaosStats {
        self.stats
    }

    /// Per-tick actuation-plane faults: sets/clears the hypervisor-busy
    /// flag and tears down in-flight migrations that have outlived an
    /// active `MigrationTimeout` window. Call once per simulated second,
    /// right after [`Cluster::advance`].
    pub fn tick(&mut self, cluster: &mut Cluster, now: Timestamp) {
        let tick = now.as_secs();
        let mut busy = false;
        for (idx, fault) in self.plan.faults.iter().enumerate() {
            if let ChaosKind::HypervisorBusy { probability } = fault.kind {
                if fault.active(now) && coin(self.plan.seed, idx as u64, 0, tick) < probability {
                    busy = true;
                }
            }
        }
        cluster.set_hypervisor_busy(busy);
        if busy {
            self.stats.busy_ticks += 1;
        }

        // Migration timeouts: a migration started inside an active
        // window is torn down once `timeout` elapses without switch-over.
        let mut doomed: Vec<VmId> = Vec::new();
        for vm in cluster.vm_ids() {
            let Some(m) = cluster.vm(vm).migration else {
                continue;
            };
            let timed_out = self.plan.faults.iter().any(|fault| match fault.kind {
                ChaosKind::MigrationTimeout { timeout } => {
                    fault.active(m.started_at) && now >= m.started_at + timeout
                }
                _ => false,
            });
            if timed_out {
                doomed.push(vm);
            }
        }
        for vm in doomed {
            if cluster.cancel_migration(vm, now).is_ok() {
                self.stats.aborted_migrations += 1;
            }
        }
    }

    /// Per-tick controller-crash poll: true when an active
    /// [`ChaosKind::ControllerCrash`] fault kills the controller this
    /// tick. The decision is a keyed coin — independent of delivery
    /// order and worker count — so a crash schedule replays exactly.
    /// The caller owns the actual kill/resurrect (snapshotting the
    /// crash image and running recovery); the engine just counts it.
    pub fn controller_crashed(&mut self, now: Timestamp) -> bool {
        let tick = now.as_secs();
        let crashed = self.plan.faults.iter().enumerate().any(|(idx, fault)| {
            let ChaosKind::ControllerCrash { probability } = fault.kind else {
                return false;
            };
            fault.active(now) && coin(self.plan.seed, idx as u64, 0, tick) < probability
        });
        if crashed {
            self.stats.controller_crashes += 1;
        }
        crashed
    }

    /// Routes one freshly rendered sample for `vm` (currently on `host`)
    /// through the monitoring-plane faults. Returns what the controller
    /// actually receives this round: `None` when the sample is lost
    /// (drop/blackout) or held back (delay), `Some` otherwise — possibly
    /// an older queued sample, possibly with frozen attribute readings.
    pub fn deliver(
        &mut self,
        vm: VmId,
        host: HostId,
        sample: MetricSample,
        now: Timestamp,
    ) -> Option<StampedSample> {
        let tick = now.as_secs();
        let seed = self.plan.seed;

        // 1. Host-wide blackout swallows everything.
        let blackout = self.plan.faults.iter().any(|f| {
            matches!(f.kind, ChaosKind::HostBlackout { host: h } if h == host) && f.active(now)
        });
        if blackout {
            self.stats.blackout_drops += 1;
            return None;
        }

        // 2. Per-VM drop coin.
        for (idx, fault) in self.plan.faults.iter().enumerate() {
            let ChaosKind::DropSamples {
                vm: target,
                probability,
            } = fault.kind
            else {
                continue;
            };
            let applies = fault.active(now) && target.is_none_or(|t| t == vm);
            if applies && coin(seed, idx as u64, vm.0 as u64, tick) < probability {
                self.stats.dropped += 1;
                return None;
            }
        }

        // 3. Delay: hold the fresh sample back one round; deliver the
        // oldest queued one instead (nothing on the first lagging round).
        let delaying = self.plan.faults.iter().enumerate().any(|(idx, fault)| {
            let ChaosKind::DelaySamples {
                vm: target,
                probability,
            } = fault.kind
            else {
                return false;
            };
            fault.active(now)
                && target.is_none_or(|t| t == vm)
                && coin(seed, idx as u64, vm.0 as u64, tick) < probability
        });
        let queue = self.queued.entry(vm).or_default();
        let delivered = if delaying {
            queue.push_back(StampedSample::fresh(sample));
            self.stats.delayed += 1;
            if queue.len() > 1 {
                queue.pop_front()
            } else {
                None // first lagging round: nothing arrives
            }
        } else {
            // Lag over: the backlog collapses — a real monitoring bus
            // replaces queued readings with the freshest one.
            if !queue.is_empty() {
                self.stats.coalesced += queue.len() as u64;
                queue.clear();
            }
            Some(StampedSample::fresh(sample))
        };
        let mut delivered = delivered?;

        // 4. Stuck attributes: freeze value AND collection stamp at the
        // first in-window reading, so staleness is observable downstream.
        for fault in &self.plan.faults {
            let ChaosKind::StuckAttribute {
                vm: target,
                attribute,
            } = fault.kind
            else {
                continue;
            };
            if target != vm {
                continue;
            }
            let key = (vm, attribute.index());
            if !fault.active(now) {
                self.frozen.remove(&key);
                continue;
            }
            match self.frozen.get(&key) {
                Some(&(frozen_at, value)) => {
                    delivered.sample.values.set(attribute, value);
                    delivered.stamps.set(attribute, frozen_at);
                    self.stats.stuck_readings += 1;
                }
                None => {
                    // First in-window delivery: capture the freeze point.
                    self.frozen.insert(
                        key,
                        (
                            delivered.stamps.get(attribute),
                            delivered.sample.values.get(attribute),
                        ),
                    );
                }
            }
        }
        Some(delivered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HostSpec;
    use prepare_metrics::MetricVector;

    fn sample_at(secs: u64, v: f64) -> MetricSample {
        MetricSample::new(Timestamp::from_secs(secs), MetricVector::from_fn(|_| v))
    }

    fn t(secs: u64) -> Timestamp {
        Timestamp::from_secs(secs)
    }

    #[test]
    fn coins_are_keyed_not_sequenced() {
        // Same key → same coin, regardless of how many other coins were
        // drawn in between: chaos cannot depend on evaluation order.
        let a = coin(42, 1, 7, 100);
        let _ = coin(42, 9, 9, 9);
        let _ = coin(1, 2, 3, 4);
        assert_eq!(a, coin(42, 1, 7, 100));
        assert!((0.0..1.0).contains(&a));
        // Distinct keys decorrelate.
        assert_ne!(coin(42, 1, 7, 100), coin(43, 1, 7, 100));
        assert_ne!(coin(42, 1, 7, 100), coin(42, 2, 7, 100));
        assert_ne!(coin(42, 1, 7, 100), coin(42, 1, 8, 100));
        assert_ne!(coin(42, 1, 7, 100), coin(42, 1, 7, 101));
    }

    #[test]
    fn coin_frequency_tracks_probability() {
        let hits = (0..10_000)
            .filter(|&tick| coin(7, 0, 0, tick) < 0.3)
            .count();
        assert!(
            (2600..3400).contains(&hits),
            "p=0.3 over 10k ticks hit {hits} times"
        );
    }

    #[test]
    fn identical_plans_replay_identically() {
        let plan = ChaosPlan::new(0xC0FFEE)
            .with_fault(
                t(0),
                t(100),
                ChaosKind::DropSamples {
                    vm: None,
                    probability: 0.4,
                },
            )
            .with_fault(
                t(20),
                t(60),
                ChaosKind::DelaySamples {
                    vm: Some(VmId(1)),
                    probability: 0.5,
                },
            );
        let run = |mut e: ChaosEngine| {
            let mut log = Vec::new();
            for round in 0..20 {
                let now = t(round * 5);
                for vm in [VmId(0), VmId(1)] {
                    let out = e.deliver(vm, HostId(0), sample_at(now.as_secs(), 1.0), now);
                    log.push(out.is_some());
                }
            }
            (log, e.stats())
        };
        let (log_a, stats_a) = run(ChaosEngine::new(plan.clone()));
        let (log_b, stats_b) = run(ChaosEngine::new(plan.clone()));
        assert_eq!(log_a, log_b);
        assert_eq!(stats_a, stats_b);
        let (log_c, _) = run(ChaosEngine::new(ChaosPlan {
            seed: 0xBAD,
            ..plan
        }));
        assert_ne!(log_a, log_c, "a different seed must change decisions");
    }

    #[test]
    fn blackout_swallows_a_hosts_samples() {
        let plan =
            ChaosPlan::new(1).with_fault(t(10), t(20), ChaosKind::HostBlackout { host: HostId(0) });
        let mut e = ChaosEngine::new(plan);
        assert!(e
            .deliver(VmId(0), HostId(0), sample_at(5, 1.0), t(5))
            .is_some());
        assert!(e
            .deliver(VmId(0), HostId(0), sample_at(10, 1.0), t(10))
            .is_none());
        assert!(e
            .deliver(VmId(0), HostId(0), sample_at(15, 1.0), t(15))
            .is_none());
        // A VM on another host is unaffected.
        assert!(e
            .deliver(VmId(1), HostId(1), sample_at(15, 1.0), t(15))
            .is_some());
        // The window is half-open: `until` is already clean.
        assert!(e
            .deliver(VmId(0), HostId(0), sample_at(20, 1.0), t(20))
            .is_some());
        assert_eq!(e.stats().blackout_drops, 2);
    }

    #[test]
    fn delay_holds_then_replays_in_order() {
        let plan = ChaosPlan::new(1).with_fault(
            t(10),
            t(21),
            ChaosKind::DelaySamples {
                vm: None,
                probability: 1.0,
            },
        );
        let mut e = ChaosEngine::new(plan);
        let vm = VmId(0);
        // First lagging round: the sample is held, nothing arrives.
        assert!(e
            .deliver(vm, HostId(0), sample_at(10, 10.0), t(10))
            .is_none());
        // Second lagging round: last round's sample arrives, one round late.
        let late = e
            .deliver(vm, HostId(0), sample_at(15, 15.0), t(15))
            .expect("previous round replays");
        assert_eq!(late.sample.values.get(AttributeKind::CpuTotal), 10.0);
        assert_eq!(late.stamps.oldest(), t(10), "stamps keep collection time");
        let late2 = e
            .deliver(vm, HostId(0), sample_at(20, 20.0), t(20))
            .expect("still replaying the backlog");
        assert_eq!(late2.sample.values.get(AttributeKind::CpuTotal), 15.0);
        // Lag clears: the backlog (the t=20 sample) coalesces away and
        // the fresh reading gets through.
        let fresh = e
            .deliver(vm, HostId(0), sample_at(25, 25.0), t(25))
            .expect("fresh after recovery");
        assert_eq!(fresh.sample.values.get(AttributeKind::CpuTotal), 25.0);
        assert_eq!(fresh.stamps.oldest(), t(25));
        let s = e.stats();
        assert_eq!(s.delayed, 3);
        assert_eq!(s.coalesced, 1);
    }

    #[test]
    fn stuck_attribute_freezes_value_and_stamp() {
        let plan = ChaosPlan::new(1).with_fault(
            t(10),
            t(30),
            ChaosKind::StuckAttribute {
                vm: VmId(0),
                attribute: AttributeKind::FreeMem,
            },
        );
        let mut e = ChaosEngine::new(plan);
        let mk = |secs: u64, v: f64| {
            let mut values = MetricVector::from_fn(|_| v);
            values.set(AttributeKind::FreeMem, v * 100.0);
            MetricSample::new(t(secs), values)
        };
        // First in-window reading becomes the freeze point.
        let first = e
            .deliver(VmId(0), HostId(0), mk(10, 1.0), t(10))
            .expect("delivered");
        assert_eq!(first.sample.values.get(AttributeKind::FreeMem), 100.0);
        // Later readings keep reporting the frozen value with the old stamp.
        let wedged = e
            .deliver(VmId(0), HostId(0), mk(20, 2.0), t(20))
            .expect("delivered");
        assert_eq!(wedged.sample.values.get(AttributeKind::FreeMem), 100.0);
        assert_eq!(wedged.stamps.get(AttributeKind::FreeMem), t(10));
        // Other attributes stay live.
        assert_eq!(wedged.sample.values.get(AttributeKind::CpuTotal), 2.0);
        assert_eq!(wedged.stamps.get(AttributeKind::CpuTotal), t(20));
        // Window over: the agent recovers.
        let healed = e
            .deliver(VmId(0), HostId(0), mk(30, 3.0), t(30))
            .expect("delivered");
        assert_eq!(healed.sample.values.get(AttributeKind::FreeMem), 300.0);
        assert_eq!(healed.stamps.get(AttributeKind::FreeMem), t(30));
        assert_eq!(e.stats().stuck_readings, 1);
    }

    #[test]
    fn busy_window_gates_cluster_actuations() {
        let plan = ChaosPlan::new(1).with_fault(
            t(5),
            t(10),
            ChaosKind::HypervisorBusy { probability: 1.0 },
        );
        let mut e = ChaosEngine::new(plan);
        let mut c = Cluster::new();
        let h0 = c.add_host(HostSpec::vcl_default());
        let vm = c.create_vm(h0, 100.0, 512.0).expect("fits");
        e.tick(&mut c, t(4));
        assert!(c.scale_cpu(vm, 120.0, t(4)).is_ok());
        e.tick(&mut c, t(5));
        assert!(c.scale_cpu(vm, 130.0, t(5)).is_err());
        e.tick(&mut c, t(10));
        assert!(c.scale_cpu(vm, 130.0, t(10)).is_ok());
        assert_eq!(e.stats().busy_ticks, 1);
    }

    #[test]
    fn migration_timeout_aborts_and_rolls_back() {
        let plan = ChaosPlan::new(1).with_fault(
            t(0),
            t(100),
            ChaosKind::MigrationTimeout {
                timeout: Duration::from_secs(4),
            },
        );
        let mut e = ChaosEngine::new(plan);
        let mut c = Cluster::new();
        let h0 = c.add_host(HostSpec::vcl_default());
        let h1 = c.add_host(HostSpec::vcl_default());
        let vm = c.create_vm(h0, 100.0, 512.0).expect("fits");
        let d = c.begin_migration(vm, h1, t(10)).expect("starts");
        assert!(
            d.as_secs() > 4,
            "test needs a migration longer than the timeout"
        );
        for s in 10..=13 {
            e.tick(&mut c, t(s));
            assert!(c.vm(vm).is_migrating(), "still copying at t={s}");
        }
        e.tick(&mut c, t(14)); // started_at + timeout
        assert!(!c.vm(vm).is_migrating());
        assert_eq!(c.vm(vm).host, h0, "rolled back to the source");
        assert_eq!(e.stats().aborted_migrations, 1);
        // A migration started after the window completes normally.
        let d2 = c.begin_migration(vm, h1, t(200)).expect("starts clean");
        for s in 200..=(200 + d2.as_secs()) {
            c.advance(t(s));
            e.tick(&mut c, t(s));
        }
        assert_eq!(c.vm(vm).host, h1);
        assert_eq!(e.stats().aborted_migrations, 1);
    }

    #[test]
    fn controller_crash_fires_only_in_window_and_replays() {
        let plan = ChaosPlan::new(0xDEAD).with_fault(
            t(10),
            t(20),
            ChaosKind::ControllerCrash { probability: 1.0 },
        );
        let mut e = ChaosEngine::new(plan.clone());
        assert!(!e.controller_crashed(t(9)));
        for s in 10..20 {
            assert!(e.controller_crashed(t(s)), "in-window kill at t={s}");
        }
        assert!(!e.controller_crashed(t(20)), "window is half-open");
        assert_eq!(e.stats().controller_crashes, 10);

        // A probabilistic schedule is a pure function of (seed, tick):
        // two engines agree tick by tick, and the decision at a tick
        // does not depend on how many polls happened before it.
        let plan = ChaosPlan::new(7).with_fault(
            t(0),
            t(1000),
            ChaosKind::ControllerCrash { probability: 0.3 },
        );
        let mut a = ChaosEngine::new(plan.clone());
        let mut b = ChaosEngine::new(plan);
        let schedule_a: Vec<bool> = (0..1000).map(|s| a.controller_crashed(t(s))).collect();
        let schedule_b: Vec<bool> = (0..1000)
            .rev()
            .map(|s| b.controller_crashed(t(s)))
            .collect();
        let schedule_b: Vec<bool> = schedule_b.into_iter().rev().collect();
        assert_eq!(schedule_a, schedule_b);
        let crashes = schedule_a.iter().filter(|&&c| c).count();
        assert!(
            (200..400).contains(&crashes),
            "p=0.3 over 1k ticks crashed {crashes} times"
        );
        assert_eq!(a.stats().controller_crashes, crashes as u64);
    }

    #[test]
    fn controller_crash_leaves_the_data_plane_untouched() {
        // A crash coin must not perturb drop/delay decisions: the same
        // monitoring schedule plays out with and without the crash fault.
        let base = ChaosPlan::new(0xFEED).with_fault(
            t(0),
            t(100),
            ChaosKind::DropSamples {
                vm: None,
                probability: 0.4,
            },
        );
        let with_crash = base.clone().with_fault(
            t(0),
            t(100),
            ChaosKind::ControllerCrash { probability: 0.5 },
        );
        let run = |mut e: ChaosEngine, poll: bool| {
            let mut log = Vec::new();
            for s in 0..100 {
                if poll {
                    e.controller_crashed(t(s));
                }
                log.push(
                    e.deliver(VmId(0), HostId(0), sample_at(s, 1.0), t(s))
                        .is_some(),
                );
            }
            log
        };
        assert_eq!(
            run(ChaosEngine::new(base), false),
            run(ChaosEngine::new(with_crash), true)
        );
    }

    #[test]
    fn empty_plan_is_transparent() {
        let mut e = ChaosEngine::new(ChaosPlan::new(9));
        let mut c = Cluster::new();
        let h0 = c.add_host(HostSpec::vcl_default());
        let _vm = c.create_vm(h0, 100.0, 512.0).expect("fits");
        for s in 0..50 {
            e.tick(&mut c, t(s));
            assert!(!c.is_hypervisor_busy());
            let out = e
                .deliver(VmId(0), h0, sample_at(s, s as f64), t(s))
                .expect("everything gets through");
            assert_eq!(out, StampedSample::fresh(sample_at(s, s as f64)));
        }
        assert_eq!(e.stats(), ChaosStats::default());
    }
}
