//! The simulated cluster: hosts, VMs, elastic scaling, live migration, and
//! per-tick demand resolution.

use crate::{
    ActionKind, ActionRecord, ActuationCosts, Demand, HostSpec, MigrateError, PlacementError,
    PlacementStore, ScaleError, ServiceQuality,
};
use prepare_metrics::{Duration, Timestamp, VmId};
use std::fmt;

/// Identifier of a physical host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct HostId(pub usize);

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "host{}", self.0)
    }
}

impl prepare_metrics::persist::Persist for HostId {
    fn store(&self, w: &mut prepare_metrics::persist::Writer) {
        w.put_usize(self.0);
    }
    fn load(
        r: &mut prepare_metrics::persist::Reader<'_>,
    ) -> Result<Self, prepare_metrics::persist::PersistError> {
        Ok(HostId(r.get_usize()?))
    }
}

/// An in-flight live migration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MigrationState {
    /// Destination host (capacity already reserved there).
    pub target: HostId,
    /// When the migration started.
    pub started_at: Timestamp,
    /// When the VM switches over to the target.
    pub completes_at: Timestamp,
}

/// Full state of one VM.
#[derive(Debug, Clone, PartialEq)]
pub struct VmState {
    /// The VM's identifier (index into the cluster).
    pub id: VmId,
    /// Current host.
    pub host: HostId,
    /// CPU cap in percent-of-core units.
    pub cpu_alloc: f64,
    /// Memory allocation in MB.
    pub mem_alloc_mb: f64,
    /// In-flight migration, if any.
    pub migration: Option<MigrationState>,
    /// Demand presented this tick (set by [`Cluster::apply_demand`]).
    pub last_demand: Demand,
    /// Quality granted this tick.
    pub last_quality: ServiceQuality,
    /// CPU actually consumed this tick (percent-of-core units).
    pub cpu_used: f64,
    /// Resident memory actually held this tick (MB).
    pub mem_used_mb: f64,
    /// Effective CPU cap this tick after migration brown-out and host
    /// contention squeeze (percent-of-core units).
    pub effective_cpu_cap: f64,
    /// Seconds of CPU work queued behind the cap (bounded by
    /// [`CPU_BACKLOG_CAP_SECS`]); drains when capacity frees up.
    pub cpu_backlog_secs: f64,
    /// Working-set MB swapped out during past thrashing that still needs
    /// to page back in (drains at [`PAGE_IN_RATE_MB_PER_SEC`]).
    pub paging_debt_mb: f64,
}

/// Maximum queued CPU work per VM (queue limits / load shedding bound it
/// in real middleware).
pub const CPU_BACKLOG_CAP_SECS: f64 = 3.0;

/// How fast a previously swapped working set pages back in once memory
/// pressure is relieved.
pub const PAGE_IN_RATE_MB_PER_SEC: f64 = 12.0;

impl VmState {
    /// Utilization pressure in `[0, 1]`: how close the VM runs to its
    /// allocation on its most-stressed resource. Drives the dirty-page
    /// inflation of migration time.
    pub fn stress(&self) -> f64 {
        let cpu = if self.cpu_alloc > 0.0 {
            self.cpu_used / self.cpu_alloc
        } else {
            0.0
        };
        let mem = if self.mem_alloc_mb > 0.0 {
            self.mem_used_mb / self.mem_alloc_mb
        } else {
            0.0
        };
        cpu.max(mem).clamp(0.0, 1.0)
    }

    /// True while a live migration is in flight.
    pub fn is_migrating(&self) -> bool {
        self.migration.is_some()
    }
}

#[derive(Debug, Clone, PartialEq)]
struct Host {
    spec: HostSpec,
    /// CPU consumed by co-tenant workloads outside this simulation's
    /// control (percent-of-core units) — the "noisy neighbor". Guest VM
    /// caps are squeezed proportionally when the background load leaves
    /// less capacity than the sum of allocations.
    background_cpu: f64,
}

/// The simulated virtualized cluster.
///
/// The per-tick protocol is:
///
/// 1. the application model calls [`Cluster::apply_demand`] for every VM;
/// 2. the controller issues scaling / migration actions;
/// 3. [`Cluster::advance`] moves the clock (completing migrations).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Cluster {
    hosts: Vec<Host>,
    vms: Vec<VmState>,
    actions: Vec<ActionRecord>,
    costs: ActuationCosts,
    /// Incremental per-host committed/free capacity, kept in sync by
    /// every mutation below; see [`PlacementStore`] for the bit-exactness
    /// contract against the legacy occupant scan.
    placement: PlacementStore,
    /// When set, the hypervisor control plane transiently rejects
    /// scaling/migration requests with `HypervisorBusy`. Driven per tick
    /// by the chaos engine; always `false` in a benign cluster.
    hypervisor_busy: bool,
}

impl Cluster {
    /// Empty cluster with the paper's Table I cost model.
    pub fn new() -> Self {
        Cluster {
            hosts: Vec::new(),
            vms: Vec::new(),
            actions: Vec::new(),
            costs: ActuationCosts::default(),
            placement: PlacementStore::default(),
            hypervisor_busy: false,
        }
    }

    /// Marks the hypervisor control plane busy (or idle again). While
    /// busy, [`Cluster::scale_cpu`], [`Cluster::scale_mem`] and
    /// [`Cluster::begin_migration`] reject with `HypervisorBusy` — the
    /// transient actuation fault injected by the chaos engine.
    pub fn set_hypervisor_busy(&mut self, busy: bool) {
        self.hypervisor_busy = busy;
    }

    /// True while the control plane transiently rejects actuations.
    pub fn is_hypervisor_busy(&self) -> bool {
        self.hypervisor_busy
    }

    /// Empty cluster with a custom cost model.
    pub fn with_costs(costs: ActuationCosts) -> Self {
        Cluster {
            costs,
            ..Cluster::new()
        }
    }

    /// The cost model in effect.
    pub fn costs(&self) -> &ActuationCosts {
        &self.costs
    }

    /// Adds a physical host.
    pub fn add_host(&mut self, spec: HostSpec) -> HostId {
        self.hosts.push(Host {
            spec,
            background_cpu: 0.0,
        });
        self.placement.add_host(spec);
        HostId(self.hosts.len() - 1)
    }

    /// The incremental placement store: O(1) per-host free capacity,
    /// resident sets, and fit checks.
    pub fn placement(&self) -> &PlacementStore {
        &self.placement
    }

    /// Sets the host's background (co-tenant) CPU load. The simulation's
    /// own VMs keep their allocations, but when `capacity − background`
    /// falls below the sum of allocations their effective caps are
    /// squeezed proportionally — the resource-contention anomaly cause
    /// from the paper's introduction. Resource scaling cannot fix this
    /// (the squeeze renormalizes); migrating off the host can.
    ///
    /// # Panics
    ///
    /// Panics if the host is unknown or the load is negative/non-finite.
    pub fn set_background_load(&mut self, host: HostId, cpu: f64) {
        assert!(host.0 < self.hosts.len(), "unknown host {host}");
        assert!(
            cpu.is_finite() && cpu >= 0.0,
            "invalid background load {cpu}"
        );
        self.hosts[host.0].background_cpu = cpu;
    }

    /// Clears background load on every host (the experiment loop re-applies
    /// active interference each tick).
    pub fn clear_background_loads(&mut self) {
        for h in &mut self.hosts {
            h.background_cpu = 0.0;
        }
    }

    /// The host's current background CPU load.
    pub fn background_load(&self, host: HostId) -> f64 {
        self.hosts[host.0].background_cpu
    }

    /// The fraction (≤ 1) by which CPU caps of VMs on `host` are squeezed
    /// by background load. The allocation sum comes from the placement
    /// store (O(1)), bit-identical to the legacy resident scan.
    fn contention_squeeze(&self, host: HostId) -> f64 {
        let spec = self.hosts[host.0].spec;
        let available = (spec.cpu_capacity - self.hosts[host.0].background_cpu).max(0.0);
        let total_alloc = self.placement.resident_cpu(host);
        if total_alloc <= 0.0 {
            1.0
        } else {
            (available / total_alloc).min(1.0)
        }
    }

    /// Number of hosts.
    pub fn n_hosts(&self) -> usize {
        self.hosts.len()
    }

    /// Number of VMs.
    pub fn n_vms(&self) -> usize {
        self.vms.len()
    }

    /// All VM ids.
    pub fn vm_ids(&self) -> impl Iterator<Item = VmId> + '_ {
        (0..self.vms.len()).map(VmId)
    }

    /// Creates a VM on `host` with the given allocations.
    ///
    /// # Errors
    ///
    /// Returns [`PlacementError`] when the host is unknown or lacks
    /// capacity.
    pub fn create_vm(
        &mut self,
        host: HostId,
        cpu_alloc: f64,
        mem_alloc_mb: f64,
    ) -> Result<VmId, PlacementError> {
        if host.0 >= self.hosts.len() {
            return Err(PlacementError::UnknownHost(host));
        }
        let (free_cpu, free_mem) = self.host_free(host);
        if cpu_alloc > free_cpu + 1e-9 || mem_alloc_mb > free_mem + 1e-9 {
            return Err(PlacementError::InsufficientCapacity {
                host,
                cpu_shortfall: (cpu_alloc - free_cpu).max(0.0),
                mem_shortfall: (mem_alloc_mb - free_mem).max(0.0),
            });
        }
        let id = VmId(self.vms.len());
        self.vms.push(VmState {
            id,
            host,
            cpu_alloc,
            mem_alloc_mb,
            migration: None,
            last_demand: Demand::default(),
            last_quality: ServiceQuality::perfect(),
            cpu_used: 0.0,
            mem_used_mb: 0.0,
            effective_cpu_cap: cpu_alloc,
            cpu_backlog_secs: 0.0,
            paging_debt_mb: 0.0,
        });
        self.placement.attach_resident(id.0, host, &self.vms);
        crate::invariants::debug_validate(self);
        Ok(id)
    }

    /// State of one VM.
    ///
    /// # Panics
    ///
    /// Panics if `vm` is unknown (use [`Cluster::get_vm`] for a fallible
    /// lookup).
    pub fn vm(&self, vm: VmId) -> &VmState {
        self.get_vm(vm).unwrap_or_else(|| panic!("unknown VM {vm}"))
    }

    /// Fallible VM lookup.
    pub fn get_vm(&self, vm: VmId) -> Option<&VmState> {
        self.vms.get(vm.0)
    }

    /// Free capacity `(cpu, mem_mb)` on a host. Migrating VMs count
    /// against *both* source and destination (the destination reserves
    /// room for the incoming copy). Served from the placement store in
    /// O(1); bit-identical to [`Cluster::host_free_scan`].
    ///
    /// # Panics
    ///
    /// Panics if the host is unknown.
    pub fn host_free(&self, host: HostId) -> (f64, f64) {
        assert!(host.0 < self.hosts.len(), "unknown host {host}");
        self.placement.free(host).unwrap_or((0.0, 0.0))
    }

    /// The legacy O(VMs) free-capacity scan, kept as the referee for the
    /// placement store: `debug_validate` bit-compares the two after every
    /// mutation, and the placement tests do so explicitly.
    pub fn host_free_scan(&self, host: HostId) -> (f64, f64) {
        let spec = self.hosts[host.0].spec;
        let mut cpu = spec.cpu_capacity;
        let mut mem = spec.mem_capacity_mb;
        for vm in &self.vms {
            let occupies = vm.host == host || vm.migration.is_some_and(|m| m.target == host);
            if occupies {
                cpu -= vm.cpu_alloc;
                mem -= vm.mem_alloc_mb;
            }
        }
        (cpu, mem)
    }

    fn validate_scale_target(&self, vm: VmId, new_alloc: f64) -> Result<&VmState, ScaleError> {
        if self.hypervisor_busy {
            return Err(ScaleError::HypervisorBusy);
        }
        let state = self.get_vm(vm).ok_or(ScaleError::UnknownVm(vm))?;
        if !new_alloc.is_finite() || new_alloc <= 0.0 {
            return Err(ScaleError::InvalidAllocation(new_alloc));
        }
        if state.is_migrating() {
            return Err(ScaleError::MigrationInProgress(vm));
        }
        Ok(state)
    }

    /// Sets a VM's CPU cap. Effective from the next tick (the ~100 ms
    /// actuation latency of Table I is below the 1 s tick resolution).
    ///
    /// # Errors
    ///
    /// [`ScaleError::InsufficientHeadroom`] when increasing past the local
    /// host's free capacity — PREPARE's cue to fall back to migration.
    pub fn scale_cpu(
        &mut self,
        vm: VmId,
        new_alloc: f64,
        now: Timestamp,
    ) -> Result<(), ScaleError> {
        let state = self.validate_scale_target(vm, new_alloc)?;
        let old = state.cpu_alloc;
        let host = state.host;
        let increase = new_alloc - old;
        if increase > 0.0 {
            let (free_cpu, _) = self.host_free(host);
            if increase > free_cpu + 1e-9 {
                return Err(ScaleError::InsufficientHeadroom {
                    host,
                    available: free_cpu,
                    requested: increase,
                });
            }
        }
        let state = &mut self.vms[vm.0];
        state.cpu_alloc = new_alloc;
        // A downward scale immediately re-caps whatever the VM was using.
        state.cpu_used = state.cpu_used.min(new_alloc);
        self.placement.refresh_host(host, &self.vms);
        self.actions.push(ActionRecord {
            time: now,
            vm,
            kind: ActionKind::ScaleCpu {
                from: old,
                to: new_alloc,
            },
            cost_ms: self.costs.cpu_scaling_ms,
        });
        crate::invariants::debug_validate(self);
        Ok(())
    }

    /// Sets a VM's memory allocation (ballooning). Same semantics as
    /// [`Cluster::scale_cpu`].
    ///
    /// # Errors
    ///
    /// See [`Cluster::scale_cpu`].
    pub fn scale_mem(
        &mut self,
        vm: VmId,
        new_alloc_mb: f64,
        now: Timestamp,
    ) -> Result<(), ScaleError> {
        let state = self.validate_scale_target(vm, new_alloc_mb)?;
        let old = state.mem_alloc_mb;
        let host = state.host;
        let increase = new_alloc_mb - old;
        if increase > 0.0 {
            let (_, free_mem) = self.host_free(host);
            if increase > free_mem + 1e-9 {
                return Err(ScaleError::InsufficientHeadroom {
                    host,
                    available: free_mem,
                    requested: increase,
                });
            }
        }
        let state = &mut self.vms[vm.0];
        state.mem_alloc_mb = new_alloc_mb;
        // Ballooning below the resident set evicts immediately.
        state.mem_used_mb = state.mem_used_mb.min(new_alloc_mb);
        self.placement.refresh_host(host, &self.vms);
        self.actions.push(ActionRecord {
            time: now,
            vm,
            kind: ActionKind::ScaleMem {
                from: old,
                to: new_alloc_mb,
            },
            cost_ms: self.costs.mem_scaling_ms,
        });
        crate::invariants::debug_validate(self);
        Ok(())
    }

    /// Finds a host (other than the VM's current one) with enough free
    /// capacity to receive the VM — "a host with matching resources"
    /// (§II-D). Uses the worst-fit policy: the chosen host keeps the most
    /// headroom, so follow-up scaling of the relocated VM can succeed.
    pub fn find_migration_target(&self, vm: VmId) -> Option<HostId> {
        self.find_migration_target_with(vm, &crate::WorstFit)
    }

    /// [`Cluster::find_migration_target`] with an explicit placement
    /// policy — the store-backed search the prevention planner routes
    /// through.
    pub fn find_migration_target_with(
        &self,
        vm: VmId,
        policy: &dyn crate::PlacementPolicy,
    ) -> Option<HostId> {
        let state = self.get_vm(vm)?;
        self.find_host(
            policy,
            state.cpu_alloc,
            state.mem_alloc_mb,
            Some(state.host),
        )
    }

    /// Starts a live migration. Duration follows the Table I model,
    /// inflated by the VM's current stress (dirty-page rate): a migration
    /// triggered *before* the anomaly manifests is markedly cheaper than a
    /// late, reactive one.
    ///
    /// # Errors
    ///
    /// Returns [`MigrateError`] if either endpoint is invalid, the target
    /// is full, or the VM is already migrating.
    pub fn begin_migration(
        &mut self,
        vm: VmId,
        target: HostId,
        now: Timestamp,
    ) -> Result<Duration, MigrateError> {
        if self.hypervisor_busy {
            return Err(MigrateError::HypervisorBusy);
        }
        let state = self.get_vm(vm).ok_or(MigrateError::UnknownVm(vm))?.clone();
        if target.0 >= self.hosts.len() {
            return Err(MigrateError::UnknownHost(target));
        }
        if state.is_migrating() {
            return Err(MigrateError::AlreadyMigrating(vm));
        }
        if state.host == target {
            return Err(MigrateError::SameHost(target));
        }
        let (free_cpu, free_mem) = self.host_free(target);
        if state.cpu_alloc > free_cpu + 1e-9 || state.mem_alloc_mb > free_mem + 1e-9 {
            return Err(MigrateError::TargetFull(target));
        }
        let duration = self
            .costs
            .migration_duration_under_load(state.mem_alloc_mb, state.stress());
        self.vms[vm.0].migration = Some(MigrationState {
            target,
            started_at: now,
            completes_at: now + duration,
        });
        self.placement.attach_incoming(vm.0, target, &self.vms);
        self.actions.push(ActionRecord {
            time: now,
            vm,
            kind: ActionKind::Migrate {
                from: state.host,
                to: target,
                duration,
            },
            cost_ms: duration.as_secs() as f64 * 1000.0,
        });
        crate::invariants::debug_validate(self);
        Ok(duration)
    }

    /// Abandons an in-flight live migration mid-copy: the VM stays on its
    /// source host, the destination reservation is released, and a
    /// [`ActionKind::MigrationAborted`] record is logged. This models a
    /// migration that timed out before switch-over (pre-copy never
    /// converged) — the chaos engine's migration-timeout fault.
    ///
    /// Returns the destination host the copy was headed to.
    ///
    /// # Errors
    ///
    /// [`MigrateError::UnknownVm`] / [`MigrateError::NotMigrating`] when
    /// there is nothing to cancel.
    pub fn cancel_migration(&mut self, vm: VmId, now: Timestamp) -> Result<HostId, MigrateError> {
        let state = self.vms.get_mut(vm.0).ok_or(MigrateError::UnknownVm(vm))?;
        let m = state
            .migration
            .take()
            .ok_or(MigrateError::NotMigrating(vm))?;
        let from = state.host;
        self.placement.detach_incoming(vm.0, m.target, &self.vms);
        self.actions.push(ActionRecord {
            time: now,
            vm,
            kind: ActionKind::MigrationAborted { from, to: m.target },
            cost_ms: now.since(m.started_at).as_secs() as f64 * 1000.0,
        });
        crate::invariants::debug_validate(self);
        Ok(m.target)
    }

    /// Advances the cluster clock to `now`, completing any migration whose
    /// switch-over time has arrived.
    pub fn advance(&mut self, now: Timestamp) {
        let mut completed: Vec<(usize, HostId, HostId)> = Vec::new();
        for (idx, vm) in self.vms.iter_mut().enumerate() {
            if let Some(m) = vm.migration {
                if now >= m.completes_at {
                    let from = vm.host;
                    vm.host = m.target;
                    vm.migration = None;
                    completed.push((idx, from, m.target));
                }
            }
        }
        for (idx, from, to) in completed {
            self.placement.complete_migration(idx, from, to, &self.vms);
        }
        crate::invariants::debug_validate(self);
    }

    /// Presents one tick of demand for a VM and resolves what the
    /// virtualization layer can deliver:
    ///
    /// - CPU: granted up to the (brown-out-adjusted) cap;
    ///   `cpu_fraction = min(1, cap/demand)`. Work the cap could not
    ///   absorb queues up (bounded) and drains only when spare capacity
    ///   exists — so recovery from saturation is not instantaneous, and a
    ///   migration started *late* (during saturation) grows the backlog
    ///   through its brown-out.
    /// - Memory: working sets beyond the allocation page heavily;
    ///   `mem_fraction` collapses smoothly as the overflow grows. Pages
    ///   swapped out while thrashing must fault back in after the
    ///   pressure is relieved, so memory scaling applied *after* the
    ///   thrash pays a page-in recovery lag.
    /// - Migration: an in-flight live migration imposes a brown-out
    ///   penalty on the VM.
    ///
    /// Call exactly once per VM per 1-second tick — the backlog and
    /// paging-debt integrators assume `dt = 1 s`.
    ///
    /// # Panics
    ///
    /// Panics if `vm` is unknown or `demand` is not valid.
    pub fn apply_demand(&mut self, vm: VmId, demand: Demand, _now: Timestamp) -> ServiceQuality {
        assert!(demand.is_valid(), "invalid demand: {demand:?}");
        assert!(vm.0 < self.vms.len(), "unknown VM {vm}");

        let squeeze = self.contention_squeeze(self.vms[vm.0].host);
        let state = &mut self.vms[vm.0];
        let migration_penalty = if state.is_migrating() { 0.75 } else { 1.0 };
        let effective_cap = state.cpu_alloc * migration_penalty * squeeze;
        state.effective_cpu_cap = effective_cap;

        let cpu_fraction = if demand.cpu <= effective_cap || demand.cpu <= 0.0 {
            1.0
        } else {
            effective_cap / demand.cpu
        };
        // Backlog integrator (dt = 1 s): deficit accumulates in "seconds
        // of work", surplus drains it.
        let net = if effective_cap > 0.0 {
            (demand.cpu - effective_cap) / effective_cap
        } else if demand.cpu > 0.0 {
            1.0
        } else {
            0.0
        };
        state.cpu_backlog_secs = (state.cpu_backlog_secs + net).clamp(0.0, CPU_BACKLOG_CAP_SECS);

        // Paging-debt integrator: overflow swaps pages out; relief pages
        // them back in at a bounded rate.
        let overflow_mb = (demand.mem_mb - state.mem_alloc_mb).max(0.0);
        if overflow_mb > 0.0 {
            state.paging_debt_mb = state.paging_debt_mb.max(overflow_mb);
        } else {
            state.paging_debt_mb = (state.paging_debt_mb - PAGE_IN_RATE_MB_PER_SEC).max(0.0);
        }
        let effective_overflow = overflow_mb.max(state.paging_debt_mb);
        let mem_fraction = if effective_overflow <= 0.0 || state.mem_alloc_mb <= 0.0 {
            1.0
        } else {
            // Calibrated so a working set ~25% past the allocation
            // already inflates service times ~7x — thrashing onset is
            // sharp once the hot set no longer fits.
            1.0 / (1.0 + 25.0 * effective_overflow / state.mem_alloc_mb)
        };

        let quality = ServiceQuality {
            cpu_fraction,
            mem_fraction,
            migration_penalty,
            queue_delay_secs: state.cpu_backlog_secs,
        };
        state.last_demand = demand;
        state.last_quality = quality;
        state.cpu_used = demand.cpu.min(effective_cap);
        state.mem_used_mb = demand.mem_mb.min(state.mem_alloc_mb);
        crate::invariants::debug_validate(self);
        quality
    }

    /// All actuation records so far.
    pub fn actions(&self) -> &[ActionRecord] {
        &self.actions
    }

    /// Drains the actuation log.
    pub fn take_actions(&mut self) -> Vec<ActionRecord> {
        std::mem::take(&mut self.actions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_host_cluster() -> (Cluster, HostId, HostId, VmId) {
        let mut c = Cluster::new();
        let h0 = c.add_host(HostSpec::vcl_default());
        let h1 = c.add_host(HostSpec::vcl_default());
        let vm = c.create_vm(h0, 100.0, 512.0).unwrap();
        (c, h0, h1, vm)
    }

    #[test]
    fn placement_respects_capacity() {
        let mut c = Cluster::new();
        let h = c.add_host(HostSpec::vcl_default());
        assert!(c.create_vm(h, 150.0, 2048.0).is_ok());
        // Remaining: 50 cpu, 2048 mem.
        let err = c.create_vm(h, 100.0, 512.0).unwrap_err();
        assert!(matches!(err, PlacementError::InsufficientCapacity { .. }));
        assert!(c.create_vm(h, 50.0, 1024.0).is_ok());
    }

    #[test]
    fn scaling_within_headroom_succeeds() {
        let (mut c, _, _, vm) = two_host_cluster();
        c.scale_cpu(vm, 150.0, Timestamp::ZERO).unwrap();
        assert_eq!(c.vm(vm).cpu_alloc, 150.0);
        c.scale_mem(vm, 1024.0, Timestamp::ZERO).unwrap();
        assert_eq!(c.vm(vm).mem_alloc_mb, 1024.0);
        assert_eq!(c.actions().len(), 2);
    }

    #[test]
    fn scaling_past_host_capacity_fails() {
        let (mut c, h0, _, vm) = two_host_cluster();
        // Fill the host with a second VM.
        let _vm2 = c.create_vm(h0, 100.0, 3584.0).unwrap();
        let err = c.scale_cpu(vm, 150.0, Timestamp::ZERO).unwrap_err();
        assert!(matches!(err, ScaleError::InsufficientHeadroom { .. }));
    }

    #[test]
    fn scaling_down_always_allowed() {
        let (mut c, _, _, vm) = two_host_cluster();
        c.scale_cpu(vm, 10.0, Timestamp::ZERO).unwrap();
        assert_eq!(c.vm(vm).cpu_alloc, 10.0);
    }

    #[test]
    fn invalid_allocation_rejected() {
        let (mut c, _, _, vm) = two_host_cluster();
        assert!(matches!(
            c.scale_cpu(vm, 0.0, Timestamp::ZERO),
            Err(ScaleError::InvalidAllocation(_))
        ));
        assert!(matches!(
            c.scale_mem(vm, f64::NAN, Timestamp::ZERO),
            Err(ScaleError::InvalidAllocation(_))
        ));
    }

    #[test]
    fn migration_moves_vm_after_duration() {
        let (mut c, h0, h1, vm) = two_host_cluster();
        let d = c.begin_migration(vm, h1, Timestamp::ZERO).unwrap();
        assert!(d.as_secs() >= 8, "migration should take ~Table I time");
        assert!(c.vm(vm).is_migrating());
        assert_eq!(c.vm(vm).host, h0);
        c.advance(Timestamp::from_secs(d.as_secs() - 1));
        assert!(c.vm(vm).is_migrating());
        c.advance(Timestamp::from_secs(d.as_secs()));
        assert!(!c.vm(vm).is_migrating());
        assert_eq!(c.vm(vm).host, h1);
    }

    #[test]
    fn migration_reserves_target_capacity() {
        let (mut c, _, h1, vm) = two_host_cluster();
        c.begin_migration(vm, h1, Timestamp::ZERO).unwrap();
        let (free_cpu, free_mem) = c.host_free(h1);
        assert_eq!(free_cpu, 100.0);
        assert_eq!(free_mem, 4096.0 - 512.0);
    }

    #[test]
    fn stressed_vm_migrates_slower() {
        let (mut c, _, h1, vm) = two_host_cluster();
        // Saturate the VM first.
        c.apply_demand(
            vm,
            Demand {
                cpu: 200.0,
                mem_mb: 512.0,
                ..Demand::default()
            },
            Timestamp::ZERO,
        );
        let stressed = c.begin_migration(vm, h1, Timestamp::ZERO).unwrap();

        let (mut c2, _, h1b, vm2) = two_host_cluster();
        let idle = c2.begin_migration(vm2, h1b, Timestamp::ZERO).unwrap();
        assert!(
            stressed > idle,
            "late migration must take longer ({stressed} vs {idle})"
        );
    }

    #[test]
    fn migration_target_search_skips_full_hosts() {
        let (mut c, _, h1, vm) = two_host_cluster();
        assert_eq!(c.find_migration_target(vm), Some(h1));
        // Fill h1 completely.
        c.create_vm(h1, 200.0, 4096.0).unwrap();
        assert_eq!(c.find_migration_target(vm), None);
    }

    #[test]
    fn double_migration_rejected() {
        let (mut c, _, h1, vm) = two_host_cluster();
        c.begin_migration(vm, h1, Timestamp::ZERO).unwrap();
        assert!(matches!(
            c.begin_migration(vm, h1, Timestamp::ZERO),
            Err(MigrateError::AlreadyMigrating(_))
        ));
    }

    #[test]
    fn scaling_during_migration_rejected() {
        let (mut c, _, h1, vm) = two_host_cluster();
        c.begin_migration(vm, h1, Timestamp::ZERO).unwrap();
        assert!(matches!(
            c.scale_cpu(vm, 150.0, Timestamp::ZERO),
            Err(ScaleError::MigrationInProgress(_))
        ));
    }

    #[test]
    fn demand_resolution_cpu_contention() {
        let (mut c, _, _, vm) = two_host_cluster();
        let q = c.apply_demand(
            vm,
            Demand {
                cpu: 200.0,
                ..Demand::default()
            },
            Timestamp::ZERO,
        );
        assert!((q.cpu_fraction - 0.5).abs() < 1e-9);
        assert_eq!(c.vm(vm).cpu_used, 100.0);
    }

    #[test]
    fn demand_resolution_memory_pressure() {
        let (mut c, _, _, vm) = two_host_cluster();
        let fits = c.apply_demand(
            vm,
            Demand {
                mem_mb: 256.0,
                ..Demand::default()
            },
            Timestamp::ZERO,
        );
        assert_eq!(fits.mem_fraction, 1.0);
        let over = c.apply_demand(
            vm,
            Demand {
                mem_mb: 768.0,
                ..Demand::default()
            },
            Timestamp::ZERO,
        );
        assert!(over.mem_fraction < 0.3, "50% overflow should page hard");
        assert_eq!(c.vm(vm).mem_used_mb, 512.0);
    }

    #[test]
    fn migrating_vm_pays_brownout() {
        let (mut c, _, h1, vm) = two_host_cluster();
        c.begin_migration(vm, h1, Timestamp::ZERO).unwrap();
        let q = c.apply_demand(
            vm,
            Demand {
                cpu: 10.0,
                ..Demand::default()
            },
            Timestamp::ZERO,
        );
        assert!(q.migration_penalty < 1.0);
    }

    #[test]
    fn background_load_squeezes_effective_cap() {
        let (mut c, h0, _, vm) = two_host_cluster();
        // 175 of 200 CPU consumed by a co-tenant: the 100-alloc VM keeps
        // only 25 effective.
        c.set_background_load(h0, 175.0);
        let q = c.apply_demand(
            vm,
            Demand {
                cpu: 60.0,
                ..Demand::default()
            },
            Timestamp::ZERO,
        );
        assert!((c.vm(vm).effective_cpu_cap - 25.0).abs() < 1e-9);
        assert!((q.cpu_fraction - 25.0 / 60.0).abs() < 1e-9);
        // Scaling the allocation does NOT restore capacity — the squeeze
        // renormalizes over the bigger allocation.
        c.scale_cpu(vm, 200.0, Timestamp::ZERO).unwrap();
        c.apply_demand(
            vm,
            Demand {
                cpu: 60.0,
                ..Demand::default()
            },
            Timestamp::ZERO,
        );
        assert!(
            (c.vm(vm).effective_cpu_cap - 25.0).abs() < 1e-9,
            "scaling must not defeat contention"
        );
        // Clearing the load restores the full cap.
        c.clear_background_loads();
        c.apply_demand(
            vm,
            Demand {
                cpu: 60.0,
                ..Demand::default()
            },
            Timestamp::ZERO,
        );
        assert!((c.vm(vm).effective_cpu_cap - 200.0).abs() < 1e-9);
    }

    #[test]
    fn migration_escapes_contention() {
        let (mut c, h0, h1, vm) = two_host_cluster();
        c.set_background_load(h0, 180.0);
        c.apply_demand(
            vm,
            Demand {
                cpu: 50.0,
                ..Demand::default()
            },
            Timestamp::ZERO,
        );
        assert!(c.vm(vm).effective_cpu_cap < 25.0);
        let d = c.begin_migration(vm, h1, Timestamp::ZERO).unwrap();
        c.advance(Timestamp::from_secs(d.as_secs()));
        c.apply_demand(
            vm,
            Demand {
                cpu: 50.0,
                ..Demand::default()
            },
            Timestamp::from_secs(d.as_secs()),
        );
        assert!(
            (c.vm(vm).effective_cpu_cap - 100.0).abs() < 1e-9,
            "clean host restores the cap"
        );
    }

    #[test]
    fn busy_hypervisor_rejects_all_actuations() {
        let (mut c, _, h1, vm) = two_host_cluster();
        c.set_hypervisor_busy(true);
        assert!(c.is_hypervisor_busy());
        assert_eq!(
            c.scale_cpu(vm, 150.0, Timestamp::ZERO),
            Err(ScaleError::HypervisorBusy)
        );
        assert_eq!(
            c.scale_mem(vm, 1024.0, Timestamp::ZERO),
            Err(ScaleError::HypervisorBusy)
        );
        assert_eq!(
            c.begin_migration(vm, h1, Timestamp::ZERO),
            Err(MigrateError::HypervisorBusy)
        );
        assert!(
            c.actions().is_empty(),
            "rejected actuations leave no record"
        );
        // The fault is transient: once the plane clears, the same calls work.
        c.set_hypervisor_busy(false);
        c.scale_cpu(vm, 150.0, Timestamp::ZERO).unwrap();
        c.begin_migration(vm, h1, Timestamp::from_secs(1)).unwrap();
    }

    #[test]
    fn cancel_migration_rolls_back_to_source() {
        let (mut c, h0, h1, vm) = two_host_cluster();
        let d = c.begin_migration(vm, h1, Timestamp::ZERO).unwrap();
        c.cancel_migration(vm, Timestamp::from_secs(3)).unwrap();
        assert!(!c.vm(vm).is_migrating());
        assert_eq!(c.vm(vm).host, h0);
        // The destination reservation is released.
        let (free_cpu, free_mem) = c.host_free(h1);
        assert_eq!(free_cpu, 200.0);
        assert_eq!(free_mem, 4096.0);
        // Completing the clock past the original ETA must not teleport the VM.
        c.advance(Timestamp::from_secs(d.as_secs() + 1));
        assert_eq!(c.vm(vm).host, h0);
        let aborted: Vec<_> = c
            .actions()
            .iter()
            .filter(|a| matches!(a.kind, ActionKind::MigrationAborted { .. }))
            .collect();
        assert_eq!(aborted.len(), 1);
        assert!((aborted[0].cost_ms - 3000.0).abs() < 1e-9);
    }

    #[test]
    fn cancel_without_migration_errors() {
        let (mut c, _, _, vm) = two_host_cluster();
        assert_eq!(
            c.cancel_migration(vm, Timestamp::ZERO),
            Err(MigrateError::NotMigrating(vm))
        );
        assert_eq!(
            c.cancel_migration(VmId(99), Timestamp::ZERO),
            Err(MigrateError::UnknownVm(VmId(99)))
        );
    }

    #[test]
    fn stress_reflects_utilization() {
        let (mut c, _, _, vm) = two_host_cluster();
        c.apply_demand(
            vm,
            Demand {
                cpu: 50.0,
                mem_mb: 100.0,
                ..Demand::default()
            },
            Timestamp::ZERO,
        );
        assert!((c.vm(vm).stress() - 0.5).abs() < 1e-9);
    }
}
