//! Fleet-scale simulation: sparse event-driven ticks over 10k–100k VMs.
//!
//! The per-VM experiment loops elsewhere in this workspace step every VM
//! every simulated second. That is `O(vms)` work per tick even when
//! almost nothing is happening — and at fleet scale almost nothing *is*
//! happening: most VMs run steady workloads whose cluster state reaches a
//! literal fixed point within a few ticks. [`FleetSim`] exploits that
//! with three coordinated pieces:
//!
//! 1. **Quiescence detection.** A VM may sleep only when a full
//!    tick-plus-sample provably acts as the identity on its state: its
//!    [`crate::VmState`] fingerprint has been bit-stable for a whole
//!    sampling interval, its rendered 13-attribute sample is bit-equal to
//!    the previous round's, its Load5 ring is saturated, it is not
//!    migrating, and no chaos fault window is in (or near) effect.
//!    Skipping a provable identity cannot change anything — which is the
//!    whole determinism argument, checked end-to-end by running the dense
//!    referee (`PREPARE_DENSE_TICK=1`) and comparing [`FleetTrace`]s.
//! 2. **A wakeup wheel.** Sleeping VMs are keyed on the simulated tick of
//!    their next workload epoch boundary (`BTreeMap<tick, BTreeSet<slot>>`).
//!    Host-level events — a co-resident scaling its allocation, a
//!    migration completing onto or off the host — wake all residents
//!    immediately, because the contention squeeze they see may change.
//!    Chaos fault windows force the whole fleet awake for their duration
//!    plus a drain grace, so the fault path never interacts with
//!    skipping.
//! 3. **Closed-form backfill.** While asleep a VM's sample is constant,
//!    so the skipped sampling rounds are reproduced exactly by
//!    [`SoaMetricStore::fill_repeat`] — `O(window)` per wake no matter
//!    how long the VM slept.
//!
//! Dense and sparse modes share *all* step code; [`TickMode`] only
//! controls whether the skip/backfill machinery engages. The dense mode
//! is the referee: byte-identical traces are a hard gate for every
//! benchmark number reported from the sparse path.

use crate::{
    ChaosEngine, ChaosPlan, Cluster, Demand, HostId, HostSpec, PlacementError, ScaleError, WorstFit,
};
use prepare_metrics::{
    AttributeKind, Duration, Fingerprint64, MetricVector, SoaMetricStore, Timestamp, VmId,
};
use std::collections::{BTreeMap, BTreeSet};

/// Environment variable selecting the dense referee tick path.
pub const DENSE_ENV: &str = "PREPARE_DENSE_TICK";

/// Length of the Load5 smoothing ring, in sampling rounds.
const LOAD5_WINDOW: usize = 5;

/// Which tick path [`FleetSim::run`] executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TickMode {
    /// Skip provably quiescent VMs; backfill their samples on wake.
    Sparse,
    /// Step every VM every tick — the byte-identity referee.
    Dense,
}

impl TickMode {
    /// Resolves the mode from [`DENSE_ENV`] (`"1"` → dense).
    pub fn from_env() -> TickMode {
        if std::env::var(DENSE_ENV).as_deref() == Ok("1") {
            TickMode::Dense
        } else {
            TickMode::Sparse
        }
    }
}

/// Configuration of a synthetic fleet run.
#[derive(Debug, Clone)]
pub struct FleetSpec {
    /// Number of VMs.
    pub vms: usize,
    /// VMs packed per host at build time (hosts = ⌈vms / vms_per_host⌉).
    pub vms_per_host: usize,
    /// Per-VM CPU allocation (percent-of-core units).
    pub vm_cpu: f64,
    /// Per-VM memory allocation (MB).
    pub vm_mem_mb: f64,
    /// Simulated ticks (seconds) to run.
    pub ticks: u64,
    /// Sampling interval in ticks.
    pub sampling_interval: u64,
    /// Metric window capacity per VM (SoA ring length).
    pub window: usize,
    /// Seed for the deterministic workload schedule.
    pub seed: u64,
    /// Every `hot_every`-th VM changes workload at epoch boundaries; the
    /// rest run steady forever.
    pub hot_every: usize,
    /// Epoch length of hot VMs, in ticks.
    pub epoch_ticks: u64,
    /// Optional infrastructure-fault schedule.
    pub chaos: Option<ChaosPlan>,
}

impl FleetSpec {
    /// A fleet of `vms` with the default VCL packing: 8-CPU / 160 MB VMs,
    /// 24 per dual-core host, 5 s sampling, ~6% hot VMs on 40-tick
    /// epochs.
    pub fn new(vms: usize, ticks: u64, seed: u64) -> Self {
        FleetSpec {
            vms,
            vms_per_host: 24,
            vm_cpu: 8.0,
            vm_mem_mb: 160.0,
            ticks,
            sampling_interval: 5,
            window: 12,
            seed,
            hot_every: 16,
            epoch_ticks: 40,
            chaos: None,
        }
    }
}

/// One observable fleet-level event. The event list is part of the
/// [`FleetTrace`] equality check between the sparse and dense paths.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FleetEvent {
    /// A CPU scaling action succeeded.
    Scaled {
        /// Tick of the action.
        at: u64,
        /// The scaled VM.
        vm: VmId,
        /// New CPU allocation.
        cpu_to: f64,
    },
    /// A scaling/migration attempt found no capacity (or a busy
    /// hypervisor) and gave up this epoch.
    ScaleFailed {
        /// Tick of the attempt.
        at: u64,
        /// The VM whose intervention failed.
        vm: VmId,
    },
    /// A live migration started.
    MigrationStarted {
        /// Tick the copy started.
        at: u64,
        /// The migrating VM.
        vm: VmId,
        /// Source host.
        from: HostId,
        /// Destination host.
        to: HostId,
    },
    /// A live migration switched over.
    MigrationCompleted {
        /// Tick of switch-over.
        at: u64,
        /// The migrated VM.
        vm: VmId,
        /// The new home.
        to: HostId,
    },
    /// An in-flight migration was torn down by a chaos fault.
    MigrationAborted {
        /// Tick of the teardown.
        at: u64,
        /// The VM rolled back to its source host.
        vm: VmId,
    },
}

/// The replay-comparable outcome of a fleet run: every field must be
/// byte-identical between [`TickMode::Sparse`] and [`TickMode::Dense`]
/// at any worker count.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetTrace {
    /// Chronological fleet events.
    pub events: Vec<FleetEvent>,
    /// FNV fingerprint of every VM's final state plus the actuation log.
    pub state_digest: u64,
    /// FNV fingerprint of the SoA metric store (head-normalized).
    pub metrics_digest: u64,
    /// Logical VM-ticks simulated (`vms × ticks`) — identical in both
    /// modes; the sparse path just does less work per logical tick.
    pub vm_ticks: u64,
}

/// Per-VM sleep record: the constant sample to backfill with and the
/// last sampling round actually ingested.
#[derive(Debug, Clone)]
struct SleepState {
    sample: MetricVector,
    last_round: u64,
}

/// Noiseless fleet monitor: renders the 13 attributes straight from
/// cluster state, with Load5 as the mean of a per-slot ring of the last
/// [`LOAD5_WINDOW`] Load1 readings (oldest → newest, head-normalized).
///
/// Unlike [`crate::Monitor`]'s EWMA, the ring mean has a *finite* fixed
/// point: five rounds after a VM's state stops changing, its rendered
/// sample is exactly constant — which is what makes sample-level
/// quiescence provable rather than approximate.
#[derive(Debug, Clone)]
pub struct FleetMonitor {
    rings: Vec<f64>,
    lens: Vec<usize>,
    heads: Vec<usize>,
}

impl FleetMonitor {
    /// A monitor for `slots` VMs with empty Load5 rings.
    pub fn new(slots: usize) -> Self {
        FleetMonitor {
            rings: vec![0.0; slots * LOAD5_WINDOW],
            lens: vec![0; slots],
            heads: vec![0; slots],
        }
    }

    /// Renders the 12 ring-independent attributes plus Load1 from cluster
    /// state. Pure — safe to fan out over `par_map`; Load5 is left at 0
    /// and filled in serially by [`FleetMonitor::observe`].
    pub fn render_base(cluster: &Cluster, vm: VmId) -> (MetricVector, f64) {
        let state = cluster.vm(vm);
        let d = state.last_demand;

        let cpu_pct = if state.cpu_alloc > 0.0 {
            (state.cpu_used / state.cpu_alloc * 100.0).clamp(0.0, 100.0)
        } else {
            0.0
        };
        let free_mem = (state.mem_alloc_mb - state.mem_used_mb).max(0.0);
        let mem_util = if state.mem_alloc_mb > 0.0 {
            (state.mem_used_mb / state.mem_alloc_mb * 100.0).clamp(0.0, 100.0)
        } else {
            0.0
        };
        let load1 = if state.effective_cpu_cap > 0.0 {
            (d.cpu / state.effective_cpu_cap).min(20.0)
        } else if d.cpu > 0.0 {
            20.0
        } else {
            0.0
        };
        let overflow_mb = (d.mem_mb - state.mem_alloc_mb).max(0.0);
        let page_faults = if state.mem_alloc_mb > 0.0 {
            overflow_mb / state.mem_alloc_mb * 2000.0
        } else {
            0.0
        };
        let paging_kbps = overflow_mb.min(200.0) * 20.0;
        let ctx_switches =
            (state.cpu_used * 0.08 + (d.net_in_kbps + d.net_out_kbps) * 0.002).max(0.1);

        let v = MetricVector::from_fn(|a| match a {
            AttributeKind::CpuUser => cpu_pct * 0.72,
            AttributeKind::CpuSystem => cpu_pct * 0.28,
            AttributeKind::CpuTotal => cpu_pct,
            AttributeKind::FreeMem => free_mem,
            AttributeKind::MemUtil => mem_util,
            AttributeKind::NetIn => d.net_in_kbps,
            AttributeKind::NetOut => d.net_out_kbps,
            AttributeKind::DiskRead => d.disk_read_kbps + paging_kbps,
            AttributeKind::DiskWrite => d.disk_write_kbps + paging_kbps * 0.5,
            AttributeKind::Load1 => load1,
            AttributeKind::Load5 => 0.0,
            AttributeKind::PageFaults => page_faults,
            AttributeKind::CtxSwitches => ctx_switches,
        });
        (v, load1)
    }

    /// Pushes one Load1 reading into `slot`'s ring and returns the new
    /// Load5 (mean oldest → newest — head-position independent for an
    /// all-equal ring, deterministic otherwise).
    pub fn observe(&mut self, slot: usize, load1: f64) -> f64 {
        let len = self.lens.get(slot).copied().unwrap_or(0);
        let head = self.heads.get(slot).copied().unwrap_or(0);
        let write_pos = if len < LOAD5_WINDOW {
            (head + len) % LOAD5_WINDOW
        } else {
            head
        };
        if let Some(cell) = self.rings.get_mut(slot * LOAD5_WINDOW + write_pos) {
            *cell = load1;
        }
        let (len, head) = if len < LOAD5_WINDOW {
            if let Some(l) = self.lens.get_mut(slot) {
                *l = len + 1;
            }
            (len + 1, head)
        } else {
            let new_head = (head + 1) % LOAD5_WINDOW;
            if let Some(h) = self.heads.get_mut(slot) {
                *h = new_head;
            }
            (len, new_head)
        };
        let mut sum = 0.0;
        for k in 0..len {
            let idx = slot * LOAD5_WINDOW + (head + k) % LOAD5_WINDOW;
            sum += self.rings.get(idx).copied().unwrap_or(0.0);
        }
        sum / len as f64
    }

    /// True when `slot`'s ring is saturated and every entry is
    /// bit-identical — the Load5 output is then provably constant under
    /// further identical Load1 readings.
    pub fn ring_stable(&self, slot: usize) -> bool {
        if self.lens.get(slot).copied().unwrap_or(0) < LOAD5_WINDOW {
            return false;
        }
        let base = slot * LOAD5_WINDOW;
        let Some(first) = self.rings.get(base) else {
            return false;
        };
        (1..LOAD5_WINDOW)
            .all(|k| self.rings.get(base + k).map(|v| v.to_bits()) == Some(first.to_bits()))
    }
}

/// splitmix64 finalizer for the deterministic workload schedule.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Keyed uniform deviate in `[0, 1)` — order-independent like the chaos
/// engine's coins.
fn unit(seed: u64, slot: u64, epoch: u64, salt: u64) -> f64 {
    let mixed = splitmix64(
        seed ^ splitmix64(slot.wrapping_add(0x9E37_79B9))
            ^ splitmix64(epoch.wrapping_add(0x85EB_CA6B))
            ^ splitmix64(salt),
    );
    (mixed >> 11) as f64 / (1u64 << 53) as f64
}

/// Bitwise equality of two metric vectors (`-0.0 != 0.0`, NaN payloads
/// distinct — the same contract the trace digests use).
fn bits_eq(a: &MetricVector, b: &MetricVector) -> bool {
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Folds one VM's full dynamic state into `fp`.
fn fp_vm_state(state: &crate::VmState, fp: &mut Fingerprint64) {
    fp.write_usize(state.host.0);
    fp.write_f64(state.cpu_alloc);
    fp.write_f64(state.mem_alloc_mb);
    match state.migration {
        Some(m) => {
            fp.write_u8(1);
            fp.write_usize(m.target.0);
            fp.write_u64(m.started_at.as_secs());
            fp.write_u64(m.completes_at.as_secs());
        }
        None => fp.write_u8(0),
    }
    fp.write_f64(state.last_demand.cpu);
    fp.write_f64(state.last_demand.mem_mb);
    fp.write_f64(state.last_demand.net_in_kbps);
    fp.write_f64(state.last_demand.net_out_kbps);
    fp.write_f64(state.last_demand.disk_read_kbps);
    fp.write_f64(state.last_demand.disk_write_kbps);
    fp.write_f64(state.last_quality.cpu_fraction);
    fp.write_f64(state.last_quality.mem_fraction);
    fp.write_f64(state.last_quality.migration_penalty);
    fp.write_f64(state.last_quality.queue_delay_secs);
    fp.write_f64(state.cpu_used);
    fp.write_f64(state.mem_used_mb);
    fp.write_f64(state.effective_cpu_cap);
    fp.write_f64(state.cpu_backlog_secs);
    fp.write_f64(state.paging_debt_mb);
}

/// One splitmix64 mixing round folding `v` into the running hash.
// xtask: hot-path
#[inline]
fn fold(h: u64, v: u64) -> u64 {
    splitmix64(h ^ v)
}

/// Fingerprint of one VM's state, used for the per-tick fixed-point
/// stability counter on the sparse path. This hash never enters a trace
/// — it is a deterministic equality proxy — so it trades the byte-wise
/// FNV stream for one splitmix64 round per field: the sparse path pays
/// it for every stepped VM every tick, and the long serial multiply
/// chain of the byte hash was the dominant per-tick overhead.
// xtask: hot-path
fn vm_state_fp(state: &crate::VmState) -> u64 {
    let mut h = fold(0x243F_6A88_85A3_08D3, state.host.0 as u64);
    h = fold(h, state.cpu_alloc.to_bits());
    h = fold(h, state.mem_alloc_mb.to_bits());
    h = match state.migration {
        Some(m) => {
            let mut m_h = fold(h, 1);
            m_h = fold(m_h, m.target.0 as u64);
            m_h = fold(m_h, m.started_at.as_secs());
            fold(m_h, m.completes_at.as_secs())
        }
        None => fold(h, 0),
    };
    h = fold(h, state.last_demand.cpu.to_bits());
    h = fold(h, state.last_demand.mem_mb.to_bits());
    h = fold(h, state.last_demand.net_in_kbps.to_bits());
    h = fold(h, state.last_demand.net_out_kbps.to_bits());
    h = fold(h, state.last_demand.disk_read_kbps.to_bits());
    h = fold(h, state.last_demand.disk_write_kbps.to_bits());
    h = fold(h, state.last_quality.cpu_fraction.to_bits());
    h = fold(h, state.last_quality.mem_fraction.to_bits());
    h = fold(h, state.last_quality.migration_penalty.to_bits());
    h = fold(h, state.last_quality.queue_delay_secs.to_bits());
    h = fold(h, state.cpu_used.to_bits());
    h = fold(h, state.mem_used_mb.to_bits());
    h = fold(h, state.effective_cpu_cap.to_bits());
    h = fold(h, state.cpu_backlog_secs.to_bits());
    fold(h, state.paging_debt_mb.to_bits())
}

/// An in-flight migration tracked by the fleet loop (so completions and
/// chaos aborts can be turned into events and resident wake-ups without
/// scanning every VM every tick).
#[derive(Debug, Clone, Copy)]
struct InFlight {
    from: HostId,
    to: HostId,
    completes_at: u64,
}

/// The fleet simulator. Build with [`FleetSim::new`], execute with
/// [`FleetSim::run`], then read the work counters for throughput
/// reporting. One `FleetSim` supports one run; build a fresh one per
/// mode when comparing traces.
#[derive(Debug, Clone)]
pub struct FleetSim {
    spec: FleetSpec,
    cluster: Cluster,
    monitor: FleetMonitor,
    store: SoaMetricStore,
    engine: Option<ChaosEngine>,
    /// Slots currently stepped every tick (all slots in dense mode).
    awake: BTreeSet<usize>,
    /// Sleep records of skipped slots.
    asleep: BTreeMap<usize, SleepState>,
    /// Wakeup wheel: simulated tick → slots due to wake (epoch
    /// boundaries of sleeping hot VMs).
    wheel: BTreeMap<u64, BTreeSet<usize>>,
    in_flight: BTreeMap<usize, InFlight>,
    events: Vec<FleetEvent>,
    /// Per-slot state fingerprint at the previous tick (sparse only).
    tick_fp: Vec<Option<u64>>,
    /// Consecutive ticks the state fingerprint has been unchanged.
    stable_ticks: Vec<u64>,
    /// Sleep candidates: slots whose rendered sample was bit-equal at
    /// the last sampling round. Only candidates pay the per-tick state
    /// fingerprint — a slot whose samples still visibly change cannot
    /// sleep regardless of its integrator state, so hashing it every
    /// tick is pure overhead. Deferring the counter start never changes
    /// the trace: it only delays sleep by ticks that are stepped
    /// identically either way.
    candidate: Vec<bool>,
    /// Rendered sample at the previous sampling round.
    last_round_sample: Vec<Option<MetricVector>>,
    /// VM-ticks actually stepped (the work counter).
    stepped: u64,
    mode: TickMode,
}

impl FleetSim {
    /// Builds the cluster — `vms_per_host` VMs packed per host, leaving
    /// deliberate scaling headroom on every host — and all per-slot
    /// bookkeeping.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`PlacementError`] if the spec's per-host
    /// packing oversubscribes the VCL host.
    pub fn new(spec: FleetSpec) -> Result<Self, PlacementError> {
        let mut cluster = Cluster::new();
        let per_host = spec.vms_per_host.max(1);
        let hosts = spec.vms.div_ceil(per_host).max(1);
        for _ in 0..hosts {
            cluster.add_host(HostSpec::vcl_default());
        }
        for slot in 0..spec.vms {
            cluster.create_vm(HostId(slot / per_host), spec.vm_cpu, spec.vm_mem_mb)?;
        }
        let engine = spec.chaos.clone().map(ChaosEngine::new);
        let vms = spec.vms;
        let window = spec.window;
        Ok(FleetSim {
            monitor: FleetMonitor::new(vms),
            store: SoaMetricStore::new(vms, window),
            engine,
            awake: (0..vms).collect(),
            asleep: BTreeMap::new(),
            wheel: BTreeMap::new(),
            in_flight: BTreeMap::new(),
            events: Vec::new(),
            tick_fp: vec![None; vms],
            stable_ticks: vec![0; vms],
            candidate: vec![false; vms],
            last_round_sample: vec![None; vms],
            stepped: 0,
            mode: TickMode::Sparse,
            spec,
            cluster,
        })
    }

    /// The fleet's spec.
    pub fn spec(&self) -> &FleetSpec {
        &self.spec
    }

    /// The cluster (for inspection after a run).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// The SoA metric store (for inspection after a run).
    pub fn store(&self) -> &SoaMetricStore {
        &self.store
    }

    /// VM-ticks actually stepped — the sparse path's work counter. In
    /// dense mode this equals `vms × ticks`.
    pub fn stepped_vm_ticks(&self) -> u64 {
        self.stepped
    }

    /// Fraction of logical VM-ticks that were actually stepped.
    pub fn active_fraction(&self) -> f64 {
        let logical = self.spec.vms as u64 * self.spec.ticks;
        if logical == 0 {
            0.0
        } else {
            self.stepped as f64 / logical as f64
        }
    }

    /// True while the VM is hot (epoch-varying workload).
    fn is_hot(&self, slot: usize) -> bool {
        self.spec.hot_every > 0 && slot.is_multiple_of(self.spec.hot_every)
    }

    /// The workload epoch of `slot` at tick `t` (steady VMs stay in
    /// epoch 0 forever).
    fn epoch_of(&self, slot: usize, t: u64) -> u64 {
        if self.is_hot(slot) {
            t / self.spec.epoch_ticks.max(1)
        } else {
            0
        }
    }

    /// The deterministic demand of `slot` in `epoch` — a pure function
    /// of `(seed, slot, epoch)`, identical across modes and workers.
    fn demand_for(&self, slot: usize, epoch: u64) -> Demand {
        let s = self.spec.seed;
        let slot64 = slot as u64;
        let u_cpu = unit(s, slot64, epoch, 1);
        let u_mem = unit(s, slot64, epoch, 2);
        let u_net = unit(s, slot64, epoch, 3);
        let cpu = if self.is_hot(slot) && unit(s, slot64, epoch, 4) > 0.8 {
            // Overload surge: demand past the allocation, the trigger for
            // the epoch-boundary interventions below.
            self.spec.vm_cpu * (1.1 + 0.6 * u_cpu)
        } else {
            self.spec.vm_cpu * (0.3 + 0.45 * u_cpu)
        };
        Demand {
            cpu,
            mem_mb: self.spec.vm_mem_mb * (0.35 + 0.4 * u_mem),
            net_in_kbps: 40.0 + 80.0 * u_net,
            net_out_kbps: (40.0 + 80.0 * u_net) * 0.7,
            disk_read_kbps: 5.0,
            disk_write_kbps: 2.0,
        }
    }

    /// True while any chaos fault window is active at `t` or within the
    /// drain grace after it (two sampling intervals, enough for delay
    /// queues to coalesce and stuck attributes to heal). While relevant,
    /// the sparse path keeps the whole fleet awake so fault delivery is
    /// tick-for-tick identical to the dense referee.
    fn chaos_relevant(&self, t: u64) -> bool {
        let Some(engine) = &self.engine else {
            return false;
        };
        let grace = 2 * self.spec.sampling_interval;
        engine
            .plan()
            .faults
            .iter()
            .any(|f| f.from.as_secs() <= t && t < f.until.as_secs() + grace)
    }

    /// Wakes `slot` at tick `t`: backfills the sampling rounds it slept
    /// through with its constant sample and returns it to the active
    /// set. No-op for already-awake slots.
    fn wake(&mut self, slot: usize, t: u64) {
        let Some(sleep) = self.asleep.remove(&slot) else {
            return;
        };
        self.awake.insert(slot);
        let interval = self.spec.sampling_interval;
        if t > sleep.last_round {
            // Rounds strictly before the wake tick; if `t` itself is a
            // round the now-awake VM samples it live.
            let count = (t - 1 - sleep.last_round) / interval;
            if count > 0 {
                self.store.fill_repeat(
                    slot,
                    Timestamp::from_secs(sleep.last_round + interval),
                    Duration::from_secs(interval),
                    count as usize,
                    &sleep.sample,
                );
            }
        }
    }

    /// Wakes every resident of `host` (their contention squeeze may have
    /// changed).
    fn wake_residents(&mut self, host: HostId, t: u64) {
        let residents: Vec<usize> = self
            .cluster
            .placement()
            .occupant_sets(host)
            .0
            .iter()
            .copied()
            .collect();
        for slot in residents {
            self.wake(slot, t);
        }
    }

    /// Epoch-boundary intervention for a hot VM: scale up into an
    /// overload (falling back to a worst-fit migration when the host has
    /// no headroom), scale back down when the surge passes.
    fn run_epoch_op(&mut self, slot: usize, t: u64) {
        let vm = VmId(slot);
        let now = Timestamp::from_secs(t);
        let state = self.cluster.vm(vm);
        if state.is_migrating() {
            return;
        }
        let alloc = state.cpu_alloc;
        let host = state.host;
        let demand = self.demand_for(slot, self.epoch_of(slot, t));
        let base = self.spec.vm_cpu;
        if demand.cpu > alloc {
            let target_alloc = (demand.cpu * 1.25).min(base * 2.0);
            if target_alloc <= alloc + 1e-9 {
                return;
            }
            match self.cluster.scale_cpu(vm, target_alloc, now) {
                Ok(()) => {
                    self.events.push(FleetEvent::Scaled {
                        at: t,
                        vm,
                        cpu_to: target_alloc,
                    });
                    self.wake_residents(host, t);
                }
                Err(ScaleError::InsufficientHeadroom { .. }) => {
                    // PREPARE's fallback: no local headroom → relocate.
                    match self.cluster.find_migration_target_with(vm, &WorstFit) {
                        Some(target) => match self.cluster.begin_migration(vm, target, now) {
                            Ok(d) => {
                                self.events.push(FleetEvent::MigrationStarted {
                                    at: t,
                                    vm,
                                    from: host,
                                    to: target,
                                });
                                self.in_flight.insert(
                                    slot,
                                    InFlight {
                                        from: host,
                                        to: target,
                                        completes_at: t + d.as_secs(),
                                    },
                                );
                            }
                            Err(_) => self.events.push(FleetEvent::ScaleFailed { at: t, vm }),
                        },
                        None => self.events.push(FleetEvent::ScaleFailed { at: t, vm }),
                    }
                }
                Err(_) => self.events.push(FleetEvent::ScaleFailed { at: t, vm }),
            }
        } else if demand.cpu < 0.5 * alloc && alloc > base + 1e-9 {
            match self.cluster.scale_cpu(vm, base, now) {
                Ok(()) => {
                    self.events.push(FleetEvent::Scaled {
                        at: t,
                        vm,
                        cpu_to: base,
                    });
                    self.wake_residents(host, t);
                }
                Err(_) => self.events.push(FleetEvent::ScaleFailed { at: t, vm }),
            }
        }
    }

    /// Runs the simulation in `mode` and returns the replay-comparable
    /// trace. `par` controls the sample-render fan-out (fixed-partition
    /// `par_map`, so the trace is identical at any worker count).
    pub fn run(&mut self, mode: TickMode, par: &prepare_par::ParConfig) -> FleetTrace {
        self.mode = mode;
        let interval = self.spec.sampling_interval.max(1);
        let epoch_ticks = self.spec.epoch_ticks.max(1);
        for t in 0..self.spec.ticks {
            let now = Timestamp::from_secs(t);

            // 1. Wheel wake-ups scheduled for this tick.
            if let Some(due) = self.wheel.remove(&t) {
                for slot in due {
                    self.wake(slot, t);
                }
            }

            // 2. Chaos actuation faults (both modes, every tick — the
            // engine's decisions are keyed, not sequenced).
            if let Some(mut engine) = self.engine.take() {
                engine.tick(&mut self.cluster, now);
                self.engine = Some(engine);
                // Reconcile chaos-aborted migrations.
                let aborted: Vec<usize> = self
                    .in_flight
                    .iter()
                    .filter(|(slot, f)| {
                        t < f.completes_at && !self.cluster.vm(VmId(**slot)).is_migrating()
                    })
                    .map(|(slot, _)| *slot)
                    .collect();
                for slot in aborted {
                    self.in_flight.remove(&slot);
                    self.events.push(FleetEvent::MigrationAborted {
                        at: t,
                        vm: VmId(slot),
                    });
                    self.wake(slot, t);
                }
            }

            // 3. Migration switch-overs due now. `Cluster::advance` is
            // only invoked when a tracked migration is due — calling it
            // with nothing in flight is a no-op, so skipping it is
            // state-identical and saves the O(vms) scan.
            let due: Vec<usize> = self
                .in_flight
                .iter()
                .filter(|(_, f)| f.completes_at <= t)
                .map(|(slot, _)| *slot)
                .collect();
            if !due.is_empty() {
                self.cluster.advance(now);
                for slot in due {
                    let Some(f) = self.in_flight.remove(&slot) else {
                        continue;
                    };
                    self.events.push(FleetEvent::MigrationCompleted {
                        at: t,
                        vm: VmId(slot),
                        to: f.to,
                    });
                    // Allocation moved between hosts: both sides' squeeze
                    // may change.
                    self.wake_residents(f.from, t);
                    self.wake_residents(f.to, t);
                }
            }

            // 4. Epoch boundaries: wake the hot VM (its demand changes)
            // and run its intervention, ascending slot order.
            if t > 0 && t % epoch_ticks == 0 && self.spec.hot_every > 0 {
                for slot in (0..self.spec.vms).step_by(self.spec.hot_every) {
                    self.wake(slot, t);
                    self.run_epoch_op(slot, t);
                }
            }

            // 5. Chaos windows force the whole fleet awake.
            let chaos_now = self.chaos_relevant(t);
            if chaos_now && !self.asleep.is_empty() {
                let sleeping: Vec<usize> = self.asleep.keys().copied().collect();
                for slot in sleeping {
                    self.wake(slot, t);
                }
            }

            // 6. Step every awake VM (ascending slot order). The
            // fixed-point bookkeeping is sparse-only pure observation —
            // the dense referee skips it, which cannot affect the trace
            // — and runs only for sleep candidates (sample-stable
            // slots), since a visibly changing VM cannot sleep anyway.
            let stepping: Vec<usize> = self.awake.iter().copied().collect();
            self.stepped += stepping.len() as u64;
            for &slot in &stepping {
                let d = self.demand_for(slot, self.epoch_of(slot, t));
                self.cluster.apply_demand(VmId(slot), d, now);
                if mode == TickMode::Sparse && self.candidate.get(slot).copied().unwrap_or(false) {
                    let fp = vm_state_fp(self.cluster.vm(VmId(slot)));
                    let prev = self.tick_fp.get(slot).copied().flatten();
                    if let Some(count) = self.stable_ticks.get_mut(slot) {
                        *count = if prev == Some(fp) { *count + 1 } else { 0 };
                    }
                    if let Some(cell) = self.tick_fp.get_mut(slot) {
                        *cell = Some(fp);
                    }
                }
            }

            // 7. Sampling round: render (parallel, pure), then serially
            // smooth Load5, route through chaos delivery, ingest, and
            // evaluate quiescence.
            if t % interval == 0 {
                let cluster = &self.cluster;
                let rendered = prepare_par::par_map(par, stepping.clone(), |slot| {
                    FleetMonitor::render_base(cluster, VmId(slot))
                });
                for (&slot, (mut v, load1)) in stepping.iter().zip(rendered) {
                    let load5 = self.monitor.observe(slot, load1);
                    v.set(AttributeKind::Load5, load5);
                    let vm = VmId(slot);
                    let host = self.cluster.vm(vm).host;
                    let delivered = match self.engine.as_mut() {
                        Some(engine) => engine
                            .deliver(vm, host, prepare_metrics::MetricSample::new(now, v), now)
                            .map(|st| st.sample.values),
                        None => Some(v),
                    };
                    if let Some(values) = delivered {
                        self.store.push(slot, now, &values);
                    }
                    // Quiescence: sleep only when a further tick+sample
                    // is provably the identity.
                    if mode == TickMode::Sparse {
                        let sample_stable = self
                            .last_round_sample
                            .get(slot)
                            .and_then(|s| s.as_ref())
                            .is_some_and(|prev| bits_eq(prev, &v));
                        if sample_stable
                            && !chaos_now
                            && self.stable_ticks.get(slot).copied().unwrap_or(0) >= interval
                            && !self.cluster.vm(vm).is_migrating()
                            && self.monitor.ring_stable(slot)
                        {
                            self.awake.remove(&slot);
                            self.asleep.insert(
                                slot,
                                SleepState {
                                    sample: v,
                                    last_round: t,
                                },
                            );
                            if self.is_hot(slot) {
                                let next_boundary = (t / epoch_ticks + 1) * epoch_ticks;
                                self.wheel.entry(next_boundary).or_default().insert(slot);
                            }
                        }
                        // Candidate maintenance: a stable sample starts
                        // (or continues) the fixed-point count; an
                        // unstable one resets it.
                        let was_candidate = self.candidate.get(slot).copied().unwrap_or(false);
                        if !sample_stable || !was_candidate {
                            if let Some(count) = self.stable_ticks.get_mut(slot) {
                                *count = 0;
                            }
                            if let Some(cell) = self.tick_fp.get_mut(slot) {
                                *cell = None;
                            }
                        }
                        if let Some(c) = self.candidate.get_mut(slot) {
                            *c = sample_stable;
                        }
                    }
                    if let Some(cell) = self.last_round_sample.get_mut(slot) {
                        *cell = Some(v);
                    }
                }
            }
        }

        // Flush: backfill still-sleeping slots through the final round.
        let sleeping: Vec<usize> = self.asleep.keys().copied().collect();
        for slot in sleeping {
            self.wake(slot, self.spec.ticks);
        }

        FleetTrace {
            events: self.events.clone(),
            state_digest: self.state_digest(),
            metrics_digest: self.metrics_digest(),
            vm_ticks: self.spec.vms as u64 * self.spec.ticks,
        }
    }

    /// FNV fold of every VM's final state, the actuation log, and the
    /// hypervisor-busy flag.
    fn state_digest(&self) -> u64 {
        let mut fp = Fingerprint64::new();
        for id in self.cluster.vm_ids() {
            fp_vm_state(self.cluster.vm(id), &mut fp);
        }
        fp.write_usize(self.cluster.actions().len());
        for record in self.cluster.actions() {
            // One-time end-of-run digest; the Debug rendering is exact
            // for every payload field.
            fp.write_bytes(format!("{record:?}").as_bytes());
        }
        fp.write_u8(u8::from(self.cluster.is_hypervisor_busy()));
        fp.finish()
    }

    /// Head-normalized FNV fold of the SoA metric store.
    fn metrics_digest(&self) -> u64 {
        let mut fp = Fingerprint64::new();
        self.store.fingerprint_into(&mut fp);
        fp.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ChaosKind;
    use prepare_par::ParConfig;

    fn run_mode(spec: &FleetSpec, mode: TickMode, workers: usize) -> (FleetTrace, f64) {
        let mut sim = FleetSim::new(spec.clone()).expect("fleet fits");
        let trace = sim.run(mode, &ParConfig::with_workers(workers));
        (trace, sim.active_fraction())
    }

    #[test]
    fn sparse_and_dense_traces_are_identical() {
        let spec = FleetSpec::new(96, 200, 0xFEED);
        let (sparse, active) = run_mode(&spec, TickMode::Sparse, 1);
        let (dense, dense_active) = run_mode(&spec, TickMode::Dense, 1);
        assert_eq!(sparse, dense);
        assert_eq!(dense_active, 1.0, "dense steps everything");
        assert!(
            active < 0.6,
            "a mostly-steady fleet must mostly sleep (active {active})"
        );
        assert!(
            !sparse.events.is_empty(),
            "epoch surges should trigger interventions"
        );
    }

    #[test]
    fn sparse_path_skips_most_of_a_steady_fleet() {
        // No hot VMs at all: after warm-up the whole fleet sleeps.
        let mut spec = FleetSpec::new(48, 300, 7);
        spec.hot_every = 0;
        let (sparse, active) = run_mode(&spec, TickMode::Sparse, 1);
        let (dense, _) = run_mode(&spec, TickMode::Dense, 1);
        assert_eq!(sparse, dense);
        assert!(
            active < 0.2,
            "steady fleet should quiesce after warm-up (active {active})"
        );
    }

    #[test]
    fn traces_are_worker_count_invariant() {
        let spec = FleetSpec::new(96, 150, 42);
        let (w1, _) = run_mode(&spec, TickMode::Sparse, 1);
        let (w2, _) = run_mode(&spec, TickMode::Sparse, 2);
        let (w7, _) = run_mode(&spec, TickMode::Sparse, 7);
        assert_eq!(w1, w2);
        assert_eq!(w1, w7);
    }

    #[test]
    fn chaos_windows_preserve_byte_identity() {
        let mut spec = FleetSpec::new(72, 200, 0xC0FFEE);
        spec.chaos = Some(
            ChaosPlan::new(0xC0FFEE)
                .with_fault(
                    Timestamp::from_secs(50),
                    Timestamp::from_secs(90),
                    ChaosKind::DropSamples {
                        vm: None,
                        probability: 0.3,
                    },
                )
                .with_fault(
                    Timestamp::from_secs(40),
                    Timestamp::from_secs(120),
                    ChaosKind::HypervisorBusy { probability: 0.5 },
                )
                .with_fault(
                    Timestamp::from_secs(60),
                    Timestamp::from_secs(100),
                    ChaosKind::MigrationTimeout {
                        timeout: Duration::from_secs(2),
                    },
                ),
        );
        let (sparse, _) = run_mode(&spec, TickMode::Sparse, 1);
        let (dense, _) = run_mode(&spec, TickMode::Dense, 1);
        assert_eq!(sparse, dense);
    }

    #[test]
    fn metrics_store_holds_one_sample_per_round() {
        let spec = FleetSpec::new(48, 200, 3);
        let mut sim = FleetSim::new(spec).expect("fits");
        sim.run(TickMode::Sparse, &ParConfig::serial());
        let rounds = 200 / 5; // ticks 0,5,...,195
        let window = sim.spec().window;
        for slot in 0..48 {
            assert_eq!(sim.store().len(slot), rounds.min(window));
            let newest = sim.store().latest(slot).expect("sampled");
            assert_eq!(newest.time.as_secs(), 195);
        }
    }

    #[test]
    fn mode_from_env_reads_dense_flag() {
        // Not set in the test environment → sparse default.
        assert_eq!(TickMode::from_env(), TickMode::Sparse);
    }

    #[test]
    fn load5_ring_mean_has_finite_fixed_point() {
        let mut mon = FleetMonitor::new(1);
        for _ in 0..4 {
            mon.observe(0, 2.0);
            assert!(!mon.ring_stable(0), "ring not yet saturated");
        }
        let l5 = mon.observe(0, 2.0);
        assert_eq!(l5, 2.0);
        assert!(mon.ring_stable(0));
        // A different reading breaks stability immediately.
        mon.observe(0, 3.0);
        assert!(!mon.ring_stable(0));
    }

    #[test]
    fn fleet_spec_packing_fits_vcl_hosts() {
        let spec = FleetSpec::new(240, 10, 1);
        let sim = FleetSim::new(spec).expect("24 VMs per host fit");
        assert_eq!(sim.cluster().n_hosts(), 10);
        assert_eq!(sim.cluster().n_vms(), 240);
        // Block packing: 24 per host, one VM's worth of CPU headroom each.
        for h in 0..10 {
            assert_eq!(sim.cluster().placement().resident_count(HostId(h)), 24);
            let (free_cpu, _) = sim.cluster().host_free(HostId(h));
            assert_eq!(free_cpu, 200.0 - 24.0 * 8.0);
        }
    }
}
