//! Out-of-band VM monitoring (paper §II-A).
//!
//! "PREPARE uses libxenstat to monitor guest VM's resource usage from
//! domain 0. [...] if we want to monitor the application's memory usage
//! metric, we need to install a simple memory monitoring daemon within the
//! guest VM." The [`Monitor`] reads VM state maintained by the
//! [`crate::Cluster`] and renders the 13-attribute metric vector,
//! including a small multiplicative measurement noise (real counters
//! jitter; PREPARE's false-alarm filter exists for a reason).

use crate::Cluster;
use prepare_metrics::{AttributeKind, MetricSample, MetricVector, Timestamp, VmId};
use rand::Rng;
use std::collections::BTreeMap;

/// Renders per-VM metric samples from cluster state.
///
/// Keeps per-VM exponential moving averages for the 5-minute load metric,
/// so one `Monitor` instance should live as long as the monitoring stream
/// it produces.
#[derive(Debug, Clone)]
pub struct Monitor {
    /// Relative (1σ) multiplicative measurement noise; 0 disables noise.
    noise: f64,
    /// EWMA state for Load5.
    load5: BTreeMap<VmId, f64>,
}

impl Monitor {
    /// Creates a monitor with the given relative measurement noise
    /// (e.g. `0.02` = 2% 1σ jitter).
    ///
    /// # Panics
    ///
    /// Panics if `noise` is negative or not finite.
    pub fn new(noise: f64) -> Self {
        assert!(noise.is_finite() && noise >= 0.0, "noise must be >= 0");
        Monitor {
            noise,
            load5: BTreeMap::new(),
        }
    }

    /// Monitor with the default 2% measurement jitter.
    pub fn with_default_noise() -> Self {
        Monitor::new(0.02)
    }

    /// Samples one VM's 13 attributes at time `now`.
    ///
    /// # Panics
    ///
    /// Panics if the VM is unknown to the cluster.
    pub fn sample(
        &mut self,
        cluster: &Cluster,
        vm: VmId,
        now: Timestamp,
        rng: &mut impl Rng,
    ) -> MetricSample {
        let state = cluster.vm(vm);
        let d = state.last_demand;

        let cpu_pct = if state.cpu_alloc > 0.0 {
            (state.cpu_used / state.cpu_alloc * 100.0).clamp(0.0, 100.0)
        } else {
            0.0
        };
        let free_mem = (state.mem_alloc_mb - state.mem_used_mb).max(0.0);
        let mem_util = if state.mem_alloc_mb > 0.0 {
            (state.mem_used_mb / state.mem_alloc_mb * 100.0).clamp(0.0, 100.0)
        } else {
            0.0
        };

        // Run-queue style load: demand over the *effective* cap (after
        // migration brown-out and host contention squeeze) — processes
        // queue against the cycles actually delivered, which is also how
        // a real load average exposes steal time. Saturated or starved
        // VMs show load above 1.
        let load1 = if state.effective_cpu_cap > 0.0 {
            (d.cpu / state.effective_cpu_cap).min(20.0)
        } else if d.cpu > 0.0 {
            20.0
        } else {
            0.0
        };
        let load5_entry = self.load5.entry(vm).or_insert(load1);
        *load5_entry = 0.85 * *load5_entry + 0.15 * load1;
        let load5 = *load5_entry;

        // Memory overflow pages through disk and shows up as major faults.
        let overflow_mb = (d.mem_mb - state.mem_alloc_mb).max(0.0);
        let page_faults = if state.mem_alloc_mb > 0.0 {
            overflow_mb / state.mem_alloc_mb * 2000.0
        } else {
            0.0
        };
        let paging_kbps = overflow_mb.min(200.0) * 20.0;

        let ctx_switches =
            (state.cpu_used * 0.08 + (d.net_in_kbps + d.net_out_kbps) * 0.002).max(0.1);

        let mut v = MetricVector::from_fn(|a| match a {
            AttributeKind::CpuUser => cpu_pct * 0.72,
            AttributeKind::CpuSystem => cpu_pct * 0.28,
            AttributeKind::CpuTotal => cpu_pct,
            AttributeKind::FreeMem => free_mem,
            AttributeKind::MemUtil => mem_util,
            AttributeKind::NetIn => d.net_in_kbps,
            AttributeKind::NetOut => d.net_out_kbps,
            AttributeKind::DiskRead => d.disk_read_kbps + paging_kbps,
            AttributeKind::DiskWrite => d.disk_write_kbps + paging_kbps * 0.5,
            AttributeKind::Load1 => load1,
            AttributeKind::Load5 => load5,
            AttributeKind::PageFaults => page_faults,
            AttributeKind::CtxSwitches => ctx_switches,
        });

        if self.noise > 0.0 {
            for a in AttributeKind::ALL {
                let jitter = 1.0 + self.noise * gaussian(rng);
                v.set(a, (v.get(a) * jitter).max(0.0));
            }
        }
        MetricSample::new(now, v)
    }
}

/// Standard normal deviate via Box–Muller (no external distribution crate
/// required).
fn gaussian(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen::<f64>();
    prepare_metrics::debug_assert_finite!(
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Demand, HostSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Cluster, VmId) {
        let mut c = Cluster::new();
        let h = c.add_host(HostSpec::vcl_default());
        let vm = c.create_vm(h, 100.0, 512.0).unwrap();
        (c, vm)
    }

    #[test]
    fn noiseless_sample_reflects_state() {
        let (mut c, vm) = setup();
        c.apply_demand(
            vm,
            Demand {
                cpu: 50.0,
                mem_mb: 256.0,
                net_in_kbps: 100.0,
                net_out_kbps: 80.0,
                ..Demand::default()
            },
            Timestamp::ZERO,
        );
        let mut mon = Monitor::new(0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let s = mon.sample(&c, vm, Timestamp::ZERO, &mut rng);
        assert!((s.values.get(AttributeKind::CpuTotal) - 50.0).abs() < 1e-9);
        assert!((s.values.get(AttributeKind::FreeMem) - 256.0).abs() < 1e-9);
        assert!((s.values.get(AttributeKind::MemUtil) - 50.0).abs() < 1e-9);
        assert!((s.values.get(AttributeKind::NetIn) - 100.0).abs() < 1e-9);
        assert_eq!(s.values.get(AttributeKind::PageFaults), 0.0);
        assert!(s.values.is_finite());
    }

    #[test]
    fn memory_overflow_shows_in_page_faults_and_disk() {
        let (mut c, vm) = setup();
        c.apply_demand(
            vm,
            Demand {
                mem_mb: 640.0,
                ..Demand::default()
            },
            Timestamp::ZERO,
        );
        let mut mon = Monitor::new(0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let s = mon.sample(&c, vm, Timestamp::ZERO, &mut rng);
        assert!(s.values.get(AttributeKind::PageFaults) > 100.0);
        assert!(s.values.get(AttributeKind::DiskRead) > 0.0);
        assert_eq!(s.values.get(AttributeKind::FreeMem), 0.0);
    }

    #[test]
    fn saturated_cpu_shows_high_load() {
        let (mut c, vm) = setup();
        c.apply_demand(
            vm,
            Demand {
                cpu: 300.0,
                ..Demand::default()
            },
            Timestamp::ZERO,
        );
        let mut mon = Monitor::new(0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let s = mon.sample(&c, vm, Timestamp::ZERO, &mut rng);
        assert!((s.values.get(AttributeKind::CpuTotal) - 100.0).abs() < 1e-9);
        assert!((s.values.get(AttributeKind::Load1) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn load5_smooths_load1() {
        let (mut c, vm) = setup();
        let mut mon = Monitor::new(0.0);
        let mut rng = StdRng::seed_from_u64(1);
        c.apply_demand(
            vm,
            Demand {
                cpu: 10.0,
                ..Demand::default()
            },
            Timestamp::ZERO,
        );
        for i in 0..10 {
            mon.sample(&c, vm, Timestamp::from_secs(i), &mut rng);
        }
        c.apply_demand(
            vm,
            Demand {
                cpu: 200.0,
                ..Demand::default()
            },
            Timestamp::from_secs(10),
        );
        let s = mon.sample(&c, vm, Timestamp::from_secs(10), &mut rng);
        let l1 = s.values.get(AttributeKind::Load1);
        let l5 = s.values.get(AttributeKind::Load5);
        assert!(l5 < l1, "Load5 ({l5}) must lag Load1 ({l1}) on a spike");
    }

    #[test]
    fn contention_shows_as_high_load_low_cpu() {
        let (mut c, vm) = setup();
        let host = c.vm(vm).host;
        c.set_background_load(host, 175.0); // effective cap 25
        c.apply_demand(
            vm,
            Demand {
                cpu: 60.0,
                ..Demand::default()
            },
            Timestamp::ZERO,
        );
        let mut mon = Monitor::new(0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let s = mon.sample(&c, vm, Timestamp::ZERO, &mut rng);
        // The starved VM looks idle on CPU% (granted/alloc)...
        assert!(s.values.get(AttributeKind::CpuTotal) < 30.0);
        // ...but its run queue exposes the steal: demand over delivered.
        assert!((s.values.get(AttributeKind::Load1) - 60.0 / 25.0).abs() < 1e-9);
    }

    #[test]
    fn noise_is_seed_deterministic() {
        let (mut c, vm) = setup();
        c.apply_demand(
            vm,
            Demand {
                cpu: 50.0,
                mem_mb: 100.0,
                ..Demand::default()
            },
            Timestamp::ZERO,
        );
        let sample_with = |seed: u64| {
            let mut mon = Monitor::with_default_noise();
            let mut rng = StdRng::seed_from_u64(seed);
            mon.sample(&c, vm, Timestamp::ZERO, &mut rng)
        };
        assert_eq!(sample_with(7), sample_with(7));
        assert_ne!(sample_with(7), sample_with(8));
    }

    #[test]
    fn noisy_samples_stay_nonnegative_and_finite() {
        let (mut c, vm) = setup();
        c.apply_demand(
            vm,
            Demand {
                cpu: 1.0,
                ..Demand::default()
            },
            Timestamp::ZERO,
        );
        let mut mon = Monitor::new(0.5); // absurdly noisy
        let mut rng = StdRng::seed_from_u64(42);
        for i in 0..200 {
            let s = mon.sample(&c, vm, Timestamp::from_secs(i), &mut rng);
            assert!(s.values.is_finite());
            for a in AttributeKind::ALL {
                assert!(s.values.get(a) >= 0.0);
            }
        }
    }
}
