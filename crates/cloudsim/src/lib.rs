//! Virtualized-cluster substrate for the PREPARE reproduction.
//!
//! The paper runs on Xen hosts in NCSU's Virtual Computing Lab; PREPARE
//! itself only interacts with that testbed through three narrow surfaces:
//!
//! 1. **Out-of-band monitoring** — dom0 reads each guest VM's resource
//!    usage (`libxenstat`) plus an in-guest memory daemon ([`Monitor`]).
//! 2. **Elastic resource scaling** — adjusting a VM's CPU cap or memory
//!    allocation (~100 ms actuation, Table I).
//! 3. **Live VM migration** — relocating a VM to another host with
//!    matching resources (~8.5 s per 512 MB, longer under load).
//!
//! This crate simulates exactly those surfaces with a discrete 1-second
//! clock: [`Cluster`] owns hosts and VMs, applications push per-tick
//! resource [`Demand`]s and receive a [`ServiceQuality`] describing how
//! much of the demand the virtualization layer could satisfy (CPU
//! contention, memory pressure/paging, migration brown-out), and the
//! [`Monitor`] converts VM state into the 13-attribute
//! [`prepare_metrics::MetricVector`] stream PREPARE consumes.
//!
//! # Example
//!
//! ```
//! use prepare_cloudsim::{Cluster, HostSpec, Demand};
//! use prepare_metrics::Timestamp;
//!
//! let mut cluster = Cluster::new();
//! let host = cluster.add_host(HostSpec::vcl_default());
//! let vm = cluster.create_vm(host, 100.0, 512.0)?;
//! let q = cluster.apply_demand(vm, Demand { cpu: 50.0, mem_mb: 256.0, ..Demand::default() }, Timestamp::ZERO);
//! assert!((q.cpu_fraction - 1.0).abs() < 1e-9); // plenty of headroom
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod actions;
mod chaos;
mod cluster;
mod costs;
mod fleet;
mod invariants;
mod monitor;
mod placement;
mod spec;

pub use actions::{ActionKind, ActionRecord, MigrateError, PlacementError, ScaleError};
pub use chaos::{ChaosEngine, ChaosFault, ChaosKind, ChaosPlan, ChaosStats};
pub use cluster::{
    Cluster, HostId, MigrationState, VmState, CPU_BACKLOG_CAP_SECS, PAGE_IN_RATE_MB_PER_SEC,
};
pub use costs::{ActuationCosts, TABLE1_COSTS};
pub use fleet::{FleetEvent, FleetMonitor, FleetSim, FleetSpec, FleetTrace, TickMode, DENSE_ENV};
pub use monitor::Monitor;
pub use placement::{
    AntiAffinity, BestFit, FirstFit, PlacementPolicy, PlacementRequest, PlacementStore, WorstFit,
};
pub use spec::{Demand, HostSpec, ServiceQuality};
