//! Host specifications, per-tick resource demands and the service quality
//! the virtualization layer reports back to the application model.

/// Capacity of one physical host.
///
/// CPU is measured in *percent-of-one-core* units (a dual-core host has
/// capacity 200.0, matching Xen's credit-scheduler cap convention), memory
/// in MB.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostSpec {
    /// CPU capacity in percent-of-core units.
    pub cpu_capacity: f64,
    /// Memory capacity in MB.
    pub mem_capacity_mb: f64,
}

impl HostSpec {
    /// The paper's VCL host: dual-core Xeon 3.00 GHz, 4 GB memory.
    pub fn vcl_default() -> Self {
        HostSpec {
            cpu_capacity: 200.0,
            mem_capacity_mb: 4096.0,
        }
    }
}

/// One tick's resource demand from the software running inside a VM
/// (application component plus any co-located fault process).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Demand {
    /// CPU demand in percent-of-core units.
    pub cpu: f64,
    /// Resident memory demand in MB.
    pub mem_mb: f64,
    /// Network receive rate, KB/s.
    pub net_in_kbps: f64,
    /// Network transmit rate, KB/s.
    pub net_out_kbps: f64,
    /// Disk read rate, KB/s.
    pub disk_read_kbps: f64,
    /// Disk write rate, KB/s.
    pub disk_write_kbps: f64,
}

impl Demand {
    /// Validates that all components are finite and non-negative.
    pub fn is_valid(&self) -> bool {
        [
            self.cpu,
            self.mem_mb,
            self.net_in_kbps,
            self.net_out_kbps,
            self.disk_read_kbps,
            self.disk_write_kbps,
        ]
        .iter()
        .all(|v| v.is_finite() && *v >= 0.0)
    }
}

/// How well the virtualization layer satisfied a VM's demand this tick —
/// the application model turns this into achieved throughput / latency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceQuality {
    /// Fraction of the CPU demand actually granted (1.0 = no contention).
    pub cpu_fraction: f64,
    /// Memory service factor: 1.0 when the working set fits the
    /// allocation; < 1.0 when the VM is paging (falls off quickly as the
    /// working set overflows) or still re-faulting a previously swapped
    /// working set back in.
    pub mem_fraction: f64,
    /// Live-migration brown-out factor (1.0 normally, < 1.0 while the VM
    /// is being migrated).
    pub migration_penalty: f64,
    /// Seconds of CPU work currently queued behind the VM's cap. Queued
    /// work delays every request/tuple passing through the component even
    /// after the contention itself is resolved — the recovery lag that
    /// makes *reactive* intervention pay a violation penalty prediction
    /// avoids.
    pub queue_delay_secs: f64,
}

impl ServiceQuality {
    /// Perfect service.
    pub fn perfect() -> Self {
        ServiceQuality {
            cpu_fraction: 1.0,
            mem_fraction: 1.0,
            migration_penalty: 1.0,
            queue_delay_secs: 0.0,
        }
    }

    /// Combined multiplicative throughput factor in `(0, 1]`.
    pub fn throughput_factor(&self) -> f64 {
        (self.cpu_fraction * self.mem_fraction * self.migration_penalty).clamp(0.0, 1.0)
    }

    /// Combined service slow-down: the factor by which per-unit processing
    /// time inflates (≥ 1.0).
    pub fn slowdown(&self) -> f64 {
        let f = self.throughput_factor();
        if f <= 1e-6 {
            1e6
        } else {
            1.0 / f
        }
    }
}

impl Default for ServiceQuality {
    fn default() -> Self {
        Self::perfect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vcl_host_matches_paper() {
        let h = HostSpec::vcl_default();
        assert_eq!(h.cpu_capacity, 200.0);
        assert_eq!(h.mem_capacity_mb, 4096.0);
    }

    #[test]
    fn demand_validation() {
        assert!(Demand::default().is_valid());
        let bad = Demand {
            cpu: f64::NAN,
            ..Demand::default()
        };
        assert!(!bad.is_valid());
        let neg = Demand {
            mem_mb: -1.0,
            ..Demand::default()
        };
        assert!(!neg.is_valid());
    }

    #[test]
    fn throughput_factor_multiplies() {
        let q = ServiceQuality {
            cpu_fraction: 0.5,
            mem_fraction: 0.8,
            ..ServiceQuality::perfect()
        };
        assert!((q.throughput_factor() - 0.4).abs() < 1e-12);
        assert!((q.slowdown() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn slowdown_bounded_for_zero_service() {
        let q = ServiceQuality {
            cpu_fraction: 0.0,
            ..ServiceQuality::perfect()
        };
        assert!(q.slowdown().is_finite());
    }
}
