//! VM placement policies.
//!
//! The paper's prevention actuation needs "a host with matching
//! resources" (§II-D, citing the PAC consolidation work \[15\]); this
//! module provides the standard bin-packing heuristics so deployments and
//! migration-target selection can choose their packing/spreading
//! trade-off explicitly.

use crate::{Cluster, HostId, PlacementError};
use prepare_metrics::VmId;

/// How to choose among hosts that can fit a VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PlacementPolicy {
    /// Lowest-numbered host that fits — fast, packs the early hosts.
    FirstFit,
    /// The fitting host with the *least* spare CPU afterwards —
    /// consolidates load onto few hosts (PAC-style packing).
    BestFit,
    /// The fitting host with the *most* spare CPU — spreads load, leaving
    /// headroom for elastic scaling. The default, and what the migration
    /// target search uses: a migrated-away faulty VM wants room to grow.
    #[default]
    WorstFit,
}

impl Cluster {
    /// Finds a host able to fit `(cpu, mem)` under `policy`, optionally
    /// excluding one host (the migration source).
    pub fn find_host(
        &self,
        policy: PlacementPolicy,
        cpu: f64,
        mem_mb: f64,
        exclude: Option<HostId>,
    ) -> Option<HostId> {
        let mut best: Option<(HostId, f64)> = None;
        for h in 0..self.n_hosts() {
            let host = HostId(h);
            if Some(host) == exclude {
                continue;
            }
            let (free_cpu, free_mem) = self.host_free(host);
            if free_cpu + 1e-9 < cpu || free_mem + 1e-9 < mem_mb {
                continue;
            }
            match policy {
                PlacementPolicy::FirstFit => return Some(host),
                PlacementPolicy::BestFit => {
                    if best.is_none_or(|(_, c)| free_cpu < c) {
                        best = Some((host, free_cpu));
                    }
                }
                PlacementPolicy::WorstFit => {
                    if best.is_none_or(|(_, c)| free_cpu > c) {
                        best = Some((host, free_cpu));
                    }
                }
            }
        }
        best.map(|(h, _)| h)
    }

    /// Creates a VM on a host chosen by `policy`.
    ///
    /// # Errors
    ///
    /// Returns [`PlacementError::InsufficientCapacity`] against host 0
    /// (or [`PlacementError::UnknownHost`] for an empty cluster) when no
    /// host fits.
    pub fn place_vm(
        &mut self,
        policy: PlacementPolicy,
        cpu: f64,
        mem_mb: f64,
    ) -> Result<VmId, PlacementError> {
        match self.find_host(policy, cpu, mem_mb, None) {
            Some(host) => self.create_vm(host, cpu, mem_mb),
            None => {
                if self.n_hosts() == 0 {
                    Err(PlacementError::UnknownHost(HostId(0)))
                } else {
                    let (free_cpu, free_mem) = self.host_free(HostId(0));
                    Err(PlacementError::InsufficientCapacity {
                        host: HostId(0),
                        cpu_shortfall: (cpu - free_cpu).max(0.0),
                        mem_shortfall: (mem_mb - free_mem).max(0.0),
                    })
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HostSpec;

    /// Three hosts with free CPU 150 / 50 / 100 after pre-loading.
    fn cluster() -> Cluster {
        let mut c = Cluster::new();
        let h0 = c.add_host(HostSpec::vcl_default());
        let h1 = c.add_host(HostSpec::vcl_default());
        let h2 = c.add_host(HostSpec::vcl_default());
        c.create_vm(h0, 50.0, 512.0).unwrap();
        c.create_vm(h1, 150.0, 512.0).unwrap();
        c.create_vm(h2, 100.0, 512.0).unwrap();
        c
    }

    #[test]
    fn first_fit_takes_the_first_that_fits() {
        let c = cluster();
        assert_eq!(
            c.find_host(PlacementPolicy::FirstFit, 40.0, 256.0, None),
            Some(HostId(0))
        );
        // Needs more than host 0 and host 2 have? 120 only fits host 0.
        assert_eq!(
            c.find_host(PlacementPolicy::FirstFit, 120.0, 256.0, None),
            Some(HostId(0))
        );
    }

    #[test]
    fn best_fit_minimizes_leftover() {
        let c = cluster();
        // 40 CPU fits everywhere; host 1 (free 50) leaves the least.
        assert_eq!(
            c.find_host(PlacementPolicy::BestFit, 40.0, 256.0, None),
            Some(HostId(1))
        );
    }

    #[test]
    fn worst_fit_maximizes_headroom() {
        let c = cluster();
        assert_eq!(
            c.find_host(PlacementPolicy::WorstFit, 40.0, 256.0, None),
            Some(HostId(0))
        );
    }

    #[test]
    fn exclusion_skips_the_source_host() {
        let c = cluster();
        assert_eq!(
            c.find_host(PlacementPolicy::WorstFit, 40.0, 256.0, Some(HostId(0))),
            Some(HostId(2))
        );
    }

    #[test]
    fn place_vm_creates_on_chosen_host() {
        let mut c = cluster();
        let vm = c.place_vm(PlacementPolicy::BestFit, 40.0, 256.0).unwrap();
        assert_eq!(c.vm(vm).host, HostId(1));
    }

    #[test]
    fn place_vm_errors_when_nothing_fits() {
        let mut c = cluster();
        let err = c
            .place_vm(PlacementPolicy::WorstFit, 500.0, 256.0)
            .unwrap_err();
        assert!(matches!(err, PlacementError::InsufficientCapacity { .. }));
        let mut empty = Cluster::new();
        assert!(matches!(
            empty.place_vm(PlacementPolicy::FirstFit, 1.0, 1.0),
            Err(PlacementError::UnknownHost(_))
        ));
    }
}
