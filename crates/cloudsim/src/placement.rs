//! The placement layer: incremental per-host capacity accounting and
//! pluggable placement policies.
//!
//! The paper's prevention actuation needs "a host with matching
//! resources" (§II-D, citing the PAC consolidation work \[15\]). At a
//! handful of VMs an O(hosts × VMs) rescan per query is fine; at fleet
//! scale (10k–100k VMs, ROADMAP item 1) it dominates the control plane.
//! [`PlacementStore`] keeps per-host committed/free capacity up to date
//! *incrementally*: every cluster mutation (create, scale, migration
//! begin/cancel/complete) touches only the affected host's account, and
//! capacity queries are O(1) per host.
//!
//! # Bit-exactness contract
//!
//! The store's free-capacity numbers are **bit-identical** to the legacy
//! full scan (`capacity − Σ occupant allocations`, folded in ascending VM
//! order). This is structural, not numeric luck: an account refresh
//! replays exactly that left-fold over the host's occupant set (kept in
//! ascending VM order), rather than patching totals with `+=`/`-=` deltas
//! that would drift associativity. `invariants::debug_validate` holds the
//! store against the scan after every mutation in debug builds.

use crate::{Cluster, HostId, HostSpec, PlacementError, VmState};
use prepare_metrics::VmId;
use std::collections::BTreeSet;

/// Per-host capacity account: free capacity plus the occupant sets the
/// numbers were folded from.
#[derive(Debug, Clone, PartialEq)]
struct HostAccount {
    cpu_capacity: f64,
    mem_capacity_mb: f64,
    /// Free capacity after subtracting every occupant's allocation, in
    /// ascending VM order (the legacy scan's fold order).
    free_cpu: f64,
    free_mem_mb: f64,
    /// Sum of *resident* VMs' CPU allocations (ascending VM order) — the
    /// contention-squeeze denominator.
    resident_cpu: f64,
    /// VMs whose `host` field points here.
    residents: BTreeSet<usize>,
    /// VMs migrating *into* this host (capacity reserved for the copy).
    incoming: BTreeSet<usize>,
}

impl HostAccount {
    fn new(spec: HostSpec) -> Self {
        HostAccount {
            cpu_capacity: spec.cpu_capacity,
            mem_capacity_mb: spec.mem_capacity_mb,
            free_cpu: spec.cpu_capacity,
            free_mem_mb: spec.mem_capacity_mb,
            resident_cpu: 0.0,
            residents: BTreeSet::new(),
            incoming: BTreeSet::new(),
        }
    }
}

/// Incrementally maintained per-host committed/free capacity.
///
/// Owned by [`Cluster`], which keeps it in sync on every mutation; read
/// it through [`Cluster::placement`] for O(1) capacity queries.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PlacementStore {
    accounts: Vec<HostAccount>,
}

impl PlacementStore {
    /// Number of hosts tracked.
    pub fn n_hosts(&self) -> usize {
        self.accounts.len()
    }

    /// Free capacity `(cpu, mem_mb)` on `host` — O(1).
    ///
    /// Bit-identical to the legacy occupant scan; see the module docs.
    pub fn free(&self, host: HostId) -> Option<(f64, f64)> {
        self.accounts
            .get(host.0)
            .map(|a| (a.free_cpu, a.free_mem_mb))
    }

    /// Sum of resident VMs' CPU allocations on `host` — the
    /// contention-squeeze denominator, O(1).
    pub fn resident_cpu(&self, host: HostId) -> f64 {
        self.accounts.get(host.0).map_or(0.0, |a| a.resident_cpu)
    }

    /// Number of VMs resident on `host`.
    pub fn resident_count(&self, host: HostId) -> usize {
        self.accounts.get(host.0).map_or(0, |a| a.residents.len())
    }

    /// Resident VMs of `host` in ascending id order.
    pub fn residents(&self, host: HostId) -> impl Iterator<Item = VmId> + '_ {
        self.accounts
            .get(host.0)
            .into_iter()
            .flat_map(|a| a.residents.iter().map(|&i| VmId(i)))
    }

    /// Whether `(cpu, mem_mb)` fits into `host`'s free capacity, with the
    /// same tolerance the legacy search used.
    pub fn fits(&self, host: HostId, cpu: f64, mem_mb: f64) -> bool {
        self.free(host)
            .is_some_and(|(fc, fm)| !(fc + 1e-9 < cpu || fm + 1e-9 < mem_mb))
    }

    pub(crate) fn add_host(&mut self, spec: HostSpec) {
        self.accounts.push(HostAccount::new(spec));
    }

    pub(crate) fn attach_resident(&mut self, vm_idx: usize, host: HostId, vms: &[VmState]) {
        if let Some(a) = self.accounts.get_mut(host.0) {
            a.residents.insert(vm_idx);
        }
        self.refresh_host(host, vms);
    }

    pub(crate) fn attach_incoming(&mut self, vm_idx: usize, host: HostId, vms: &[VmState]) {
        if let Some(a) = self.accounts.get_mut(host.0) {
            a.incoming.insert(vm_idx);
        }
        self.refresh_host(host, vms);
    }

    pub(crate) fn detach_incoming(&mut self, vm_idx: usize, host: HostId, vms: &[VmState]) {
        if let Some(a) = self.accounts.get_mut(host.0) {
            a.incoming.remove(&vm_idx);
        }
        self.refresh_host(host, vms);
    }

    /// Switch-over of a completed migration: the VM stops being resident
    /// on `source` and turns from an incoming reservation into a resident
    /// on `target`.
    pub(crate) fn complete_migration(
        &mut self,
        vm_idx: usize,
        source: HostId,
        target: HostId,
        vms: &[VmState],
    ) {
        if let Some(a) = self.accounts.get_mut(source.0) {
            a.residents.remove(&vm_idx);
        }
        if let Some(a) = self.accounts.get_mut(target.0) {
            a.incoming.remove(&vm_idx);
            a.residents.insert(vm_idx);
        }
        self.refresh_host(source, vms);
        self.refresh_host(target, vms);
    }

    /// Recomputes one host's account from its occupant sets by replaying
    /// the legacy scan's left-fold in ascending VM order — the source of
    /// the bit-exactness contract. O(occupants of this host).
    pub(crate) fn refresh_host(&mut self, host: HostId, vms: &[VmState]) {
        let Some(a) = self.accounts.get_mut(host.0) else {
            return;
        };
        let mut cpu = a.cpu_capacity;
        let mut mem = a.mem_capacity_mb;
        // Merge-walk residents ∪ incoming in ascending order (the sets are
        // disjoint: a VM occupies its source as resident and its migration
        // target as incoming, and those are distinct hosts).
        let mut res = a.residents.iter().peekable();
        let mut inc = a.incoming.iter().peekable();
        loop {
            let idx = match (res.peek(), inc.peek()) {
                (Some(&&r), Some(&&i)) => {
                    if r < i {
                        res.next();
                        r
                    } else {
                        inc.next();
                        i
                    }
                }
                (Some(&&r), None) => {
                    res.next();
                    r
                }
                (None, Some(&&i)) => {
                    inc.next();
                    i
                }
                (None, None) => break,
            };
            if let Some(vm) = vms.get(idx) {
                cpu -= vm.cpu_alloc;
                mem -= vm.mem_alloc_mb;
            }
        }
        a.free_cpu = cpu;
        a.free_mem_mb = mem;
        let mut resident_cpu = 0.0;
        for i in &a.residents {
            if let Some(vm) = vms.get(*i) {
                resident_cpu += vm.cpu_alloc;
            }
        }
        a.resident_cpu = resident_cpu;
    }

    /// The occupant sets of `host` as `(residents, incoming)`, for the
    /// debug invariant that cross-checks them against VM state.
    pub(crate) fn occupant_sets(&self, host: HostId) -> (&BTreeSet<usize>, &BTreeSet<usize>) {
        static EMPTY: BTreeSet<usize> = BTreeSet::new();
        self.accounts
            .get(host.0)
            .map_or((&EMPTY, &EMPTY), |a| (&a.residents, &a.incoming))
    }
}

/// A placement request: the capacity a VM needs and an optional host to
/// avoid (the migration source).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlacementRequest {
    /// CPU the VM needs (percent-of-core units).
    pub cpu: f64,
    /// Memory the VM needs (MB).
    pub mem_mb: f64,
    /// Host to skip — the migration source, if any.
    pub exclude: Option<HostId>,
}

impl PlacementRequest {
    /// Hosts able to fit the request, in ascending id order, with their
    /// free CPU — the candidate stream every bundled policy folds over.
    pub fn candidates<'a>(
        &'a self,
        cluster: &'a Cluster,
    ) -> impl Iterator<Item = (HostId, f64)> + 'a {
        let store = cluster.placement();
        (0..store.n_hosts()).filter_map(move |h| {
            let host = HostId(h);
            if Some(host) == self.exclude || !store.fits(host, self.cpu, self.mem_mb) {
                return None;
            }
            store.free(host).map(|(fc, _)| (host, fc))
        })
    }
}

/// How to choose among hosts that can fit a VM.
///
/// Implementations read the cluster through its [`PlacementStore`]
/// (O(1) per-host capacity) rather than rescanning VMs. Policies must be
/// deterministic: the same cluster state and request always yield the
/// same host.
pub trait PlacementPolicy {
    /// Short policy name for logs and reports.
    fn name(&self) -> &'static str;

    /// Chooses a host for the request, or `None` when nothing fits.
    fn choose(&self, cluster: &Cluster, req: &PlacementRequest) -> Option<HostId>;
}

/// Lowest-numbered host that fits — fast, packs the early hosts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FirstFit;

impl PlacementPolicy for FirstFit {
    fn name(&self) -> &'static str {
        "first-fit"
    }

    fn choose(&self, cluster: &Cluster, req: &PlacementRequest) -> Option<HostId> {
        req.candidates(cluster).next().map(|(h, _)| h)
    }
}

/// The fitting host with the *least* spare CPU afterwards — consolidates
/// load onto few hosts (PAC-style packing).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BestFit;

impl PlacementPolicy for BestFit {
    fn name(&self) -> &'static str {
        "best-fit"
    }

    fn choose(&self, cluster: &Cluster, req: &PlacementRequest) -> Option<HostId> {
        let mut best: Option<(HostId, f64)> = None;
        for (host, free_cpu) in req.candidates(cluster) {
            if best.is_none_or(|(_, c)| free_cpu < c) {
                best = Some((host, free_cpu));
            }
        }
        best.map(|(h, _)| h)
    }
}

/// The fitting host with the *most* spare CPU — spreads load, leaving
/// headroom for elastic scaling. The migration-target default: a
/// migrated-away faulty VM wants room to grow.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorstFit;

impl PlacementPolicy for WorstFit {
    fn name(&self) -> &'static str {
        "worst-fit"
    }

    fn choose(&self, cluster: &Cluster, req: &PlacementRequest) -> Option<HostId> {
        let mut best: Option<(HostId, f64)> = None;
        for (host, free_cpu) in req.candidates(cluster) {
            if best.is_none_or(|(_, c)| free_cpu > c) {
                best = Some((host, free_cpu));
            }
        }
        best.map(|(h, _)| h)
    }
}

/// Avoids co-locating the request with a named group of VMs (replica
/// spreading): hosts that already run — or are receiving — a group member
/// are deprioritized. Among untainted candidates it picks worst-fit; when
/// every fitting host is tainted, a `strict` policy refuses while a lax
/// one falls back to plain worst-fit.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AntiAffinity {
    /// The VMs to spread away from.
    pub group: Vec<VmId>,
    /// Refuse placement when no untainted host fits (instead of falling
    /// back to worst-fit among tainted hosts).
    pub strict: bool,
}

impl AntiAffinity {
    /// Spread away from `group`, falling back to worst-fit when every
    /// fitting host already has a group member.
    pub fn new(group: Vec<VmId>) -> Self {
        AntiAffinity {
            group,
            strict: false,
        }
    }

    /// Spread away from `group`; refuse when no untainted host fits.
    pub fn strict(group: Vec<VmId>) -> Self {
        AntiAffinity {
            group,
            strict: true,
        }
    }

    fn tainted(&self, cluster: &Cluster, host: HostId) -> bool {
        self.group.iter().any(|&vm| {
            cluster
                .get_vm(vm)
                .is_some_and(|s| s.host == host || s.migration.is_some_and(|m| m.target == host))
        })
    }
}

impl PlacementPolicy for AntiAffinity {
    fn name(&self) -> &'static str {
        "anti-affinity"
    }

    fn choose(&self, cluster: &Cluster, req: &PlacementRequest) -> Option<HostId> {
        let mut clean: Option<(HostId, f64)> = None;
        let mut any: Option<(HostId, f64)> = None;
        for (host, free_cpu) in req.candidates(cluster) {
            if any.is_none_or(|(_, c)| free_cpu > c) {
                any = Some((host, free_cpu));
            }
            if !self.tainted(cluster, host) && clean.is_none_or(|(_, c)| free_cpu > c) {
                clean = Some((host, free_cpu));
            }
        }
        match (clean, self.strict) {
            (Some((h, _)), _) => Some(h),
            (None, true) => None,
            (None, false) => any.map(|(h, _)| h),
        }
    }
}

impl Cluster {
    /// Finds a host able to fit `(cpu, mem)` under `policy`, optionally
    /// excluding one host (the migration source). Capacity checks go
    /// through the [`PlacementStore`] — O(hosts), not O(hosts × VMs).
    pub fn find_host(
        &self,
        policy: &dyn PlacementPolicy,
        cpu: f64,
        mem_mb: f64,
        exclude: Option<HostId>,
    ) -> Option<HostId> {
        policy.choose(
            self,
            &PlacementRequest {
                cpu,
                mem_mb,
                exclude,
            },
        )
    }

    /// Creates a VM on a host chosen by `policy`.
    ///
    /// # Errors
    ///
    /// Returns [`PlacementError::InsufficientCapacity`] against host 0
    /// (or [`PlacementError::UnknownHost`] for an empty cluster) when no
    /// host fits.
    pub fn place_vm(
        &mut self,
        policy: &dyn PlacementPolicy,
        cpu: f64,
        mem_mb: f64,
    ) -> Result<VmId, PlacementError> {
        match self.find_host(policy, cpu, mem_mb, None) {
            Some(host) => self.create_vm(host, cpu, mem_mb),
            None => {
                if self.n_hosts() == 0 {
                    Err(PlacementError::UnknownHost(HostId(0)))
                } else {
                    let (free_cpu, free_mem) = self.host_free(HostId(0));
                    Err(PlacementError::InsufficientCapacity {
                        host: HostId(0),
                        cpu_shortfall: (cpu - free_cpu).max(0.0),
                        mem_shortfall: (mem_mb - free_mem).max(0.0),
                    })
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HostSpec;
    use prepare_metrics::Timestamp;

    /// Three hosts with free CPU 150 / 50 / 100 after pre-loading.
    fn cluster() -> Cluster {
        let mut c = Cluster::new();
        let h0 = c.add_host(HostSpec::vcl_default());
        let h1 = c.add_host(HostSpec::vcl_default());
        let h2 = c.add_host(HostSpec::vcl_default());
        c.create_vm(h0, 50.0, 512.0).unwrap();
        c.create_vm(h1, 150.0, 512.0).unwrap();
        c.create_vm(h2, 100.0, 512.0).unwrap();
        c
    }

    #[test]
    fn first_fit_takes_the_first_that_fits() {
        let c = cluster();
        assert_eq!(c.find_host(&FirstFit, 40.0, 256.0, None), Some(HostId(0)));
        // Needs more than host 0 and host 2 have? 120 only fits host 0.
        assert_eq!(c.find_host(&FirstFit, 120.0, 256.0, None), Some(HostId(0)));
    }

    #[test]
    fn best_fit_minimizes_leftover() {
        let c = cluster();
        // 40 CPU fits everywhere; host 1 (free 50) leaves the least.
        assert_eq!(c.find_host(&BestFit, 40.0, 256.0, None), Some(HostId(1)));
    }

    #[test]
    fn worst_fit_maximizes_headroom() {
        let c = cluster();
        assert_eq!(c.find_host(&WorstFit, 40.0, 256.0, None), Some(HostId(0)));
    }

    #[test]
    fn exclusion_skips_the_source_host() {
        let c = cluster();
        assert_eq!(
            c.find_host(&WorstFit, 40.0, 256.0, Some(HostId(0))),
            Some(HostId(2))
        );
    }

    #[test]
    fn place_vm_creates_on_chosen_host() {
        let mut c = cluster();
        let vm = c.place_vm(&BestFit, 40.0, 256.0).unwrap();
        assert_eq!(c.vm(vm).host, HostId(1));
    }

    #[test]
    fn place_vm_errors_when_nothing_fits() {
        let mut c = cluster();
        let err = c.place_vm(&WorstFit, 500.0, 256.0).unwrap_err();
        assert!(matches!(err, PlacementError::InsufficientCapacity { .. }));
        let mut empty = Cluster::new();
        assert!(matches!(
            empty.place_vm(&FirstFit, 1.0, 1.0),
            Err(PlacementError::UnknownHost(_))
        ));
    }

    #[test]
    fn anti_affinity_spreads_away_from_group() {
        let mut c = Cluster::new();
        let h0 = c.add_host(HostSpec::vcl_default());
        let _h1 = c.add_host(HostSpec::vcl_default());
        let replica = c.create_vm(h0, 20.0, 256.0).unwrap();
        // Worst-fit alone would choose h1 too (more free CPU), so load h1
        // to make h0 the worst-fit winner — anti-affinity must override.
        let policy = AntiAffinity::new(vec![replica]);
        assert_eq!(
            c.find_host(&policy, 20.0, 256.0, None),
            Some(HostId(1)),
            "host 0 is tainted by the replica"
        );
    }

    #[test]
    fn anti_affinity_counts_migration_targets_as_tainted() {
        let mut c = Cluster::new();
        let h0 = c.add_host(HostSpec::vcl_default());
        let _h1 = c.add_host(HostSpec::vcl_default());
        let _h2 = c.add_host(HostSpec::vcl_default());
        let replica = c.create_vm(h0, 20.0, 256.0).unwrap();
        c.begin_migration(replica, HostId(1), Timestamp::ZERO)
            .unwrap();
        let policy = AntiAffinity::strict(vec![replica]);
        // Source and in-flight target are both tainted; only h2 is clean.
        assert_eq!(c.find_host(&policy, 20.0, 256.0, None), Some(HostId(2)));
    }

    #[test]
    fn strict_anti_affinity_refuses_when_everything_is_tainted() {
        let mut c = Cluster::new();
        let h0 = c.add_host(HostSpec::vcl_default());
        let replica = c.create_vm(h0, 20.0, 256.0).unwrap();
        let strict = AntiAffinity::strict(vec![replica]);
        assert_eq!(c.find_host(&strict, 20.0, 256.0, None), None);
        let lax = AntiAffinity::new(vec![replica]);
        assert_eq!(
            c.find_host(&lax, 20.0, 256.0, None),
            Some(h0),
            "lax policy falls back to worst-fit"
        );
    }

    #[test]
    fn store_tracks_free_capacity_incrementally() {
        let mut c = Cluster::new();
        let h0 = c.add_host(HostSpec::vcl_default());
        let h1 = c.add_host(HostSpec::vcl_default());
        let vm = c.create_vm(h0, 80.0, 1024.0).unwrap();
        assert_eq!(c.placement().free(h0), Some((120.0, 3072.0)));
        assert_eq!(c.placement().resident_cpu(h0), 80.0);
        assert_eq!(c.placement().resident_count(h0), 1);

        c.scale_cpu(vm, 120.0, Timestamp::ZERO).unwrap();
        assert_eq!(c.placement().free(h0), Some((80.0, 3072.0)));
        assert_eq!(c.placement().resident_cpu(h0), 120.0);

        // Migration reserves the target and keeps the source committed.
        c.begin_migration(vm, h1, Timestamp::ZERO).unwrap();
        assert_eq!(c.placement().free(h0), Some((80.0, 3072.0)));
        assert_eq!(c.placement().free(h1), Some((80.0, 3072.0)));
        assert_eq!(
            c.placement().resident_cpu(h1),
            0.0,
            "reserved, not resident"
        );

        // Completion releases the source and makes the VM resident.
        c.advance(Timestamp::from_secs(60));
        assert_eq!(c.placement().free(h0), Some((200.0, 4096.0)));
        assert_eq!(c.placement().free(h1), Some((80.0, 3072.0)));
        assert_eq!(c.placement().resident_cpu(h1), 120.0);
        assert_eq!(c.placement().residents(h1).collect::<Vec<_>>(), vec![vm]);
    }

    #[test]
    fn store_cancel_releases_reservation() {
        let mut c = Cluster::new();
        let h0 = c.add_host(HostSpec::vcl_default());
        let h1 = c.add_host(HostSpec::vcl_default());
        let vm = c.create_vm(h0, 80.0, 1024.0).unwrap();
        c.begin_migration(vm, h1, Timestamp::ZERO).unwrap();
        c.cancel_migration(vm, Timestamp::from_secs(1)).unwrap();
        assert_eq!(c.placement().free(h1), Some((200.0, 4096.0)));
        assert_eq!(c.placement().free(h0), Some((120.0, 3072.0)));
    }

    #[test]
    fn store_free_matches_legacy_scan_bitwise() {
        // Randomized-ish mutation mix, then bit-compare the store against
        // a from-scratch occupant scan on every host.
        let mut c = Cluster::new();
        for _ in 0..4 {
            c.add_host(HostSpec::vcl_default());
        }
        let mut vms = Vec::new();
        for i in 0..10u64 {
            let host = HostId((i as usize * 7 + 3) % 4);
            let cpu = 10.0 + (i as f64) * 3.7;
            if let Ok(vm) = c.create_vm(host, cpu, 128.0 + i as f64 * 11.3) {
                vms.push(vm);
            }
        }
        for (k, &vm) in vms.iter().enumerate() {
            let t = Timestamp::from_secs(k as u64);
            match k % 3 {
                0 => {
                    let _ = c.scale_cpu(vm, 12.0 + k as f64 * 2.9, t);
                }
                1 => {
                    if let Some(target) = c.find_migration_target(vm) {
                        let _ = c.begin_migration(vm, target, t);
                    }
                }
                _ => {
                    let _ = c.scale_mem(vm, 96.0 + k as f64 * 7.1, t);
                }
            }
        }
        c.advance(Timestamp::from_secs(100));
        for h in 0..c.n_hosts() {
            let host = HostId(h);
            let (scan_cpu, scan_mem) = c.host_free_scan(host);
            let (store_cpu, store_mem) = c.placement().free(host).unwrap();
            assert_eq!(store_cpu.to_bits(), scan_cpu.to_bits(), "host {h} cpu");
            assert_eq!(store_mem.to_bits(), scan_mem.to_bits(), "host {h} mem");
        }
    }
}
