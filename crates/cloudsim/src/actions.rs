//! Hypervisor action records and error types.

use crate::HostId;
use prepare_metrics::{Duration, Timestamp, VmId};
use std::fmt;

/// A hypervisor actuation performed on the cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ActionKind {
    /// CPU cap change (percent-of-core units).
    ScaleCpu {
        /// Allocation before the action.
        from: f64,
        /// Allocation after the action.
        to: f64,
    },
    /// Memory allocation change (MB).
    ScaleMem {
        /// Allocation before the action.
        from: f64,
        /// Allocation after the action.
        to: f64,
    },
    /// Live migration to another host.
    Migrate {
        /// Source host.
        from: HostId,
        /// Destination host.
        to: HostId,
        /// Total migration duration.
        duration: Duration,
    },
    /// An in-flight migration was abandoned mid-copy and rolled back to
    /// the source host (infrastructure fault, see `chaos`).
    MigrationAborted {
        /// Source host the VM stays on.
        from: HostId,
        /// Destination the copy was headed to.
        to: HostId,
    },
}

impl fmt::Display for ActionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ActionKind::ScaleCpu { from, to } => write!(f, "scale-cpu {from:.0}→{to:.0}"),
            ActionKind::ScaleMem { from, to } => write!(f, "scale-mem {from:.0}MB→{to:.0}MB"),
            ActionKind::Migrate { from, to, duration } => {
                write!(f, "migrate {from}→{to} ({duration})")
            }
            ActionKind::MigrationAborted { from, to } => {
                write!(f, "migration-aborted {from}→{to}")
            }
        }
    }
}

/// Log entry for one actuation, with its modeled CPU cost (Table I).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActionRecord {
    /// When the action was issued.
    pub time: Timestamp,
    /// The VM acted upon.
    pub vm: VmId,
    /// What was done.
    pub kind: ActionKind,
    /// Modeled actuation cost in milliseconds (Table I).
    pub cost_ms: f64,
}

/// Error creating or placing a VM.
#[derive(Debug, Clone, PartialEq)]
pub enum PlacementError {
    /// The host does not exist.
    UnknownHost(HostId),
    /// The host lacks capacity for the requested allocation.
    InsufficientCapacity {
        /// The host that was tried.
        host: HostId,
        /// CPU shortfall in percent-of-core units (0 if CPU fits).
        cpu_shortfall: f64,
        /// Memory shortfall in MB (0 if memory fits).
        mem_shortfall: f64,
    },
}

impl fmt::Display for PlacementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlacementError::UnknownHost(h) => write!(f, "unknown host {h}"),
            PlacementError::InsufficientCapacity {
                host,
                cpu_shortfall,
                mem_shortfall,
            } => write!(
                f,
                "host {host} lacks capacity (cpu short {cpu_shortfall:.0}, mem short {mem_shortfall:.0}MB)"
            ),
        }
    }
}

impl std::error::Error for PlacementError {}

/// Error applying an elastic scaling action.
#[derive(Debug, Clone, PartialEq)]
pub enum ScaleError {
    /// The VM does not exist.
    UnknownVm(VmId),
    /// The local host has no spare capacity for the requested increase —
    /// the condition that makes PREPARE fall back to live migration.
    InsufficientHeadroom {
        /// The VM's current host.
        host: HostId,
        /// Spare capacity available on the host.
        available: f64,
        /// Increase that was requested.
        requested: f64,
    },
    /// The requested allocation is not positive and finite.
    InvalidAllocation(f64),
    /// The VM is mid-migration; scaling must wait.
    MigrationInProgress(VmId),
    /// The hypervisor control plane transiently refused the request
    /// (injected by `chaos`); retrying after a backoff is expected to
    /// succeed.
    HypervisorBusy,
}

impl fmt::Display for ScaleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScaleError::UnknownVm(vm) => write!(f, "unknown VM {vm}"),
            ScaleError::InsufficientHeadroom {
                host,
                available,
                requested,
            } => write!(
                f,
                "host {host} has only {available:.0} spare, {requested:.0} requested"
            ),
            ScaleError::InvalidAllocation(a) => write!(f, "invalid allocation {a}"),
            ScaleError::MigrationInProgress(vm) => {
                write!(f, "VM {vm} is being migrated")
            }
            ScaleError::HypervisorBusy => write!(f, "hypervisor busy, retry later"),
        }
    }
}

impl std::error::Error for ScaleError {}

/// Error starting a live migration.
#[derive(Debug, Clone, PartialEq)]
pub enum MigrateError {
    /// The VM does not exist.
    UnknownVm(VmId),
    /// The destination host does not exist.
    UnknownHost(HostId),
    /// The destination host cannot fit the VM.
    TargetFull(HostId),
    /// The VM is already migrating.
    AlreadyMigrating(VmId),
    /// Source and destination are the same host.
    SameHost(HostId),
    /// The VM has no migration in flight to cancel.
    NotMigrating(VmId),
    /// The hypervisor control plane transiently refused the request
    /// (injected by `chaos`); retrying after a backoff is expected to
    /// succeed.
    HypervisorBusy,
}

impl fmt::Display for MigrateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MigrateError::UnknownVm(vm) => write!(f, "unknown VM {vm}"),
            MigrateError::UnknownHost(h) => write!(f, "unknown host {h}"),
            MigrateError::TargetFull(h) => write!(f, "target host {h} lacks capacity"),
            MigrateError::AlreadyMigrating(vm) => write!(f, "VM {vm} already migrating"),
            MigrateError::SameHost(h) => write!(f, "VM already on host {h}"),
            MigrateError::NotMigrating(vm) => write!(f, "VM {vm} has no migration in flight"),
            MigrateError::HypervisorBusy => write!(f, "hypervisor busy, retry later"),
        }
    }
}

impl std::error::Error for MigrateError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let k = ActionKind::ScaleMem {
            from: 512.0,
            to: 768.0,
        };
        assert!(k.to_string().contains("512MB"));
        let e = ScaleError::InsufficientHeadroom {
            host: HostId(1),
            available: 10.0,
            requested: 50.0,
        };
        assert!(e.to_string().contains("spare"));
        assert!(MigrateError::SameHost(HostId(0))
            .to_string()
            .contains("host0"));
    }
}
