//! The actuation / overhead cost model, numbers taken from the paper's
//! Table I measurements on the Xen testbed. The simulator attaches these
//! costs to action records (and the Table I benchmark reproduces the
//! *algorithmic* costs natively).

use prepare_metrics::Duration;

/// Per-operation cost constants (milliseconds unless noted).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActuationCosts {
    /// One VM monitoring sweep over 13 attributes.
    pub monitoring_ms: f64,
    /// Simple Markov model training on 600 samples.
    pub simple_markov_training_ms: f64,
    /// 2-dependent Markov model training on 600 samples.
    pub two_dep_markov_training_ms: f64,
    /// TAN model training on 600 samples.
    pub tan_training_ms: f64,
    /// One anomaly prediction (state probabilities + labels + attribution).
    pub prediction_ms: f64,
    /// CPU cap scaling actuation.
    pub cpu_scaling_ms: f64,
    /// Memory ballooning actuation.
    pub mem_scaling_ms: f64,
    /// Live migration of a 512 MB VM, in seconds.
    pub migration_512mb_secs: f64,
}

/// The measurements reported in Table I of the paper.
pub const TABLE1_COSTS: ActuationCosts = ActuationCosts {
    monitoring_ms: 4.68,
    simple_markov_training_ms: 61.0,
    two_dep_markov_training_ms: 135.1,
    tan_training_ms: 4.0,
    prediction_ms: 1.3,
    cpu_scaling_ms: 107.0,
    mem_scaling_ms: 116.0,
    migration_512mb_secs: 8.56,
};

impl ActuationCosts {
    /// Baseline duration of a live migration for a VM with `mem_mb` of
    /// memory: the paper measures 8.56 s at 512 MB and reports 8–15 s in
    /// the experiments; transfer time scales with the memory footprint.
    pub fn migration_duration(&self, mem_mb: f64) -> Duration {
        let secs = self.migration_512mb_secs * (mem_mb / 512.0).max(0.25);
        Duration::from_secs(secs.round().max(1.0) as u64)
    }

    /// Migration duration inflated by load: a VM dirtying memory fast
    /// (under an active anomaly) needs more pre-copy rounds. `stress` is
    /// the VM's current utilization pressure in `[0, 1]`; the paper
    /// observes late (reactive) migrations taking "much longer" and
    /// costing more performance, which this factor reproduces.
    pub fn migration_duration_under_load(&self, mem_mb: f64, stress: f64) -> Duration {
        let base = self.migration_512mb_secs * (mem_mb / 512.0).max(0.25);
        let stress = stress.clamp(0.0, 1.0);
        Duration::from_secs((base * (1.0 + 0.8 * stress)).round().max(1.0) as u64)
    }
}

impl Default for ActuationCosts {
    fn default() -> Self {
        TABLE1_COSTS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn migration_matches_table1_at_512mb() {
        let d = TABLE1_COSTS.migration_duration(512.0);
        assert_eq!(d.as_secs(), 9); // 8.56 rounded
    }

    #[test]
    fn migration_scales_with_memory() {
        let small = TABLE1_COSTS.migration_duration(256.0);
        let big = TABLE1_COSTS.migration_duration(1024.0);
        assert!(big > small);
        assert_eq!(big.as_secs(), 17);
    }

    #[test]
    fn stress_prolongs_migration_within_paper_range() {
        let idle = TABLE1_COSTS.migration_duration_under_load(512.0, 0.0);
        let busy = TABLE1_COSTS.migration_duration_under_load(512.0, 1.0);
        assert_eq!(idle.as_secs(), 9);
        assert_eq!(busy.as_secs(), 15); // the paper's 8–15 s envelope
    }

    #[test]
    fn tiny_vm_migration_floor() {
        assert!(TABLE1_COSTS.migration_duration(16.0).as_secs() >= 1);
    }
}
