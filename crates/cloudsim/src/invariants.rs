//! Runtime invariant checks for the simulated cluster, compiled to
//! no-ops in release builds (`debug_assert!`-backed). Tests always run
//! with `debug_assertions`, so every unit/integration test doubles as an
//! invariant audit of whatever cluster states it drives through.
//!
//! Checked after every mutation of [`Cluster`]:
//!
//! 1. **Capacity** — per host, the summed allocations of resident VMs
//!    (plus reservations for in-bound migrations) never exceed the host's
//!    CPU/memory capacity.
//! 2. **Metric sanity** — every per-VM gauge the monitor samples is
//!    finite and non-negative, usage never exceeds its allocation, and
//!    the backlog integrator stays within its cap.
//! 3. **Migration endpoints** — an in-flight migration targets a known
//!    host that differs from the VM's current one, and its completion
//!    time does not precede its start.
//! 4. **Placement-store parity** — the incremental store's free-capacity
//!    numbers are *bit-identical* to the legacy occupant scan, and its
//!    occupant sets match the VMs' actual residency/migration state.

use crate::cluster::CPU_BACKLOG_CAP_SECS;
use crate::Cluster;

/// Slack for summed-float capacity comparisons.
const EPS: f64 = 1e-6;

/// Asserts every structural invariant of the cluster. Debug builds only;
/// release builds reduce this to an empty function.
pub(crate) fn debug_validate(c: &Cluster) {
    if !cfg!(debug_assertions) {
        return;
    }
    for h in 0..c.n_hosts() {
        let host = crate::HostId(h);
        let (free_cpu, free_mem) = c.host_free(host);
        debug_assert!(
            free_cpu >= -EPS,
            "invariant: {host} CPU oversubscribed by {} (allocations + migration reservations \
             exceed capacity)",
            -free_cpu
        );
        debug_assert!(
            free_mem >= -EPS,
            "invariant: {host} memory oversubscribed by {} MB",
            -free_mem
        );
        debug_assert!(
            c.background_load(host).is_finite() && c.background_load(host) >= 0.0,
            "invariant: {host} background load must be finite and non-negative"
        );
        // Placement-store parity: the incremental account must equal the
        // from-scratch occupant scan bit-for-bit, and the occupant sets
        // must mirror the VMs' actual residency / in-flight migrations.
        let (scan_cpu, scan_mem) = c.host_free_scan(host);
        debug_assert!(
            free_cpu.to_bits() == scan_cpu.to_bits() && free_mem.to_bits() == scan_mem.to_bits(),
            "invariant: {host} placement store drifted from the occupant scan \
             (store {free_cpu}/{free_mem}, scan {scan_cpu}/{scan_mem})"
        );
        let (residents, incoming) = c.placement().occupant_sets(host);
        for id in c.vm_ids() {
            let vm = c.vm(id);
            debug_assert!(
                residents.contains(&id.0) == (vm.host == host),
                "invariant: {host} resident set out of sync for {id}"
            );
            let inbound = vm.migration.is_some_and(|m| m.target == host);
            debug_assert!(
                incoming.contains(&id.0) == inbound,
                "invariant: {host} incoming set out of sync for {id}"
            );
        }
    }
    for id in c.vm_ids() {
        let vm = c.vm(id);
        debug_assert!(
            vm.cpu_alloc.is_finite() && vm.cpu_alloc > 0.0,
            "invariant: {id} CPU allocation must be positive, got {}",
            vm.cpu_alloc
        );
        debug_assert!(
            vm.mem_alloc_mb.is_finite() && vm.mem_alloc_mb > 0.0,
            "invariant: {id} memory allocation must be positive, got {}",
            vm.mem_alloc_mb
        );
        for (name, v) in [
            ("cpu_used", vm.cpu_used),
            ("mem_used_mb", vm.mem_used_mb),
            ("effective_cpu_cap", vm.effective_cpu_cap),
            ("cpu_backlog_secs", vm.cpu_backlog_secs),
            ("paging_debt_mb", vm.paging_debt_mb),
        ] {
            debug_assert!(
                v.is_finite() && v >= 0.0,
                "invariant: {id} metric {name} must be finite and non-negative, got {v}"
            );
        }
        debug_assert!(
            vm.cpu_used <= vm.cpu_alloc + EPS,
            "invariant: {id} cpu_used {} exceeds allocation {}",
            vm.cpu_used,
            vm.cpu_alloc
        );
        debug_assert!(
            vm.mem_used_mb <= vm.mem_alloc_mb + EPS,
            "invariant: {id} mem_used_mb {} exceeds allocation {}",
            vm.mem_used_mb,
            vm.mem_alloc_mb
        );
        debug_assert!(
            vm.cpu_backlog_secs <= CPU_BACKLOG_CAP_SECS + EPS,
            "invariant: {id} backlog {} exceeds cap {CPU_BACKLOG_CAP_SECS}",
            vm.cpu_backlog_secs
        );
        if let Some(m) = vm.migration {
            debug_assert!(
                m.target.0 < c.n_hosts(),
                "invariant: {id} migrating to unknown host {}",
                m.target
            );
            debug_assert!(
                m.target != vm.host,
                "invariant: {id} migration target equals source host {}",
                vm.host
            );
            debug_assert!(
                m.completes_at >= m.started_at,
                "invariant: {id} migration completes before it starts"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Demand, HostSpec};
    use prepare_metrics::Timestamp;

    #[test]
    fn healthy_cluster_validates() {
        let mut c = Cluster::new();
        let h0 = c.add_host(HostSpec::vcl_default());
        let h1 = c.add_host(HostSpec::vcl_default());
        let vm = c.create_vm(h0, 100.0, 512.0).unwrap();
        c.apply_demand(
            vm,
            Demand {
                cpu: 150.0,
                mem_mb: 700.0,
                ..Demand::default()
            },
            Timestamp::ZERO,
        );
        c.begin_migration(vm, h1, Timestamp::ZERO).unwrap();
        debug_validate(&c); // explicit call on a state worth auditing
        c.advance(Timestamp::from_secs(120));
        debug_validate(&c);
    }
}
