//! Property-based invariants of the cluster simulator: no sequence of
//! hypervisor operations may oversubscribe a host, strand a VM, or drive
//! the demand-resolution integrators out of their bounds.

use prepare_cloudsim::{Cluster, Demand, HostId, HostSpec, WorstFit};
use prepare_metrics::{Timestamp, VmId};
use proptest::prelude::*;

/// One random hypervisor/application operation.
#[derive(Debug, Clone)]
enum Op {
    ScaleCpu { vm: usize, to: f64 },
    ScaleMem { vm: usize, to: f64 },
    Migrate { vm: usize, host: usize },
    Demand { vm: usize, cpu: f64, mem: f64 },
    Advance { dt: u64 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..4, 10.0f64..260.0).prop_map(|(vm, to)| Op::ScaleCpu { vm, to }),
        (0usize..4, 64.0f64..4200.0).prop_map(|(vm, to)| Op::ScaleMem { vm, to }),
        (0usize..4, 0usize..4).prop_map(|(vm, host)| Op::Migrate { vm, host }),
        (0usize..4, 0.0f64..300.0, 0.0f64..1500.0).prop_map(|(vm, cpu, mem)| Op::Demand {
            vm,
            cpu,
            mem
        }),
        (1u64..20).prop_map(|dt| Op::Advance { dt }),
    ]
}

/// Checks that no host's allocations (including in-flight migration
/// reservations) exceed its capacity.
fn assert_no_oversubscription(cluster: &Cluster) {
    for h in 0..cluster.n_hosts() {
        let (free_cpu, free_mem) = cluster.host_free(HostId(h));
        assert!(
            free_cpu >= -1e-6,
            "host {h} oversubscribed on CPU by {free_cpu}"
        );
        assert!(
            free_mem >= -1e-6,
            "host {h} oversubscribed on memory by {free_mem}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_operation_sequences_preserve_invariants(
        ops in proptest::collection::vec(arb_op(), 1..120),
    ) {
        let mut cluster = Cluster::new();
        for _ in 0..4 {
            cluster.add_host(HostSpec::vcl_default());
        }
        let vms: Vec<VmId> = (0..4)
            .map(|_| {
                cluster
                    .place_vm(&WorstFit, 100.0, 512.0)
                    .expect("four empty hosts fit four VMs")
            })
            .collect();

        let mut now = Timestamp::ZERO;
        for op in ops {
            match op {
                Op::ScaleCpu { vm, to } => {
                    // May legitimately fail (headroom, migration); it must
                    // never corrupt state.
                    let _ = cluster.scale_cpu(vms[vm], to, now);
                }
                Op::ScaleMem { vm, to } => {
                    let _ = cluster.scale_mem(vms[vm], to, now);
                }
                Op::Migrate { vm, host } => {
                    let _ = cluster.begin_migration(vms[vm], HostId(host), now);
                }
                Op::Demand { vm, cpu, mem } => {
                    let q = cluster.apply_demand(
                        vms[vm],
                        Demand { cpu, mem_mb: mem, ..Demand::default() },
                        now,
                    );
                    prop_assert!(q.cpu_fraction > 0.0 && q.cpu_fraction <= 1.0);
                    prop_assert!(q.mem_fraction > 0.0 && q.mem_fraction <= 1.0);
                    prop_assert!(q.throughput_factor() <= 1.0);
                    prop_assert!(q.queue_delay_secs >= 0.0);
                }
                Op::Advance { dt } => {
                    now = Timestamp::from_secs(now.as_secs() + dt);
                    cluster.advance(now);
                }
            }
            assert_no_oversubscription(&cluster);
            for &vm in &vms {
                let state = cluster.vm(vm);
                prop_assert!(state.cpu_alloc > 0.0);
                prop_assert!(state.mem_alloc_mb > 0.0);
                prop_assert!(state.cpu_used <= state.cpu_alloc + 1e-9);
                prop_assert!(state.mem_used_mb <= state.mem_alloc_mb + 1e-9);
                prop_assert!((0.0..=1.0).contains(&state.stress()));
                prop_assert!(
                    state.cpu_backlog_secs >= 0.0
                        && state.cpu_backlog_secs <= prepare_cloudsim::CPU_BACKLOG_CAP_SECS + 1e-9,
                    "backlog out of bounds: {}", state.cpu_backlog_secs
                );
                prop_assert!(state.paging_debt_mb >= 0.0);
                prop_assert!(state.host.0 < cluster.n_hosts());
            }
        }

        // Eventually every migration completes and reservations release.
        cluster.advance(Timestamp::from_secs(now.as_secs() + 1000));
        for &vm in &vms {
            prop_assert!(!cluster.vm(vm).is_migrating());
        }
        assert_no_oversubscription(&cluster);
    }

    #[test]
    fn paging_debt_always_drains_after_pressure_ends(
        overflow in 1.0f64..2000.0,
        hold in 1u64..50,
    ) {
        let mut cluster = Cluster::new();
        let host = cluster.add_host(HostSpec::vcl_default());
        let vm = cluster.create_vm(host, 100.0, 512.0).expect("fits");
        // Thrash for `hold` ticks.
        for t in 0..hold {
            cluster.apply_demand(
                vm,
                Demand { mem_mb: 512.0 + overflow, ..Demand::default() },
                Timestamp::from_secs(t),
            );
        }
        prop_assert!(cluster.vm(vm).paging_debt_mb > 0.0);
        // Relieve pressure; debt must strictly decrease to zero.
        let mut last = f64::INFINITY;
        for t in hold..(hold + 400) {
            cluster.apply_demand(
                vm,
                Demand { mem_mb: 100.0, ..Demand::default() },
                Timestamp::from_secs(t),
            );
            let debt = cluster.vm(vm).paging_debt_mb;
            prop_assert!(debt <= last + 1e-9, "debt must not grow after relief");
            last = debt;
            if debt == 0.0 {
                break;
            }
        }
        prop_assert_eq!(cluster.vm(vm).paging_debt_mb, 0.0, "debt never drained");
    }
}
