//! Property tests of the deterministic shard/merge layer: the parallel
//! engine must be a *function of its inputs* — never of worker count,
//! shard processing order, or scheduling. These are the laws the
//! workspace-level differential tests rely on when they assert that
//! `workers ∈ {1, 2, 7}` produce byte-identical control-loop traces.

use prepare_par::{par_for_each_mut, par_map, shard_indices, ParConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // The fixed partition covers `0..n` exactly once, for any worker
    // count: no item is dropped, duplicated, or moved between shards.
    #[test]
    fn sharding_is_a_partition(n in 0usize..200, workers in 1usize..12) {
        let shards = shard_indices(n, workers);
        let mut seen: Vec<usize> = shards.iter().flatten().copied().collect();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..n).collect::<Vec<_>>());
        // Within a shard, order follows input order (strictly ascending).
        for shard in &shards {
            prop_assert!(shard.windows(2).all(|p| p[0] < p[1]));
        }
    }

    // The partition is a pure function of `(n, workers)` — two calls
    // agree, so shard assignment can never depend on ambient state.
    #[test]
    fn sharding_is_stable(n in 0usize..200, workers in 1usize..12) {
        prop_assert_eq!(shard_indices(n, workers), shard_indices(n, workers));
    }

    // Order preservation: `par_map` returns exactly the sequential map,
    // in input order, for every worker count.
    #[test]
    fn par_map_is_the_sequential_map(
        items in proptest::collection::vec(0u64..1_000_000, 0..150),
        workers in 1usize..12,
    ) {
        let expect: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(2654435761).rotate_left(7)).collect();
        let got = par_map(
            &ParConfig::with_workers(workers),
            items,
            |x| x.wrapping_mul(2654435761).rotate_left(7),
        );
        prop_assert_eq!(got, expect);
    }

    // Permutation invariance of the merge: processing the shards in any
    // order and merging keyed on the original index reconstructs input
    // order. This is the exact argument that makes thread scheduling
    // invisible: whichever worker finishes first, the merge key wins.
    #[test]
    fn merge_is_permutation_invariant(
        n in 0usize..150,
        workers in 1usize..12,
        swap_a in 0usize..12,
        swap_b in 0usize..12,
    ) {
        let mut shards = shard_indices(n, workers);
        // Adversarial completion order: permute the shard list before the
        // merge, as if workers finished in a different order.
        let k = shards.len();
        shards.swap(swap_a % k, swap_b % k);
        shards.rotate_left(swap_b % k.max(1));
        let mut merged: Vec<usize> = shards.into_iter().flatten().collect();
        merged.sort_unstable(); // the ordered merge, keyed on original index
        prop_assert_eq!(merged, (0..n).collect::<Vec<_>>());
    }

    // In-place fan-out agrees with the sequential loop for every worker
    // count (each element transformed exactly once, order irrelevant by
    // independence).
    #[test]
    fn par_for_each_mut_is_the_sequential_loop(
        items in proptest::collection::vec(0u64..1_000_000, 0..150),
        workers in 1usize..12,
    ) {
        let mut items = items;
        let mut expect = items.clone();
        for x in expect.iter_mut() {
            *x = x.wrapping_add(17).rotate_right(3);
        }
        par_for_each_mut(&ParConfig::with_workers(workers), &mut items, |x| {
            *x = x.wrapping_add(17).rotate_right(3);
        });
        prop_assert_eq!(items, expect);
    }
}
