//! Deterministic work sharding for the PREPARE control loop.
//!
//! PREPARE maintains one independent model pipeline per VM (2-dependent
//! Markov chains plus a TAN classifier), so training, prediction, and
//! diagnosis are embarrassingly parallel across VMs. The hard requirement
//! is the replay contract the rest of the workspace is built around: the
//! same seed must produce byte-identical traces *regardless of how many
//! workers run the loop*. This crate provides exactly that — a std-only
//! fork/join layer (no rayon; the workspace is offline) whose output is a
//! pure function of its input, never of scheduling:
//!
//! 1. **Fixed partition.** Item `i` always goes to shard `i % workers`
//!    ([`shard_indices`]). The assignment depends only on the item's
//!    position (for per-VM work, its position in the sorted `VmId` order)
//!    and the worker count — never on thread timing.
//! 2. **Ordered merge.** Workers return `(index, result)` pairs; the
//!    merge sorts by the original index ([`par_map`]), so results come
//!    back in input order no matter which worker finished first.
//! 3. **Sequential identity.** `workers = 1` takes a plain `for` loop —
//!    bit-for-bit the pre-parallel code path — and because each worker
//!    applies the same pure function to the same items, every other
//!    worker count produces the same bytes. The workspace's differential
//!    tests (`tests/differential.rs`) assert this end to end.
//!
//! Worker panics are re-raised on the caller thread via
//! [`std::panic::resume_unwind`], so a failing debug assertion inside a
//! model surfaces identically under any worker count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::num::NonZeroUsize;

/// How many OS worker threads the parallel engine may use.
///
/// `workers = 1` is the sequential path (no threads are spawned at all);
/// any larger count fans work out over `std::thread::scope`. The result
/// of every operation in this crate is identical for every `workers`
/// value — the knob trades wall-clock time only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParConfig {
    /// Maximum number of concurrent workers (clamped to at least 1).
    pub workers: usize,
}

/// Environment variable overriding the default worker count
/// (`ParConfig::default()` / [`ParConfig::from_env`]).
pub const WORKERS_ENV: &str = "PREPARE_WORKERS";

impl ParConfig {
    /// The sequential configuration: one worker, no thread spawns.
    pub const fn serial() -> Self {
        ParConfig { workers: 1 }
    }

    /// A configuration using exactly `workers` threads (at least 1).
    pub fn with_workers(workers: usize) -> Self {
        ParConfig {
            workers: workers.max(1),
        }
    }

    /// Reads the worker count from the `PREPARE_WORKERS` environment
    /// variable, falling back to [`std::thread::available_parallelism`]
    /// (and to 1 when even that is unavailable).
    ///
    /// The environment is read once per call, not cached: the CI harness
    /// runs the whole test suite under `PREPARE_WORKERS=1` and
    /// `PREPARE_WORKERS=4` and diffs the traces.
    pub fn from_env() -> Self {
        let from_env = std::env::var(WORKERS_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&w| w >= 1);
        let workers = from_env.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        });
        ParConfig { workers }
    }

    /// The worker count actually used for `n` items: never more workers
    /// than items, never fewer than one.
    pub fn effective_workers(&self, n: usize) -> usize {
        self.workers.max(1).min(n.max(1))
    }
}

impl Default for ParConfig {
    fn default() -> Self {
        ParConfig::from_env()
    }
}

/// The fixed partition underlying every parallel operation: item `i`
/// belongs to shard `i % workers`. Returns one index list per shard;
/// within a shard, indices are strictly ascending.
///
/// Exposed so the property tests can assert partition laws directly: the
/// shards are disjoint, cover `0..n` exactly, and are independent of
/// anything but `(n, workers)`.
pub fn shard_indices(n: usize, workers: usize) -> Vec<Vec<usize>> {
    let w = workers.max(1).min(n.max(1));
    let mut shards: Vec<Vec<usize>> = (0..w).map(|_| Vec::with_capacity(n.div_ceil(w))).collect();
    for i in 0..n {
        if let Some(shard) = shards.get_mut(i % w) {
            shard.push(i);
        }
    }
    shards
}

/// Contiguous chunk partition for arena-backed (struct-of-arrays) state:
/// splits `0..n` into at most `workers` half-open ranges, in ascending
/// order, with sizes differing by at most one (the first `n % w` ranges
/// get the extra element). Unlike the strided [`shard_indices`]
/// partition, each worker streams one *contiguous* slice of the arena —
/// the cache-friendly layout the incremental fleet trainer shards its
/// per-slot rebuilds over.
///
/// Like every partition in this crate the result is a pure function of
/// `(n, workers)`; `n == 0` yields no ranges.
pub fn chunk_ranges(n: usize, workers: usize) -> Vec<std::ops::Range<usize>> {
    if n == 0 {
        return Vec::new();
    }
    let w = workers.max(1).min(n);
    let base = n / w;
    let extra = n % w;
    let mut ranges = Vec::with_capacity(w);
    let mut start = 0;
    for k in 0..w {
        let len = base + usize::from(k < extra);
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

/// Applies `f` to every item and returns the results **in input order**,
/// using up to `cfg.workers` threads.
///
/// Determinism: the output is exactly `items.map(f)` for any worker
/// count. With one (effective) worker no thread is spawned and the items
/// are mapped in a plain sequential loop.
pub fn par_map<T, R, F>(cfg: &ParConfig, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let workers = cfg.effective_workers(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }

    // Fixed partition: item i → shard i % workers, tagged with i.
    let mut shards: Vec<Vec<(usize, T)>> = (0..workers)
        .map(|_| Vec::with_capacity(n.div_ceil(workers)))
        .collect();
    for (i, item) in items.into_iter().enumerate() {
        if let Some(shard) = shards.get_mut(i % workers) {
            shard.push((i, item));
        }
    }

    // Fan out, then merge ordered by the original index.
    let mut tagged: Vec<(usize, R)> = Vec::with_capacity(n);
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = shards
            .into_iter()
            .map(|shard| {
                scope.spawn(move || {
                    shard
                        .into_iter()
                        .map(|(i, item)| (i, f(item)))
                        .collect::<Vec<(usize, R)>>()
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(part) => tagged.extend(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    tagged.sort_unstable_by_key(|&(i, _)| i);
    tagged.into_iter().map(|(_, r)| r).collect()
}

/// Applies `f` to every element of `items` in place, sharded across up to
/// `cfg.workers` threads.
///
/// Elements must be mutually independent (each `f` call touches only its
/// own element); under that contract the final state of `items` is
/// identical for every worker count. With one (effective) worker the
/// items are visited in a plain sequential loop.
pub fn par_for_each_mut<T, F>(cfg: &ParConfig, items: &mut [T], f: F)
where
    T: Send,
    F: Fn(&mut T) + Sync,
{
    let n = items.len();
    let workers = cfg.effective_workers(n);
    if workers <= 1 {
        for item in items.iter_mut() {
            f(item);
        }
        return;
    }

    // Fixed partition over &mut references: reference i → shard i % workers.
    let mut shards: Vec<Vec<&mut T>> = (0..workers)
        .map(|_| Vec::with_capacity(n.div_ceil(workers)))
        .collect();
    for (i, item) in items.iter_mut().enumerate() {
        if let Some(shard) = shards.get_mut(i % workers) {
            shard.push(item);
        }
    }

    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = shards
            .into_iter()
            .map(|shard| {
                scope.spawn(move || {
                    for item in shard {
                        f(item);
                    }
                })
            })
            .collect();
        for handle in handles {
            if let Err(payload) = handle.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_config_is_one_worker() {
        assert_eq!(ParConfig::serial().workers, 1);
        assert_eq!(ParConfig::with_workers(0).workers, 1);
        assert_eq!(ParConfig::with_workers(7).workers, 7);
    }

    #[test]
    fn effective_workers_is_bounded_by_items() {
        let cfg = ParConfig::with_workers(8);
        assert_eq!(cfg.effective_workers(0), 1);
        assert_eq!(cfg.effective_workers(3), 3);
        assert_eq!(cfg.effective_workers(100), 8);
        assert_eq!(ParConfig::serial().effective_workers(100), 1);
    }

    #[test]
    fn shard_indices_partition_0_to_n() {
        for n in [0usize, 1, 2, 7, 16, 33] {
            for w in 1..=9usize {
                let shards = shard_indices(n, w);
                assert_eq!(shards.len(), w.min(n.max(1)));
                let mut seen: Vec<usize> = shards.iter().flatten().copied().collect();
                seen.sort_unstable();
                assert_eq!(seen, (0..n).collect::<Vec<_>>(), "n={n} w={w}");
                for shard in &shards {
                    assert!(shard.windows(2).all(|p| p[0] < p[1]), "shard not ascending");
                }
            }
        }
    }

    #[test]
    fn chunk_ranges_cover_0_to_n_contiguously() {
        for n in [0usize, 1, 2, 7, 16, 33] {
            for w in 1..=9usize {
                let ranges = chunk_ranges(n, w);
                if n == 0 {
                    assert!(ranges.is_empty());
                    continue;
                }
                assert_eq!(ranges.len(), w.min(n));
                assert_eq!(ranges[0].start, 0, "n={n} w={w}");
                assert_eq!(ranges.last().unwrap().end, n);
                for pair in ranges.windows(2) {
                    assert_eq!(pair[0].end, pair[1].start, "gap at n={n} w={w}");
                }
                let sizes: Vec<usize> = ranges.iter().map(ExactSizeIterator::len).collect();
                let min = sizes.iter().min().unwrap();
                let max = sizes.iter().max().unwrap();
                assert!(max - min <= 1, "unbalanced chunks {sizes:?}");
            }
        }
    }

    #[test]
    fn par_map_matches_sequential_map() {
        let items: Vec<u64> = (0..57).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for w in [1usize, 2, 3, 4, 7, 8, 64] {
            let got = par_map(&ParConfig::with_workers(w), items.clone(), |x| x * x + 1);
            assert_eq!(got, expect, "diverged at workers={w}");
        }
    }

    #[test]
    fn par_map_preserves_order_under_uneven_work() {
        // Make early items the slowest so a naive first-done-first-merged
        // scheme would reorder; the ordered merge must not.
        let items: Vec<usize> = (0..24).collect();
        let got = par_map(&ParConfig::with_workers(6), items.clone(), |i| {
            let spins = (24 - i) * 2000;
            let mut acc = 0u64;
            for k in 0..spins {
                acc = acc.wrapping_add(k as u64);
            }
            (i, acc.wrapping_mul(0)) // acc consumed so the loop is not optimized out
        });
        let order: Vec<usize> = got.into_iter().map(|(i, _)| i).collect();
        assert_eq!(order, items);
    }

    #[test]
    fn par_for_each_mut_touches_every_item_once() {
        for w in [1usize, 2, 5, 8] {
            let mut items: Vec<u32> = (0..41).collect();
            par_for_each_mut(&ParConfig::with_workers(w), &mut items, |x| *x += 100);
            let expect: Vec<u32> = (0..41).map(|x| x + 100).collect();
            assert_eq!(items, expect, "diverged at workers={w}");
        }
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u8> = par_map(&ParConfig::with_workers(4), Vec::<u8>::new(), |x| x);
        assert!(out.is_empty());
        let mut none: [u8; 0] = [];
        par_for_each_mut(&ParConfig::with_workers(4), &mut none, |_| {});
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            par_map(&ParConfig::with_workers(3), vec![1, 2, 3], |x| {
                assert!(x != 2, "boom on {x}");
                x
            })
        });
        assert!(result.is_err(), "worker panic must reach the caller");
    }

    #[test]
    fn from_env_honours_override() {
        // Serialized against other env readers by running in one test.
        std::env::set_var(WORKERS_ENV, "3");
        assert_eq!(ParConfig::from_env().workers, 3);
        std::env::set_var(WORKERS_ENV, "0");
        assert!(ParConfig::from_env().workers >= 1, "0 falls back");
        std::env::set_var(WORKERS_ENV, "nonsense");
        assert!(ParConfig::from_env().workers >= 1, "garbage falls back");
        std::env::remove_var(WORKERS_ENV);
        assert!(ParConfig::from_env().workers >= 1);
    }
}
