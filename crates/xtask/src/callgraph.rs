//! Name-resolved intra-workspace call graph.
//!
//! Built on the function-item model: method calls are narrowed by
//! receiver type (`self`, typed params, one-step `let` inference), path
//! calls resolve through `Self`, workspace type names, `use` aliases and
//! crate identifiers, and free calls resolve same-crate first. Where a
//! receiver's type is unknown, the resolver falls back to *every*
//! workspace method of that name — deliberately over-approximate, so the
//! transitive hot-path rule errs toward flagging — except for ubiquitous
//! std names (`iter`, `len`, `fill`, …) which would connect everything
//! to everything.

use crate::items::{type_head, FileItems};
use crate::lexer::TokenKind;
use crate::scan::SourceFile;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Global function id: index into [`Graph::fns`].
pub type FnId = usize;

/// Where a function lives: `files[file]` / `items[file].fns[item]`.
#[derive(Debug, Clone, Copy)]
pub struct FnRef {
    /// Index into the scanned file list.
    pub file: usize,
    /// Index into that file's `FileItems::fns`.
    pub item: usize,
}

/// The workspace call graph.
pub struct Graph {
    /// Flattened function list in (file, item) order.
    pub fns: Vec<FnRef>,
    /// `edges[caller]` → sorted callee ids.
    pub edges: Vec<Vec<FnId>>,
}

/// One `name(…)` call site inside a function body, with its resolution.
/// The dataflow engine maps argument spans to callee parameters through
/// these; `callees` is empty for std/unresolvable calls.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Code position of the callee name token.
    pub pos: usize,
    /// Code position of the argument list's `(`.
    pub paren: usize,
    /// Workspace functions this call can reach (empty = std/unknown).
    pub callees: Vec<FnId>,
    /// Code position of the receiver identifier for `recv.name(…)`
    /// method calls whose receiver is a plain identifier.
    pub recv: Option<usize>,
}

/// Per-function call sites, indexed by [`FnId`].
pub type Sites = Vec<Vec<CallSite>>;

/// Method names so common in std that an unknown-receiver fallback edge
/// on them would connect the graph into one blob. Calls to these through
/// an *unresolved* receiver create no edge; a receiver narrowed to a
/// workspace type still resolves precisely.
const STD_METHODS: &[&str] = &[
    "abs",
    "all",
    "and_then",
    "any",
    "as_bytes",
    "as_mut",
    "as_ref",
    "as_secs",
    "as_slice",
    "borrow",
    "ceil",
    "chain",
    "chars",
    "checked_div",
    "checked_sub",
    "chunks",
    "clear",
    "cloned",
    "cmp",
    "collect",
    "contains",
    "contains_key",
    "copied",
    "copy_from_slice",
    "count",
    "dedup",
    "div_euclid",
    "drain",
    "entry",
    "enumerate",
    "eq",
    "exp",
    "extend",
    "fill",
    "filter",
    "filter_map",
    "find",
    "find_map",
    "first",
    "flat_map",
    "flatten",
    "floor",
    "fmt",
    "fold",
    "get",
    "get_mut",
    "get_or_init",
    "hash",
    "insert",
    "into_iter",
    "is_empty",
    "is_finite",
    "is_nan",
    "is_some",
    "is_none",
    "iter",
    "iter_mut",
    "join",
    "keys",
    "last",
    "len",
    "ln",
    "log10",
    "log2",
    "map",
    "map_or",
    "max",
    "max_by",
    "max_by_key",
    "min",
    "min_by",
    "min_by_key",
    "ne",
    "next",
    "nth",
    "ok_or",
    "ok_or_else",
    "or_default",
    "or_insert",
    "or_insert_with",
    "partial_cmp",
    "peekable",
    "pop",
    "position",
    "powf",
    "powi",
    "product",
    "push",
    "push_str",
    "rem_euclid",
    "remove",
    "resize",
    "rev",
    "round",
    "rposition",
    "saturating_add",
    "saturating_sub",
    "skip",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "split_at",
    "split_at_mut",
    "sqrt",
    "starts_with",
    "step_by",
    "sum",
    "swap",
    "take",
    "to_string",
    "total_cmp",
    "trim",
    "trunc",
    "truncate",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "values",
    "values_mut",
    "windows",
    "wrapping_add",
    "zip",
];

/// Keywords that read like `name(` but are not calls.
const CALL_KEYWORDS: &[&str] = &[
    "as", "await", "box", "else", "fn", "for", "if", "in", "let", "loop", "match", "move",
    "return", "while",
];

/// Crate directory prefix of a workspace-relative path: `crates/markov`
/// for `crates/markov/src/simple.rs`, empty for root-package files.
pub fn crate_dir(rel: &str) -> String {
    let mut parts = rel.split('/');
    match (parts.next(), parts.next()) {
        (Some(a @ ("crates" | "shims")), Some(b)) => format!("{a}/{b}"),
        _ => String::new(),
    }
}

/// Builds the call graph plus every function's resolved call sites (one
/// resolution pass serves both the graph and the dataflow engine).
/// `crate_map` maps crate identifiers (`prepare_markov`) to their
/// directory prefix (`crates/markov`).
pub fn build_with_sites(
    files: &[SourceFile],
    items: &[FileItems],
    crate_map: &BTreeMap<String, String>,
) -> (Graph, Sites) {
    let mut fns: Vec<FnRef> = Vec::new();
    for (fi, fitems) in items.iter().enumerate() {
        for ii in 0..fitems.fns.len() {
            fns.push(FnRef { file: fi, item: ii });
        }
    }

    // Indexes.
    let mut workspace_types: BTreeSet<&str> = BTreeSet::new();
    let mut method_index: BTreeMap<(&str, &str), Vec<FnId>> = BTreeMap::new();
    let mut method_by_name: BTreeMap<&str, Vec<FnId>> = BTreeMap::new();
    let mut free_index: BTreeMap<(String, &str), Vec<FnId>> = BTreeMap::new();
    let mut free_by_name: BTreeMap<&str, Vec<FnId>> = BTreeMap::new();
    for (id, r) in fns.iter().enumerate() {
        let Some(item) = items.get(r.file).and_then(|x| x.fns.get(r.item)) else {
            continue;
        };
        let dir = files.get(r.file).map(|f| crate_dir(&f.rel_path));
        match (&item.self_ty, dir) {
            (Some(ty), _) => {
                workspace_types.insert(ty.as_str());
                method_index
                    .entry((ty.as_str(), item.name.as_str()))
                    .or_default()
                    .push(id);
                method_by_name
                    .entry(item.name.as_str())
                    .or_default()
                    .push(id);
            }
            (None, Some(dir)) => {
                free_index
                    .entry((dir, item.name.as_str()))
                    .or_default()
                    .push(id);
                free_by_name.entry(item.name.as_str()).or_default().push(id);
            }
            _ => {}
        }
    }

    let resolver = Resolver {
        files,
        items,
        crate_map,
        workspace_types: &workspace_types,
        method_index: &method_index,
        method_by_name: &method_by_name,
        free_index: &free_index,
        free_by_name: &free_by_name,
    };

    let mut edges: Vec<Vec<FnId>> = Vec::with_capacity(fns.len());
    let mut sites: Sites = Vec::with_capacity(fns.len());
    for r in &fns {
        let s = resolver.sites_of(*r);
        let mut out: BTreeSet<FnId> = BTreeSet::new();
        for site in &s {
            out.extend(site.callees.iter().copied());
        }
        edges.push(out.into_iter().collect());
        sites.push(s);
    }
    (Graph { fns, edges }, sites)
}

impl Graph {
    /// Every function reachable from `root` (including it), each with
    /// the call chain that reaches it. Cycle-tolerant BFS: each node is
    /// visited once, with its shortest chain.
    pub fn reachable_with_chains(&self, root: FnId) -> Vec<(FnId, Vec<FnId>)> {
        let mut out: Vec<(FnId, Vec<FnId>)> = Vec::new();
        let mut seen: BTreeSet<FnId> = BTreeSet::new();
        let mut queue: VecDeque<(FnId, Vec<FnId>)> = VecDeque::new();
        queue.push_back((root, vec![root]));
        seen.insert(root);
        while let Some((id, chain)) = queue.pop_front() {
            for &callee in self.edges.get(id).map(Vec::as_slice).unwrap_or(&[]) {
                if seen.insert(callee) {
                    let mut next = chain.clone();
                    next.push(callee);
                    queue.push_back((callee, next));
                }
            }
            out.push((id, chain));
        }
        out
    }
}

struct Resolver<'a> {
    files: &'a [SourceFile],
    items: &'a [FileItems],
    crate_map: &'a BTreeMap<String, String>,
    workspace_types: &'a BTreeSet<&'a str>,
    method_index: &'a BTreeMap<(&'a str, &'a str), Vec<FnId>>,
    method_by_name: &'a BTreeMap<&'a str, Vec<FnId>>,
    free_index: &'a BTreeMap<(String, &'a str), Vec<FnId>>,
    free_by_name: &'a BTreeMap<&'a str, Vec<FnId>>,
}

/// Token-cursor helpers over one file's code view.
struct View<'a> {
    f: &'a SourceFile,
}

impl<'a> View<'a> {
    fn text(&self, k: usize) -> &'a str {
        self.f
            .code
            .get(k)
            .map(|&i| self.f.tokens[i].text(&self.f.text))
            .unwrap_or("")
    }

    fn kind(&self, k: usize) -> Option<TokenKind> {
        self.f.code.get(k).map(|&i| self.f.tokens[i].kind)
    }

    fn is_punct(&self, k: usize, c: char) -> bool {
        self.kind(k) == Some(TokenKind::Punct) && self.text(k).starts_with(c)
    }

    fn is_ident(&self, k: usize) -> bool {
        self.kind(k) == Some(TokenKind::Ident)
    }

    /// Adjacent `::` at positions `k`, `k+1`.
    fn is_path_sep(&self, k: usize) -> bool {
        if !(self.is_punct(k, ':') && self.is_punct(k + 1, ':')) {
            return false;
        }
        match (self.f.code.get(k), self.f.code.get(k + 1)) {
            (Some(&i), Some(&j)) => self.f.tokens[i].end == self.f.tokens[j].start,
            _ => false,
        }
    }
}

impl<'a> Resolver<'a> {
    fn sites_of(&self, r: FnRef) -> Vec<CallSite> {
        let (Some(file), Some(fitems)) = (self.files.get(r.file), self.items.get(r.file)) else {
            return Vec::new();
        };
        let Some(item) = fitems.fns.get(r.item) else {
            return Vec::new();
        };
        let Some((open, close)) = item.body else {
            return Vec::new();
        };
        let v = View { f: file };
        let own_dir = crate_dir(&file.rel_path);
        let env = self.build_env(&v, fitems, r.item, open, close);

        let mut sites: Vec<CallSite> = Vec::new();
        let mut j = open + 1;
        while j < close {
            if !v.is_ident(j) {
                j += 1;
                continue;
            }
            let w = v.text(j);
            if CALL_KEYWORDS.contains(&w) {
                j += 1;
                continue;
            }
            // `name(`, or turbofish `name::<T>(`.
            let after = if v.is_path_sep(j + 1) && v.is_punct(j + 3, '<') {
                self.skip_angles(&v, j + 3)
            } else {
                j + 1
            };
            if !v.is_punct(after, '(') {
                j += 1;
                continue;
            }
            let mut out: BTreeSet<FnId> = BTreeSet::new();
            let mut recv = None;
            let mut is_call = true;
            if j > 0 && v.is_punct(j - 1, '.') {
                // Method call: narrow by receiver when possible.
                self.resolve_method(&v, &env, j, w, &mut out);
                recv = j.checked_sub(2).filter(|&k| v.is_ident(k));
            } else if j >= 2 && v.is_path_sep(j - 2) {
                self.resolve_path(
                    &v,
                    fitems,
                    &own_dir,
                    item.self_ty.as_deref(),
                    j,
                    w,
                    &mut out,
                );
            } else if !(j > 0 && v.text(j - 1) == "fn") {
                self.resolve_free(fitems, &own_dir, w, &mut out);
            } else {
                is_call = false; // nested `fn name(` definition
            }
            if is_call {
                sites.push(CallSite {
                    pos: j,
                    paren: after,
                    callees: out.into_iter().collect(),
                    recv,
                });
            }
            j = after;
        }
        sites
    }

    fn skip_angles(&self, v: &View<'a>, k: usize) -> usize {
        let mut depth = 0i64;
        let mut j = k;
        while j < v.f.code.len() {
            if v.is_punct(j, '<') {
                depth += 1;
            } else if v.is_punct(j, '>') {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            } else if v.is_punct(j, ';') || v.is_punct(j, '{') {
                return j;
            }
            j += 1;
        }
        j
    }

    /// Receiver-typed environment: `self`, typed params, and one-step
    /// `let` inference (`let table = self.table();` learns the return
    /// type of the resolved method).
    fn build_env(
        &self,
        v: &View<'a>,
        fitems: &FileItems,
        item_idx: usize,
        open: usize,
        close: usize,
    ) -> BTreeMap<String, String> {
        let mut env: BTreeMap<String, String> = BTreeMap::new();
        let Some(item) = fitems.fns.get(item_idx) else {
            return env;
        };
        if let Some(ty) = &item.self_ty {
            env.insert("self".into(), ty.clone());
        }
        for p in &item.params {
            if let Some(head) = type_head(&p.ty) {
                if self.workspace_types.contains(head.as_str()) {
                    env.insert(p.name.clone(), head);
                }
            }
        }
        // One-step lets.
        let mut j = open + 1;
        while j < close {
            if v.text(j) != "let" {
                j += 1;
                continue;
            }
            let mut n = j + 1;
            if v.text(n) == "mut" {
                n += 1;
            }
            if !v.is_ident(n) {
                j += 1;
                continue;
            }
            let name = v.text(n).to_string();
            if v.is_punct(n + 1, ':') && !v.is_path_sep(n + 1) {
                // `let x: Ty = …` — explicit annotation.
                let mut t = n + 2;
                let mut ty = String::new();
                while t < close && !v.is_punct(t, '=') && !v.is_punct(t, ';') {
                    if v.is_ident(t) && !matches!(v.text(t), "mut" | "dyn") {
                        ty = v.text(t).to_string();
                        break;
                    }
                    t += 1;
                }
                if self.workspace_types.contains(ty.as_str()) {
                    env.insert(name, ty);
                }
            } else if v.is_punct(n + 1, '=') {
                // `let x = [&]self.m(…)` / `let x = Ty::m(…)`.
                let mut t = n + 2;
                while v.is_punct(t, '&') || v.text(t) == "mut" {
                    t += 1;
                }
                let head = if v.text(t) == "self" && v.is_punct(t + 1, '.') && v.is_ident(t + 2) {
                    env.get("self")
                        .and_then(|st| self.ret_head_of(st, v.text(t + 2)))
                } else if v.is_ident(t) && v.is_path_sep(t + 1) && v.is_ident(t + 3) {
                    let q = v.text(t);
                    if self.workspace_types.contains(q) {
                        self.ret_head_of(q, v.text(t + 3))
                    } else {
                        None
                    }
                } else {
                    None
                };
                if let Some(h) = head {
                    if self.workspace_types.contains(h.as_str()) {
                        env.insert(name, h);
                    }
                }
            }
            j += 1;
        }
        env
    }

    /// Return-type head of the first method `(ty, name)`, if resolvable.
    fn ret_head_of(&self, ty: &str, name: &str) -> Option<String> {
        let ids = self.method_index.get(&(ty, name))?;
        let &id = ids.first()?;
        self.item_of(id).and_then(|i| i.ret_head())
    }

    /// Item behind a global id (ids are assigned file-major).
    fn item_of(&self, id: FnId) -> Option<&'a crate::items::FnItem> {
        let mut n = id;
        for fitems in self.items {
            if n < fitems.fns.len() {
                return fitems.fns.get(n);
            }
            n -= fitems.fns.len();
        }
        None
    }

    fn resolve_method(
        &self,
        v: &View<'a>,
        env: &BTreeMap<String, String>,
        j: usize,
        w: &str,
        out: &mut BTreeSet<FnId>,
    ) {
        // Receiver directly before the dot.
        let recv = j.checked_sub(2).map(|k| v.text(k)).unwrap_or("");
        if let Some(ty) = env.get(recv) {
            if let Some(ids) = self.method_index.get(&(ty.as_str(), w)) {
                out.extend(ids.iter().copied());
                return;
            }
            // Known workspace receiver without such a method: a std
            // trait method (`.cmp`, `.clone`…); no workspace edge.
            return;
        }
        // Unknown receiver: over-approximate by name, minus std names.
        if STD_METHODS.contains(&w) {
            return;
        }
        if let Some(ids) = self.method_by_name.get(w) {
            out.extend(ids.iter().copied());
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn resolve_path(
        &self,
        v: &View<'a>,
        fitems: &FileItems,
        own_dir: &str,
        self_ty: Option<&str>,
        j: usize,
        w: &str,
        out: &mut BTreeSet<FnId>,
    ) {
        // Collect the full path: segments before `w`.
        let mut segs: Vec<&str> = Vec::new();
        let mut k = j;
        while k >= 2 && v.is_path_sep(k - 2) && k >= 3 && v.is_ident(k - 3) {
            segs.push(v.text(k - 3));
            k -= 3;
        }
        segs.reverse();
        let Some(&qual) = segs.last() else {
            return;
        };
        let first = segs.first().copied().unwrap_or(qual);

        // `Self::helper()`.
        if qual == "Self" {
            if let Some(ty) = self_ty {
                if let Some(ids) = self.method_index.get(&(ty, w)) {
                    out.extend(ids.iter().copied());
                }
            }
            return;
        }
        // `Type::method()` on a workspace type.
        if self.workspace_types.contains(qual) {
            if let Some(ids) = self.method_index.get(&(qual, w)) {
                out.extend(ids.iter().copied());
            }
            return;
        }
        // `Alias::method()` through a use alias.
        if let Some(target) = fitems.uses.get(qual) {
            if let Some(last) = target.last() {
                if self.workspace_types.contains(last.as_str()) {
                    if let Some(ids) = self.method_index.get(&(last.as_str(), w)) {
                        out.extend(ids.iter().copied());
                    }
                    return;
                }
            }
            if let Some(dir) = target.first().and_then(|f| self.crate_map.get(f.as_str())) {
                if let Some(ids) = self.free_index.get(&(dir.clone(), w)) {
                    out.extend(ids.iter().copied());
                }
                return;
            }
        }
        // `prepare_markov::free_fn()` / `crate::module::free_fn()`.
        let dir = if matches!(first, "crate" | "self" | "super") {
            Some(own_dir.to_string())
        } else {
            self.crate_map.get(first).cloned()
        };
        if let Some(dir) = dir {
            if let Some(ids) = self.free_index.get(&(dir, w)) {
                out.extend(ids.iter().copied());
            }
            return;
        }
        // Bare module qualifier (`snapshot::normalize(…)`): same crate.
        if qual.chars().next().is_some_and(char::is_lowercase) {
            if let Some(ids) = self.free_index.get(&(own_dir.to_string(), w)) {
                out.extend(ids.iter().copied());
            }
        }
    }

    fn resolve_free(&self, fitems: &FileItems, own_dir: &str, w: &str, out: &mut BTreeSet<FnId>) {
        if let Some(ids) = self.free_index.get(&(own_dir.to_string(), w)) {
            out.extend(ids.iter().copied());
            return;
        }
        if let Some(target) = fitems.uses.get(w) {
            if let Some(dir) = target.first().and_then(|f| self.crate_map.get(f.as_str())) {
                let name = target.last().map(String::as_str).unwrap_or(w);
                if let Some(ids) = self.free_index.get(&(dir.clone(), name)) {
                    out.extend(ids.iter().copied());
                }
                return;
            }
            // `use crate::helpers::clamp;` — same-crate import.
            if target.first().map(String::as_str) == Some("crate") {
                let name = target.last().map(String::as_str).unwrap_or(w);
                if let Some(ids) = self.free_index.get(&(own_dir.to_string(), name)) {
                    out.extend(ids.iter().copied());
                }
                return;
            }
        }
        if let Some(ids) = self.free_by_name.get(w) {
            out.extend(ids.iter().copied());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::parse_file;
    use crate::scan::{analyze_for_tests, policy_for};

    fn workspace(sources: &[(&str, &str)]) -> (Vec<SourceFile>, Vec<FileItems>, Graph) {
        let files: Vec<SourceFile> = sources
            .iter()
            .map(|(rel, src)| analyze_for_tests((*rel).into(), (*src).into(), policy_for(rel)))
            .collect();
        let items: Vec<FileItems> = files.iter().map(parse_file).collect();
        let mut crate_map = BTreeMap::new();
        crate_map.insert("prepare_markov".to_string(), "crates/markov".to_string());
        crate_map.insert("prepare_tan".to_string(), "crates/tan".to_string());
        let (graph, _sites) = build_with_sites(&files, &items, &crate_map);
        (files, items, graph)
    }

    fn id_of(items: &[FileItems], graph: &Graph, name: &str) -> FnId {
        graph
            .fns
            .iter()
            .position(|r| items[r.file].fns[r.item].name == name)
            .expect("fn present")
    }

    #[test]
    fn self_and_param_narrowing() {
        let (_files, items, graph) = workspace(&[(
            "crates/markov/src/lib.rs",
            "\
struct Table;
impl Table {
    fn row(&self) {}
}
struct Chain;
impl Chain {
    fn table(&self) -> &Table { &Table }
    fn step(&self, table: &Table) {
        self.table();
        table.row();
    }
}
",
        )]);
        let step = id_of(&items, &graph, "step");
        let row = id_of(&items, &graph, "row");
        let table = id_of(&items, &graph, "table");
        assert_eq!(graph.edges[step], vec![row, table]);
    }

    #[test]
    fn one_step_let_inference() {
        let (_files, items, graph) = workspace(&[(
            "crates/markov/src/lib.rs",
            "\
struct Table;
impl Table {
    fn row(&self) {}
}
struct Chain;
impl Chain {
    fn table(&self) -> &Table { &Table }
    fn step(&self) {
        let table = self.table();
        table.row();
    }
}
",
        )]);
        let step = id_of(&items, &graph, "step");
        let row = id_of(&items, &graph, "row");
        assert!(graph.edges[step].contains(&row));
    }

    #[test]
    fn cycles_terminate() {
        let (_files, items, graph) = workspace(&[(
            "crates/markov/src/lib.rs",
            "fn a() { b(); }\nfn b() { a(); }\n",
        )]);
        let a = id_of(&items, &graph, "a");
        let b = id_of(&items, &graph, "b");
        let reach = graph.reachable_with_chains(a);
        let ids: Vec<FnId> = reach.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, vec![a, b]);
    }

    #[test]
    fn cross_crate_calls_via_use_alias() {
        let (_files, items, graph) = workspace(&[
            (
                "crates/markov/src/lib.rs",
                "pub struct Dist;\nimpl Dist {\n    pub fn uniform() -> Dist { Dist }\n}\npub fn helper() {}\n",
            ),
            (
                "crates/tan/src/lib.rs",
                "\
use prepare_markov::{helper, Dist as D};
fn caller() {
    let d = D::uniform();
    helper();
    let _ = d;
}
",
            ),
        ]);
        let caller = id_of(&items, &graph, "caller");
        let uniform = id_of(&items, &graph, "uniform");
        let helper = id_of(&items, &graph, "helper");
        assert_eq!(graph.edges[caller], vec![uniform, helper]);
    }

    #[test]
    fn std_method_names_create_no_fallback_edges() {
        let (_files, items, graph) = workspace(&[(
            "crates/markov/src/lib.rs",
            "\
struct Series;
impl Series {
    fn iter(&self) {}
    fn strength(&self) {}
}
fn unknown_receiver(xs: &[f64]) {
    for x in xs.iter() {
        let _ = x;
    }
}
fn named_fallback(t: &dyn std::fmt::Debug) {
    let _ = t;
}
",
        )]);
        // `.iter()` on an unknown receiver must NOT edge to Series::iter.
        let ur = id_of(&items, &graph, "unknown_receiver");
        assert!(graph.edges[ur].is_empty());
    }

    #[test]
    fn unknown_receiver_falls_back_to_name_matches() {
        let (_files, items, graph) = workspace(&[(
            "crates/tan/src/lib.rs",
            "\
struct RootCpt;
impl RootCpt {
    fn log_prob(&self) {}
}
struct EdgeCpt;
impl EdgeCpt {
    fn log_prob(&self) {}
}
fn score(t: &Opaque) {
    t.log_prob();
}
",
        )]);
        let score = id_of(&items, &graph, "score");
        // Both workspace log_prob methods are candidate callees.
        assert_eq!(graph.edges[score].len(), 2);
    }

    #[test]
    fn chains_report_the_route() {
        let (_files, items, graph) = workspace(&[(
            "crates/markov/src/lib.rs",
            "fn top() { mid(); }\nfn mid() { leaf(); }\nfn leaf() {}\n",
        )]);
        let top = id_of(&items, &graph, "top");
        let mid = id_of(&items, &graph, "mid");
        let leaf = id_of(&items, &graph, "leaf");
        let reach = graph.reachable_with_chains(top);
        let leaf_chain = &reach
            .iter()
            .find(|(id, _)| *id == leaf)
            .expect("leaf reachable")
            .1;
        assert_eq!(leaf_chain, &vec![top, mid, leaf]);
    }
}
