//! Paper-fidelity checks: the experiment index in DESIGN.md §4 must
//! stay runnable (every referenced `--bin` exists), and every crate
//! root must carry the workspace safety attributes.

use crate::rules::{Category, Finding};
use crate::scan::SourceFile;
use std::collections::BTreeSet;
use std::fs;
use std::path::Path;

/// Every `--bin <name>` referenced by DESIGN.md must exist under
/// `crates/bench/src/bin/`.
pub fn check_design_bins(root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    let design_path = root.join("DESIGN.md");
    let text = match fs::read_to_string(&design_path) {
        Ok(t) => t,
        Err(e) => {
            findings.push(Finding {
                file: "DESIGN.md".into(),
                line: 1,
                category: Category::Fidelity,
                rule: "design-readable",
                message: format!("cannot read DESIGN.md: {e}"),
            });
            return findings;
        }
    };
    let mut seen = BTreeSet::new();
    for (n, line) in text.lines().enumerate() {
        let mut rest = line;
        while let Some(at) = rest.find("--bin ") {
            rest = &rest[at + "--bin ".len()..];
            let name: String = rest
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if name.is_empty() || !seen.insert(name.clone()) {
                continue;
            }
            let bin = root.join("crates/bench/src/bin").join(format!("{name}.rs"));
            if !bin.is_file() {
                findings.push(Finding {
                    file: "DESIGN.md".into(),
                    line: n + 1,
                    category: Category::Fidelity,
                    rule: "missing-bench-bin",
                    message: format!(
                        "DESIGN.md references `--bin {name}` but crates/bench/src/bin/{name}.rs does not exist"
                    ),
                });
            }
        }
    }
    if seen.is_empty() {
        findings.push(Finding {
            file: "DESIGN.md".into(),
            line: 1,
            category: Category::Fidelity,
            rule: "design-experiment-index",
            message: "DESIGN.md no longer references any `--bin` experiment binaries".into(),
        });
    }
    findings
}

/// True when `rel` is the root module of a crate (the file that must
/// carry the crate-level attributes).
fn is_crate_root(rel: &str) -> bool {
    matches!(rel, "src/lib.rs" | "src/main.rs")
        || (rel.starts_with("crates/") || rel.starts_with("shims/"))
            && (rel.ends_with("/src/lib.rs") || rel.ends_with("/src/main.rs"))
        || rel.starts_with("crates/bench/src/bin/")
}

/// Crate roots must forbid unsafe code; library roots must also warn on
/// missing docs.
pub fn check_crate_attrs(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for f in files {
        if !is_crate_root(&f.rel_path) {
            continue;
        }
        if !f.text.contains("#![forbid(unsafe_code)]") {
            findings.push(Finding {
                file: f.rel_path.clone(),
                line: 1,
                category: Category::Fidelity,
                rule: "forbid-unsafe",
                message: "crate root lacks #![forbid(unsafe_code)]".into(),
            });
        }
        if f.rel_path.ends_with("lib.rs") && !f.text.contains("#![warn(missing_docs)]") {
            findings.push(Finding {
                file: f.rel_path.clone(),
                line: 1,
                category: Category::Fidelity,
                rule: "warn-missing-docs",
                message: "library crate root lacks #![warn(missing_docs)]".into(),
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_root_classification() {
        assert!(is_crate_root("src/lib.rs"));
        assert!(is_crate_root("src/main.rs"));
        assert!(is_crate_root("crates/core/src/lib.rs"));
        assert!(is_crate_root("shims/rand/src/lib.rs"));
        assert!(is_crate_root("crates/xtask/src/main.rs"));
        assert!(is_crate_root("crates/bench/src/bin/fig6.rs"));
        assert!(!is_crate_root("crates/core/src/controller.rs"));
        assert!(!is_crate_root("tests/end_to_end.rs"));
    }

    #[test]
    fn design_bins_resolve_in_this_workspace() {
        // Run against the real repo: the committed DESIGN.md and bench
        // crate must agree (this IS the fidelity acceptance check).
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let findings = check_design_bins(&root);
        assert!(
            findings.is_empty(),
            "DESIGN.md and crates/bench/src/bin disagree: {findings:?}"
        );
    }
}
