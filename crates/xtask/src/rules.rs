//! The lint rules: determinism hazards, NaN safety, panic debt and
//! hot-path purity.
//!
//! Every detector walks the real token stream ([`crate::lexer`]), so
//! comments and literal bodies can never produce findings. Detectors
//! skip `#[cfg(test)]` regions and honour `// xtask-allow: <rule> --
//! <reason>` markers; a marker no detector consumes is itself a finding
//! (`unused-allow`). The hot-path rule is transitive: it follows the
//! workspace call graph from every hot-path-marked function (see
//! [`items::HOT_PATH_MARKER`]).

use crate::callgraph::{self, Graph};
use crate::items::{self, FileItems, FnItem};
use crate::lexer::{num_is_float, TokenKind};
use crate::scan::SourceFile;
use std::collections::{BTreeMap, BTreeSet};

/// Finding categories, in report order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Category {
    /// Nondeterminism that would de-reproduce seeded experiments. Zero
    /// tolerance: no baseline entries exist for this category.
    Determinism,
    /// NaN/∞ escape hatches in probability code: unguarded logs and
    /// divisions, truncating casts, unguarded public float returns.
    /// Zero tolerance.
    NanSafety,
    /// Code that can panic in library crates; ratcheted via the baseline.
    PanicDebt,
    /// Allocation reachable from a hot-path-marked function.
    /// Zero tolerance: the marked kernels are the per-tick prediction
    /// budget and everything they call must stay allocation-free.
    HotPath,
    /// Lint hygiene: allow markers that suppress nothing. Zero tolerance.
    Hygiene,
    /// Drift between the artifacts and the code: DESIGN.md's experiment
    /// index versus the crates, and checkpointed-struct fields that are
    /// neither serialized nor declared ephemeral
    /// ([`crate::checkpoint`]). Zero tolerance.
    Fidelity,
    /// Blind spots in the controller-event audit trail: an event variant
    /// no registered temporal property references, or a wildcard match
    /// arm that would silently swallow future variants in checker code.
    /// Zero tolerance.
    EventCoverage,
    /// Interprocedural taint contracts ([`crate::dataflow`]):
    /// determinism-taint, exactness-taint and shard-purity. Zero
    /// tolerance.
    Taint,
}

impl Category {
    /// Stable report name.
    pub fn name(self) -> &'static str {
        match self {
            Category::Determinism => "determinism",
            Category::NanSafety => "nan-safety",
            Category::PanicDebt => "panic-debt",
            Category::HotPath => "hot-path",
            Category::Hygiene => "hygiene",
            Category::Fidelity => "fidelity",
            Category::EventCoverage => "event-coverage",
            Category::Taint => "taint",
        }
    }
}

/// One lint hit.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Category the rule belongs to.
    pub category: Category,
    /// Stable rule name (used by baseline keys and allow markers).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

/// Every rule this module can emit, for per-rule reporting.
pub const ALL_RULES: &[(&str, Category)] = &[
    ("hash-collection", Category::Determinism),
    ("ambient-rng", Category::Determinism),
    ("wall-clock", Category::Determinism),
    ("time-source", Category::Determinism),
    ("float-eq", Category::Determinism),
    ("nan-unsafe-sort", Category::Determinism),
    ("unguarded-log", Category::NanSafety),
    ("truncating-cast", Category::NanSafety),
    ("unguarded-div", Category::NanSafety),
    ("missing-finite-guard", Category::NanSafety),
    ("unwrap", Category::PanicDebt),
    ("expect", Category::PanicDebt),
    ("panic", Category::PanicDebt),
    ("unreachable", Category::PanicDebt),
    ("todo", Category::PanicDebt),
    ("unimplemented", Category::PanicDebt),
    ("index-in-loop", Category::PanicDebt),
    ("hot-path-alloc", Category::HotPath),
    ("unused-allow", Category::Hygiene),
    ("orphan-marker", Category::Hygiene),
    ("event-coverage", Category::EventCoverage),
    ("event-wildcard", Category::EventCoverage),
    ("checkpoint-field", Category::Fidelity),
    ("determinism-taint", Category::Taint),
    ("exactness-taint", Category::Taint),
    ("shard-purity", Category::Taint),
];

/// Identifiers whose presence in a function body counts as a finiteness
/// guard for the NaN-safety rules: the `debug_assert_finite!` family
/// from `prepare-metrics`, the markov/tan invariant audits
/// (`debug_assert_normalized`, `debug_assert_row_stochastic`), plus
/// explicit `is_finite`/`is_nan` checks.
const GUARD_IDENTS: &[&str] = &[
    "debug_assert_finite",
    "debug_assert_all_finite",
    "debug_assert_normalized",
    "debug_assert_row_stochastic",
    "is_finite",
    "is_nan",
];

/// Probability-path crates where `unguarded-div` and
/// `missing-finite-guard` apply: a NaN minted here flows straight into
/// predictions and anomaly scores.
fn prob_crate(rel: &str) -> bool {
    rel.starts_with("crates/markov/")
        || rel.starts_with("crates/tan/")
        || rel.starts_with("crates/anomaly/")
}

/// Library crates where `unguarded-log` and `truncating-cast` apply
/// (everything under `crates/` except the timing harness and the lint
/// itself has float math feeding results).
fn nan_rules_apply(rel: &str) -> bool {
    rel.starts_with("crates/") && !rel.starts_with("crates/bench/")
}

/// Runs every detector over the workspace: per-file rules, then the
/// whole-graph transitive hot-path rule, then unused-allow hygiene.
/// `crate_map` maps crate identifiers to directory prefixes
/// ([`crate::scan::crate_idents`]).
pub fn check_workspace(files: &[SourceFile], crate_map: &BTreeMap<String, String>) -> Vec<Finding> {
    let parsed: Vec<FileItems> = files.iter().map(items::parse_file).collect();
    let mut findings = Vec::new();
    for (f, it) in files.iter().zip(&parsed) {
        check_file(f, it, &mut findings);
    }
    // One resolution pass serves the hot-path rule and the taint engine.
    let (graph, sites) = callgraph::build_with_sites(files, &parsed, crate_map);
    transitive_hot_path(files, &parsed, &graph, &mut findings);
    crate::dataflow::check(files, &parsed, &graph, &sites, &mut findings);
    for f in files {
        if event_match_scope(&f.rel_path) {
            event_wildcard(f, &mut findings);
        }
    }
    event_coverage(files, &mut findings);
    crate::checkpoint::check(files, &parsed, &mut findings);
    unused_allows(files, &mut findings);
    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    findings
}

fn check_file(f: &SourceFile, it: &FileItems, findings: &mut Vec<Finding>) {
    if f.policy.determinism {
        hash_collections(f, findings);
        ambient_rng(f, findings);
        if !f.policy.wall_clock_allowed {
            wall_clock(f, findings);
            time_source(f, findings);
        }
        float_eq(f, findings);
        nan_unsafe_sort(f, findings);
    }
    if f.policy.count_panic_debt {
        panic_debt(f, findings);
        index_in_loop(f, findings);
        if nan_rules_apply(&f.rel_path) {
            unguarded_log(f, it, findings);
            truncating_cast(f, it, findings);
        }
        if prob_crate(&f.rel_path) {
            unguarded_div(f, it, findings);
            missing_finite_guard(f, it, findings);
        }
    }
}

/// Records a finding anchored at code position `k`, unless it sits in a
/// test region or an allow marker covers it. Consulting the marker also
/// marks it used.
pub(crate) fn push(
    f: &SourceFile,
    findings: &mut Vec<Finding>,
    k: usize,
    category: Category,
    rule: &'static str,
    message: String,
) {
    let Some(t) = f.ctok(k) else {
        return;
    };
    if f.in_test_region(t.start) {
        return;
    }
    if f.is_allowed(t.line, rule) {
        return;
    }
    findings.push(Finding {
        file: f.rel_path.clone(),
        line: t.line,
        category,
        rule,
        message,
    });
}

/// Code position of the punct matching `open_c` at position `open`
/// (depth-matched over `open_c`/`close_c`); `code.len()` if unmatched.
pub(crate) fn matching(f: &SourceFile, open: usize, open_c: char, close_c: char) -> usize {
    let mut depth = 0i64;
    let mut j = open;
    loop {
        if f.ctok(j).is_none() {
            return j;
        }
        if f.cpunct(j, open_c) {
            depth += 1;
        } else if f.cpunct(j, close_c) {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
        j += 1;
    }
}

/// Code position of the `(` matching the `)` at `close`, scanning
/// backwards; `None` if unmatched.
fn matching_back(f: &SourceFile, close: usize) -> Option<usize> {
    let mut depth = 0i64;
    let mut j = close;
    loop {
        if f.cpunct(j, ')') {
            depth += 1;
        } else if f.cpunct(j, '(') {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
        j = j.checked_sub(1)?;
    }
}

/// True when the function enclosing code position `pos` contains a
/// finiteness guard.
fn enclosing_guarded(f: &SourceFile, it: &FileItems, pos: usize) -> bool {
    it.enclosing_fn(pos)
        .and_then(|i| it.fns.get(i))
        .is_some_and(|item| fn_guarded(f, item))
}

/// True when the function's body mentions any [`GUARD_IDENTS`] name.
fn fn_guarded(f: &SourceFile, item: &FnItem) -> bool {
    let Some((open, close)) = item.body else {
        return false;
    };
    (open..=close).any(|k| f.cident(k).is_some_and(|w| GUARD_IDENTS.contains(&w)))
}

/// `HashMap`/`HashSet` in simulation-visible code: iteration order is
/// randomized per process, so any iteration that reaches simulation
/// state or output de-reproduces runs. `BTreeMap`/`BTreeSet` are the
/// deterministic replacements.
fn hash_collections(f: &SourceFile, findings: &mut Vec<Finding>) {
    for k in 0..f.code.len() {
        if let Some(name @ ("HashMap" | "HashSet")) = f.cident(k) {
            push(
                f,
                findings,
                k,
                Category::Determinism,
                "hash-collection",
                format!("{name} in simulation-visible code; use the BTree equivalent"),
            );
        }
    }
}

/// Unseeded entropy sources in library code.
fn ambient_rng(f: &SourceFile, findings: &mut Vec<Finding>) {
    for k in 0..f.code.len() {
        match f.cident(k) {
            Some(name @ ("thread_rng" | "from_entropy" | "OsRng")) => push(
                f,
                findings,
                k,
                Category::Determinism,
                "ambient-rng",
                format!("{name} draws OS entropy; thread a seeded StdRng through instead"),
            ),
            // `rand::random()` specifically; only the qualified form, to
            // avoid matching local identifiers.
            Some("random")
                if k >= 3 && f.cpair(k - 2, ':', ':') && f.cident(k - 3) == Some("rand") =>
            {
                push(
                    f,
                    findings,
                    k,
                    Category::Determinism,
                    "ambient-rng",
                    "rand::random() draws OS entropy; thread a seeded StdRng through instead"
                        .into(),
                )
            }
            _ => {}
        }
    }
}

/// Wall-clock reads in library code: `Instant`/`SystemTime` differ per
/// run and so must never influence simulation results.
fn wall_clock(f: &SourceFile, findings: &mut Vec<Finding>) {
    for k in 0..f.code.len() {
        if let Some(name @ ("Instant" | "SystemTime")) = f.cident(k) {
            push(
                f,
                findings,
                k,
                Category::Determinism,
                "wall-clock",
                format!(
                    "{name} reads the wall clock; simulation code must use simulated Timestamps"
                ),
            );
        }
    }
}

/// Identifiers that smuggle host calendar/clock state into simulation
/// code: the epoch constant and `chrono`-style date APIs.
const DATE_IDENTS: &[&str] = &[
    "UNIX_EPOCH",
    "Utc",
    "Local",
    "Datelike",
    "Timelike",
    "chrono",
    "NaiveDateTime",
];

/// `std::time` paths and calendar identifiers in simulation-visible
/// code. The chaos layer's contract is that every fault decision is a
/// pure function of `(seed, fault, entity, tick)`; one host-clock or
/// calendar read anywhere on that path silently breaks replay, so the
/// import itself is the finding — not just a `::now()` call.
fn time_source(f: &SourceFile, findings: &mut Vec<Finding>) {
    for k in 0..f.code.len() {
        if f.cident(k) == Some("std") && f.cpair(k + 1, ':', ':') && f.cident(k + 3) == Some("time")
        {
            push(
                f,
                findings,
                k,
                Category::Determinism,
                "time-source",
                "`std::time` in simulation-visible code; use the simulated \
                 prepare_metrics Timestamp/Duration instead"
                    .into(),
            );
        } else if let Some(name) = f.cident(k).filter(|w| DATE_IDENTS.contains(w)) {
            push(
                f,
                findings,
                k,
                Category::Determinism,
                "time-source",
                format!(
                    "`{name}` reads the host calendar; simulation code must derive all time \
                         from simulated Timestamps"
                ),
            );
        }
    }
}

/// `==`/`!=` against a float literal: exact float comparison is almost
/// never the intent in metric code and breaks under recomputation noise.
fn float_eq(f: &SourceFile, findings: &mut Vec<Finding>) {
    let mut k = 0usize;
    while f.ctok(k).is_some() {
        if !(f.cpair(k, '=', '=') || f.cpair(k, '!', '=')) {
            k += 1;
            continue;
        }
        let lhs_float = k
            .checked_sub(1)
            .is_some_and(|p| f.ckind(p) == Some(TokenKind::Num) && num_is_float(f.ctext(p)));
        let mut m = k + 2;
        if f.cpunct(m, '-') {
            m += 1;
        }
        let rhs_float = f.ckind(m) == Some(TokenKind::Num) && num_is_float(f.ctext(m));
        if lhs_float || rhs_float {
            push(
                f,
                findings,
                k,
                Category::Determinism,
                "float-eq",
                "exact equality against a float literal; compare with a tolerance or restructure"
                    .into(),
            );
        }
        k += 2;
    }
}

/// `partial_cmp(..).unwrap()/expect(..)` — panics on NaN and silently
/// depends on NaN never reaching the comparator. `total_cmp` is the
/// deterministic, panic-free replacement.
fn nan_unsafe_sort(f: &SourceFile, findings: &mut Vec<Finding>) {
    for k in 0..f.code.len() {
        if f.cident(k) != Some("partial_cmp") || !f.cpunct(k + 1, '(') {
            continue;
        }
        let close = matching(f, k + 1, '(', ')');
        if f.cpunct(close + 1, '.') && matches!(f.cident(close + 2), Some("unwrap" | "expect")) {
            push(
                f,
                findings,
                k,
                Category::Determinism,
                "nan-unsafe-sort",
                "partial_cmp().unwrap() is NaN-unsafe; use f64::total_cmp".into(),
            );
        }
    }
}

fn panic_debt(f: &SourceFile, findings: &mut Vec<Finding>) {
    for k in 0..f.code.len() {
        let Some(w) = f.cident(k) else {
            continue;
        };
        let prev_dot = k.checked_sub(1).is_some_and(|p| f.cpunct(p, '.'));
        let (rule, needle): (&'static str, &str) = match w {
            "unwrap" if prev_dot && f.cpunct(k + 1, '(') && f.cpunct(k + 2, ')') => {
                ("unwrap", ".unwrap()")
            }
            "expect" if prev_dot && f.cpunct(k + 1, '(') => ("expect", ".expect("),
            "panic" if f.cpunct(k + 1, '!') => ("panic", "panic!"),
            "unreachable" if f.cpunct(k + 1, '!') => ("unreachable", "unreachable!"),
            "todo" if f.cpunct(k + 1, '!') => ("todo", "todo!"),
            "unimplemented" if f.cpunct(k + 1, '!') => ("unimplemented", "unimplemented!"),
            _ => continue,
        };
        push(
            f,
            findings,
            k,
            Category::PanicDebt,
            rule,
            format!("`{needle}` can panic in a library crate"),
        );
    }
}

/// True when the tokens after a `for` keyword read as a loop header
/// (`for pat in iter {`) rather than a trait impl or HRTB: an `in` word
/// must appear before the opening brace or a semicolon.
fn for_header_is_loop(f: &SourceFile, from: usize) -> bool {
    let mut j = from;
    while f.ctok(j).is_some() {
        if f.cpunct(j, '{') || f.cpunct(j, ';') {
            return false;
        }
        if f.cident(j) == Some("in") {
            return true;
        }
        j += 1;
    }
    false
}

/// Direct, non-literal indexing inside a loop body: a hot-path panic
/// risk (and bounds-check cost) the paper's control loop cannot afford.
/// `get`/iterators are the replacements.
fn index_in_loop(f: &SourceFile, findings: &mut Vec<Finding>) {
    let mut stack: Vec<bool> = Vec::new();
    let mut loop_depth = 0usize;
    let mut pending = false;
    let mut k = 0usize;
    while f.ctok(k).is_some() {
        if let Some(w) = f.cident(k) {
            // `for` also introduces trait impls (`impl T for U {`) and
            // HRTBs; only a `for … in …` header is a loop.
            if matches!(w, "while" | "loop") || (w == "for" && for_header_is_loop(f, k + 1)) {
                pending = true;
            }
            k += 1;
            continue;
        }
        if f.cpunct(k, '{') {
            stack.push(pending);
            if pending {
                loop_depth += 1;
            }
            pending = false;
        } else if f.cpunct(k, '}') {
            if stack.pop() == Some(true) {
                loop_depth = loop_depth.saturating_sub(1);
            }
        } else if f.cpunct(k, ';') {
            pending = false;
        } else if f.cpunct(k, '[') && loop_depth > 0 {
            // Indexing only: the `[` must follow a value expression. A
            // keyword there (`for x in [..]`, `return [..]`) means an
            // array literal instead.
            let is_indexing = k.checked_sub(1).is_some_and(|p| {
                if f.cpunct(p, ')') || f.cpunct(p, ']') {
                    return true;
                }
                // Tuple-field receivers index too: `rows.1[i]`.
                if f.ckind(p) == Some(TokenKind::Num)
                    && p.checked_sub(1).is_some_and(|q| f.cpunct(q, '.'))
                {
                    return true;
                }
                f.cident(p).is_some_and(|w| {
                    !matches!(
                        w,
                        "in" | "return" | "break" | "if" | "else" | "match" | "move"
                    )
                })
            });
            if is_indexing {
                let close = matching(f, k, '[', ']');
                let inner_len = close.saturating_sub(k + 1);
                let literal_index = inner_len == 1
                    && f.ckind(k + 1) == Some(TokenKind::Num)
                    && f.ctext(k + 1)
                        .bytes()
                        .all(|b| b.is_ascii_digit() || b == b'_');
                let range_slice = (k + 1..close).any(|j| f.cpair(j, '.', '.'));
                if !literal_index && !range_slice && inner_len > 0 {
                    let inner = match (f.ctok(k + 1), f.ctok(close.saturating_sub(1))) {
                        (Some(a), Some(b)) => f.text.get(a.start..b.end).unwrap_or("").to_string(),
                        _ => String::new(),
                    };
                    push(
                        f,
                        findings,
                        k,
                        Category::PanicDebt,
                        "index-in-loop",
                        format!(
                            "`[{inner}]` indexing inside a loop can panic; prefer get()/iterators"
                        ),
                    );
                }
                k = close + 1;
                continue;
            }
        }
        k += 1;
    }
}

/// `.ln()`/`.log2()`/`.log10()` in a function without a finiteness
/// guard: zero or negative input mints `-inf`/NaN that flows silently
/// into downstream scores.
fn unguarded_log(f: &SourceFile, it: &FileItems, findings: &mut Vec<Finding>) {
    for k in 0..f.code.len() {
        let Some(w @ ("ln" | "log2" | "log10")) = f.cident(k) else {
            continue;
        };
        if !k.checked_sub(1).is_some_and(|p| f.cpunct(p, '.')) || !f.cpunct(k + 1, '(') {
            continue;
        }
        if enclosing_guarded(f, it, k) {
            continue;
        }
        push(
            f,
            findings,
            k,
            Category::NanSafety,
            "unguarded-log",
            format!(
                "`.{w}()` mints -inf/NaN on non-positive input and the enclosing function has \
                 no finiteness guard; pass the result through debug_assert_finite!"
            ),
        );
    }
}

/// Integer type names an `as` cast can truncate a float into.
const INT_TARGETS: &[&str] = &[
    "usize", "isize", "u8", "u16", "u32", "u64", "u128", "i8", "i16", "i32", "i64", "i128",
];

/// Float-returning methods whose result feeds casts (`.round() as usize`).
const FLOAT_RESULT_METHODS: &[&str] = &[
    "round", "floor", "ceil", "trunc", "sqrt", "exp", "powf", "ln", "log2", "log10",
];

/// `<float> as usize`-style casts without a guard: NaN silently becomes
/// 0 and ±inf saturates, so one bad upstream value corrupts bins and
/// indices without a trace.
fn truncating_cast(f: &SourceFile, it: &FileItems, findings: &mut Vec<Finding>) {
    for k in 0..f.code.len() {
        if f.cident(k) != Some("as") {
            continue;
        }
        let Some(target) = f.cident(k + 1).filter(|t| INT_TARGETS.contains(t)) else {
            continue;
        };
        let Some(p) = k.checked_sub(1) else {
            continue;
        };
        // Only provably-float sources: a float literal, or a call chain
        // ending in a float-returning method (`x.round() as usize`).
        let provable = (f.ckind(p) == Some(TokenKind::Num) && num_is_float(f.ctext(p)))
            || (f.cpunct(p, ')')
                && matching_back(f, p).is_some_and(|open| {
                    open >= 2
                        && f.cpunct(open - 2, '.')
                        && f.cident(open - 1)
                            .is_some_and(|m| FLOAT_RESULT_METHODS.contains(&m))
                }));
        if !provable || enclosing_guarded(f, it, k) {
            continue;
        }
        push(
            f,
            findings,
            k,
            Category::NanSafety,
            "truncating-cast",
            format!(
                "float `as {target}` truncates silently (NaN becomes 0) and the enclosing \
                 function has no finiteness guard; debug_assert_finite! the value first"
            ),
        );
    }
}

/// Float division in probability-path crates without a finiteness guard:
/// the classic normalization bug — a zero row sum divides to NaN and
/// every probability downstream is poisoned.
fn unguarded_div(f: &SourceFile, it: &FileItems, findings: &mut Vec<Finding>) {
    // Per-function float evidence, computed once.
    let meta: Vec<(bool, BTreeSet<String>)> = it
        .fns
        .iter()
        .map(|item| (fn_guarded(f, item), float_vars(f, item)))
        .collect();
    let empty = BTreeSet::new();
    let mut k = 0usize;
    while f.ctok(k).is_some() {
        if !f.cpunct(k, '/') {
            k += 1;
            continue;
        }
        let div_at = k;
        let mut rhs = if f.cpair(k, '/', '=') { k + 2 } else { k + 1 };
        while f.cpunct(rhs, '(') || f.cpunct(rhs, '-') || f.cpunct(rhs, '&') {
            rhs += 1;
        }
        let (guarded, vars) = it
            .enclosing_fn(div_at)
            .and_then(|i| meta.get(i))
            .map(|(g, v)| (*g, v))
            .unwrap_or((false, &empty));
        let is_float_operand = |pos: usize| {
            (f.ckind(pos) == Some(TokenKind::Num) && num_is_float(f.ctext(pos)))
                || matches!(f.cident(pos), Some("f64" | "f32"))
                || f.cident(pos).is_some_and(|w| vars.contains(w))
        };
        // `x / count as f64` — the cast floats the division itself.
        let rhs_cast =
            f.cident(rhs + 1) == Some("as") && matches!(f.cident(rhs + 2), Some("f64" | "f32"));
        let evidenced =
            k.checked_sub(1).is_some_and(&is_float_operand) || is_float_operand(rhs) || rhs_cast;
        if evidenced && !guarded {
            push(
                f,
                findings,
                div_at,
                Category::NanSafety,
                "unguarded-div",
                "float division in a probability path without a finiteness guard; a zero \
                 denominator mints inf/NaN — debug_assert_finite! the result"
                    .into(),
            );
        }
        k = rhs.max(k + 1);
    }
}

/// Names with float evidence inside one function: `f64`/`f32`-typed
/// params, and `let` bindings whose initializer mentions a float type or
/// literal.
fn float_vars(f: &SourceFile, item: &FnItem) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for p in &item.params {
        if p.ty.contains("f64") || p.ty.contains("f32") {
            out.insert(p.name.clone());
        }
    }
    let Some((open, close)) = item.body else {
        return out;
    };
    let mut k = open + 1;
    while k < close {
        if f.cident(k) != Some("let") {
            k += 1;
            continue;
        }
        let mut n = k + 1;
        if f.cident(n) == Some("mut") {
            n += 1;
        }
        let Some(name) = f.cident(n) else {
            k += 1;
            continue;
        };
        let mut j = n + 1;
        let mut floaty = false;
        while j < close && !f.cpunct(j, ';') {
            if matches!(f.cident(j), Some("f64" | "f32"))
                || (f.ckind(j) == Some(TokenKind::Num) && num_is_float(f.ctext(j)))
            {
                floaty = true;
            }
            j += 1;
        }
        if floaty {
            out.insert(name.to_string());
        }
        k = j;
    }
    out
}

/// Public functions in probability-path crates returning `f64` or a
/// `Distribution` must pass their result through a finiteness guard
/// before it escapes the crate boundary.
fn missing_finite_guard(f: &SourceFile, it: &FileItems, findings: &mut Vec<Finding>) {
    for item in &it.fns {
        if !item.is_pub || item.in_test || item.body.is_none() {
            continue;
        }
        let ret = if item.ret.contains("Self") {
            item.self_ty.clone().unwrap_or_else(|| item.ret.clone())
        } else {
            item.ret.clone()
        };
        if !(ret == "f64" || ret.contains("Distribution")) {
            continue;
        }
        if fn_guarded(f, item) {
            continue;
        }
        push(
            f,
            findings,
            item.fn_pos,
            Category::NanSafety,
            "missing-finite-guard",
            format!(
                "pub fn `{}` returns `{ret}` without a finiteness guard; wrap the result in \
                 debug_assert_finite! (zero release cost) or justify with an allow",
                item.name
            ),
        );
    }
}

/// Allocation call sites inside a body's code positions.
fn alloc_sites(f: &SourceFile, open: usize, close: usize) -> Vec<(usize, &'static str)> {
    let mut out = Vec::new();
    let mut k = open + 1;
    while k < close {
        let Some(w) = f.cident(k) else {
            k += 1;
            continue;
        };
        let prev_dot = k.checked_sub(1).is_some_and(|p| f.cpunct(p, '.'));
        match w {
            "clone" if prev_dot && f.cpunct(k + 1, '(') => out.push((k, ".clone()")),
            "to_vec" if prev_dot && f.cpunct(k + 1, '(') => out.push((k, ".to_vec()")),
            "to_owned" if prev_dot && f.cpunct(k + 1, '(') => out.push((k, ".to_owned()")),
            "vec" if f.cpunct(k + 1, '!') => out.push((k, "vec![")),
            "format" if f.cpunct(k + 1, '!') => out.push((k, "format!")),
            "Box"
                if f.cpair(k + 1, ':', ':')
                    && f.cident(k + 3) == Some("new")
                    && f.cpunct(k + 4, '(') =>
            {
                out.push((k, "Box::new"))
            }
            _ => {}
        }
        k += 1;
    }
    out
}

/// Wall-clock / calendar reads inside a body's code positions: the
/// hazards the per-file `wall-clock` and `time-source` rules look for,
/// re-checked transitively where those rules are switched off.
fn time_sites(f: &SourceFile, open: usize, close: usize) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    let mut k = open + 1;
    while k < close {
        if f.cident(k) == Some("std") && f.cpair(k + 1, ':', ':') && f.cident(k + 3) == Some("time")
        {
            out.push((k, "std::time".to_string()));
            k += 4;
            continue;
        }
        if let Some(name) = f
            .cident(k)
            .filter(|w| matches!(*w, "Instant" | "SystemTime") || DATE_IDENTS.contains(w))
        {
            out.push((k, name.to_string()));
        }
        k += 1;
    }
    out
}

/// The transitive hot-path rule: from every function armed by a
/// [`items::HOT_PATH_MARKER`] comment, walk the workspace call graph and flag
/// any allocation in any reachable body, reporting the call chain that
/// reaches it. Each allocation site is reported once even when several
/// roots reach it.
///
/// The same walk also closes the `wall_clock_allowed` gap: in files
/// whose per-file determinism rules are off (timing harnesses, tests),
/// a clock or calendar read that has become *reachable from a hot-path
/// kernel* is a `time-source` finding — a marked kernel must never time
/// itself through a helper the per-file policy exempts.
fn transitive_hot_path(
    files: &[SourceFile],
    parsed: &[FileItems],
    graph: &Graph,
    findings: &mut Vec<Finding>,
) {
    if !parsed.iter().any(|it| it.fns.iter().any(|x| x.hot)) {
        return;
    }
    let mut seen: BTreeSet<(usize, usize)> = BTreeSet::new();
    let mut seen_time: BTreeSet<(usize, usize)> = BTreeSet::new();
    for root in 0..graph.fns.len() {
        let is_hot = graph
            .fns
            .get(root)
            .and_then(|r| parsed.get(r.file).and_then(|it| it.fns.get(r.item)))
            .is_some_and(|x| x.hot);
        if !is_hot {
            continue;
        }
        for (id, chain) in graph.reachable_with_chains(root) {
            let Some(r) = graph.fns.get(id) else {
                continue;
            };
            let (Some(cf), Some(item)) = (
                files.get(r.file),
                parsed.get(r.file).and_then(|it| it.fns.get(r.item)),
            ) else {
                continue;
            };
            let Some((open, close)) = item.body else {
                continue;
            };
            let sites = alloc_sites(cf, open, close);
            // Clock reads only matter where the per-file rules are off.
            let exempt_file = cf.policy.wall_clock_allowed || !cf.policy.determinism;
            let tsites = if exempt_file {
                time_sites(cf, open, close)
            } else {
                Vec::new()
            };
            if sites.is_empty() && tsites.is_empty() {
                continue;
            }
            let route: Vec<String> = chain
                .iter()
                .filter_map(|&cid| fn_label(graph, parsed, cid))
                .collect();
            let route = route.join(" -> ");
            for (pos, what) in sites {
                if !seen.insert((r.file, pos)) {
                    continue;
                }
                push(
                    cf,
                    findings,
                    pos,
                    Category::HotPath,
                    "hot-path-alloc",
                    format!("`{what}` allocates on the hot path: {route}"),
                );
            }
            for (pos, what) in tsites {
                if !seen_time.insert((r.file, pos)) {
                    continue;
                }
                push(
                    cf,
                    findings,
                    pos,
                    Category::Determinism,
                    "time-source",
                    format!("`{what}` reads the host clock/calendar on a hot path: {route}"),
                );
            }
        }
    }
}

/// `Type::name` / `name` label for a graph node.
fn fn_label(graph: &Graph, parsed: &[FileItems], id: usize) -> Option<String> {
    let r = graph.fns.get(id)?;
    let item = parsed.get(r.file)?.fns.get(r.item)?;
    Some(match &item.self_ty {
        Some(t) => format!("{t}::{}", item.name),
        None => item.name.clone(),
    })
}

/// Checker/analysis files where `match`es over the controller event
/// stream must stay exhaustive: the temporal checker crate plus the core
/// event and trace-analysis modules. A `_` arm there would silently
/// swallow any variant added later, which is exactly the blind spot the
/// event-coverage family exists to prevent.
fn event_match_scope(rel: &str) -> bool {
    (rel.starts_with("crates/tlc/") && !rel.contains("/tests/"))
        || rel == "crates/core/src/events.rs"
        || rel == "crates/core/src/analysis.rs"
}

/// `_ =>` arms inside a `match` whose body handles `ControllerEvent`
/// variants, in checker/analysis code. Each wildcard is attributed to
/// its *innermost* enclosing match, so matches over other enums nested
/// near event handling stay legal.
fn event_wildcard(f: &SourceFile, findings: &mut Vec<Finding>) {
    // Body spans of every `match` expression: the first `{` after the
    // `match` keyword outside parens/brackets opens the arm block
    // (struct literals cannot appear bare in a scrutinee).
    let mut spans: Vec<(usize, usize)> = Vec::new();
    for k in 0..f.code.len() {
        if f.cident(k) != Some("match") {
            continue;
        }
        let mut par = 0i64;
        let mut brk = 0i64;
        let mut j = k + 1;
        let open = loop {
            if f.ctok(j).is_none() {
                break None;
            }
            if f.cpunct(j, '(') {
                par += 1;
            } else if f.cpunct(j, ')') {
                par -= 1;
            } else if f.cpunct(j, '[') {
                brk += 1;
            } else if f.cpunct(j, ']') {
                brk -= 1;
            } else if f.cpunct(j, '{') && par == 0 && brk == 0 {
                break Some(j);
            }
            j += 1;
        };
        let Some(open) = open else {
            continue;
        };
        spans.push((open, matching(f, open, '{', '}')));
    }
    for k in 0..f.code.len() {
        if f.cident(k) != Some("_") || !f.cpair(k + 1, '=', '>') {
            continue;
        }
        // Innermost enclosing match body = the smallest span around `k`.
        let enclosing = spans
            .iter()
            .filter(|&&(open, close)| open < k && k < close)
            .min_by_key(|&&(open, close)| close - open);
        let Some(&(open, close)) = enclosing else {
            continue;
        };
        if !(open..=close).any(|p| f.cident(p) == Some("ControllerEvent")) {
            continue;
        }
        push(
            f,
            findings,
            k,
            Category::EventCoverage,
            "event-wildcard",
            "`_` arm in a match over ControllerEvent: checker code must name every \
             variant so new events cannot bypass the property catalogue"
                .into(),
        );
    }
}

/// Variant names (with token positions) of an enum body spanning
/// `open..close`: identifiers at nesting depth zero that start an arm,
/// skipping attribute groups and variant payloads.
fn enum_variants(f: &SourceFile, open: usize, close: usize) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    let mut brace = 0i64;
    let mut par = 0i64;
    let mut brk = 0i64;
    let mut expect_variant = true;
    for k in open + 1..close {
        if f.cpunct(k, '{') {
            brace += 1;
        } else if f.cpunct(k, '}') {
            brace -= 1;
        } else if f.cpunct(k, '(') {
            par += 1;
        } else if f.cpunct(k, ')') {
            par -= 1;
        } else if f.cpunct(k, '[') {
            brk += 1;
        } else if f.cpunct(k, ']') {
            brk -= 1;
        } else if brace == 0 && par == 0 && brk == 0 {
            if f.cpunct(k, ',') {
                expect_variant = true;
            } else if expect_variant {
                if let Some(name) = f.cident(k) {
                    out.push((name.to_string(), k));
                    expect_variant = false;
                }
            }
        }
    }
    out
}

/// Every `ControllerEvent` variant must be referenced by the temporal
/// property library: an event nobody checks is an audit-trail blind
/// spot. References are `ControllerEvent::Variant` token paths in
/// non-test code of the checker crate.
fn event_coverage(files: &[SourceFile], findings: &mut Vec<Finding>) {
    let mut def: Option<(usize, Vec<(String, usize)>)> = None;
    for (fi, f) in files.iter().enumerate() {
        for k in 0..f.code.len() {
            if f.cident(k) == Some("enum")
                && f.cident(k + 1) == Some("ControllerEvent")
                && f.cpunct(k + 2, '{')
            {
                let close = matching(f, k + 2, '{', '}');
                def = Some((fi, enum_variants(f, k + 2, close)));
            }
        }
    }
    let Some((fi, variants)) = def else {
        return;
    };
    let Some(events_file) = files.get(fi) else {
        return;
    };
    let mut referenced: BTreeSet<String> = BTreeSet::new();
    for f in files {
        if !f.rel_path.starts_with("crates/tlc/") || f.rel_path.contains("/tests/") {
            continue;
        }
        for k in 0..f.code.len() {
            if f.cident(k) != Some("ControllerEvent") || !f.cpair(k + 1, ':', ':') {
                continue;
            }
            let Some(name) = f.cident(k + 3) else {
                continue;
            };
            if f.ctok(k).is_some_and(|t| f.in_test_region(t.start)) {
                continue;
            }
            referenced.insert(name.to_string());
        }
    }
    for (name, pos) in variants {
        if referenced.contains(&name) {
            continue;
        }
        push(
            events_file,
            findings,
            pos,
            Category::EventCoverage,
            "event-coverage",
            format!(
                "`ControllerEvent::{name}` is not referenced by any registered temporal \
                 property; extend the prepare-tlc catalogue before shipping the event"
            ),
        );
    }
}

/// Every allow marker no detector consumed is itself a finding: stale
/// suppressions hide future regressions.
fn unused_allows(files: &[SourceFile], findings: &mut Vec<Finding>) {
    for f in files {
        for a in &f.allows {
            if a.used.get() {
                continue;
            }
            findings.push(Finding {
                file: f.rel_path.clone(),
                line: a.line,
                category: Category::Hygiene,
                rule: "unused-allow",
                message: format!(
                    "`xtask-allow: {}` suppresses nothing; delete the stale marker",
                    a.rule
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::{analyze_for_tests, policy_for};

    fn workspace_findings(sources: &[(&str, &str)]) -> Vec<Finding> {
        let files: Vec<SourceFile> = sources
            .iter()
            .map(|(rel, src)| analyze_for_tests((*rel).into(), (*src).into(), policy_for(rel)))
            .collect();
        let mut crate_map = BTreeMap::new();
        crate_map.insert("prepare_markov".to_string(), "crates/markov".to_string());
        crate_map.insert("prepare_tan".to_string(), "crates/tan".to_string());
        check_workspace(&files, &crate_map)
    }

    /// Findings for one neutral-policy library file (`crates/x` is not a
    /// probability crate, so the NaN rules stay quiet here).
    fn rules_of(text: &str) -> Vec<&'static str> {
        workspace_findings(&[("crates/x/src/lib.rs", text)])
            .into_iter()
            .map(|f| f.rule)
            .collect()
    }

    /// Findings for a probability-crate file (all rules active).
    fn markov_rules_of(text: &str) -> Vec<&'static str> {
        workspace_findings(&[("crates/markov/src/lib.rs", text)])
            .into_iter()
            .map(|f| f.rule)
            .collect()
    }

    #[test]
    fn detects_hash_collections_outside_tests() {
        assert_eq!(
            rules_of("use std::collections::HashMap;\n"),
            ["hash-collection"]
        );
        assert!(rules_of("#[cfg(test)]\nmod t { use std::collections::HashMap; }\n").is_empty());
        // Comments and strings never count.
        assert!(rules_of("// HashMap\nlet s = \"HashSet\";\n").is_empty());
    }

    #[test]
    fn detects_ambient_rng_and_wall_clock() {
        assert_eq!(rules_of("let r = thread_rng();\n"), ["ambient-rng"]);
        assert_eq!(rules_of("let x: f64 = rand::random();\n"), ["ambient-rng"]);
        assert_eq!(rules_of("let t = Instant::now();\n"), ["wall-clock"]);
        assert_eq!(rules_of("let t = SystemTime::now();\n"), ["wall-clock"]);
        // Unrelated identifiers do not trip word matching.
        assert!(rules_of("let instant_rate = 1;\nlet randomizer = 2;\n").is_empty());
    }

    #[test]
    fn time_source_flags_std_time_and_date_idents() {
        assert_eq!(rules_of("use std::time::Duration;\n"), ["time-source"]);
        assert_eq!(rules_of("let e = UNIX_EPOCH;\n"), ["time-source"]);
        assert_eq!(
            rules_of("let now = chrono::Utc::now();\n"),
            ["time-source", "time-source"]
        );
        // Comments, strings, and the simulated time types stay quiet.
        assert!(rules_of("// std::time\nlet s = \"UNIX_EPOCH\";\n").is_empty());
        assert!(rules_of("let t = Timestamp::from_secs(0) + Duration::from_secs(5);\n").is_empty());
        // A justified allow still works.
        assert!(rules_of(
            "use std::time::Duration; // xtask-allow: time-source -- tool self-timing\n"
        )
        .is_empty());
    }

    #[test]
    fn time_source_guards_the_chaos_layer() {
        let findings = workspace_findings(&[(
            "crates/cloudsim/src/chaos.rs",
            "use std::time::SystemTime;\n",
        )]);
        assert!(
            findings.iter().any(|f| f.rule == "time-source"),
            "findings: {findings:?}"
        );
    }

    #[test]
    fn time_source_reaches_exempt_files_through_hot_paths() {
        let src = "// xtask: hot-path\nfn kernel() { let t0 = Instant::now(); }\n";
        let findings = workspace_findings(&[("crates/bench/src/lib.rs", src)]);
        assert_eq!(findings.len(), 1, "findings: {findings:?}");
        assert_eq!(findings[0].rule, "time-source");
        assert!(findings[0].message.contains("kernel"));
        // Unmarked timing-harness code may read the clock freely.
        let quiet = workspace_findings(&[(
            "crates/bench/src/lib.rs",
            "fn f() { let t0 = Instant::now(); }\n",
        )]);
        assert!(quiet.is_empty(), "findings: {quiet:?}");
    }

    #[test]
    fn detects_float_eq_only_on_literals() {
        assert_eq!(rules_of("if x == 0.0 { }\n"), ["float-eq"]);
        assert_eq!(rules_of("if 1e-9 != y { }\n"), ["float-eq"]);
        assert_eq!(rules_of("if x == -0.5 { }\n"), ["float-eq"]);
        assert!(rules_of("if x == y { }\n").is_empty());
        assert!(rules_of("if n == 0 { }\n").is_empty());
        assert!(rules_of("let ok = a <= 0.5;\n").is_empty());
        // Float spelled inside a string or comment is not an operand.
        assert!(rules_of("let s = \"x == 0.0\"; // y == 1.5\n").is_empty());
    }

    #[test]
    fn detects_nan_unsafe_sorts() {
        assert_eq!(
            rules_of("v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n"),
            ["nan-unsafe-sort", "unwrap"]
        );
        assert!(rules_of("v.sort_by(|a, b| a.total_cmp(b));\n").is_empty());
        assert!(rules_of("if a.partial_cmp(b) == Some(Ordering::Less) { }\n").is_empty());
    }

    #[test]
    fn counts_panic_debt() {
        assert_eq!(
            rules_of("let a = x.unwrap();\nlet b = y.expect(\"m\");\npanic!(\"boom\");\n"),
            ["unwrap", "expect", "panic"]
        );
        // assert!/debug_assert! are invariants, not debt.
        assert!(rules_of("assert!(x > 0);\ndebug_assert!(y.is_finite());\n").is_empty());
        // `.unwrap()` spelled in a string is not debt (the v1 masked
        // scanner got this right too; the lexer must not regress it).
        assert!(rules_of("let s = \".unwrap()\";\n").is_empty());
    }

    #[test]
    fn allows_suppress_with_reason() {
        let src =
            "let a = x.unwrap(); // xtask-allow: unwrap -- startup config, cannot be absent\n";
        assert!(rules_of(src).is_empty());
    }

    #[test]
    fn detects_variable_indexing_in_loops() {
        assert_eq!(
            rules_of("fn f() { for i in 0..n { let x = v[i]; } }\n"),
            ["index-in-loop"]
        );
        assert!(rules_of("fn f() { for i in 0..n { let x = v[0]; } }\n").is_empty());
        assert!(rules_of("fn f() { let x = v[i]; }\n").is_empty());
        assert!(rules_of("fn f() { for i in 0..n { let x = &v[1..j]; } }\n").is_empty());
        assert!(rules_of("fn f() { for x in v.iter() { g(x); } }\n").is_empty());
    }

    #[test]
    fn array_literals_in_loop_headers_are_not_indexing() {
        assert!(rules_of("fn f() { for (a, b) in [(x, y), (z, w)] { g(a, b); } }\n").is_empty());
        assert!(rules_of("fn f() { loop { if c { return [a, b]; } } }\n").is_empty());
        assert_eq!(
            rules_of("fn f() { for (a, b) in [(x, y)] { g(pairs[a]); } }\n"),
            ["index-in-loop"]
        );
    }

    #[test]
    fn hot_path_marker_flags_allocations() {
        let src = "// xtask: hot-path\nfn f(v: &[f64]) { let c = v.to_vec(); let d = c.clone(); let e = vec![0.0; 4]; }\n";
        assert_eq!(
            rules_of(src),
            ["hot-path-alloc", "hot-path-alloc", "hot-path-alloc"]
        );
    }

    #[test]
    fn unmarked_functions_may_allocate() {
        assert!(rules_of("fn f(v: &[f64]) -> Vec<f64> { v.to_vec() }\n").is_empty());
    }

    #[test]
    fn hot_path_marker_scopes_to_the_next_function_only() {
        let src = "// xtask: hot-path\nfn hot(out: &mut [f64]) { out.fill(0.0); }\nfn cold() -> Vec<f64> { vec![0.0] }\n";
        assert!(rules_of(src).is_empty());
    }

    #[test]
    fn hot_path_allocation_free_bodies_pass() {
        let src = "// xtask: hot-path\nfn f(out: &mut [f64], v: &[f64]) { for (o, x) in out.iter_mut().zip(v) { *o += *x; } }\n";
        assert!(rules_of(src).is_empty());
    }

    #[test]
    fn hot_path_alloc_respects_allow_markers() {
        let src = "// xtask: hot-path\nfn f() { let v = vec![0.0]; // xtask-allow: hot-path-alloc -- one-time setup\n}\n";
        assert!(rules_of(src).is_empty());
    }

    #[test]
    fn marker_outside_a_comment_does_not_arm_the_rule() {
        let src = "const M: &str = \"xtask: hot-path\";\nfn f() -> Vec<f64> { vec![0.0] }\n";
        assert!(rules_of(src).is_empty());
    }

    /// The tentpole acceptance test: a seeded `.clone()` two calls below
    /// a marked kernel is caught, and the finding names the route.
    #[test]
    fn transitive_hot_path_catches_allocation_two_calls_deep() {
        let src = "\
// xtask: hot-path
fn kernel(out: &mut [f64]) { mid(out); }
fn mid(out: &mut [f64]) { leaf(out); }
fn leaf(out: &mut [f64]) -> Vec<f64> { out.to_vec() }
";
        let findings = workspace_findings(&[("crates/x/src/lib.rs", src)]);
        assert_eq!(findings.len(), 1, "findings: {findings:?}");
        assert_eq!(findings[0].rule, "hot-path-alloc");
        assert_eq!(findings[0].line, 4);
        assert!(
            findings[0].message.contains("kernel -> mid -> leaf"),
            "route missing from: {}",
            findings[0].message
        );
    }

    #[test]
    fn transitive_hot_path_crosses_crates_through_use_aliases() {
        let markov = "pub fn helper(v: &[f64]) -> Vec<f64> { v.to_vec() }\n";
        let tan = "\
use prepare_markov::helper;
// xtask: hot-path
fn kernel(v: &[f64]) { helper(v); }
";
        let findings = workspace_findings(&[
            ("crates/markov/src/lib.rs", markov),
            ("crates/tan/src/lib.rs", tan),
        ]);
        let hot: Vec<&Finding> = findings
            .iter()
            .filter(|f| f.rule == "hot-path-alloc")
            .collect();
        assert_eq!(hot.len(), 1, "findings: {findings:?}");
        assert_eq!(hot[0].file, "crates/markov/src/lib.rs");
        assert!(hot[0].message.contains("kernel -> helper"));
    }

    #[test]
    fn transitive_hot_path_tolerates_cycles() {
        let src = "\
// xtask: hot-path
fn a() { b(); }
fn b() { a(); c(); }
fn c() { let s = format!(\"x\"); }
";
        let findings = workspace_findings(&[("crates/x/src/lib.rs", src)]);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("a -> b -> c"));
    }

    #[test]
    fn unguarded_log_requires_a_guard_in_scope() {
        assert_eq!(
            markov_rules_of("fn f(x: f64) -> f64 { x.ln() }\n"),
            ["unguarded-log"]
        );
        assert!(
            markov_rules_of("fn f(x: f64) -> f64 { debug_assert_finite!(x.ln()) }\n").is_empty()
        );
        assert!(markov_rules_of(
            "fn f(x: f64) -> f64 { let y = x.ln(); debug_assert!(y.is_finite()); y }\n"
        )
        .is_empty());
        // Not a probability crate, but still a library crate: active.
        assert_eq!(
            workspace_findings(&[(
                "crates/metrics/src/lib.rs",
                "fn f(x: f64) -> f64 { x.ln() }\n"
            )])
            .iter()
            .map(|f| f.rule)
            .collect::<Vec<_>>(),
            ["unguarded-log"]
        );
    }

    #[test]
    fn truncating_cast_needs_float_evidence_and_guard() {
        assert_eq!(
            markov_rules_of("fn f(x: f64) -> usize { x.round() as usize }\n"),
            ["truncating-cast"]
        );
        assert!(markov_rules_of(
            "fn f(x: f64) -> usize { debug_assert_finite!(x); x.round() as usize }\n"
        )
        .is_empty());
        // Integer-to-integer casts carry no NaN risk.
        assert!(markov_rules_of("fn f(n: u32) -> usize { n as usize }\n").is_empty());
    }

    #[test]
    fn unguarded_div_fires_only_on_float_evidence() {
        assert_eq!(
            markov_rules_of("fn f(sum: f64, n: usize) -> f64 { sum / n as f64 }\n"),
            ["unguarded-div"]
        );
        assert!(markov_rules_of("fn halve(n: usize) -> usize { n / 2 }\n").is_empty());
        assert!(markov_rules_of(
            "fn f(sum: f64, n: usize) -> f64 { debug_assert_finite!(sum / n as f64) }\n"
        )
        .is_empty());
        // Outside probability crates the rule is quiet.
        assert!(rules_of("fn f(sum: f64, n: usize) -> f64 { sum / n as f64 }\n").is_empty());
    }

    #[test]
    fn missing_finite_guard_applies_to_public_float_api() {
        assert_eq!(
            markov_rules_of("pub fn score(&self) -> f64 { self.raw }\n"),
            ["missing-finite-guard"]
        );
        assert!(
            markov_rules_of("pub fn score(&self) -> f64 { debug_assert_finite!(self.raw) }\n")
                .is_empty()
        );
        // Non-public and non-float functions are out of scope.
        assert!(markov_rules_of("pub(crate) fn score(&self) -> f64 { self.raw }\n").is_empty());
        assert!(markov_rules_of("pub fn len(&self) -> usize { self.n }\n").is_empty());
    }

    #[test]
    fn unused_allow_markers_are_findings() {
        let src = "fn f() {} // xtask-allow: unwrap -- nothing here uses it\n";
        assert_eq!(rules_of(src), ["unused-allow"]);
        // A consumed marker is not reported.
        let used = "let a = x.unwrap(); // xtask-allow: unwrap -- justified\n";
        assert!(rules_of(used).is_empty());
    }

    #[test]
    fn findings_are_sorted_and_labeled() {
        let findings = workspace_findings(&[(
            "crates/x/src/lib.rs",
            "let t = Instant::now();\nlet a = x.unwrap();\n",
        )]);
        let lines: Vec<usize> = findings.iter().map(|f| f.line).collect();
        assert_eq!(lines, [1, 2]);
        assert_eq!(findings[0].category.name(), "determinism");
        assert_eq!(findings[1].category.name(), "panic-debt");
    }

    #[test]
    fn event_coverage_flags_unreferenced_variants() {
        let events =
            "pub enum ControllerEvent {\n    Covered { at: u64 },\n    Orphan { at: u64 },\n}\n";
        let props = "pub fn p(e: &ControllerEvent) -> bool {\n    \
                     if let ControllerEvent::Covered { .. } = e { true } else { false }\n}\n";
        let findings = workspace_findings(&[
            ("crates/core/src/events.rs", events),
            ("crates/tlc/src/properties.rs", props),
        ]);
        let cov: Vec<_> = findings
            .iter()
            .filter(|f| f.rule == "event-coverage")
            .collect();
        assert_eq!(cov.len(), 1, "findings: {findings:?}");
        assert!(cov[0].message.contains("Orphan"));
        assert_eq!(cov[0].file, "crates/core/src/events.rs");
        assert_eq!(cov[0].line, 3);
    }

    #[test]
    fn event_coverage_ignores_test_only_references() {
        // A variant only mentioned inside #[cfg(test)] code of the
        // checker crate is still an uncovered blind spot.
        let events = "pub enum ControllerEvent {\n    Orphan { at: u64 },\n}\n";
        let props = "#[cfg(test)]\nmod tests {\n    fn f(e: &ControllerEvent) -> bool {\n        \
                     matches!(e, ControllerEvent::Orphan { .. })\n    }\n}\n";
        let findings = workspace_findings(&[
            ("crates/core/src/events.rs", events),
            ("crates/tlc/src/properties.rs", props),
        ]);
        assert!(
            findings.iter().any(|f| f.rule == "event-coverage"),
            "findings: {findings:?}"
        );
    }

    #[test]
    fn event_wildcard_flags_wildcards_in_event_matches() {
        let bad = "fn f(e: &ControllerEvent) -> u32 {\n    \
                   match e {\n        ControllerEvent::A { .. } => 1,\n        _ => 0,\n    }\n}\n";
        let findings = workspace_findings(&[("crates/tlc/src/lib.rs", bad)]);
        assert!(
            findings.iter().any(|f| f.rule == "event-wildcard"),
            "findings: {findings:?}"
        );
        // The same code outside the checker/analysis scope is legal.
        let outside = workspace_findings(&[("crates/core/src/controller.rs", bad)]);
        assert!(outside.iter().all(|f| f.rule != "event-wildcard"));
    }

    #[test]
    fn event_wildcard_attributes_to_the_innermost_match() {
        // A match over another enum — even nested inside an event match
        // arm — may use `_` freely; only the event match itself is held
        // to exhaustiveness.
        let nested = "fn f(e: &ControllerEvent) -> u32 {\n    \
                      match e {\n        ControllerEvent::A { n } => match n {\n            \
                      0 => 1,\n            _ => 2,\n        },\n    }\n}\n";
        let findings = workspace_findings(&[("crates/tlc/src/lib.rs", nested)]);
        assert!(
            findings.iter().all(|f| f.rule != "event-wildcard"),
            "findings: {findings:?}"
        );
        let plain = "fn g(k: Kind) -> u32 {\n    match k {\n        Kind::X => 1,\n        \
                     _ => 0,\n    }\n}\n";
        let quiet = workspace_findings(&[("crates/tlc/src/lib.rs", plain)]);
        assert!(
            quiet.iter().all(|f| f.rule != "event-wildcard"),
            "findings: {quiet:?}"
        );
    }
}
