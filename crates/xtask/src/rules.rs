//! The lint rules: determinism hazards and panic debt.
//!
//! Every detector runs over the *masked* text (comments and literal
//! bodies blanked), skips `#[cfg(test)]` regions where the policy says
//! so, and honours `// xtask-allow: <rule> -- <reason>` markers on the
//! finding's line or the line above.

use crate::scan::SourceFile;

/// Finding categories, in report order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Category {
    /// Nondeterminism that would de-reproduce seeded experiments. Zero
    /// tolerance: no baseline entries exist for this category.
    Determinism,
    /// Code that can panic in library crates; ratcheted via the baseline.
    PanicDebt,
    /// Allocation inside a function marked `// xtask: hot-path`. Zero
    /// tolerance: the marked loops are the per-tick prediction budget
    /// and must stay allocation-free.
    HotPath,
    /// Drift between DESIGN.md's experiment index and the crates.
    Fidelity,
}

impl Category {
    /// Stable report name.
    pub fn name(self) -> &'static str {
        match self {
            Category::Determinism => "determinism",
            Category::PanicDebt => "panic-debt",
            Category::HotPath => "hot-path",
            Category::Fidelity => "fidelity",
        }
    }
}

/// One lint hit.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Category the rule belongs to.
    pub category: Category,
    /// Stable rule name (used by baseline keys and allow markers).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

/// Runs every file-level detector over one source file.
pub fn check_file(f: &SourceFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    if f.policy.determinism {
        hash_collections(f, &mut findings);
        ambient_rng(f, &mut findings);
        if !f.policy.wall_clock_allowed {
            wall_clock(f, &mut findings);
        }
        float_eq(f, &mut findings);
        nan_unsafe_sort(f, &mut findings);
    }
    if f.policy.count_panic_debt {
        panic_debt(f, &mut findings);
        index_in_loop(f, &mut findings);
    }
    // The marker is explicit opt-in, so this detector runs everywhere.
    hot_path_alloc(f, &mut findings);
    findings
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Yields offsets of `needle` in `haystack` occurring as a whole word.
fn word_occurrences<'a>(haystack: &'a str, needle: &'a str) -> impl Iterator<Item = usize> + 'a {
    let bytes = haystack.as_bytes();
    let mut from = 0usize;
    std::iter::from_fn(move || {
        while let Some(found) = haystack[from..].find(needle) {
            let at = from + found;
            from = at + needle.len();
            let before_ok = at == 0 || !bytes.get(at - 1).copied().is_some_and(is_ident_byte);
            let after_ok = !bytes
                .get(at + needle.len())
                .copied()
                .is_some_and(is_ident_byte);
            if before_ok && after_ok {
                return Some(at);
            }
        }
        None
    })
}

fn push(
    f: &SourceFile,
    findings: &mut Vec<Finding>,
    at: usize,
    category: Category,
    rule: &'static str,
    message: String,
    skip_test_regions: bool,
) {
    if skip_test_regions && f.in_test_region(at) {
        return;
    }
    let line = f.line_of(at);
    if f.is_allowed(line, rule) {
        return;
    }
    findings.push(Finding {
        file: f.rel_path.clone(),
        line,
        category,
        rule,
        message,
    });
}

/// `HashMap`/`HashSet` in simulation-visible code: iteration order is
/// randomized per process, so any iteration that reaches simulation
/// state or output de-reproduces runs. `BTreeMap`/`BTreeSet` are the
/// deterministic replacements.
fn hash_collections(f: &SourceFile, findings: &mut Vec<Finding>) {
    for name in ["HashMap", "HashSet"] {
        for at in word_occurrences(&f.masked, name) {
            push(
                f,
                findings,
                at,
                Category::Determinism,
                "hash-collection",
                format!("{name} in simulation-visible code; use the BTree equivalent"),
                true,
            );
        }
    }
}

/// Unseeded entropy sources in library code.
fn ambient_rng(f: &SourceFile, findings: &mut Vec<Finding>) {
    for name in ["thread_rng", "from_entropy", "OsRng"] {
        for at in word_occurrences(&f.masked, name) {
            push(
                f,
                findings,
                at,
                Category::Determinism,
                "ambient-rng",
                format!("{name} draws OS entropy; thread a seeded StdRng through instead"),
                true,
            );
        }
    }
    for at in word_occurrences(&f.masked, "random") {
        // `rand::random()` specifically; a fn named `randomize` etc. is
        // caught by word boundaries already, but only flag the
        // qualified form to avoid matching local identifiers.
        if f.masked[..at].ends_with("rand::") {
            push(
                f,
                findings,
                at,
                Category::Determinism,
                "ambient-rng",
                "rand::random() draws OS entropy; thread a seeded StdRng through instead".into(),
                true,
            );
        }
    }
}

/// Wall-clock reads in library code: `Instant`/`SystemTime` differ per
/// run and so must never influence simulation results.
fn wall_clock(f: &SourceFile, findings: &mut Vec<Finding>) {
    for name in ["Instant", "SystemTime"] {
        for at in word_occurrences(&f.masked, name) {
            push(
                f,
                findings,
                at,
                Category::Determinism,
                "wall-clock",
                format!(
                    "{name} reads the wall clock; simulation code must use simulated Timestamps"
                ),
                true,
            );
        }
    }
}

/// `==`/`!=` against a float literal: exact float comparison is almost
/// never the intent in metric code and breaks under recomputation noise.
fn float_eq(f: &SourceFile, findings: &mut Vec<Finding>) {
    let bytes = f.masked.as_bytes();
    let mut i = 0usize;
    while i + 1 < bytes.len() {
        let two = &bytes[i..i + 2];
        if two == b"==" || two == b"!=" {
            // Skip `===`? Not Rust. Skip `<=`, `>=`, `!=` handled; make
            // sure `=` isn't part of `==` already counted.
            let lhs_float = preceding_token_is_float(&f.masked, i);
            let rhs_float = following_token_is_float(&f.masked, i + 2);
            if lhs_float || rhs_float {
                push(
                    f,
                    findings,
                    i,
                    Category::Determinism,
                    "float-eq",
                    "exact equality against a float literal; compare with a tolerance or restructure"
                        .into(),
                    true,
                );
            }
            i += 2;
        } else {
            i += 1;
        }
    }
}

fn is_float_literal(token: &str) -> bool {
    let t = token.trim_end_matches("f64").trim_end_matches("f32");
    let t = t.strip_prefix('-').unwrap_or(t);
    if t.is_empty() || !t.as_bytes()[0].is_ascii_digit() {
        return false;
    }
    (t.contains('.') || t.contains('e') || t.contains('E'))
        && t.bytes()
            .all(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-' | b'_'))
}

fn preceding_token_is_float(text: &str, op_at: usize) -> bool {
    let before = text[..op_at].trim_end();
    let start = before
        .rfind(|c: char| !(c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-' | '+')))
        .map_or(0, |p| p + 1);
    is_float_literal(&before[start..])
}

fn following_token_is_float(text: &str, after_op: usize) -> bool {
    let rest = text[after_op..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-' | '+')))
        .unwrap_or(rest.len());
    is_float_literal(&rest[..end])
}

/// `partial_cmp(..).unwrap()/expect(..)` — panics on NaN and silently
/// depends on NaN never reaching the comparator. `total_cmp` is the
/// deterministic, panic-free replacement.
fn nan_unsafe_sort(f: &SourceFile, findings: &mut Vec<Finding>) {
    for at in word_occurrences(&f.masked, "partial_cmp") {
        let window_end = (at + 160).min(f.masked.len());
        let window = &f.masked[at..window_end];
        if window.contains(".unwrap()") || window.contains(".expect(") {
            push(
                f,
                findings,
                at,
                Category::Determinism,
                "nan-unsafe-sort",
                "partial_cmp().unwrap() is NaN-unsafe; use f64::total_cmp".into(),
                true,
            );
        }
    }
}

/// The ratcheted panic-debt token rules: `(rule name, needle)`.
pub const PANIC_DEBT_TOKENS: [(&str, &str); 6] = [
    ("unwrap", ".unwrap()"),
    ("expect", ".expect("),
    ("panic", "panic!"),
    ("unreachable", "unreachable!"),
    ("todo", "todo!"),
    ("unimplemented", "unimplemented!"),
];

fn panic_debt(f: &SourceFile, findings: &mut Vec<Finding>) {
    for (rule, needle) in PANIC_DEBT_TOKENS {
        let mut from = 0usize;
        while let Some(found) = f.masked[from..].find(needle) {
            let at = from + found;
            from = at + needle.len();
            // `.unwrap()` / `.expect(` never start an identifier; the
            // macro names need a word boundary on the left, which also
            // excludes `debug_assert!`-style bang macros that merely
            // *contain* the word.
            if needle.as_bytes()[0] != b'.'
                && at > 0
                && f.masked
                    .as_bytes()
                    .get(at - 1)
                    .copied()
                    .is_some_and(is_ident_byte)
            {
                continue;
            }
            push(
                f,
                findings,
                at,
                Category::PanicDebt,
                rule,
                format!("`{needle}` can panic in a library crate"),
                true,
            );
        }
    }
}

/// True when the text following a `for` keyword reads as a loop header
/// (`for pat in iter {`) rather than a trait impl or HRTB: an `in` word
/// must appear before the opening brace or a semicolon.
fn for_header_is_loop(rest: &str) -> bool {
    let bytes = rest.as_bytes();
    let mut i = 0usize;
    while let Some(&b) = bytes.get(i) {
        match b {
            b'{' | b';' => return false,
            _ if is_ident_byte(b) => {
                let start = i;
                while bytes.get(i).copied().is_some_and(is_ident_byte) {
                    i += 1;
                }
                if &rest[start..i] == "in" {
                    return true;
                }
            }
            _ => i += 1,
        }
    }
    false
}

/// Direct, non-literal indexing inside a loop body: a hot-path panic
/// risk (and bounds-check cost) the paper's control loop cannot afford.
/// `get`/iterators are the replacements.
fn index_in_loop(f: &SourceFile, findings: &mut Vec<Finding>) {
    let bytes = f.masked.as_bytes();
    #[derive(Clone, Copy, PartialEq)]
    enum Scope {
        Plain,
        Loop,
    }
    let mut stack: Vec<Scope> = Vec::new();
    let mut loop_depth = 0usize;
    let mut pending_loop = false;
    let mut i = 0usize;
    while let Some(&b) = bytes.get(i) {
        if is_ident_byte(b) {
            let start = i;
            while bytes.get(i).copied().is_some_and(is_ident_byte) {
                i += 1;
            }
            let word = &f.masked[start..i];
            // `for` also introduces trait impls (`impl Trait for Type {`)
            // and HRTBs; only a `for … in …` header is a loop.
            if matches!(word, "while" | "loop")
                || (word == "for" && for_header_is_loop(&f.masked[i..]))
            {
                pending_loop = true;
            }
            continue;
        }
        match b {
            b'{' => {
                let scope = if pending_loop {
                    Scope::Loop
                } else {
                    Scope::Plain
                };
                pending_loop = false;
                if scope == Scope::Loop {
                    loop_depth += 1;
                }
                stack.push(scope);
            }
            b'}' if stack.pop() == Some(Scope::Loop) => {
                loop_depth = loop_depth.saturating_sub(1);
            }
            b';' => pending_loop = false,
            b'[' if loop_depth > 0 => {
                // Indexing only: the `[` must follow a value expression.
                // A keyword there (`for x in [..]`, `return [..]`) means
                // an array literal instead.
                let prev_end = bytes[..i].iter().rposition(|b| !b.is_ascii_whitespace());
                let is_indexing = prev_end.is_some_and(|e| match bytes.get(e).copied() {
                    Some(b')' | b']') => true,
                    Some(p) if is_ident_byte(p) => {
                        let mut s = e;
                        while s > 0 && bytes.get(s - 1).copied().is_some_and(is_ident_byte) {
                            s -= 1;
                        }
                        !matches!(
                            &f.masked[s..=e],
                            "in" | "return" | "break" | "if" | "else" | "match" | "move"
                        )
                    }
                    _ => false,
                });
                if is_indexing {
                    // Find the matching `]`.
                    let mut depth = 1i64;
                    let mut j = i + 1;
                    while depth > 0 {
                        match bytes.get(j) {
                            None => break,
                            Some(b'[') => depth += 1,
                            Some(b']') => depth -= 1,
                            _ => {}
                        }
                        j += 1;
                    }
                    let inner = f.masked[i + 1..j.saturating_sub(1)].trim();
                    let literal_index =
                        !inner.is_empty() && inner.bytes().all(|b| b.is_ascii_digit() || b == b'_');
                    let range_slice = inner.contains("..");
                    if !literal_index && !range_slice && !inner.is_empty() {
                        push(
                            f,
                            findings,
                            i,
                            Category::PanicDebt,
                            "index-in-loop",
                            format!("`[{inner}]` indexing inside a loop can panic; prefer get()/iterators"),
                            true,
                        );
                    }
                    i = j;
                    continue;
                }
            }
            _ => {}
        }
        i += 1;
    }
}

/// Comment marker that opts the next function into [`hot_path_alloc`].
const HOT_PATH_MARKER: &str = "xtask: hot-path";

/// Allocation calls — `.clone()`, `.to_vec()`, `vec![` — inside a
/// function annotated with a `// xtask: hot-path` comment. The marked
/// functions form the per-tick prediction inner loop (Markov propagation,
/// TAN scoring); an allocation there reintroduces exactly the per-step
/// `vec![0.0; n * n]` cost the frozen-snapshot rewrite removed, and the
/// regression is invisible to tests because outputs stay bit-identical.
fn hot_path_alloc(f: &SourceFile, findings: &mut Vec<Finding>) {
    let bytes = f.masked.as_bytes();
    let mut search = 0usize;
    while let Some(found) = f.text[search..].find(HOT_PATH_MARKER) {
        let marker_at = search + found;
        search = marker_at + HOT_PATH_MARKER.len();
        // The marker lives in a comment, which `masked` blanks — but the
        // two views share byte offsets, so locate it in `text` and insist
        // the line opens it with `//` (a stray occurrence in code or a
        // string body does not arm the rule).
        let line_start = f.text[..marker_at].rfind('\n').map_or(0, |p| p + 1);
        if !f.text[line_start..marker_at].contains("//") {
            continue;
        }
        // The annotated item is the next `fn` in the masked view; brace-
        // match its body.
        let Some(fn_rel) = word_occurrences(&f.masked[search..], "fn").next() else {
            continue;
        };
        let fn_at = search + fn_rel;
        let Some(open_rel) = f.masked[fn_at..].find('{') else {
            continue;
        };
        let open = fn_at + open_rel;
        let mut depth = 0i64;
        let mut j = open;
        while let Some(&c) = bytes.get(j) {
            match c {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        let body_end = (j + 1).min(f.masked.len());
        for needle in [".clone()", ".to_vec()", "vec!["] {
            let mut from = open;
            while let Some(hit) = f.masked[from..body_end].find(needle) {
                let at = from + hit;
                from = at + needle.len();
                push(
                    f,
                    findings,
                    at,
                    Category::HotPath,
                    "hot-path-alloc",
                    format!("`{needle}` allocates inside a `// {HOT_PATH_MARKER}` function"),
                    true,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::{policy_for, SourceFile};

    fn lib_file(text: &str) -> SourceFile {
        crate::scan::analyze_for_tests(
            "crates/x/src/lib.rs".into(),
            text.into(),
            policy_for("crates/x/src/lib.rs"),
        )
    }

    fn rules_of(text: &str) -> Vec<&'static str> {
        check_file(&lib_file(text))
            .into_iter()
            .map(|f| f.rule)
            .collect()
    }

    #[test]
    fn detects_hash_collections_outside_tests() {
        assert_eq!(
            rules_of("use std::collections::HashMap;\n"),
            ["hash-collection"]
        );
        assert!(rules_of("#[cfg(test)]\nmod t { use std::collections::HashMap; }\n").is_empty());
        // Comments and strings never count.
        assert!(rules_of("// HashMap\nlet s = \"HashSet\";\n").is_empty());
    }

    #[test]
    fn detects_ambient_rng_and_wall_clock() {
        assert_eq!(rules_of("let r = thread_rng();\n"), ["ambient-rng"]);
        assert_eq!(rules_of("let x: f64 = rand::random();\n"), ["ambient-rng"]);
        assert_eq!(rules_of("let t = Instant::now();\n"), ["wall-clock"]);
        assert_eq!(rules_of("let t = SystemTime::now();\n"), ["wall-clock"]);
        // Unrelated identifiers do not trip word matching.
        assert!(rules_of("let instant_rate = 1;\nlet randomizer = 2;\n").is_empty());
    }

    #[test]
    fn detects_float_eq_only_on_literals() {
        assert_eq!(rules_of("if x == 0.0 { }\n"), ["float-eq"]);
        assert_eq!(rules_of("if 1e-9 != y { }\n"), ["float-eq"]);
        assert!(rules_of("if x == y { }\n").is_empty());
        assert!(rules_of("if n == 0 { }\n").is_empty());
        assert!(rules_of("let ok = a <= 0.5;\n").is_empty());
    }

    #[test]
    fn detects_nan_unsafe_sorts() {
        assert_eq!(
            rules_of("v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n"),
            ["nan-unsafe-sort", "unwrap"]
        );
        assert!(rules_of("v.sort_by(|a, b| a.total_cmp(b));\n").is_empty());
        assert!(rules_of("if a.partial_cmp(b) == Some(Ordering::Less) { }\n").is_empty());
    }

    #[test]
    fn counts_panic_debt() {
        assert_eq!(
            rules_of("let a = x.unwrap();\nlet b = y.expect(\"m\");\npanic!(\"boom\");\n"),
            ["unwrap", "expect", "panic"]
        );
        // assert!/debug_assert! are invariants, not debt.
        assert!(rules_of("assert!(x > 0);\ndebug_assert!(y.is_finite());\n").is_empty());
    }

    #[test]
    fn allows_suppress_with_reason() {
        let src =
            "let a = x.unwrap(); // xtask-allow: unwrap -- startup config, cannot be absent\n";
        assert!(rules_of(src).is_empty());
    }

    #[test]
    fn detects_variable_indexing_in_loops() {
        assert_eq!(
            rules_of("fn f() { for i in 0..n { let x = v[i]; } }\n"),
            ["index-in-loop"]
        );
        assert!(rules_of("fn f() { for i in 0..n { let x = v[0]; } }\n").is_empty());
        assert!(rules_of("fn f() { let x = v[i]; }\n").is_empty());
        assert!(rules_of("fn f() { for i in 0..n { let x = &v[1..j]; } }\n").is_empty());
        assert!(rules_of("fn f() { for x in v.iter() { g(x); } }\n").is_empty());
    }

    #[test]
    fn hot_path_marker_flags_allocations() {
        let src = "// xtask: hot-path\nfn f(v: &[f64]) { let c = v.to_vec(); let d = c.clone(); let e = vec![0.0; 4]; }\n";
        assert_eq!(
            rules_of(src),
            ["hot-path-alloc", "hot-path-alloc", "hot-path-alloc"]
        );
    }

    #[test]
    fn unmarked_functions_may_allocate() {
        assert!(rules_of("fn f(v: &[f64]) -> Vec<f64> { v.to_vec() }\n").is_empty());
    }

    #[test]
    fn hot_path_marker_scopes_to_the_next_function_only() {
        let src = "// xtask: hot-path\nfn hot(out: &mut [f64]) { out.fill(0.0); }\nfn cold() -> Vec<f64> { vec![0.0] }\n";
        assert!(rules_of(src).is_empty());
    }

    #[test]
    fn hot_path_allocation_free_bodies_pass() {
        let src = "// xtask: hot-path\nfn f(out: &mut [f64], v: &[f64]) { for (o, x) in out.iter_mut().zip(v) { *o += *x; } }\n";
        assert!(rules_of(src).is_empty());
    }

    #[test]
    fn hot_path_alloc_respects_allow_markers() {
        let src = "// xtask: hot-path\nfn f() { let v = vec![0.0]; // xtask-allow: hot-path-alloc -- one-time setup\n}\n";
        assert!(rules_of(src).is_empty());
    }

    #[test]
    fn marker_outside_a_comment_does_not_arm_the_rule() {
        let src = "const M: &str = \"xtask: hot-path\";\nfn f() -> Vec<f64> { vec![0.0] }\n";
        assert!(rules_of(src).is_empty());
    }

    #[test]
    fn array_literals_in_loop_headers_are_not_indexing() {
        assert!(rules_of("fn f() { for (a, b) in [(x, y), (z, w)] { g(a, b); } }\n").is_empty());
        assert!(rules_of("fn f() { loop { if c { return [a, b]; } } }\n").is_empty());
        assert_eq!(
            rules_of("fn f() { for (a, b) in [(x, y)] { g(pairs[a]); } }\n"),
            ["index-in-loop"]
        );
    }
}
