//! Interprocedural def-use/taint engine over the token stream.
//!
//! Per-function assignment graphs are built from let-bindings,
//! reassignments and call argument→return flow; interprocedural
//! propagation runs per-function summaries (which params flow to the
//! return value, to sinks, or into inexact ops) to fixpoint over the
//! workspace call graph. Three zero-tolerance rule families ride on it:
//!
//! * `determinism-taint` — values tainted by HashMap/HashSet iteration
//!   order, `Instant`/`SystemTime`, thread ids or pointer-derived keys
//!   must not reach trace-visible sinks (`ControllerEvent` construction,
//!   `fingerprint*` functions, `// xtask: taint-sink nondet` fns).
//! * `exactness-taint` — count-kind f64 values (armed by
//!   `// xtask: taint-source count`) may only flow through exact ops
//!   until a `// xtask: derive-boundary` function; division,
//!   multiplication by a non-power-of-two or an inexact float method on
//!   a count elsewhere is a finding.
//! * `shard-purity` — functions reachable from `par_map`/
//!   `par_for_each_mut` shard closures must not take locks, touch
//!   atomics, or write statics: the workers-N ≡ workers-1 byte-identity
//!   proof becomes structural instead of test-only.
//!
//! The taint domain is a `u64` bitset: low 32 bits mean "depends on
//! param i", bit 32 is the `nondet` kind, bit 33 the `count` kind.
//! Findings are reported in the frame where a kind-tainted *value*
//! meets a sink or inexact op; taint that enters through a parameter is
//! the caller's responsibility via the summary, so nothing is reported
//! twice.

use crate::callgraph::{CallSite, FnId, Graph, Sites};
use crate::items::{FileItems, FnItem, TaintMark};
use crate::lexer::TokenKind;
use crate::rules::{matching, push, Category, Finding};
use crate::scan::SourceFile;
use std::collections::{BTreeMap, BTreeSet};

/// Low 32 bits: the value depends on the corresponding parameter.
const PARAM_MASK: u64 = 0xFFFF_FFFF;
/// Nondeterminism kind: iteration order, wall clock, thread id, pointer.
const NONDET: u64 = 1 << 32;
/// Count kind: integer-valued f64 sufficient statistics.
const COUNT: u64 = 1 << 33;
const KIND_MASK: u64 = NONDET | COUNT;

fn kind_bit(name: &str) -> u64 {
    match name {
        "nondet" => NONDET,
        "count" => COUNT,
        _ => 0,
    }
}

fn rule_for(bit: u64) -> &'static str {
    if bit & NONDET != 0 {
        "determinism-taint"
    } else {
        "exactness-taint"
    }
}

/// Iteration methods that expose HashMap/HashSet traversal order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
];

/// Float methods that round: a count flowing in stops being exact.
const INEXACT_METHODS: &[&str] = &[
    "sqrt", "exp", "exp2", "exp_m1", "ln", "ln_1p", "log2", "log10", "powf", "powi", "recip",
    "cbrt", "hypot", "sin", "cos", "tan",
];

/// Length-style accessors whose result is untainted by the receiver.
const UNTAINTED_METHODS: &[&str] = &["len", "is_empty", "capacity"];

/// One function's dataflow summary, iterated to fixpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct Summary {
    /// Taint of the return value (param bits + kind bits).
    ret: u64,
    /// Params that flow into a nondet sink inside (caller reports).
    sink_nondet: u32,
    /// Params that flow into a count sink inside.
    sink_count: u32,
    /// Params that flow into an inexact op inside a non-boundary fn.
    inexact: u32,
}

/// Runs the engine: global Jacobi fixpoint over summaries, then one
/// recording pass that emits findings, then the shard-purity and
/// orphan-marker passes.
pub fn check(
    files: &[SourceFile],
    parsed: &[FileItems],
    graph: &Graph,
    sites: &Sites,
    findings: &mut Vec<Finding>,
) {
    let n = graph.fns.len();
    let mut summaries = vec![Summary::default(); n];
    let mut used: BTreeSet<(usize, usize)> = BTreeSet::new();
    let mut seen: BTreeSet<(usize, usize, &'static str)> = BTreeSet::new();
    for _round in 0..8 {
        let mut next = vec![Summary::default(); n];
        for (id, slot) in next.iter_mut().enumerate() {
            *slot = analyze(
                files, parsed, graph, sites, &summaries, id, &mut used, &mut seen, None,
            );
        }
        let changed = next != summaries;
        summaries = next;
        if !changed {
            break;
        }
    }
    // Recording pass against the converged summaries. Marker-use facts
    // from the fixpoint rounds may be stale; recompute them here.
    used.clear();
    for id in 0..n {
        analyze(
            files,
            parsed,
            graph,
            sites,
            &summaries,
            id,
            &mut used,
            &mut seen,
            Some(findings),
        );
    }
    shard_purity(files, parsed, graph, sites, findings);
    orphan_markers(files, parsed, &used, findings);
}

/// True when this function participates in dataflow at all.
fn analyzed(f: &SourceFile, item: &FnItem) -> bool {
    f.policy.determinism && !item.in_test
}

#[allow(clippy::too_many_arguments)]
fn analyze(
    files: &[SourceFile],
    parsed: &[FileItems],
    graph: &Graph,
    sites: &Sites,
    summaries: &[Summary],
    id: FnId,
    used: &mut BTreeSet<(usize, usize)>,
    seen: &mut BTreeSet<(usize, usize, &'static str)>,
    mut out: Option<&mut Vec<Finding>>,
) -> Summary {
    let Some(&r) = graph.fns.get(id) else {
        return Summary::default();
    };
    let (Some(f), Some(item)) = (
        files.get(r.file),
        parsed.get(r.file).and_then(|it| it.fns.get(r.item)),
    ) else {
        return Summary::default();
    };
    if !analyzed(f, item) {
        return Summary::default();
    }
    let mut summ = Summary::default();
    if let Some((open, close)) = item.body {
        let site_map: BTreeMap<usize, &CallSite> = sites
            .get(id)
            .map(|v| v.iter().map(|s| (s.pos, s)).collect())
            .unwrap_or_default();
        let mut vars: BTreeMap<String, u64> = BTreeMap::new();
        let mut hash_vars: BTreeSet<String> = BTreeSet::new();
        for (i, p) in item.params.iter().enumerate().take(32) {
            let mut t = 1u64 << i;
            if p.ty.contains("Instant") || p.ty.contains("SystemTime") {
                t |= NONDET;
            }
            vars.insert(p.name.clone(), t);
            if p.ty.contains("HashMap") || p.ty.contains("HashSet") {
                hash_vars.insert(p.name.clone());
            }
        }
        // Inner fixpoint: loop-carried assignments converge in a few
        // passes because taint only ever grows.
        for _pass in 0..3 {
            let prev_vars = vars.clone();
            let prev_summ = summ;
            summ.ret = 0;
            let mut a = Analyzer {
                parsed,
                graph,
                summaries,
                f,
                fi: r.file,
                item,
                site_map: &site_map,
                vars: &mut vars,
                hash_vars: &mut hash_vars,
                boundary: item.derive_boundary.is_some(),
                summ: &mut summ,
                used,
                seen,
                out: out.as_deref_mut(),
            };
            a.walk_body(open, close);
            if vars == prev_vars
                && (Summary {
                    ret: summ.ret,
                    ..prev_summ
                }) == summ
            {
                break;
            }
        }
    }
    if item.ret.is_empty() {
        summ.ret = 0;
    }
    if let Some(m) = &item.taint_source {
        summ.ret |= kind_bit(&m.kind);
    }
    if let Some(m) = &item.taint_sanitize {
        let kb = kind_bit(&m.kind);
        if summ.ret & kb != 0 {
            used.insert((r.file, m.line));
        }
        summ.ret &= !kb;
    }
    summ
}

/// Walks one function body, threading the variable environment.
struct Analyzer<'a, 'b> {
    parsed: &'a [FileItems],
    graph: &'a Graph,
    summaries: &'a [Summary],
    f: &'a SourceFile,
    fi: usize,
    item: &'a FnItem,
    site_map: &'a BTreeMap<usize, &'a CallSite>,
    vars: &'a mut BTreeMap<String, u64>,
    hash_vars: &'a mut BTreeSet<String>,
    boundary: bool,
    summ: &'a mut Summary,
    used: &'a mut BTreeSet<(usize, usize)>,
    seen: &'a mut BTreeSet<(usize, usize, &'static str)>,
    out: Option<&'b mut Vec<Finding>>,
}

impl<'a, 'b> Analyzer<'a, 'b> {
    fn walk_body(&mut self, open: usize, close: usize) {
        let mut seg_start = open + 1;
        let mut tail = 0u64;
        for j in open + 1..=close {
            let is_end = j == close || self.f.cpunct(j, ';');
            if !is_end {
                continue;
            }
            let (s, e) = (seg_start, j);
            seg_start = j + 1;
            if s >= e {
                continue;
            }
            let v = self.statement(s, e);
            if j == close {
                tail = v;
            }
            // `return expr` anywhere in the segment feeds the return.
            if let Some(rk) = (s..e).find(|&k| self.f.cident(k) == Some("return")) {
                let v = self.eval(rk + 1, e);
                self.summ.ret |= v;
            }
        }
        self.summ.ret |= tail;
    }

    /// One `;`-delimited segment: handles the earliest binding construct
    /// (`let`, `for … in`, assignment) and evaluates the rest. Returns
    /// the segment's value taint.
    fn statement(&mut self, s: usize, e: usize) -> u64 {
        let first_let = (s..e).find(|&k| self.f.cident(k) == Some("let"));
        let first_for = (s..e).find(|&k| {
            self.f.cident(k) == Some("for") && {
                // A loop header, not `impl T for U`: an `in` word before
                // the segment ends or a brace opens.
                (k + 1..e).any(|j| self.f.cident(j) == Some("in"))
            }
        });
        match (first_let, first_for) {
            (Some(l), f4) if f4.is_none_or(|fk| l < fk) => {
                let _ = self.eval(s, l);
                self.handle_let(l, e)
            }
            (_, Some(fk)) => {
                let _ = self.eval(s, fk);
                self.handle_for(fk, e)
            }
            _ => {
                if let Some(eq) = self.find_assign(s, e) {
                    let rhs = self.eval(eq + 1, e);
                    let _ = self.eval(s, eq);
                    if let Some(name) = (s..eq).find_map(|k| self.f.cident(k)) {
                        *self.vars.entry(name.to_string()).or_insert(0) |= rhs;
                    }
                    rhs
                } else {
                    self.eval(s, e)
                }
            }
        }
    }

    /// Position of a plain assignment `=` in `[s, e)`, skipping
    /// comparison operators.
    fn find_assign(&self, s: usize, e: usize) -> Option<usize> {
        (s..e).find(|&k| {
            self.f.cpunct(k, '=')
                && !self.f.cpair(k, '=', '=')
                && !self.f.cpair(k, '=', '>')
                && !k.checked_sub(1).is_some_and(|p| {
                    self.f.cpair(p, '=', '=')
                        || self.f.cpair(p, '!', '=')
                        || self.f.cpair(p, '<', '=')
                        || self.f.cpair(p, '>', '=')
                })
        })
    }

    /// `let [mut] PAT [: TY] = RHS` starting at the `let` keyword.
    fn handle_let(&mut self, l: usize, e: usize) -> u64 {
        let eq = self.find_assign(l, e);
        let bound_end = eq.unwrap_or(e);
        // Explicit annotation: first `:` (not `::`) before the `=`.
        let colon = (l + 1..bound_end).find(|&k| {
            self.f.cpunct(k, ':')
                && !self.f.cpair(k, ':', ':')
                && !k.checked_sub(1).is_some_and(|p| self.f.cpair(p, ':', ':'))
        });
        let pat_end = colon.unwrap_or(bound_end);
        let names: Vec<String> = (l + 1..pat_end)
            .filter_map(|k| self.f.cident(k))
            .filter(|w| !matches!(*w, "mut" | "ref" | "Some" | "Ok" | "Err"))
            .map(str::to_string)
            .collect();
        let mut extra = 0u64;
        let mut hashed = false;
        if let Some(c) = colon {
            for k in c + 1..bound_end {
                match self.f.cident(k) {
                    Some("Instant" | "SystemTime") => extra |= NONDET,
                    Some("HashMap" | "HashSet") => hashed = true,
                    _ => {}
                }
            }
        }
        let rhs = match eq {
            Some(eq) => {
                hashed |=
                    (eq + 1..e).any(|k| matches!(self.f.cident(k), Some("HashMap" | "HashSet")));
                self.eval(eq + 1, e)
            }
            None => 0,
        };
        for name in names {
            self.vars.insert(name.clone(), rhs | extra);
            if hashed {
                self.hash_vars.insert(name);
            }
        }
        rhs | extra
    }

    /// `for PAT in ITER { … }` starting at the `for` keyword: binds the
    /// pattern names to the iterated expression's taint, then processes
    /// the remainder of the segment.
    fn handle_for(&mut self, fk: usize, e: usize) -> u64 {
        let Some(inp) = (fk + 1..e).find(|&k| self.f.cident(k) == Some("in")) else {
            return self.eval(fk + 1, e);
        };
        let brace = (inp + 1..e).find(|&k| self.f.cpunct(k, '{')).unwrap_or(e);
        let iter = self.eval(inp + 1, brace);
        for k in fk + 1..inp {
            if let Some(w) = self.f.cident(k) {
                if !matches!(w, "mut" | "ref") {
                    *self.vars.entry(w.to_string()).or_insert(0) |= iter;
                }
            }
        }
        if brace < e {
            self.statement(brace + 1, e)
        } else {
            0
        }
    }

    /// Evaluates an expression span, returning its taint. Sinks and
    /// inexact ops inside are reported as side effects.
    fn eval(&mut self, s: usize, e: usize) -> u64 {
        let f = self.f;
        let mut acc = 0u64;
        let mut last = 0u64;
        let mut j = s;
        while j < e {
            if let Some(w) = f.cident(j) {
                if w == "as" {
                    // Pointer casts mint address-derived values.
                    if f.cpunct(j + 1, '*') && matches!(f.cident(j + 2), Some("const" | "mut")) {
                        acc |= NONDET;
                        last |= NONDET;
                    }
                    j += 1;
                    continue;
                }
                if w == "ControllerEvent" && f.cpair(j + 1, ':', ':') && f.cident(j + 3).is_some() {
                    let op = j + 4;
                    let pair = if f.cpunct(op, '{') {
                        Some(('{', '}'))
                    } else if f.cpunct(op, '(') {
                        Some(('(', ')'))
                    } else {
                        None
                    };
                    if let Some((oc, cc)) = pair {
                        let close = matching(f, op, oc, cc).min(e);
                        // A match/`if let` *pattern* is not construction.
                        let is_pattern = f.cpair(close + 1, '=', '>')
                            || (f.cpunct(close + 1, '=') && !f.cpair(close + 1, '=', '='));
                        let inner = self.eval(op + 1, close);
                        if !is_pattern {
                            self.sink_hit(NONDET, inner, j, "ControllerEvent construction");
                        }
                        acc |= inner;
                        last = inner;
                        j = close + 1;
                        continue;
                    }
                }
                if let Some(&site) = self.site_map.get(&j) {
                    let close = matching(f, site.paren, '(', ')').min(e);
                    let method = j > 0 && f.cpunct(j - 1, '.');
                    let mut args: Vec<u64> = Vec::new();
                    if method {
                        let recv = site
                            .recv
                            .and_then(|rk| f.cident(rk))
                            .and_then(|n| self.vars.get(n))
                            .copied();
                        args.push(recv.unwrap_or(last));
                    }
                    for (a, b) in split_args(f, site.paren, close) {
                        args.push(self.eval(a, b));
                    }
                    let res = self.apply_call(w, site, j, method, &args);
                    if method {
                        // A method may store its arguments in the
                        // receiver (`table.record(tainted)`) — but only
                        // the arguments: a getter whose *result* carries
                        // a kind (a `taint-source count` accessor) does
                        // not contaminate the object it reads from.
                        if let Some(name) = site.recv.and_then(|rk| f.cident(rk)) {
                            let stored = args.iter().skip(1).fold(0, |x, y| x | y) & KIND_MASK;
                            if stored != 0 {
                                *self.vars.entry(name.to_string()).or_insert(0) |= stored;
                            }
                        }
                    }
                    acc |= res;
                    last = res;
                    j = close + 1;
                    continue;
                }
                if f.cpunct(j + 1, '!') {
                    // Macro: evaluate the delimited arguments as a span.
                    let op = j + 2;
                    let pair = if f.cpunct(op, '(') {
                        Some(('(', ')'))
                    } else if f.cpunct(op, '[') {
                        Some(('[', ']'))
                    } else if f.cpunct(op, '{') {
                        Some(('{', '}'))
                    } else {
                        None
                    };
                    if let Some((oc, cc)) = pair {
                        let close = matching(f, op, oc, cc).min(e);
                        let inner = self.eval(op + 1, close);
                        acc |= inner;
                        last = inner;
                        j = close + 1;
                        continue;
                    }
                }
                let mut t = self.vars.get(w).copied().unwrap_or(0);
                match w {
                    "Instant" | "SystemTime" | "ThreadId" => t |= NONDET,
                    "thread"
                        if f.cpair(j + 1, ':', ':')
                            && matches!(f.cident(j + 3), Some("current" | "id")) =>
                    {
                        t |= NONDET
                    }
                    _ => {}
                }
                acc |= t;
                last = t;
                j += 1;
                continue;
            }
            if f.cpunct(j, '(') || f.cpunct(j, '{') || f.cpunct(j, '[') {
                let (oc, cc) = match f.ctext(j).as_bytes()[0] {
                    b'(' => ('(', ')'),
                    b'{' => ('{', '}'),
                    _ => ('[', ']'),
                };
                let close = matching(f, j, oc, cc).min(e);
                let inner = self.eval(j + 1, close);
                acc |= inner;
                last |= inner;
                j = close + 1;
                continue;
            }
            if f.cpunct(j, '/') {
                let rhs_at = if f.cpair(j, '/', '=') { j + 2 } else { j + 1 };
                let rhs = self.peek_operand(rhs_at, e);
                self.op_hit(last | rhs, j, "division");
                j = rhs_at;
                continue;
            }
            if f.cpunct(j, '*') && self.is_binary_mul(j) {
                let rhs_at = if f.cpair(j, '*', '=') { j + 2 } else { j + 1 };
                let lhs_pow2 = j.checked_sub(1).is_some_and(|p| self.lit_pow2(p));
                let rhs_pow2 =
                    self.lit_pow2(rhs_at) || (f.cpunct(rhs_at, '-') && self.lit_pow2(rhs_at + 1));
                if !(lhs_pow2 || rhs_pow2) {
                    let rhs = self.peek_operand(rhs_at, e);
                    self.op_hit(last | rhs, j, "multiplication by a non-power-of-two");
                }
                j = rhs_at;
                continue;
            }
            j += 1;
        }
        acc
    }

    /// Taint of the operand starting at `k` (ident lookup only; calls
    /// and literals resolve to 0 here — the main scan still visits them).
    fn peek_operand(&self, k: usize, e: usize) -> u64 {
        let mut j = k;
        while j < e
            && (self.f.cpunct(j, '(')
                || self.f.cpunct(j, '&')
                || self.f.cpunct(j, '-')
                || self.f.cpunct(j, '*'))
        {
            j += 1;
        }
        self.f
            .cident(j)
            .and_then(|w| self.vars.get(w))
            .copied()
            .unwrap_or(0)
    }

    /// True when `*` at `j` is binary multiplication (the previous token
    /// ends a value expression) rather than a deref or raw-pointer type.
    fn is_binary_mul(&self, j: usize) -> bool {
        let Some(p) = j.checked_sub(1) else {
            return false;
        };
        if self.f.cpunct(p, ')') || self.f.cpunct(p, ']') {
            return true;
        }
        if self.f.ckind(p) == Some(TokenKind::Num) {
            return true;
        }
        self.f.cident(p).is_some_and(|w| {
            !matches!(
                w,
                "as" | "in" | "return" | "if" | "else" | "match" | "mut" | "const" | "let"
            )
        })
    }

    /// True when the token at `p` is a numeric literal that parses to a
    /// positive power of two (zero mantissa bits): scaling by it is
    /// exact for f64 counts.
    fn lit_pow2(&self, p: usize) -> bool {
        if self.f.ckind(p) != Some(TokenKind::Num) {
            return false;
        }
        let text: String = self.f.ctext(p).chars().filter(|&c| c != '_').collect();
        let text = text
            .trim_end_matches("f64")
            .trim_end_matches("f32")
            .trim_end_matches('.');
        text.parse::<f64>()
            .is_ok_and(|v| v.is_finite() && v > 0.0 && v.to_bits() & ((1u64 << 52) - 1) == 0)
    }

    /// Applies one call: propagates through callee summaries and marker
    /// contracts, or models the std surface for unresolved calls.
    fn apply_call(
        &mut self,
        name: &str,
        site: &CallSite,
        pos: usize,
        method: bool,
        args: &[u64],
    ) -> u64 {
        let all: u64 = args.iter().fold(0, |a, b| a | b);
        let mut res;
        if site.callees.is_empty() {
            res = all;
            match name {
                "as_ptr" | "as_mut_ptr" => res |= NONDET,
                w if UNTAINTED_METHODS.contains(&w) && method => res = 0,
                _ => {}
            }
            if method {
                if ITER_METHODS.contains(&name) {
                    let hashed = site
                        .recv
                        .and_then(|rk| self.f.cident(rk))
                        .is_some_and(|n| self.hash_vars.contains(n));
                    if hashed {
                        res |= NONDET;
                    }
                }
                if INEXACT_METHODS.contains(&name) {
                    self.op_hit(args[0], pos, &format!("`.{name}()`"));
                }
            }
        } else {
            res = 0;
            for &cid in &site.callees {
                let Some(&cr) = self.graph.fns.get(cid) else {
                    continue;
                };
                let Some(citem) = self.parsed.get(cr.file).and_then(|it| it.fns.get(cr.item))
                else {
                    continue;
                };
                let summ = self.summaries.get(cid).copied().unwrap_or_default();
                res |= summ.ret & KIND_MASK;
                let cboundary = citem.derive_boundary.is_some();
                for (i, &at) in args.iter().enumerate().take(32) {
                    let bit = 1u32 << i;
                    if summ.ret & (1u64 << i) != 0 {
                        res |= at;
                    }
                    if summ.sink_nondet & bit != 0 {
                        self.sink_hit(NONDET, at, pos, name);
                    }
                    if summ.sink_count & bit != 0 {
                        self.sink_hit(COUNT, at, pos, name);
                    }
                    if summ.inexact & bit != 0 && !cboundary {
                        self.op_hit(at, pos, &format!("an inexact op inside `{name}`"));
                    }
                }
                if let Some(m) = &citem.taint_sink {
                    self.sink_hit(kind_bit(&m.kind), all, pos, name);
                }
                if cboundary {
                    if all & COUNT != 0 {
                        self.mark_used(cr.file, citem.derive_boundary.as_ref());
                    }
                    // Derived probabilities leaving a boundary are no
                    // longer counts.
                    res &= !COUNT;
                }
                if let Some(m) = &citem.taint_sanitize {
                    let kb = kind_bit(&m.kind);
                    if (res | all) & kb != 0 {
                        self.mark_used(cr.file, citem.taint_sanitize.as_ref());
                    }
                    res &= !kb;
                }
            }
        }
        if name.starts_with("fingerprint") {
            self.sink_hit(NONDET, all, pos, name);
        }
        res
    }

    fn mark_used(&mut self, file: usize, m: Option<&TaintMark>) {
        if let Some(m) = m {
            self.used.insert((file, m.line));
        }
    }

    /// A value met a sink of the given kind: report when the kind bit is
    /// set; record param responsibility either way.
    fn sink_hit(&mut self, kb: u64, taint: u64, pos: usize, what: &str) {
        if kb == 0 {
            return;
        }
        if taint & kb != 0 {
            let noun = if kb == NONDET {
                "nondeterministic"
            } else {
                "count-tainted"
            };
            self.report(
                pos,
                rule_for(kb),
                format!(
                    "{noun} value reaches trace-visible sink `{what}`; route it through a \
                     `// xtask: taint-sanitize` fn or derive it deterministically"
                ),
            );
        }
        let bits = (taint & PARAM_MASK) as u32;
        if kb == NONDET {
            self.summ.sink_nondet |= bits;
        } else {
            self.summ.sink_count |= bits;
        }
    }

    /// A value met an inexact op: inside a derive-boundary the marker is
    /// consumed; elsewhere a count-kind value is a finding, and param
    /// responsibility is recorded for callers.
    fn op_hit(&mut self, taint: u64, pos: usize, what: &str) {
        if self.boundary {
            if taint & (COUNT | PARAM_MASK) != 0 {
                self.mark_used(self.fi, self.item.derive_boundary.as_ref());
            }
            return;
        }
        if taint & COUNT != 0 {
            self.report(
                pos,
                "exactness-taint",
                format!(
                    "count-kind f64 flows through {what} outside a derive-boundary; only \
                     exact ops may touch counts — move the derivation behind a \
                     `// xtask: derive-boundary` fn"
                ),
            );
        }
        self.summ.inexact |= (taint & PARAM_MASK) as u32;
    }

    fn report(&mut self, pos: usize, rule: &'static str, message: String) {
        let Some(out) = self.out.as_deref_mut() else {
            return;
        };
        if !self.seen.insert((self.fi, pos, rule)) {
            return;
        }
        push(self.f, out, pos, Category::Taint, rule, message);
    }
}

/// Top-level comma-separated argument spans of `(open … close)`.
fn split_args(f: &SourceFile, open: usize, close: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut depth = 0i64;
    let mut start = open + 1;
    for j in open + 1..close {
        if f.cpunct(j, '(') || f.cpunct(j, '[') || f.cpunct(j, '{') {
            depth += 1;
        } else if f.cpunct(j, ')') || f.cpunct(j, ']') || f.cpunct(j, '}') {
            depth -= 1;
        } else if depth == 0 && f.cpunct(j, ',') {
            out.push((start, j));
            start = j + 1;
        }
    }
    if start < close {
        out.push((start, close));
    }
    out
}

/// Tokens that break shard purity inside a parallel closure.
fn impure_sites(f: &SourceFile, s: usize, e: usize) -> Vec<(usize, String)> {
    const ATOMIC_OPS: &[&str] = &[
        "fetch_add",
        "fetch_sub",
        "fetch_or",
        "fetch_and",
        "fetch_xor",
        "compare_exchange",
        "compare_exchange_weak",
    ];
    let mut out = Vec::new();
    let mut k = s;
    while k < e {
        let prev_dot = k.checked_sub(1).is_some_and(|p| f.cpunct(p, '.'));
        match f.cident(k) {
            Some(w @ ("lock" | "try_lock")) if prev_dot && f.cpunct(k + 1, '(') => {
                out.push((k, format!(".{w}()")));
            }
            Some(w) if prev_dot && ATOMIC_OPS.contains(&w) => {
                out.push((k, format!(".{w}(…)")));
            }
            Some("static") if f.cident(k + 1) == Some("mut") => {
                out.push((k, "static mut".into()));
            }
            Some("thread_local") => out.push((k, "thread_local".into())),
            Some(w)
                if w.len() > 1
                    && w.chars().any(|c| c.is_ascii_uppercase())
                    && w.chars()
                        .all(|c| c.is_ascii_uppercase() || c == '_' || c.is_ascii_digit())
                    && f.cpunct(k + 1, '=')
                    && !f.cpair(k + 1, '=', '=')
                    && !f.cpair(k + 1, '=', '>') =>
            {
                out.push((k, format!("write to static `{w}`")));
            }
            _ => {}
        }
        k += 1;
    }
    out
}

/// The shard-purity rule: every closure passed to `par_map` /
/// `par_for_each_mut`, and every workspace function reachable from it,
/// must be free of locks, atomics and static writes — that is what
/// makes the ordered-merge worker proof structural.
fn shard_purity(
    files: &[SourceFile],
    parsed: &[FileItems],
    graph: &Graph,
    sites: &Sites,
    findings: &mut Vec<Finding>,
) {
    let mut seen: BTreeSet<(usize, usize)> = BTreeSet::new();
    for (id, &r) in graph.fns.iter().enumerate() {
        let (Some(f), Some(item)) = (
            files.get(r.file),
            parsed.get(r.file).and_then(|it| it.fns.get(r.item)),
        ) else {
            continue;
        };
        if !analyzed(f, item) || item.body.is_none() {
            continue;
        }
        let own_sites = sites.get(id).map(Vec::as_slice).unwrap_or(&[]);
        for site in own_sites {
            if !matches!(f.cident(site.pos), Some("par_map" | "par_for_each_mut")) {
                continue;
            }
            let close = matching(f, site.paren, '(', ')');
            for (a, b) in split_args(f, site.paren, close) {
                // A closure argument: a top-level `|` opens the params.
                let Some(bar) = (a..b).find(|&k| {
                    f.cpunct(k, '|')
                        && !f.cpair(k, '|', '|')
                        && !k.checked_sub(1).is_some_and(|p| f.cpair(p, '|', '|'))
                }) else {
                    continue;
                };
                // Direct impurity inside the closure body.
                for (pos, what) in impure_sites(f, bar, b) {
                    if seen.insert((r.file, pos)) {
                        push(
                            f,
                            findings,
                            pos,
                            Category::Taint,
                            "shard-purity",
                            format!(
                                "`{what}` inside a shard closure of `{}` breaks the \
                                 workers-N ≡ workers-1 determinism proof",
                                item.name
                            ),
                        );
                    }
                }
                // Transitive impurity through everything the closure calls.
                let roots: Vec<FnId> = own_sites
                    .iter()
                    .filter(|s2| s2.pos > bar && s2.pos < b)
                    .flat_map(|s2| s2.callees.iter().copied())
                    .collect();
                for root in roots {
                    for (cid, chain) in graph.reachable_with_chains(root) {
                        let Some(&cr) = graph.fns.get(cid) else {
                            continue;
                        };
                        let (Some(cf), Some(citem)) = (
                            files.get(cr.file),
                            parsed.get(cr.file).and_then(|it| it.fns.get(cr.item)),
                        ) else {
                            continue;
                        };
                        let Some((copen, cclose)) = citem.body else {
                            continue;
                        };
                        let hits = impure_sites(cf, copen + 1, cclose);
                        if hits.is_empty() {
                            continue;
                        }
                        let route: Vec<String> = chain
                            .iter()
                            .filter_map(|&x| {
                                let xr = graph.fns.get(x)?;
                                let xi = parsed.get(xr.file)?.fns.get(xr.item)?;
                                Some(match &xi.self_ty {
                                    Some(t) => format!("{t}::{}", xi.name),
                                    None => xi.name.clone(),
                                })
                            })
                            .collect();
                        let route = route.join(" -> ");
                        for (pos, what) in hits {
                            if seen.insert((cr.file, pos)) {
                                push(
                                    cf,
                                    findings,
                                    pos,
                                    Category::Taint,
                                    "shard-purity",
                                    format!(
                                        "`{what}` is reachable from a shard closure of \
                                         `{}`: {route}",
                                        item.name
                                    ),
                                );
                            }
                        }
                    }
                }
            }
        }
    }
}

/// A sanitize/derive-boundary marker that suppressed nothing in the
/// final recording pass is stale and hides future regressions — the
/// same hygiene contract as `unused-allow`.
fn orphan_markers(
    files: &[SourceFile],
    parsed: &[FileItems],
    used: &BTreeSet<(usize, usize)>,
    findings: &mut Vec<Finding>,
) {
    for (fi, (f, it)) in files.iter().zip(parsed).enumerate() {
        if !f.policy.determinism {
            continue;
        }
        for item in &it.fns {
            if item.in_test {
                continue;
            }
            let marks = [
                ("taint-sanitize", item.taint_sanitize.as_ref()),
                ("derive-boundary", item.derive_boundary.as_ref()),
            ];
            for (label, m) in marks {
                let Some(m) = m else {
                    continue;
                };
                if used.contains(&(fi, m.line)) {
                    continue;
                }
                findings.push(Finding {
                    file: f.rel_path.clone(),
                    line: m.line,
                    category: Category::Hygiene,
                    rule: "orphan-marker",
                    message: format!(
                        "`// xtask: {label}` on `{}` suppresses nothing; delete the stale marker",
                        item.name
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::rules::check_workspace;
    use crate::scan::SourceFile;
    use crate::scan::{analyze_for_tests, policy_for};
    use std::collections::BTreeMap;

    fn findings_of(sources: &[(&str, &str)]) -> Vec<(String, usize, &'static str)> {
        let files: Vec<SourceFile> = sources
            .iter()
            .map(|(rel, src)| analyze_for_tests((*rel).into(), (*src).into(), policy_for(rel)))
            .collect();
        let mut crate_map = BTreeMap::new();
        crate_map.insert("prepare_markov".to_string(), "crates/markov".to_string());
        crate_map.insert("prepare_tan".to_string(), "crates/tan".to_string());
        check_workspace(&files, &crate_map)
            .into_iter()
            .map(|f| (f.file, f.line, f.rule))
            .collect()
    }

    fn rules_of(src: &str) -> Vec<&'static str> {
        findings_of(&[("crates/x/src/lib.rs", src)])
            .into_iter()
            .map(|(_, _, r)| r)
            .collect()
    }

    // --- determinism-taint -------------------------------------------

    #[test]
    fn instant_elapsed_reaching_fingerprint_is_a_finding() {
        // A bench file: wall-clock reads are policy-legal there, but the
        // measured value still must not reach a fingerprint.
        let src = "\
fn fingerprint_trace(x: f64) -> u64 { x.to_bits() }
fn bench() -> u64 {
    let t0 = Instant::now();
    let ms = t0.elapsed().as_secs_f64();
    fingerprint_trace(ms)
}
";
        let got = findings_of(&[("crates/bench/src/lib.rs", src)]);
        assert!(
            got.iter().any(|(_, _, r)| *r == "determinism-taint"),
            "findings: {got:?}"
        );
    }

    #[test]
    fn taint_flows_interprocedurally_through_helpers() {
        // Source -> helper (param to ret) -> helper2 -> sink: the kind
        // bit must survive two summary hops.
        let src = "\
// xtask: taint-source nondet
fn ptr_key() -> usize { 0 }
fn pass1(x: usize) -> usize { x }
fn pass2(x: usize) -> usize { pass1(x) }
fn fingerprint_state(x: usize) -> usize { x }
fn emit() -> usize {
    let k = ptr_key();
    let v = pass2(k);
    fingerprint_state(v)
}
";
        assert!(
            rules_of(src).contains(&"determinism-taint"),
            "findings: {:?}",
            rules_of(src)
        );
    }

    #[test]
    fn sink_summaries_report_at_the_tainted_call_site() {
        // The helper passes its param to a fingerprint; only the caller
        // that feeds it a tainted value is reported.
        let src = "\
// xtask: taint-source nondet
fn src_v() -> u64 { 0 }
fn fingerprint_x(x: u64) -> u64 { x }
fn helper(v: u64) -> u64 { fingerprint_x(v) }
fn clean() -> u64 { helper(1) }
fn dirty() -> u64 { helper(src_v()) }
";
        let got = rules_of(src);
        assert_eq!(
            got.iter().filter(|r| **r == "determinism-taint").count(),
            1,
            "findings: {got:?}"
        );
    }

    #[test]
    fn hash_iteration_order_taints_values() {
        let src = "\
fn fingerprint_keys(k: usize) -> usize { k }
fn f(m: &HashMap<usize, usize>) -> usize {
    let mut acc = 0;
    for k in m.keys() {
        acc = fingerprint_keys(acc + k);
    }
    acc
}
";
        let got = rules_of(src);
        assert!(got.contains(&"determinism-taint"), "findings: {got:?}");
    }

    #[test]
    fn controller_event_construction_is_a_sink() {
        let src = "\
// xtask: taint-source nondet
fn wobbly() -> u64 { 0 }
fn emit(events: &mut Vec<ControllerEvent>) {
    let at = wobbly();
    events.push(ControllerEvent::ActionIssued { at });
}
";
        let got = rules_of(src);
        assert!(got.contains(&"determinism-taint"), "findings: {got:?}");
        // Match *patterns* over events are not construction.
        let pat = "\
fn inspect(e: &ControllerEvent) -> u64 {
    match e {
        ControllerEvent::ActionIssued { at } => *at,
    }
}
";
        assert!(rules_of(pat).is_empty(), "findings: {:?}", rules_of(pat));
    }

    #[test]
    fn sanitize_marker_cleanses_and_is_consumed() {
        let src = "\
fn fingerprint_trace(x: f64) -> u64 { x.to_bits() }
// xtask: taint-sanitize nondet -- measurement is the payload
fn measured(t0: Instant) -> f64 { t0.elapsed().as_secs_f64() }
fn bench() -> u64 {
    let t0 = Instant::now();
    fingerprint_trace(measured(t0))
}
";
        let got = findings_of(&[("crates/bench/src/lib.rs", src)]);
        assert!(got.is_empty(), "findings: {got:?}");
    }

    // --- exactness-taint ---------------------------------------------

    #[test]
    fn count_division_outside_a_boundary_is_a_finding() {
        let src = "\
struct Stats { c: f64 }
impl Stats {
    // xtask: taint-source count
    fn counts(&self) -> f64 { self.c }
    fn mean(&self) -> f64 { self.counts() / 3.0 }
}
";
        let got = rules_of(src);
        assert!(got.contains(&"exactness-taint"), "findings: {got:?}");
    }

    #[test]
    fn exact_ops_and_pow2_scaling_stay_clean() {
        let src = "\
struct Stats { c: f64 }
impl Stats {
    // xtask: taint-source count
    fn counts(&self) -> f64 { self.c }
    fn total(&self) -> f64 { self.counts() + self.counts() - 1.0 }
    fn halved(&self) -> f64 { self.counts() * 0.5 }
    fn bits(&self) -> u64 { self.counts().to_bits() }
}
";
        let got = rules_of(src);
        assert!(!got.contains(&"exactness-taint"), "findings: {got:?}");
    }

    #[test]
    fn derive_boundary_absorbs_count_taint() {
        let src = "\
struct Stats { c: f64 }
impl Stats {
    // xtask: taint-source count
    fn counts(&self) -> f64 { self.c }
    fn classify(&self) -> f64 { prob(self.counts(), 10.0) }
}
// xtask: derive-boundary -- counts become probabilities here
fn prob(c: f64, n: f64) -> f64 { c / n }
";
        let got = rules_of(src);
        assert!(
            !got.contains(&"exactness-taint") && !got.contains(&"orphan-marker"),
            "findings: {got:?}"
        );
    }

    #[test]
    fn inexact_method_on_count_is_a_finding() {
        let src = "\
struct Stats { c: f64 }
impl Stats {
    // xtask: taint-source count
    fn counts(&self) -> f64 { self.c }
    fn entropy(&self) -> f64 { self.counts().ln() }
}
";
        let got = rules_of(src);
        assert!(got.contains(&"exactness-taint"), "findings: {got:?}");
    }

    // --- shard-purity ------------------------------------------------

    #[test]
    fn lock_in_a_shard_closure_is_a_finding() {
        let src = "\
fn refresh(&self, pool: &Pool) {
    par_map(pool, self.slots(), |slot| self.shared.lock().rebuild(slot));
}
";
        let got = rules_of(src);
        assert!(got.contains(&"shard-purity"), "findings: {got:?}");
    }

    #[test]
    fn impurity_reachable_from_a_shard_closure_reports_the_route() {
        let src = "\
fn rebuild(slot: usize) -> usize { tally(slot) }
fn tally(slot: usize) -> usize { COUNTER.fetch_add(1); slot }
fn refresh(pool: &Pool, slots: Vec<usize>) {
    par_map(pool, slots, |slot| rebuild(slot));
}
";
        let got = rules_of(src);
        assert!(got.contains(&"shard-purity"), "findings: {got:?}");
    }

    #[test]
    fn pure_shard_closures_pass() {
        let src = "\
fn rebuild(slot: usize) -> usize { slot + 1 }
fn refresh(pool: &Pool, slots: Vec<usize>) {
    par_map(pool, slots, |slot| rebuild(slot));
}
";
        let got = rules_of(src);
        assert!(!got.contains(&"shard-purity"), "findings: {got:?}");
    }

    // --- orphan markers ----------------------------------------------

    #[test]
    fn orphan_sanitize_marker_is_a_finding() {
        // The sanitizer never sees nondet taint: the marker is stale.
        let src = "\
// xtask: taint-sanitize nondet -- claims to cleanse, cleanses nothing
fn already_clean(x: f64) -> f64 { x }
fn caller() -> f64 { already_clean(1.0) }
";
        let got = rules_of(src);
        assert_eq!(got, vec!["orphan-marker"], "findings: {got:?}");
    }

    #[test]
    fn orphan_boundary_marker_is_a_finding() {
        // A derive-boundary with no inexact op inside and no count taint
        // arriving suppresses nothing.
        let src = "\
// xtask: derive-boundary -- nothing derived here
fn add(a: f64, b: f64) -> f64 { a + b }
fn caller() -> f64 { add(1.0, 2.0) }
";
        let got = rules_of(src);
        assert_eq!(got, vec!["orphan-marker"], "findings: {got:?}");
    }

    #[test]
    fn pointer_casts_taint_keys() {
        let src = "\
fn fingerprint_key(k: usize) -> usize { k }
fn f(v: &Vec<u8>) -> usize {
    let k = v.as_ptr() as usize;
    fingerprint_key(k)
}
";
        let got = rules_of(src);
        assert!(got.contains(&"determinism-taint"), "findings: {got:?}");
    }
}
