//! A real, std-only Rust lexer for the lint engine.
//!
//! Replaces the v1 masked-substring scanner: instead of blanking comment
//! and literal bodies and grepping the remaining text, every detector now
//! walks a token stream with exact byte spans and line numbers. The lexer
//! understands the constructs the masker got wrong or could not represent:
//! raw strings (`r#"…"#`, any hash depth, byte variants), nested
//! `/* /* */ */` block comments, `'a` lifetimes vs `'a'` char literals,
//! raw identifiers (`r#match`), and numeric literals with suffixes and
//! exponents. Comments are kept *in* the stream (the allow/hot-path
//! markers live there); detectors skip them via [`TokenKind::is_trivia`].

/// Lexical class of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw identifiers and non-ASCII).
    Ident,
    /// A lifetime or loop label: `'a`, `'static`, `'outer`.
    Lifetime,
    /// Numeric literal, including suffixes/exponents (`1_000u64`, `1e-9`).
    Num,
    /// Char or byte-char literal: `'x'`, `'\u{1F600}'`, `b'\n'`.
    Char,
    /// String or byte-string literal: `"…"`, `b"…"`.
    Str,
    /// Raw (byte) string literal: `r"…"`, `r#"…"#`, `br##"…"##`.
    RawStr,
    /// `// …` comment (doc comments included).
    LineComment,
    /// `/* … */` comment, nesting handled.
    BlockComment,
    /// One byte of punctuation. Multi-byte operators (`==`, `->`, `::`)
    /// appear as adjacent single-byte tokens with contiguous spans.
    Punct,
}

impl TokenKind {
    /// True for tokens detectors normally skip (comments).
    pub fn is_trivia(self) -> bool {
        matches!(self, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

/// One lexed token: kind plus the byte span and 1-based start line.
#[derive(Debug, Clone, Copy)]
pub struct Token {
    /// Lexical class.
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line of `start`.
    pub line: usize,
}

impl Token {
    /// The token's source text.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        src.get(self.start..self.end).unwrap_or("")
    }

    /// True when `self` is a `Punct` equal to `b`.
    pub fn is_punct(&self, src: &str, b: char) -> bool {
        self.kind == TokenKind::Punct && self.text(src).starts_with(b)
    }
}

/// A comment's content with its `//`/`/*` opener and doc sigil removed
/// and leading whitespace trimmed. Marker detection (`xtask: hot-path`,
/// `xtask-allow:`) works on this so that prose *mentioning* a marker —
/// doc comments, rule catalogs — never triggers it: a real marker
/// starts its comment.
pub fn comment_body(raw: &str) -> &str {
    let body = raw
        .strip_prefix("//")
        .or_else(|| raw.strip_prefix("/*"))
        .unwrap_or(raw);
    let body = body.strip_prefix(['/', '!', '*']).unwrap_or(body);
    body.trim_start()
}

/// True for a numeric-literal text that denotes a float (`1.0`, `3.`,
/// `1e-9`, `2f64`) rather than an integer.
pub fn num_is_float(text: &str) -> bool {
    if text.starts_with("0x") || text.starts_with("0o") || text.starts_with("0b") {
        return false;
    }
    text.contains('.')
        || text.ends_with("f32")
        || text.ends_with("f64")
        || text.bytes().any(|b| b == b'e' || b == b'E')
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

fn utf8_width(first: u8) -> usize {
    match first {
        b if b < 0x80 => 1,
        b if b >= 0xF0 => 4,
        b if b >= 0xE0 => 3,
        _ => 2,
    }
}

/// Counts newlines in `bytes[from..to]`.
fn newlines(bytes: &[u8], from: usize, to: usize) -> usize {
    bytes
        .iter()
        .take(to.min(bytes.len()))
        .skip(from)
        .filter(|&&b| b == b'\n')
        .count()
}

/// Lexes a whole source file. Never fails: unterminated constructs run to
/// end of input, and bytes that fit no class become single `Punct`s, so
/// downstream passes always see a stream that spans the file.
pub fn lex(src: &str) -> Vec<Token> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;

    while let Some(&b) = bytes.get(i) {
        // Whitespace.
        if b.is_ascii_whitespace() {
            if b == b'\n' {
                line += 1;
            }
            i += 1;
            continue;
        }
        let start = i;
        let start_line = line;
        let kind = if b == b'/' && bytes.get(i + 1) == Some(&b'/') {
            while bytes.get(i).is_some_and(|&c| c != b'\n') {
                i += 1;
            }
            TokenKind::LineComment
        } else if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
            i = skip_block_comment(bytes, i);
            TokenKind::BlockComment
        } else if let Some((end, kind)) = string_prefix(bytes, i) {
            i = end;
            kind
        } else if is_ident_start(b) {
            while bytes.get(i).copied().is_some_and(is_ident_continue) {
                i += 1;
            }
            TokenKind::Ident
        } else if b.is_ascii_digit() {
            i = skip_number(bytes, i);
            TokenKind::Num
        } else if b == b'\'' {
            let (end, kind) = char_or_lifetime(bytes, i);
            i = end;
            kind
        } else if b == b'"' {
            i = skip_string(bytes, i);
            TokenKind::Str
        } else {
            i += 1;
            TokenKind::Punct
        };
        line += newlines(bytes, start, i);
        tokens.push(Token {
            kind,
            start,
            end: i,
            line: start_line,
        });
    }
    tokens
}

/// Recognizes literal prefixes rooted at `r` / `b`: raw strings, raw
/// identifiers, byte strings and byte chars. Returns `(end, kind)` when
/// the position opens one, `None` when it is a plain identifier.
fn string_prefix(bytes: &[u8], i: usize) -> Option<(usize, TokenKind)> {
    match bytes.get(i) {
        Some(b'r') => match bytes.get(i + 1) {
            // r"…" or r#…: either a raw string or a raw identifier.
            Some(b'"') => Some((skip_raw_string(bytes, i + 1), TokenKind::RawStr)),
            Some(b'#') => {
                // r#ident vs r#"…"# (or r##"…"##): look past the hashes.
                let mut j = i + 1;
                while bytes.get(j) == Some(&b'#') {
                    j += 1;
                }
                if bytes.get(j) == Some(&b'"') {
                    Some((skip_raw_string(bytes, i + 1), TokenKind::RawStr))
                } else if j == i + 2 && bytes.get(j).copied().is_some_and(is_ident_start) {
                    // Raw identifier r#match.
                    while bytes.get(j).copied().is_some_and(is_ident_continue) {
                        j += 1;
                    }
                    Some((j, TokenKind::Ident))
                } else {
                    None
                }
            }
            _ => None,
        },
        Some(b'b') => match (bytes.get(i + 1), bytes.get(i + 2)) {
            (Some(b'"'), _) => Some((skip_string(bytes, i + 1), TokenKind::Str)),
            (Some(b'\''), _) => {
                let (end, _) = char_or_lifetime(bytes, i + 1);
                Some((end, TokenKind::Char))
            }
            (Some(b'r'), Some(b'"' | b'#')) => {
                Some((skip_raw_string(bytes, i + 2), TokenKind::RawStr))
            }
            _ => None,
        },
        _ => None,
    }
}

/// Skips a (possibly nested) block comment opening at `i`.
fn skip_block_comment(bytes: &[u8], i: usize) -> usize {
    let mut j = i + 2;
    let mut depth = 1u32;
    while depth > 0 {
        match (bytes.get(j), bytes.get(j + 1)) {
            (None, _) => break,
            (Some(b'/'), Some(b'*')) => {
                depth += 1;
                j += 2;
            }
            (Some(b'*'), Some(b'/')) => {
                depth -= 1;
                j += 2;
            }
            _ => j += 1,
        }
    }
    j.min(bytes.len())
}

/// Skips a plain (escaped, possibly multi-line) string opening at `i`.
fn skip_string(bytes: &[u8], i: usize) -> usize {
    let mut j = i + 1;
    while let Some(&c) = bytes.get(j) {
        match c {
            b'\\' => j += 2,
            b'"' => return j + 1,
            _ => j += 1,
        }
    }
    j.min(bytes.len())
}

/// Skips a raw string whose `r` sits at `i - 0` (`i` points at the first
/// byte after any `b`, i.e. the `r`... callers pass the index of the byte
/// *after* the prefix letters, pointing at `#` or `"`).
fn skip_raw_string(bytes: &[u8], i: usize) -> usize {
    let mut j = i;
    let mut hashes = 0usize;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    j += 1; // opening quote
    while let Some(&c) = bytes.get(j) {
        if c == b'"' {
            let mut k = j + 1;
            let mut seen = 0usize;
            while seen < hashes && bytes.get(k) == Some(&b'#') {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return k;
            }
        }
        j += 1;
    }
    j.min(bytes.len())
}

/// Disambiguates `'` at `i`: char literal (`'x'`, `'\n'`, `'é'`) vs
/// lifetime/label (`'a`, `'static`, `'outer:`). Returns `(end, kind)`.
fn char_or_lifetime(bytes: &[u8], i: usize) -> (usize, TokenKind) {
    match bytes.get(i + 1) {
        Some(b'\\') => {
            // Escaped char: scan to the unescaped closing tick.
            let mut j = i + 2;
            while let Some(&c) = bytes.get(j) {
                match c {
                    b'\\' => j += 2,
                    b'\'' => return (j + 1, TokenKind::Char),
                    _ => j += 1,
                }
            }
            (j.min(bytes.len()), TokenKind::Char)
        }
        Some(&c) if is_ident_start(c) => {
            // An identifier run: `'a'` closes immediately after → char;
            // `'a`, `'static`, `'outer:` do not → lifetime.
            let mut j = i + 1;
            while bytes.get(j).copied().is_some_and(is_ident_continue) {
                j += 1;
            }
            if bytes.get(j) == Some(&b'\'') {
                (j + 1, TokenKind::Char)
            } else {
                (j, TokenKind::Lifetime)
            }
        }
        Some(&c) => {
            // Any other scalar: `'0'`, `' '`, `'%'` — one scalar then tick.
            let j = i + 1 + utf8_width(c);
            if bytes.get(j) == Some(&b'\'') {
                (j + 1, TokenKind::Char)
            } else {
                // Stray tick; treat as punctuation so lexing continues.
                (i + 1, TokenKind::Punct)
            }
        }
        None => (i + 1, TokenKind::Punct),
    }
}

/// Skips a numeric literal starting with a digit at `i`: prefixes
/// (`0x`/`0o`/`0b`), underscores, a fractional part, exponents, and
/// alphanumeric suffixes (`u64`, `f32`). Stops before `..` (ranges),
/// `.method()` and tuple-index-like `.0` chains are split by the caller's
/// next iteration.
fn skip_number(bytes: &[u8], i: usize) -> usize {
    let mut j = i;
    let radix_prefix = bytes.get(i) == Some(&b'0')
        && matches!(
            bytes.get(i + 1),
            Some(b'x' | b'o' | b'b' | b'X' | b'O' | b'B')
        );
    if radix_prefix {
        j += 2;
        while bytes
            .get(j)
            .copied()
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
        {
            j += 1;
        }
        return j;
    }
    while bytes
        .get(j)
        .copied()
        .is_some_and(|c| c.is_ascii_digit() || c == b'_')
    {
        j += 1;
    }
    // Fractional part: `1.5` and trailing-dot `1.` — but not `1..5`
    // (range) and not `1.max(2)` (method call on an integer).
    if bytes.get(j) == Some(&b'.') {
        match bytes.get(j + 1) {
            Some(c) if c.is_ascii_digit() => {
                j += 1;
                while bytes
                    .get(j)
                    .copied()
                    .is_some_and(|c| c.is_ascii_digit() || c == b'_')
                {
                    j += 1;
                }
            }
            Some(b'.') => return j,
            Some(&c) if is_ident_start(c) => return j,
            _ => j += 1, // trailing-dot float `3.`
        }
    }
    // Exponent.
    if matches!(bytes.get(j), Some(b'e' | b'E')) {
        let sign = matches!(bytes.get(j + 1), Some(b'+' | b'-'));
        let digits_at = if sign { j + 2 } else { j + 1 };
        if bytes
            .get(digits_at)
            .copied()
            .is_some_and(|c| c.is_ascii_digit())
        {
            j = digits_at + 1;
            while bytes
                .get(j)
                .copied()
                .is_some_and(|c| c.is_ascii_digit() || c == b'_')
            {
                j += 1;
            }
        }
    }
    // Suffix (`u64`, `f32`, `usize`).
    while bytes.get(j).copied().is_some_and(is_ident_continue) {
        j += 1;
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The golden fixture: one file exercising every v1 masker gap (raw
    /// strings, nested block comments, lifetime-vs-char) plus the rest of
    /// the lexical grammar. Lives outside the scanned tree (`fixtures/`
    /// directories are excluded from `load_workspace`) because it seeds
    /// deliberate hazard spellings inside literals.
    const GOLDEN: &str = include_str!("fixtures/golden.rs");

    fn kinds_and_texts(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src).iter().map(|t| (t.kind, t.text(src))).collect()
    }

    fn texts_of(src: &str, kind: TokenKind) -> Vec<&str> {
        lex(src)
            .iter()
            .filter(|t| t.kind == kind)
            .map(|t| t.text(src))
            .collect()
    }

    #[test]
    fn golden_fixture_raw_strings_are_single_tokens() {
        let raws = texts_of(GOLDEN, TokenKind::RawStr);
        // Every raw string in the fixture carries the word "unwrap" that
        // must never leak into Ident tokens.
        assert!(raws.len() >= 3, "fixture should have raw strings: {raws:?}");
        assert!(raws.iter().any(|t| t.starts_with("r#\"")));
        assert!(raws.iter().any(|t| t.starts_with("r##\"")));
        assert!(raws.iter().any(|t| t.starts_with("br#\"")));
        for t in &raws {
            assert!(t.contains("unwrap"), "fixture raw strings embed hazards");
        }
        let idents = texts_of(GOLDEN, TokenKind::Ident);
        assert!(
            !idents.contains(&"unwrap"),
            "no literal body may produce an Ident"
        );
    }

    #[test]
    fn golden_fixture_nested_comment_is_one_token() {
        let comments = texts_of(GOLDEN, TokenKind::BlockComment);
        let nested = comments
            .iter()
            .find(|t| t.contains("/*") && t.matches("*/").count() >= 2)
            .expect("fixture has a nested block comment");
        assert!(
            nested.contains("HashMap"),
            "hazard stays inside the comment"
        );
        assert!(
            !texts_of(GOLDEN, TokenKind::Ident).contains(&"HashMap"),
            "nested comment body must not leak"
        );
    }

    #[test]
    fn golden_fixture_lifetimes_vs_chars() {
        let lifetimes = texts_of(GOLDEN, TokenKind::Lifetime);
        assert!(lifetimes.contains(&"'a"), "{lifetimes:?}");
        assert!(lifetimes.contains(&"'static"));
        let chars = texts_of(GOLDEN, TokenKind::Char);
        assert!(chars.contains(&"'a'"), "{chars:?}");
        assert!(chars.contains(&"'\\n'"));
        assert!(chars.contains(&"b'x'"));
    }

    #[test]
    fn golden_fixture_line_numbers_are_exact() {
        // The fixture ends with a sentinel identifier on a known line.
        let toks = lex(GOLDEN);
        let sentinel = toks
            .iter()
            .find(|t| t.text(GOLDEN) == "golden_sentinel")
            .expect("sentinel present");
        let expected_line = GOLDEN
            .lines()
            .position(|l| l.contains("golden_sentinel"))
            .expect("sentinel line")
            + 1;
        assert_eq!(sentinel.line, expected_line);
    }

    #[test]
    fn idents_and_puncts() {
        let got = kinds_and_texts("fn f(x: &u32) -> u32 { x + 1 }");
        assert_eq!(got[0], (TokenKind::Ident, "fn"));
        assert_eq!(got[1], (TokenKind::Ident, "f"));
        assert!(got.contains(&(TokenKind::Punct, "&")));
        assert!(got.contains(&(TokenKind::Num, "1")));
    }

    #[test]
    fn raw_identifiers_lex_as_idents() {
        let got = kinds_and_texts("let r#match = 1;");
        assert!(got.contains(&(TokenKind::Ident, "r#match")));
    }

    #[test]
    fn numbers_with_suffixes_exponents_and_ranges() {
        assert_eq!(texts_of("1_000u64", TokenKind::Num), ["1_000u64"]);
        assert_eq!(texts_of("1e-9", TokenKind::Num), ["1e-9"]);
        assert_eq!(texts_of("2.5f64", TokenKind::Num), ["2.5f64"]);
        assert_eq!(texts_of("3.", TokenKind::Num), ["3."]);
        // Ranges must not swallow the dots.
        assert_eq!(texts_of("0..n", TokenKind::Num), ["0"]);
        assert_eq!(texts_of("0..=10", TokenKind::Num), ["0", "10"]);
        // Method calls on integer literals keep the dot as punctuation.
        assert_eq!(texts_of("1.max(2)", TokenKind::Num), ["1", "2"]);
        assert_eq!(texts_of("0xFF_u8", TokenKind::Num), ["0xFF_u8"]);
        assert!(num_is_float("1e-9"));
        assert!(num_is_float("3."));
        assert!(!num_is_float("0xFF"));
        assert!(!num_is_float("10"));
    }

    #[test]
    fn multiline_strings_track_lines() {
        let src = "let s = \"a\nb\";\nlet t = 1;";
        let toks = lex(src);
        let t = toks.iter().find(|t| t.text(src) == "t").expect("t present");
        assert_eq!(t.line, 3);
    }

    #[test]
    fn unterminated_constructs_do_not_hang() {
        for src in ["\"abc", "r#\"abc", "/* /* a */", "'", "b'"] {
            let toks = lex(src);
            assert!(!toks.is_empty(), "{src:?} lexes to something");
        }
    }

    #[test]
    fn labels_lex_as_lifetimes() {
        let got = kinds_and_texts("'outer: loop { break 'outer; }");
        assert_eq!(got[0], (TokenKind::Lifetime, "'outer"));
        assert!(got.contains(&(TokenKind::Lifetime, "'outer")));
    }
}
