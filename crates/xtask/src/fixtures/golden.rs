//! Golden lexer fixture. NOT compiled and NOT scanned by the lint
//! (`fixtures/` directories are excluded from `load_workspace`): it seeds
//! spellings that look like rule hazards inside literals and comments,
//! exactly the places the v1 masked-substring scanner got wrong.
//!
//! `crates/xtask/src/lexer.rs` tests `include_str!` this file and assert
//! that none of the seeded hazards leak out of their literal/comment
//! tokens, and that lifetimes and char literals are told apart.

/// Raw strings at several hash depths, each embedding `.unwrap()` text
/// that must stay inside a single `RawStr` token.
fn raw_strings() -> (&'static str, &'static str, &'static [u8]) {
    let one = r#"a raw string with .unwrap() and a "quote" inside"#;
    let two = r##"deeper: r#"inner .unwrap() raw"# still one token"##;
    let bytes = br#"byte raw with .unwrap() too"#;
    (one, two, bytes)
}

/* A nested block comment follows — the v1 masker closed it at the first
   terminator and leaked the tail into scanned text.
   /* inner comment mentioning HashMap::new() and thread_rng() */
   still inside the OUTER comment: HashMap, .unwrap(), vec![0; 8]
*/

/// Lifetimes vs char literals on one line each.
struct Holder<'a> {
    name: &'a str,
    tag: &'static str,
}

fn chars_and_lifetimes<'a>(h: &Holder<'a>) -> (char, char, u8, usize) {
    let plain = 'a';
    let escaped = '\n';
    let byte = b'x';
    let label_result = 'outer: loop {
        break 'outer h.name.len() + h.tag.len();
    };
    (plain, escaped, byte, label_result)
}

/// Numeric shapes: suffixes, exponents, ranges, trailing dots.
fn numbers() -> f64 {
    let a = 1_000u64 as f64;
    let b = 1e-9;
    let c = 2.5f64;
    let d = 3.;
    let e = (0..4).len() as f64;
    let f = 0xFF_u8 as f64;
    a + b + c + d + e + f
}

/// Sentinel used by line-number assertions.
fn golden_sentinel() -> &'static str {
    "sentinel"
}
