//! The v1 masked-substring analysis engine, preserved verbatim (minus
//! allow handling) for differential testing: on the real workspace, the
//! v2 token/call-graph engine must find everything v1 found on the rules
//! both engines implement. Everything here is `#[cfg(test)]`: the v1
//! engine never runs in the shipping lint.

/// v1: comments/literals blanked in place, detectors substring-match the
/// masked text. Known weaknesses (the reason v2 exists): nested block
/// comments closed at the first terminator, raw-string bodies with
/// quotes confused the masker, and adjacency-sensitive needles missed
/// spaced spellings.
#[cfg(test)]
pub mod v1 {
    use crate::scan::FilePolicy;

    pub struct LegacyFile {
        pub text: String,
        pub masked: String,
        pub test_regions: Vec<(usize, usize)>,
        pub policy: FilePolicy,
    }

    impl LegacyFile {
        fn line_of(&self, offset: usize) -> usize {
            self.text[..offset].bytes().filter(|&b| b == b'\n').count() + 1
        }

        fn in_test_region(&self, offset: usize) -> bool {
            self.test_regions
                .iter()
                .any(|&(s, e)| offset >= s && offset < e)
        }
    }

    pub fn analyze(text: String, policy: FilePolicy) -> LegacyFile {
        let bytes = text.as_bytes();
        let mut masked: Vec<u8> = bytes.to_vec();
        let mut i = 0usize;

        let blank = |masked: &mut [u8], from: usize, to: usize| {
            for b in masked.iter_mut().take(to).skip(from) {
                if *b != b'\n' {
                    *b = b' ';
                }
            }
        };

        while let Some(&b) = bytes.get(i) {
            match b {
                b'/' if bytes.get(i + 1) == Some(&b'/') => {
                    let start = i;
                    while bytes.get(i).is_some_and(|&c| c != b'\n') {
                        i += 1;
                    }
                    blank(&mut masked, start, i);
                }
                b'/' if bytes.get(i + 1) == Some(&b'*') => {
                    let start = i;
                    i += 2;
                    let mut depth = 1u32;
                    while depth > 0 {
                        match (bytes.get(i), bytes.get(i + 1)) {
                            (None, _) => break,
                            (Some(b'/'), Some(b'*')) => {
                                depth += 1;
                                i += 2;
                            }
                            (Some(b'*'), Some(b'/')) => {
                                depth -= 1;
                                i += 2;
                            }
                            _ => i += 1,
                        }
                    }
                    blank(&mut masked, start, i);
                }
                b'"' => {
                    let end = skip_string(bytes, i);
                    blank(&mut masked, i + 1, end.saturating_sub(1));
                    i = end;
                }
                b'r' | b'b' if is_raw_string_start(bytes, i) => {
                    let (body_start, end) = skip_raw_string(bytes, i);
                    blank(&mut masked, body_start, end);
                    i = end;
                }
                b'b' if bytes.get(i + 1) == Some(&b'"') && !is_ident_tail(bytes, i) => {
                    let end = skip_string(bytes, i + 1);
                    blank(&mut masked, i + 2, end.saturating_sub(1));
                    i = end;
                }
                b'\'' => {
                    if let Some(end) = char_literal_end(bytes, i) {
                        blank(&mut masked, i + 1, end - 1);
                        i = end;
                    } else {
                        i += 1;
                    }
                }
                _ => {
                    i += 1;
                }
            }
        }

        let masked = String::from_utf8(masked).unwrap_or_else(|_| " ".repeat(bytes.len()));
        let test_regions = find_test_regions(&masked);
        LegacyFile {
            text,
            masked,
            test_regions,
            policy,
        }
    }

    fn is_ident_tail(bytes: &[u8], i: usize) -> bool {
        i > 0
            && bytes
                .get(i - 1)
                .is_some_and(|&c| c.is_ascii_alphanumeric() || c == b'_')
    }

    fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
        if is_ident_tail(bytes, i) {
            return false;
        }
        let mut j = i;
        if bytes.get(j) == Some(&b'b') {
            j += 1;
        }
        if bytes.get(j) != Some(&b'r') {
            return false;
        }
        j += 1;
        while bytes.get(j) == Some(&b'#') {
            j += 1;
        }
        bytes.get(j) == Some(&b'"')
    }

    fn skip_string(bytes: &[u8], start: usize) -> usize {
        let mut i = start + 1;
        while let Some(&c) = bytes.get(i) {
            match c {
                b'\\' => i += 2,
                b'"' => return i + 1,
                _ => i += 1,
            }
        }
        i
    }

    fn skip_raw_string(bytes: &[u8], start: usize) -> (usize, usize) {
        let mut i = start;
        if bytes.get(i) == Some(&b'b') {
            i += 1;
        }
        i += 1;
        let mut hashes = 0usize;
        while bytes.get(i) == Some(&b'#') {
            hashes += 1;
            i += 1;
        }
        i += 1;
        let body_start = i;
        let closer: Vec<u8> = std::iter::once(b'"')
            .chain(std::iter::repeat_n(b'#', hashes))
            .collect();
        while i < bytes.len() {
            if bytes.get(i) == Some(&b'"') && bytes[i..].starts_with(&closer) {
                return (body_start, i + closer.len());
            }
            i += 1;
        }
        (body_start, i)
    }

    fn char_literal_end(bytes: &[u8], i: usize) -> Option<usize> {
        let next = *bytes.get(i + 1)?;
        if next == b'\\' {
            let mut j = i + 2;
            let limit = (i + 12).min(bytes.len());
            while j < limit {
                if bytes.get(j) == Some(&b'\'') {
                    return Some(j + 1);
                }
                j += 1;
            }
            return None;
        }
        let width = utf8_width(next);
        if bytes.get(i + 1 + width) == Some(&b'\'') {
            Some(i + 2 + width)
        } else {
            None
        }
    }

    fn utf8_width(first: u8) -> usize {
        match first {
            b if b < 0x80 => 1,
            b if b >= 0xF0 => 4,
            b if b >= 0xE0 => 3,
            _ => 2,
        }
    }

    fn find_test_regions(masked: &str) -> Vec<(usize, usize)> {
        let bytes = masked.as_bytes();
        let mut regions = Vec::new();
        let mut search = 0usize;
        while let Some(found) = masked[search..].find("#[cfg(") {
            let attr_start = search + found;
            let Some(close) = masked[attr_start..].find(']') else {
                break;
            };
            let attr_end = attr_start + close + 1;
            let attr_text = &masked[attr_start..attr_end];
            search = attr_end;
            if !attr_text.contains("test") {
                continue;
            }
            let mut i = attr_end;
            while bytes.get(i).is_some_and(|&c| c != b'{' && c != b';') {
                i += 1;
            }
            if bytes.get(i) != Some(&b'{') {
                regions.push((attr_start, i.min(bytes.len())));
                continue;
            }
            let mut depth = 0i64;
            let mut j = i;
            while let Some(&c) = bytes.get(j) {
                match c {
                    b'{' => depth += 1,
                    b'}' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            regions.push((attr_start, (j + 1).min(bytes.len())));
            search = (j + 1).min(bytes.len());
        }
        regions
    }

    fn is_ident_byte(b: u8) -> bool {
        b.is_ascii_alphanumeric() || b == b'_'
    }

    fn word_occurrences<'a>(
        haystack: &'a str,
        needle: &'a str,
    ) -> impl Iterator<Item = usize> + 'a {
        let bytes = haystack.as_bytes();
        let mut from = 0usize;
        std::iter::from_fn(move || {
            while let Some(found) = haystack[from..].find(needle) {
                let at = from + found;
                from = at + needle.len();
                let before_ok = at == 0 || !bytes.get(at - 1).copied().is_some_and(is_ident_byte);
                let after_ok = !bytes
                    .get(at + needle.len())
                    .copied()
                    .is_some_and(is_ident_byte);
                if before_ok && after_ok {
                    return Some(at);
                }
            }
            None
        })
    }

    /// Every (line, rule) hit of the v1 detectors — no allow handling,
    /// the differential compares raw detector output on both sides.
    pub fn check_file(f: &LegacyFile) -> Vec<(usize, &'static str)> {
        let mut findings: Vec<(usize, &'static str)> = Vec::new();
        let mut push = |f: &LegacyFile, at: usize, rule: &'static str| {
            if !f.in_test_region(at) {
                findings.push((f.line_of(at), rule));
            }
        };
        if f.policy.determinism {
            for name in ["HashMap", "HashSet"] {
                for at in word_occurrences(&f.masked, name) {
                    push(f, at, "hash-collection");
                }
            }
            for name in ["thread_rng", "from_entropy", "OsRng"] {
                for at in word_occurrences(&f.masked, name) {
                    push(f, at, "ambient-rng");
                }
            }
            for at in word_occurrences(&f.masked, "random") {
                if f.masked[..at].ends_with("rand::") {
                    push(f, at, "ambient-rng");
                }
            }
            if !f.policy.wall_clock_allowed {
                for name in ["Instant", "SystemTime"] {
                    for at in word_occurrences(&f.masked, name) {
                        push(f, at, "wall-clock");
                    }
                }
            }
            float_eq(f, &mut push);
            for at in word_occurrences(&f.masked, "partial_cmp") {
                let window_end = (at + 160).min(f.masked.len());
                let window = &f.masked[at..window_end];
                if window.contains(".unwrap()") || window.contains(".expect(") {
                    push(f, at, "nan-unsafe-sort");
                }
            }
        }
        if f.policy.count_panic_debt {
            for (rule, needle) in [
                ("unwrap", ".unwrap()"),
                ("expect", ".expect("),
                ("panic", "panic!"),
                ("unreachable", "unreachable!"),
                ("todo", "todo!"),
                ("unimplemented", "unimplemented!"),
            ] {
                let mut from = 0usize;
                while let Some(found) = f.masked[from..].find(needle) {
                    let at = from + found;
                    from = at + needle.len();
                    if needle.as_bytes()[0] != b'.'
                        && at > 0
                        && f.masked
                            .as_bytes()
                            .get(at - 1)
                            .copied()
                            .is_some_and(is_ident_byte)
                    {
                        continue;
                    }
                    push(f, at, rule);
                }
            }
            index_in_loop(f, &mut push);
        }
        hot_path_alloc(f, &mut push);
        findings
    }

    fn float_eq(f: &LegacyFile, push: &mut impl FnMut(&LegacyFile, usize, &'static str)) {
        let bytes = f.masked.as_bytes();
        let mut i = 0usize;
        while i + 1 < bytes.len() {
            let two = &bytes[i..i + 2];
            if two == b"==" || two == b"!=" {
                let lhs_float = preceding_token_is_float(&f.masked, i);
                let rhs_float = following_token_is_float(&f.masked, i + 2);
                if lhs_float || rhs_float {
                    push(f, i, "float-eq");
                }
                i += 2;
            } else {
                i += 1;
            }
        }
    }

    fn is_float_literal(token: &str) -> bool {
        let t = token.trim_end_matches("f64").trim_end_matches("f32");
        let t = t.strip_prefix('-').unwrap_or(t);
        if t.is_empty() || !t.as_bytes()[0].is_ascii_digit() {
            return false;
        }
        (t.contains('.') || t.contains('e') || t.contains('E'))
            && t.bytes()
                .all(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-' | b'_'))
    }

    fn preceding_token_is_float(text: &str, op_at: usize) -> bool {
        let before = text[..op_at].trim_end();
        let start = before
            .rfind(|c: char| !(c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-' | '+')))
            .map_or(0, |p| p + 1);
        is_float_literal(&before[start..])
    }

    fn following_token_is_float(text: &str, after_op: usize) -> bool {
        let rest = text[after_op..].trim_start();
        let end = rest
            .find(|c: char| !(c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-' | '+')))
            .unwrap_or(rest.len());
        is_float_literal(&rest[..end])
    }

    fn for_header_is_loop(rest: &str) -> bool {
        let bytes = rest.as_bytes();
        let mut i = 0usize;
        while let Some(&b) = bytes.get(i) {
            match b {
                b'{' | b';' => return false,
                _ if is_ident_byte(b) => {
                    let start = i;
                    while bytes.get(i).copied().is_some_and(is_ident_byte) {
                        i += 1;
                    }
                    if &rest[start..i] == "in" {
                        return true;
                    }
                }
                _ => i += 1,
            }
        }
        false
    }

    fn index_in_loop(f: &LegacyFile, push: &mut impl FnMut(&LegacyFile, usize, &'static str)) {
        let bytes = f.masked.as_bytes();
        #[derive(Clone, Copy, PartialEq)]
        enum Scope {
            Plain,
            Loop,
        }
        let mut stack: Vec<Scope> = Vec::new();
        let mut loop_depth = 0usize;
        let mut pending_loop = false;
        let mut i = 0usize;
        while let Some(&b) = bytes.get(i) {
            if is_ident_byte(b) {
                let start = i;
                while bytes.get(i).copied().is_some_and(is_ident_byte) {
                    i += 1;
                }
                let word = &f.masked[start..i];
                if matches!(word, "while" | "loop")
                    || (word == "for" && for_header_is_loop(&f.masked[i..]))
                {
                    pending_loop = true;
                }
                continue;
            }
            match b {
                b'{' => {
                    let scope = if pending_loop {
                        Scope::Loop
                    } else {
                        Scope::Plain
                    };
                    pending_loop = false;
                    if scope == Scope::Loop {
                        loop_depth += 1;
                    }
                    stack.push(scope);
                }
                b'}' if stack.pop() == Some(Scope::Loop) => {
                    loop_depth = loop_depth.saturating_sub(1);
                }
                b';' => pending_loop = false,
                b'[' if loop_depth > 0 => {
                    let prev_end = bytes[..i].iter().rposition(|b| !b.is_ascii_whitespace());
                    let is_indexing = prev_end.is_some_and(|e| match bytes.get(e).copied() {
                        Some(b')' | b']') => true,
                        Some(p) if is_ident_byte(p) => {
                            let mut s = e;
                            while s > 0 && bytes.get(s - 1).copied().is_some_and(is_ident_byte) {
                                s -= 1;
                            }
                            !matches!(
                                &f.masked[s..=e],
                                "in" | "return" | "break" | "if" | "else" | "match" | "move"
                            )
                        }
                        _ => false,
                    });
                    if is_indexing {
                        let mut depth = 1i64;
                        let mut j = i + 1;
                        while depth > 0 {
                            match bytes.get(j) {
                                None => break,
                                Some(b'[') => depth += 1,
                                Some(b']') => depth -= 1,
                                _ => {}
                            }
                            j += 1;
                        }
                        let inner = f.masked[i + 1..j.saturating_sub(1)].trim();
                        let literal_index = !inner.is_empty()
                            && inner.bytes().all(|b| b.is_ascii_digit() || b == b'_');
                        let range_slice = inner.contains("..");
                        if !literal_index && !range_slice && !inner.is_empty() {
                            push(f, i, "index-in-loop");
                        }
                        i = j;
                        continue;
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }

    fn hot_path_alloc(f: &LegacyFile, push: &mut impl FnMut(&LegacyFile, usize, &'static str)) {
        let bytes = f.masked.as_bytes();
        let mut search = 0usize;
        while let Some(found) = f.text[search..].find("xtask: hot-path") {
            let marker_at = search + found;
            search = marker_at + "xtask: hot-path".len();
            let line_start = f.text[..marker_at].rfind('\n').map_or(0, |p| p + 1);
            if !f.text[line_start..marker_at].contains("//") {
                continue;
            }
            let Some(fn_rel) = word_occurrences(&f.masked[search..], "fn").next() else {
                continue;
            };
            let fn_at = search + fn_rel;
            let Some(open_rel) = f.masked[fn_at..].find('{') else {
                continue;
            };
            let open = fn_at + open_rel;
            let mut depth = 0i64;
            let mut j = open;
            while let Some(&c) = bytes.get(j) {
                match c {
                    b'{' => depth += 1,
                    b'}' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            let body_end = (j + 1).min(f.masked.len());
            for needle in [".clone()", ".to_vec()", "vec!["] {
                let mut from = open;
                while let Some(hit) = f.masked[from..body_end].find(needle) {
                    let at = from + hit;
                    from = at + needle.len();
                    push(f, at, "hot-path-alloc");
                }
            }
        }
    }
}

#[cfg(test)]
mod diff {
    use super::v1;
    use crate::{rules, scan};
    use std::collections::BTreeSet;
    use std::path::Path;

    /// Rules both engines implement, compared site-for-site.
    const SHARED_RULES: &[&str] = &[
        "hash-collection",
        "ambient-rng",
        "wall-clock",
        "float-eq",
        "nan-unsafe-sort",
        "unwrap",
        "expect",
        "panic",
        "unreachable",
        "todo",
        "unimplemented",
        "index-in-loop",
        "hot-path-alloc",
    ];

    /// Documented v1 findings the v2 engine deliberately drops — each a
    /// false positive of the masked-substring scanner. `(file suffix,
    /// line, rule)`. Empty today: v2 subsumes v1 on this tree.
    const EXCEPTIONS: &[(&str, usize, &str)] = &[];

    /// On the real workspace, every v1 finding must reappear in v2 at
    /// the same (file, line, rule) — minus the documented exceptions.
    /// Allow markers are stripped on the v2 side so both engines report
    /// raw detector output.
    #[test]
    fn v2_findings_are_a_superset_of_v1() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let mut files = scan::load_workspace(&root).expect("workspace loads");
        for f in &mut files {
            f.allows.clear();
        }
        let crate_map = scan::crate_idents(&root);
        let v2: BTreeSet<(String, usize, &str)> = rules::check_workspace(&files, &crate_map)
            .into_iter()
            .filter(|f| SHARED_RULES.contains(&f.rule))
            .map(|f| (f.file, f.line, f.rule))
            .collect();

        let mut v1_set: BTreeSet<(String, usize, &'static str)> = BTreeSet::new();
        for f in &files {
            let lf = v1::analyze(f.text.clone(), f.policy);
            for (line, rule) in v1::check_file(&lf) {
                v1_set.insert((f.rel_path.clone(), line, rule));
            }
        }

        let missing: Vec<_> = v1_set
            .iter()
            .filter(|(file, line, rule)| {
                !v2.contains(&(file.clone(), *line, *rule))
                    && !EXCEPTIONS
                        .iter()
                        .any(|(ef, el, er)| file.ends_with(ef) && el == line && er == rule)
            })
            .collect();
        assert!(
            missing.is_empty(),
            "v1 findings the v2 engine lost: {missing:#?}"
        );
    }
}
