//! `cargo xtask` — workspace task runner for the PREPARE reproduction.
//!
//! The only subcommand today is `lint`: a dependency-free, token/line-
//! level static analyzer that keeps the seeded simulations replayable
//! and the library crates panic-honest. See DESIGN.md §8 for the
//! policy, rules and ratchet workflow.

#![forbid(unsafe_code)]

mod baseline;
mod callgraph;
mod checkpoint;
mod dataflow;
mod fidelity;
mod items;
mod legacy;
mod lexer;
mod rules;
mod scan;

use baseline::Counts;
use rules::{Category, Finding};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
// xtask-allow: wall-clock -- lint self-timing, reported to CI, never simulated
use std::time::Instant; // xtask-allow: time-source -- lint self-timing, reported to CI, never simulated

const USAGE: &str = "\
cargo xtask <command>

Commands:
  lint                    run the determinism/nan-safety/panic-debt/hot-path analysis
  lint --update-baseline  rewrite the panic-debt ratchet (refuses increases)
  lint --list             print every finding, including baselined debt
  lint --root <dir>       analyze another checkout of this workspace
  lint --json <path>      also write a machine-readable report (per-rule
                          counts, findings with file:line spans, timings)

The lint exits non-zero on: any determinism, nan-safety, taint,
hot-path, hygiene (unused allow) or fidelity finding, or any panic-debt
count above its baseline entry.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let update = args.iter().any(|a| a == "--update-baseline");
            let list = args.iter().any(|a| a == "--list");
            let mut root = workspace_root();
            let mut json: Option<PathBuf> = None;
            let mut rest = args.iter().skip(1);
            while let Some(flag) = rest.next() {
                match flag.as_str() {
                    "--update-baseline" | "--list" => {}
                    "--root" => match rest.next() {
                        Some(dir) => root = PathBuf::from(dir),
                        None => {
                            eprintln!("--root needs a directory\n\n{USAGE}");
                            return ExitCode::FAILURE;
                        }
                    },
                    "--json" => match rest.next() {
                        Some(path) => json = Some(PathBuf::from(path)),
                        None => {
                            eprintln!("--json needs a file path\n\n{USAGE}");
                            return ExitCode::FAILURE;
                        }
                    },
                    bad => {
                        eprintln!("unknown flag `{bad}`\n\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            match run_lint(&root, update, list, json.as_deref()) {
                Ok(clean) => {
                    if clean {
                        ExitCode::SUCCESS
                    } else {
                        ExitCode::FAILURE
                    }
                }
                Err(e) => {
                    eprintln!("xtask lint: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("--help" | "-h" | "help") | None => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown command `{other}`\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

/// The workspace root: this crate lives at `<root>/crates/xtask`.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn print_finding(f: &Finding) {
    println!(
        "{}:{}: [{}/{}] {}",
        f.file,
        f.line,
        f.category.name(),
        f.rule,
        f.message
    );
}

/// Minimal JSON string escape (quotes, backslashes, control chars).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the machine-readable lint report: per-rule counts, every
/// actionable finding with its file:line span, timings and debt totals.
fn json_report(
    files_scanned: usize,
    wall_ms: u128,
    rule_counts: &BTreeMap<&str, usize>,
    hard: &[Finding],
    over_budget: &[&Finding],
    debt_total: usize,
    baseline_total: usize,
) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"files_scanned\": {files_scanned},\n"));
    out.push_str(&format!("  \"wall_ms\": {wall_ms},\n"));
    out.push_str(&format!(
        "  \"panic_debt\": {{ \"total\": {debt_total}, \"baseline\": {baseline_total}, \
         \"new_sites\": {} }},\n",
        over_budget.len()
    ));
    let rules: Vec<String> = rules::ALL_RULES
        .iter()
        .map(|(rule, _)| {
            format!(
                "    \"{rule}\": {}",
                rule_counts.get(rule).copied().unwrap_or(0)
            )
        })
        .collect();
    out.push_str(&format!("  \"rules\": {{\n{}\n  }},\n", rules.join(",\n")));
    let findings: Vec<String> = hard
        .iter()
        .chain(over_budget.iter().copied())
        .map(|f| {
            format!(
                "    {{ \"file\": \"{}\", \"line\": {}, \"category\": \"{}\", \
                 \"rule\": \"{}\", \"message\": \"{}\" }}",
                json_escape(&f.file),
                f.line,
                f.category.name(),
                f.rule,
                json_escape(&f.message)
            )
        })
        .collect();
    if findings.is_empty() {
        out.push_str("  \"findings\": []\n");
    } else {
        out.push_str(&format!(
            "  \"findings\": [\n{}\n  ]\n",
            findings.join(",\n")
        ));
    }
    out.push('}');
    out.push('\n');
    out
}

/// Runs the full lint. Returns `Ok(true)` when the tree is clean.
fn run_lint(
    root: &Path,
    update_baseline: bool,
    list_all: bool,
    json: Option<&Path>,
) -> Result<bool, String> {
    // xtask-allow: wall-clock -- lint self-timing, reported to CI, never simulated
    let t0 = Instant::now();
    let files = scan::load_workspace(root)?;
    let crate_map = scan::crate_idents(root);

    let mut hard_findings: Vec<Finding> = Vec::new(); // zero-tolerance
    let mut debt_findings: Vec<Finding> = Vec::new(); // ratcheted
    let mut rule_counts: BTreeMap<&str, usize> = BTreeMap::new();

    for finding in rules::check_workspace(&files, &crate_map) {
        *rule_counts.entry(finding.rule).or_insert(0) += 1;
        match finding.category {
            Category::PanicDebt => debt_findings.push(finding),
            _ => hard_findings.push(finding),
        }
    }
    for finding in fidelity::check_design_bins(root)
        .into_iter()
        .chain(fidelity::check_crate_attrs(&files))
    {
        *rule_counts.entry(finding.rule).or_insert(0) += 1;
        hard_findings.push(finding);
    }

    // Tally current debt.
    let mut current = Counts::new();
    for f in &debt_findings {
        *current
            .entry(f.file.clone())
            .or_default()
            .entry(f.rule.to_string())
            .or_insert(0) += 1;
    }

    let committed = baseline::load(root)?;

    if update_baseline {
        let ratchet = baseline::exists(root).then_some(&committed);
        baseline::store(root, ratchet, &current)?;
        println!(
            "baseline updated: {} panic-debt sites across {} files",
            baseline::total(&current),
            current.len()
        );
        if !hard_findings.is_empty() {
            println!(
                "note: {} zero-tolerance findings remain:",
                hard_findings.len()
            );
            for f in &hard_findings {
                print_finding(f);
            }
            return Ok(false);
        }
        return Ok(true);
    }

    // Ratchet comparison: any (file, rule) above its baseline fails.
    let mut over_budget: Vec<&Finding> = Vec::new();
    let mut stale = 0usize;
    for (file, rules) in &current {
        for (rule, &count) in rules {
            let budget = committed
                .get(file)
                .and_then(|r| r.get(rule))
                .copied()
                .unwrap_or(0);
            if count > budget {
                over_budget.extend(
                    debt_findings
                        .iter()
                        .filter(|f| &f.file == file && f.rule == rule),
                );
            } else if count < budget {
                stale += 1;
            }
        }
    }
    for (file, rules) in &committed {
        for (rule, &budget) in rules {
            let count = current
                .get(file)
                .and_then(|r| r.get(rule))
                .copied()
                .unwrap_or(0);
            if budget > 0 && count == 0 {
                stale += 1;
            }
        }
    }

    for f in &hard_findings {
        print_finding(f);
    }
    for f in &over_budget {
        print_finding(f);
    }
    if list_all {
        println!("-- all tracked panic debt --");
        for f in &debt_findings {
            print_finding(f);
        }
    }

    let debt_total = baseline::total(&current);
    let baseline_total = baseline::total(&committed);
    // Per-rule counts (all findings, baselined debt included) and wall
    // time, one line each so CI can grep and budget them.
    let per_rule: Vec<String> = rules::ALL_RULES
        .iter()
        .map(|(rule, _)| format!("{rule}={}", rule_counts.get(rule).copied().unwrap_or(0)))
        .collect();
    println!("per-rule: {}", per_rule.join(" "));
    let wall_ms = t0.elapsed().as_millis();
    println!("lint wall time: {wall_ms} ms");
    if let Some(path) = json {
        let report = json_report(
            files.len(),
            wall_ms,
            &rule_counts,
            &hard_findings,
            &over_budget,
            debt_total,
            baseline_total,
        );
        std::fs::write(path, report).map_err(|e| format!("writing {}: {e}", path.display()))?;
        println!("wrote {}", path.display());
    }
    println!(
        "xtask lint: {} files scanned; zero-tolerance findings: {}; \
         panic debt {debt_total} (baseline {baseline_total}); new debt sites: {}",
        files.len(),
        hard_findings.len(),
        over_budget.len(),
    );
    if stale > 0 {
        println!(
            "note: {stale} baseline entr{} the current debt; \
             run `cargo xtask lint --update-baseline` to ratchet down",
            if stale == 1 {
                "y exceeds"
            } else {
                "ies exceed"
            }
        );
    }

    Ok(hard_findings.is_empty() && over_budget.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The committed tree must lint clean — this is the acceptance
    /// criterion wired straight into `cargo test`.
    #[test]
    fn committed_tree_is_clean() {
        let clean = run_lint(&workspace_root(), false, false, None).expect("lint runs");
        assert!(
            clean,
            "`cargo xtask lint` reports findings on the committed tree"
        );
    }
}
