//! The panic-debt ratchet: a checked-in per-file, per-rule count that
//! the current tree is compared against. Counts may only go down —
//! `cargo xtask lint` fails on any increase, and `--update-baseline`
//! refuses to write a larger count than the committed one.
//!
//! The file is a deliberately tiny TOML subset (one table, string keys,
//! inline integer tables) written and parsed by this module alone, so
//! the tool stays std-only.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// Per-file, per-rule counts; `BTreeMap` keeps serialization ordered.
pub type Counts = BTreeMap<String, BTreeMap<String, usize>>;

/// Workspace-relative location of the baseline file.
pub const BASELINE_PATH: &str = "crates/xtask/lint-baseline.toml";

const HEADER: &str = "\
# Panic-debt ratchet for `cargo xtask lint`.
#
# Each entry is the number of tolerated panic-capable sites per file and
# rule, outside #[cfg(test)], tests/, benches/ and examples/. The lint
# fails when any count grows. To lower the debt: fix sites, then run
# `cargo xtask lint --update-baseline` (which refuses increases).
";

/// Parses the baseline file. A missing file is an empty baseline.
///
/// # Errors
///
/// Returns a description of the first malformed line.
pub fn load(root: &Path) -> Result<Counts, String> {
    let path = root.join(BASELINE_PATH);
    let text = match fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Counts::new()),
        Err(e) => return Err(format!("cannot read {}: {e}", path.display())),
    };
    parse(&text)
}

fn parse(text: &str) -> Result<Counts, String> {
    let mut counts = Counts::new();
    let mut in_section = false;
    for (n, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let lineno = n + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[panic-debt]" {
            in_section = true;
            continue;
        }
        if line.starts_with('[') {
            return Err(format!("line {lineno}: unknown section {line}"));
        }
        if !in_section {
            return Err(format!("line {lineno}: entry outside [panic-debt]"));
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("line {lineno}: expected `\"file\" = {{ rule = n }}`"))?;
        let file = key
            .trim()
            .strip_prefix('"')
            .and_then(|k| k.strip_suffix('"'))
            .ok_or_else(|| format!("line {lineno}: file key must be quoted"))?;
        let inline = value
            .trim()
            .strip_prefix('{')
            .and_then(|v| v.strip_suffix('}'))
            .ok_or_else(|| format!("line {lineno}: value must be an inline table"))?;
        let mut rules = BTreeMap::new();
        for pair in inline.split(',') {
            let (rule, count) = pair
                .split_once('=')
                .ok_or_else(|| format!("line {lineno}: expected `rule = count`"))?;
            let count: usize = count
                .trim()
                .parse()
                .map_err(|_| format!("line {lineno}: count is not an integer"))?;
            rules.insert(rule.trim().to_string(), count);
        }
        if counts.insert(file.to_string(), rules).is_some() {
            return Err(format!("line {lineno}: duplicate file entry"));
        }
    }
    Ok(counts)
}

/// Renders counts in the canonical (sorted, diff-stable) form.
pub fn render(counts: &Counts) -> String {
    let mut out = String::from(HEADER);
    out.push_str("\n[panic-debt]\n");
    for (file, rules) in counts {
        if rules.values().all(|&c| c == 0) {
            continue;
        }
        let body = rules
            .iter()
            .filter(|(_, &c)| c > 0)
            .map(|(r, c)| format!("{r} = {c}"))
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(out, "\"{file}\" = {{ {body} }}");
    }
    out
}

/// True when a baseline file has been committed.
pub fn exists(root: &Path) -> bool {
    root.join(BASELINE_PATH).is_file()
}

/// Writes the baseline, refusing any per-file/rule increase over `old`.
/// Pass `old = None` when no baseline exists yet (initial seeding).
///
/// # Errors
///
/// Returns the list of increases, or an IO error message.
pub fn store(root: &Path, old: Option<&Counts>, new: &Counts) -> Result<(), String> {
    if let Some(old) = old {
        let mut increases = Vec::new();
        for (file, rules) in new {
            for (rule, &count) in rules {
                let before = old
                    .get(file)
                    .and_then(|r| r.get(rule))
                    .copied()
                    .unwrap_or(0);
                if count > before {
                    increases.push(format!("  {file}: {rule} {before} -> {count}"));
                }
            }
        }
        if !increases.is_empty() {
            return Err(format!(
                "refusing to ratchet the baseline upward; fix the new debt instead:\n{}",
                increases.join("\n")
            ));
        }
    }
    let path = root.join(BASELINE_PATH);
    fs::write(&path, render(new)).map_err(|e| format!("cannot write {}: {e}", path.display()))
}

/// Total count across all files and rules.
pub fn total(counts: &Counts) -> usize {
    counts.values().flat_map(|r| r.values()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Counts {
        let mut c = Counts::new();
        c.entry("crates/a/src/lib.rs".into())
            .or_default()
            .extend([("unwrap".to_string(), 3), ("expect".to_string(), 1)]);
        c.entry("crates/b/src/x.rs".into())
            .or_default()
            .insert("panic".into(), 2);
        c
    }

    #[test]
    fn render_parse_round_trip() {
        let c = sample();
        let parsed = parse(&render(&c)).expect("round-trips");
        assert_eq!(parsed, c);
        assert_eq!(total(&parsed), 6);
    }

    #[test]
    fn zero_count_entries_are_dropped() {
        let mut c = sample();
        c.entry("crates/z/src/lib.rs".into())
            .or_default()
            .insert("unwrap".into(), 0);
        let text = render(&c);
        assert!(!text.contains("crates/z"));
    }

    #[test]
    fn malformed_lines_error() {
        assert!(parse("[panic-debt]\nnot an entry\n").is_err());
        assert!(
            parse("\"f\" = { unwrap = 1 }\n").is_err(),
            "entry before section"
        );
        assert!(parse("[other]\n").is_err());
        assert!(parse("[panic-debt]\n\"f\" = { unwrap = x }\n").is_err());
        assert!(parse("[panic-debt]\n\"f\" = { u = 1 }\n\"f\" = { u = 1 }\n").is_err());
    }

    #[test]
    fn initial_seeding_skips_the_ratchet() {
        let dir = std::env::temp_dir().join("xtask-baseline-seed-test");
        let _ = fs::create_dir_all(dir.join("crates/xtask"));
        let _ = fs::remove_file(dir.join(BASELINE_PATH));
        assert!(!exists(&dir));
        store(&dir, None, &sample()).expect("seeding a fresh baseline is allowed");
        assert!(exists(&dir));
        // With a committed baseline, increases are refused again.
        let mut bigger = sample();
        bigger
            .entry("crates/a/src/lib.rs".into())
            .or_default()
            .insert("unwrap".into(), 9);
        let committed = load(&dir).unwrap();
        assert!(store(&dir, Some(&committed), &bigger).is_err());
        let _ = fs::remove_file(dir.join(BASELINE_PATH));
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let parsed = parse("# header\n\n[panic-debt]\n# note\n\"f\" = { unwrap = 1 }\n").unwrap();
        assert_eq!(parsed["f"]["unwrap"], 1);
    }
}
