//! Source model for the lint pass: file discovery, lexing, attribute /
//! `#[cfg(test)]` region detection and allow-marker bookkeeping.
//!
//! v2 of the analyzer: every file is lexed into a real token stream
//! ([`crate::lexer`]) instead of being masked in place. Detectors walk
//! tokens, so comments and literal bodies can never produce findings,
//! and the allow markers (which live in comments) are first-class.

use crate::lexer::{self, Token, TokenKind};
use std::cell::Cell;
use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::{Path, PathBuf};

/// How the lint treats one source file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FilePolicy {
    /// Determinism hazards are violations here (simulation-visible code).
    pub determinism: bool,
    /// Wall-clock reads are tolerated (timing harnesses only).
    pub wall_clock_allowed: bool,
    /// Panic debt is counted here (library code).
    pub count_panic_debt: bool,
}

/// One `// xtask-allow: rule -- reason` marker, with usage tracking so
/// a marker that suppresses nothing becomes an `unused-allow` finding.
pub struct Allow {
    /// 1-based line the marker sits on.
    pub line: usize,
    /// Rule name it exempts.
    pub rule: String,
    /// Set when any detector consults this marker and is suppressed.
    pub used: Cell<bool>,
}

/// One scanned file: source text, token stream, regions and policy.
pub struct SourceFile {
    /// Path relative to the workspace root, with `/` separators.
    pub rel_path: String,
    /// Raw source text.
    pub text: String,
    /// Full token stream, comments included.
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of the non-comment tokens, in order.
    pub code: Vec<usize>,
    /// Byte ranges covered by `#[cfg(test)]` items.
    pub test_regions: Vec<(usize, usize)>,
    /// Allow markers in this file.
    pub allows: Vec<Allow>,
    /// Lines occupied by item attributes (`#[inline]`, `#![forbid]`…):
    /// an allow marker above an attribute block reaches the item below.
    pub attr_lines: BTreeSet<usize>,
    /// Lint policy for this file.
    pub policy: FilePolicy,
}

impl SourceFile {
    /// Source text of token `idx` (an index into `tokens`).
    #[cfg(test)]
    pub fn tok_text(&self, idx: usize) -> &str {
        self.tokens
            .get(idx)
            .map(|t| t.text(&self.text))
            .unwrap_or("")
    }

    /// Token behind code position `k`.
    pub fn ctok(&self, k: usize) -> Option<&Token> {
        self.code.get(k).and_then(|&i| self.tokens.get(i))
    }

    /// Source text of code position `k` (empty when out of range).
    pub fn ctext(&self, k: usize) -> &str {
        self.ctok(k).map(|t| t.text(&self.text)).unwrap_or("")
    }

    /// Kind of code position `k`.
    pub fn ckind(&self, k: usize) -> Option<TokenKind> {
        self.ctok(k).map(|t| t.kind)
    }

    /// True when code position `k` is the punctuation byte `c`.
    pub fn cpunct(&self, k: usize, c: char) -> bool {
        self.ctok(k).is_some_and(|t| t.is_punct(&self.text, c))
    }

    /// Identifier text at code position `k`, if it is an identifier.
    pub fn cident(&self, k: usize) -> Option<&str> {
        match self.ckind(k) {
            Some(TokenKind::Ident) => Some(self.ctext(k)),
            _ => None,
        }
    }

    /// True when code positions `k`/`k+1` are the adjacent pair `a``b`
    /// (spans touching — distinguishes `::` from `: :`).
    pub fn cpair(&self, k: usize, a: char, b: char) -> bool {
        if !(self.cpunct(k, a) && self.cpunct(k + 1, b)) {
            return false;
        }
        match (self.ctok(k), self.ctok(k + 1)) {
            (Some(x), Some(y)) => x.end == y.start,
            _ => false,
        }
    }

    /// True when `offset` falls inside a `#[cfg(test)]` item.
    pub fn in_test_region(&self, offset: usize) -> bool {
        self.test_regions
            .iter()
            .any(|&(s, e)| offset >= s && offset < e)
    }

    /// True when `rule` is explicitly allowed on `line`. A marker counts
    /// when it sits on the same line, the line directly above, or the
    /// line directly above the item's contiguous attribute block (so
    /// `// xtask-allow: …` above `#[inline]` still reaches the `fn`).
    /// Consulting a marker records it as used.
    pub fn is_allowed(&self, line: usize, rule: &str) -> bool {
        let mut anchors = vec![line, line.saturating_sub(1)];
        let mut top = line;
        while top > 1 && self.attr_lines.contains(&(top - 1)) {
            top -= 1;
        }
        if top != line {
            anchors.push(top.saturating_sub(1));
        }
        for a in self.allows.iter().filter(|a| a.rule == rule) {
            if anchors.contains(&a.line) {
                a.used.set(true);
                return true;
            }
        }
        false
    }
}

/// Walks the workspace and loads every `.rs` file with its policy.
/// `fixtures/` directories are excluded: they hold golden lexer inputs
/// that deliberately spell out rule hazards.
pub fn load_workspace(root: &Path) -> Result<Vec<SourceFile>, String> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries =
            fs::read_dir(&dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        let mut paths: Vec<PathBuf> = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
            paths.push(entry.path());
        }
        // Deterministic traversal: the lint's own report order must not
        // depend on readdir order.
        paths.sort();
        for path in paths {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if path.is_dir() {
                if !matches!(name, "target" | ".git" | ".cargo" | ".github" | "fixtures") {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                let rel = path
                    .strip_prefix(root)
                    .map_err(|e| format!("path outside root: {e}"))?
                    .to_string_lossy()
                    .replace('\\', "/");
                let text = fs::read_to_string(&path)
                    .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
                files.push(analyze(rel.clone(), text, policy_for(&rel)));
            }
        }
    }
    files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
    Ok(files)
}

/// Reads every workspace `Cargo.toml` and maps the package's crate
/// identifier (`prepare-markov` → `prepare_markov`) to the directory
/// prefix its sources live under (`crates/markov`). The root package
/// maps to the empty prefix.
pub fn crate_idents(root: &Path) -> BTreeMap<String, String> {
    let mut map = BTreeMap::new();
    let mut add = |manifest: PathBuf, prefix: String| {
        if let Some(name) = package_name(&manifest) {
            map.insert(name.replace('-', "_"), prefix);
        }
    };
    add(root.join("Cargo.toml"), String::new());
    for group in ["crates", "shims"] {
        let Ok(entries) = fs::read_dir(root.join(group)) else {
            continue;
        };
        for entry in entries.flatten() {
            let dir = entry.path();
            let name = dir.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if dir.is_dir() {
                add(dir.join("Cargo.toml"), format!("{group}/{name}"));
            }
        }
    }
    map
}

/// `name = "…"` from a manifest's `[package]` section.
fn package_name(manifest: &Path) -> Option<String> {
    let text = fs::read_to_string(manifest).ok()?;
    let mut in_package = false;
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
        } else if in_package {
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start();
                if let Some(rest) = rest.strip_prefix('=') {
                    return Some(rest.trim().trim_matches('"').to_string());
                }
            }
        }
    }
    None
}

/// Lint policy for a workspace-relative path.
pub fn policy_for(rel: &str) -> FilePolicy {
    let test_like = rel.starts_with("tests/")
        || rel.starts_with("examples/")
        || rel.contains("/tests/")
        || rel.contains("/benches/")
        || rel.contains("/examples/");
    if test_like {
        return FilePolicy {
            determinism: false,
            wall_clock_allowed: true,
            count_panic_debt: false,
        };
    }
    // Timing harnesses: wall-clock reads are their purpose (Table I).
    let timing = rel.starts_with("crates/bench/") || rel.starts_with("shims/criterion/");
    // The task runner itself is a CLI tool, not simulation-visible code,
    // but it is held to the same panic-debt and determinism standard.
    FilePolicy {
        determinism: true,
        wall_clock_allowed: timing,
        count_panic_debt: true,
    }
}

/// Test-only entry to the analyzer for sibling modules' unit tests.
#[cfg(test)]
pub fn analyze_for_tests(rel_path: String, text: String, policy: FilePolicy) -> SourceFile {
    analyze(rel_path, text, policy)
}

/// Lexes the file and derives the structures every detector shares.
fn analyze(rel_path: String, text: String, policy: FilePolicy) -> SourceFile {
    let tokens = lexer::lex(&text);
    let code: Vec<usize> = tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| !t.kind.is_trivia())
        .map(|(i, _)| i)
        .collect();
    let allows = collect_allows(&tokens, &text);
    let attr_lines = find_attr_lines(&tokens, &code, &text);
    let test_regions = find_test_regions(&tokens, &code, &text);
    SourceFile {
        rel_path,
        text,
        tokens,
        code,
        test_regions,
        allows,
        attr_lines,
        policy,
    }
}

/// Collects `xtask-allow: rule -- reason` markers from comment tokens.
/// A marker without a reason is deliberately not registered.
fn collect_allows(tokens: &[Token], text: &str) -> Vec<Allow> {
    let mut allows = Vec::new();
    for t in tokens.iter().filter(|t| t.kind.is_trivia()) {
        let comment = crate::lexer::comment_body(t.text(text));
        if let Some(rest) = comment.strip_prefix("xtask-allow:") {
            let rule = rest.split("--").next().unwrap_or("").trim();
            let reason = rest.split("--").nth(1).map(str::trim).unwrap_or("");
            if !rule.is_empty() && !reason.is_empty() {
                allows.push(Allow {
                    line: t.line,
                    rule: rule.to_string(),
                    used: Cell::new(false),
                });
            }
        }
    }
    allows
}

/// True when code token `code[k]` opens an attribute: `#` directly
/// followed by `[` or `![`.
fn opens_attr(tokens: &[Token], code: &[usize], k: usize, text: &str) -> bool {
    let at = |j: usize| code.get(j).and_then(|&i| tokens.get(i));
    if !at(k).is_some_and(|t| t.is_punct(text, '#')) {
        return false;
    }
    match at(k + 1) {
        Some(t) if t.is_punct(text, '[') => true,
        Some(t) if t.is_punct(text, '!') => at(k + 2).is_some_and(|t| t.is_punct(text, '[')),
        _ => false,
    }
}

/// Code-token index just past the `]` closing the attribute opening at
/// `code[k]` (which must satisfy [`opens_attr`]).
fn attr_end(tokens: &[Token], code: &[usize], k: usize, text: &str) -> usize {
    let mut j = k;
    let mut depth = 0i64;
    while let Some(t) = code.get(j).and_then(|&i| tokens.get(i)) {
        if t.is_punct(text, '[') {
            depth += 1;
        } else if t.is_punct(text, ']') {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    j
}

/// Every line spanned by an item attribute that starts its own line.
fn find_attr_lines(tokens: &[Token], code: &[usize], text: &str) -> BTreeSet<usize> {
    let mut lines = BTreeSet::new();
    let mut prev_line = 0usize;
    let mut k = 0usize;
    while let Some(line) = code.get(k).and_then(|&i| tokens.get(i)).map(|t| t.line) {
        let starts_line = line != prev_line;
        prev_line = line;
        if starts_line && opens_attr(tokens, code, k, text) {
            let end = attr_end(tokens, code, k, text);
            let last_line = code
                .get(end.saturating_sub(1))
                .and_then(|&j| tokens.get(j))
                .map_or(line, |t| t.line);
            lines.extend(line..=last_line);
            prev_line = last_line;
            k = end;
            continue;
        }
        k += 1;
    }
    lines
}

/// Finds byte ranges of items annotated `#[cfg(… test …)]` by walking
/// tokens: the attribute, any further attributes, then either a `;`
/// (bodiless item) or a brace-matched body.
fn find_test_regions(tokens: &[Token], code: &[usize], text: &str) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut k = 0usize;
    while k < code.len() {
        if !opens_attr(tokens, code, k, text) {
            k += 1;
            continue;
        }
        let Some(start_at) = code.get(k).and_then(|&i| tokens.get(i)).map(|t| t.start) else {
            break;
        };
        let end = attr_end(tokens, code, k, text);
        // Is this `#[cfg(…)]` with `test` somewhere inside?
        let mut texts = (k..end)
            .filter_map(|j| code.get(j).and_then(|&i| tokens.get(i)))
            .map(|t| (t.kind, t.text(text)));
        let is_cfg_test = texts.clone().nth(2) == Some((TokenKind::Ident, "cfg"))
            && texts.any(|(kind, s)| kind == TokenKind::Ident && s == "test");
        if !is_cfg_test {
            k = end;
            continue;
        }
        // Skip any further attributes.
        let mut j = end;
        while opens_attr(tokens, code, j, text) {
            j = attr_end(tokens, code, j, text);
        }
        // Bodiless item (`#[cfg(test)] use x;`) or brace-matched body.
        let mut depth = 0i64;
        let mut region_end = None;
        while let Some(t) = code.get(j).and_then(|&i| tokens.get(i)) {
            if depth == 0 && t.is_punct(text, ';') {
                region_end = Some(t.end);
                break;
            } else if t.is_punct(text, '{') {
                depth += 1;
            } else if t.is_punct(text, '}') {
                depth -= 1;
                if depth == 0 {
                    region_end = Some(t.end);
                    break;
                }
            }
            j += 1;
        }
        let end_at = region_end.unwrap_or(text.len());
        regions.push((start_at, end_at));
        k = j + 1;
    }
    regions
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(text: &str) -> SourceFile {
        analyze(
            "crates/x/src/lib.rs".into(),
            text.into(),
            policy_for("crates/x/src/lib.rs"),
        )
    }

    #[test]
    fn comments_and_strings_never_reach_code_tokens() {
        let f = file("let a = \"HashMap\"; // HashMap here\nlet b = 'h'; /* HashMap */\n");
        let idents: Vec<&str> = f
            .code
            .iter()
            .filter(|&&i| f.tokens[i].kind == TokenKind::Ident)
            .map(|&i| f.tok_text(i))
            .collect();
        assert_eq!(idents, ["let", "a", "let", "b"]);
    }

    #[test]
    fn cfg_test_region_found() {
        let src =
            "fn real() {}\n#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); }\n}\nfn after() {}\n";
        let f = file(src);
        let unwrap_at = src.find("unwrap").expect("present");
        assert!(f.in_test_region(unwrap_at));
        let after_at = src.find("after").expect("present");
        assert!(!f.in_test_region(after_at));
    }

    #[test]
    fn bodiless_cfg_test_items_end_at_the_semicolon() {
        let src = "#[cfg(test)]\nuse helpers::x;\nfn real() { y.unwrap(); }\n";
        let f = file(src);
        assert!(f.in_test_region(src.find("helpers").expect("present")));
        assert!(!f.in_test_region(src.find("y.unwrap").expect("present")));
    }

    #[test]
    fn cfg_test_attr_inside_raw_string_is_ignored() {
        let src = "let s = r#\"#[cfg(test)] mod fake {\"#;\nfn real() {}\n";
        let f = file(src);
        assert!(f.test_regions.is_empty());
    }

    #[test]
    fn allow_markers_require_reasons() {
        let f = file("a(); // xtask-allow: float-eq -- exactness is intended\n\nb(); // xtask-allow: float-eq\n");
        // With a reason: applies to its line and the next.
        assert!(f.is_allowed(1, "float-eq"));
        assert!(f.is_allowed(2, "float-eq"));
        // Without a reason: not registered at all.
        assert!(!f.is_allowed(3, "float-eq"));
        assert_eq!(f.allows.len(), 1);
    }

    #[test]
    fn allow_markers_reach_through_attribute_blocks() {
        let src = "\
// xtask-allow: missing-finite-guard -- delegates to a guarded callee
#[inline]
#[must_use]
pub fn f() -> f64 { g() }
";
        let f = file(src);
        // The item sits on line 4; the marker on line 1, above two
        // attribute lines.
        assert!(f.is_allowed(4, "missing-finite-guard"));
        assert!(!f.is_allowed(4, "float-eq"));
    }

    #[test]
    fn allow_markers_do_not_leak_past_non_attribute_lines() {
        let src = "\
// xtask-allow: unwrap -- reason here
let a = 1;
pub fn f() -> f64 { g() }
";
        let f = file(src);
        assert!(f.is_allowed(2, "unwrap"));
        assert!(!f.is_allowed(3, "unwrap"));
    }

    #[test]
    fn allow_usage_is_tracked() {
        let f = file("a(); // xtask-allow: float-eq -- exactness is intended\n");
        assert!(!f.allows[0].used.get());
        assert!(f.is_allowed(1, "float-eq"));
        assert!(f.allows[0].used.get());
    }

    #[test]
    fn policies_by_path() {
        assert!(policy_for("crates/core/src/controller.rs").determinism);
        assert!(!policy_for("crates/core/src/controller.rs").wall_clock_allowed);
        assert!(!policy_for("crates/apps/tests/app_properties.rs").count_panic_debt);
        assert!(policy_for("crates/bench/src/harness.rs").wall_clock_allowed);
        assert!(policy_for("shims/criterion/src/lib.rs").wall_clock_allowed);
        assert!(!policy_for("examples/quickstart.rs").determinism);
    }

    #[test]
    fn crate_idents_cover_the_workspace() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let map = crate_idents(&root);
        assert_eq!(
            map.get("prepare_markov").map(String::as_str),
            Some("crates/markov")
        );
        assert_eq!(
            map.get("prepare_metrics").map(String::as_str),
            Some("crates/metrics")
        );
        assert_eq!(map.get("rand").map(String::as_str), Some("shims/rand"));
        assert_eq!(map.get("prepare_repro").map(String::as_str), Some(""));
    }
}
