//! Source model for the lint pass: file discovery, lexical masking and
//! `#[cfg(test)]` region detection.
//!
//! The analyzer is deliberately token/line-level (no syn, no rustc): it
//! blanks comments and string/char literal bodies so detectors never
//! match inside them, then brace-matches `#[cfg(test)]` items so test
//! code is exempt where the policy says it is.

use std::fs;
use std::path::{Path, PathBuf};

/// How the lint treats one source file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FilePolicy {
    /// Determinism hazards are violations here (simulation-visible code).
    pub determinism: bool,
    /// Wall-clock reads are tolerated (timing harnesses only).
    pub wall_clock_allowed: bool,
    /// Panic debt is counted here (library code).
    pub count_panic_debt: bool,
}

/// One scanned file: original text, masked text, test regions, allows.
pub struct SourceFile {
    /// Path relative to the workspace root, with `/` separators.
    pub rel_path: String,
    /// Raw source text.
    pub text: String,
    /// Same length as `text`; comments and literal bodies blanked.
    pub masked: String,
    /// Byte ranges covered by `#[cfg(test)]` items.
    pub test_regions: Vec<(usize, usize)>,
    /// `(line, rule)` pairs granted by `// xtask-allow: rule -- reason`.
    pub allows: Vec<(usize, String)>,
    /// Lint policy for this file.
    pub policy: FilePolicy,
}

impl SourceFile {
    /// 1-based line number of a byte offset.
    pub fn line_of(&self, offset: usize) -> usize {
        self.text[..offset].bytes().filter(|&b| b == b'\n').count() + 1
    }

    /// True when `offset` falls inside a `#[cfg(test)]` item.
    pub fn in_test_region(&self, offset: usize) -> bool {
        self.test_regions
            .iter()
            .any(|&(s, e)| offset >= s && offset < e)
    }

    /// True when `rule` is explicitly allowed on `line` (marker on the
    /// same line or the line directly above).
    pub fn is_allowed(&self, line: usize, rule: &str) -> bool {
        self.allows
            .iter()
            .any(|(l, r)| (*l == line || *l + 1 == line) && r == rule)
    }
}

/// Walks the workspace and loads every `.rs` file with its policy.
pub fn load_workspace(root: &Path) -> Result<Vec<SourceFile>, String> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries =
            fs::read_dir(&dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        let mut paths: Vec<PathBuf> = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
            paths.push(entry.path());
        }
        // Deterministic traversal: the lint's own report order must not
        // depend on readdir order.
        paths.sort();
        for path in paths {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if path.is_dir() {
                if !matches!(name, "target" | ".git" | ".cargo" | ".github") {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                let rel = path
                    .strip_prefix(root)
                    .map_err(|e| format!("path outside root: {e}"))?
                    .to_string_lossy()
                    .replace('\\', "/");
                let text = fs::read_to_string(&path)
                    .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
                files.push(analyze(rel.clone(), text, policy_for(&rel)));
            }
        }
    }
    files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
    Ok(files)
}

/// Lint policy for a workspace-relative path.
pub fn policy_for(rel: &str) -> FilePolicy {
    let test_like = rel.starts_with("tests/")
        || rel.starts_with("examples/")
        || rel.contains("/tests/")
        || rel.contains("/benches/")
        || rel.contains("/examples/");
    if test_like {
        return FilePolicy {
            determinism: false,
            wall_clock_allowed: true,
            count_panic_debt: false,
        };
    }
    // Timing harnesses: wall-clock reads are their purpose (Table I).
    let timing = rel.starts_with("crates/bench/") || rel.starts_with("shims/criterion/");
    // The task runner itself is a CLI tool, not simulation-visible code,
    // but it is held to the same panic-debt and determinism standard.
    FilePolicy {
        determinism: true,
        wall_clock_allowed: timing,
        count_panic_debt: true,
    }
}

/// Test-only entry to the analyzer for sibling modules' unit tests.
#[cfg(test)]
pub fn analyze_for_tests(rel_path: String, text: String, policy: FilePolicy) -> SourceFile {
    analyze(rel_path, text, policy)
}

/// Masks comments and literal bodies, collects `xtask-allow` markers.
fn analyze(rel_path: String, text: String, policy: FilePolicy) -> SourceFile {
    let bytes = text.as_bytes();
    let mut masked: Vec<u8> = bytes.to_vec();
    let mut allows = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;

    // Blanks `masked[from..to]`, preserving newlines for line math.
    let blank = |masked: &mut [u8], from: usize, to: usize| {
        for b in masked.iter_mut().take(to).skip(from) {
            if *b != b'\n' {
                *b = b' ';
            }
        }
    };

    while let Some(&b) = bytes.get(i) {
        match b {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i;
                while bytes.get(i).is_some_and(|&c| c != b'\n') {
                    i += 1;
                }
                let comment = &text[start..i];
                if let Some(rest) = comment.split("xtask-allow:").nth(1) {
                    let rule = rest.split("--").next().unwrap_or("").trim();
                    let reason = rest.split("--").nth(1).map(str::trim).unwrap_or("");
                    if !rule.is_empty() && !reason.is_empty() {
                        allows.push((line, rule.to_string()));
                    }
                }
                blank(&mut masked, start, i);
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let start = i;
                i += 2;
                let mut depth = 1u32;
                while depth > 0 {
                    match (bytes.get(i), bytes.get(i + 1)) {
                        (None, _) => break,
                        (Some(b'\n'), _) => {
                            line += 1;
                            i += 1;
                        }
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            i += 2;
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            i += 2;
                        }
                        _ => i += 1,
                    }
                }
                blank(&mut masked, start, i);
            }
            b'"' => {
                let end = skip_string(bytes, i, &mut line);
                blank(&mut masked, i + 1, end.saturating_sub(1));
                i = end;
            }
            b'r' | b'b' if is_raw_string_start(bytes, i) => {
                let (body_start, end) = skip_raw_string(bytes, i, &mut line);
                blank(&mut masked, body_start, end);
                i = end;
            }
            b'b' if bytes.get(i + 1) == Some(&b'"') && !is_ident_tail(bytes, i) => {
                let end = skip_string(bytes, i + 1, &mut line);
                blank(&mut masked, i + 2, end.saturating_sub(1));
                i = end;
            }
            b'\'' => {
                if let Some(end) = char_literal_end(bytes, i) {
                    blank(&mut masked, i + 1, end - 1);
                    i = end;
                } else {
                    // A lifetime; keep the tick, move on.
                    i += 1;
                }
            }
            _ => {
                i += 1;
            }
        }
    }

    let masked = String::from_utf8(masked).unwrap_or_else(|_| " ".repeat(bytes.len()));
    let test_regions = find_test_regions(&masked);
    SourceFile {
        rel_path,
        text,
        masked,
        test_regions,
        allows,
        policy,
    }
}

/// True when the byte at `i` continues an identifier started before it
/// (so an `r`/`b` here cannot open a raw/byte string literal).
fn is_ident_tail(bytes: &[u8], i: usize) -> bool {
    i > 0
        && bytes
            .get(i - 1)
            .is_some_and(|&c| c.is_ascii_alphanumeric() || c == b'_')
}

fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    // Not a literal prefix if the r/b is the tail of an identifier.
    if is_ident_tail(bytes, i) {
        return false;
    }
    let mut j = i;
    if bytes.get(j) == Some(&b'b') {
        j += 1;
    }
    if bytes.get(j) != Some(&b'r') {
        return false;
    }
    j += 1;
    while bytes.get(j) == Some(&b'#') {
        j += 1;
    }
    bytes.get(j) == Some(&b'"')
}

/// Returns the index just past the closing quote of a plain string that
/// opens at `start` (which must point at `"`).
fn skip_string(bytes: &[u8], start: usize, line: &mut usize) -> usize {
    let mut i = start + 1;
    while let Some(&c) = bytes.get(i) {
        match c {
            b'\\' => i += 2,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Returns `(body_start, end)` of a raw string opening at `start`.
fn skip_raw_string(bytes: &[u8], start: usize, line: &mut usize) -> (usize, usize) {
    let mut i = start;
    if bytes.get(i) == Some(&b'b') {
        i += 1;
    }
    i += 1; // 'r'
    let mut hashes = 0usize;
    while bytes.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    i += 1; // opening quote
    let body_start = i;
    let closer: Vec<u8> = std::iter::once(b'"')
        .chain(std::iter::repeat_n(b'#', hashes))
        .collect();
    while let Some(&c) = bytes.get(i) {
        if c == b'\n' {
            *line += 1;
        }
        if c == b'"' && bytes[i..].starts_with(&closer) {
            return (body_start, i + closer.len());
        }
        i += 1;
    }
    (body_start, i)
}

/// Distinguishes a char literal from a lifetime; returns the index just
/// past the closing tick for a literal, `None` for a lifetime.
fn char_literal_end(bytes: &[u8], i: usize) -> Option<usize> {
    let next = *bytes.get(i + 1)?;
    if next == b'\\' {
        // Escaped char: find the closing tick within a short window
        // (\u{...} is the longest form).
        let mut j = i + 2;
        let limit = (i + 12).min(bytes.len());
        while j < limit {
            if bytes.get(j) == Some(&b'\'') {
                return Some(j + 1);
            }
            j += 1;
        }
        return None;
    }
    // `'x'` is a literal; `'a` (no closing tick right after one scalar)
    // is a lifetime. Multibyte scalars are handled by scanning to the
    // next tick within the scalar's width.
    let width = utf8_width(next);
    if bytes.get(i + 1 + width) == Some(&b'\'') {
        Some(i + 2 + width)
    } else {
        None
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        b if b < 0x80 => 1,
        b if b >= 0xF0 => 4,
        b if b >= 0xE0 => 3,
        _ => 2,
    }
}

/// Finds byte ranges of items annotated `#[cfg(test)]` (or any cfg
/// attribute naming `test`) by brace-matching on the masked text.
fn find_test_regions(masked: &str) -> Vec<(usize, usize)> {
    let bytes = masked.as_bytes();
    let mut regions = Vec::new();
    let mut search = 0usize;
    while let Some(found) = masked[search..].find("#[cfg(") {
        let attr_start = search + found;
        // The attribute's own parentheses decide cfg(test) vs cfg(feature).
        let Some(close) = masked[attr_start..].find(']') else {
            break;
        };
        let attr_end = attr_start + close + 1;
        let attr_text = &masked[attr_start..attr_end];
        search = attr_end;
        if !attr_text.contains("test") {
            continue;
        }
        // Skip any further attributes, then brace-match the item body.
        let mut i = attr_end;
        // An item without a body (e.g. `#[cfg(test)] use x;`) ends at
        // the semicolon before any brace opens.
        while bytes.get(i).is_some_and(|&c| c != b'{' && c != b';') {
            i += 1;
        }
        if bytes.get(i) != Some(&b'{') {
            regions.push((attr_start, i.min(bytes.len())));
            continue;
        }
        let mut depth = 0i64;
        let mut j = i;
        while let Some(&c) = bytes.get(j) {
            match c {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        regions.push((attr_start, (j + 1).min(bytes.len())));
        search = (j + 1).min(bytes.len());
    }
    regions
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(text: &str) -> SourceFile {
        analyze(
            "crates/x/src/lib.rs".into(),
            text.into(),
            policy_for("crates/x/src/lib.rs"),
        )
    }

    #[test]
    fn comments_and_strings_are_blanked() {
        let f = file("let a = \"HashMap\"; // HashMap here\nlet b = 'h'; /* HashMap */\n");
        assert!(!f.masked.contains("HashMap"));
        assert_eq!(f.masked.len(), f.text.len());
        assert_eq!(f.masked.matches('\n').count(), f.text.matches('\n').count());
    }

    #[test]
    fn raw_strings_are_blanked() {
        let f = file("let s = r#\"unwrap() panic!\"#; let t = r\"x.unwrap()\";\n");
        assert!(!f.masked.contains("unwrap"));
        assert!(!f.masked.contains("panic"));
    }

    #[test]
    fn lifetimes_survive_masking() {
        let f = file("fn f<'a>(x: &'a str) -> &'a str { x }\n");
        assert!(f.masked.contains("'a str"));
    }

    #[test]
    fn cfg_test_region_found() {
        let src =
            "fn real() {}\n#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); }\n}\nfn after() {}\n";
        let f = file(src);
        let unwrap_at = src.find("unwrap").expect("present");
        assert!(f.in_test_region(unwrap_at));
        let after_at = src.find("after").expect("present");
        assert!(!f.in_test_region(after_at));
    }

    #[test]
    fn allow_markers_require_reasons() {
        let f = file("a(); // xtask-allow: float-eq -- exactness is intended\n\nb(); // xtask-allow: float-eq\n");
        // With a reason: applies to its line and the next.
        assert!(f.is_allowed(1, "float-eq"));
        assert!(f.is_allowed(2, "float-eq"));
        // Without a reason: not registered at all.
        assert!(!f.is_allowed(3, "float-eq"));
        assert_eq!(f.allows.len(), 1);
    }

    #[test]
    fn policies_by_path() {
        assert!(policy_for("crates/core/src/controller.rs").determinism);
        assert!(!policy_for("crates/core/src/controller.rs").wall_clock_allowed);
        assert!(!policy_for("crates/apps/tests/app_properties.rs").count_panic_debt);
        assert!(policy_for("crates/bench/src/harness.rs").wall_clock_allowed);
        assert!(policy_for("shims/criterion/src/lib.rs").wall_clock_allowed);
        assert!(!policy_for("examples/quickstart.rs").determinism);
    }
}
